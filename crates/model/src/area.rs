//! Component-level area model.
//!
//! Every fabric component carries a NAND2-equivalent gate budget (logic)
//! or a bit count (SRAM). The budgets are engineering estimates of the
//! microarchitecture defined in `systolic-ring-isa`/`-core`, with the
//! Dnode total calibrated against Table 3 (see [`crate::tech`]). The core
//! estimate sums:
//!
//! * the Dnodes,
//! * the switches (crossbar port muxes + feedback-pipeline registers +
//!   host FIFOs + capture logic),
//! * the configuration layer (multi-context SRAM),
//! * the RISC configuration controller,
//! * a fixed integration overhead (clock tree, top-level wiring).

use systolic_ring_isa::RingGeometry;

use crate::tech::Tech;

/// Physical sizing of a ring implementation (distinct from the simulator's
/// convenience parameters — these are what gets taped out).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HardwareParams {
    /// Configuration contexts in the configuration layer.
    pub contexts: usize,
    /// Feedback-pipeline depth per switch.
    pub pipe_depth: usize,
    /// Words per host FIFO.
    pub host_fifo_words: usize,
}

impl HardwareParams {
    /// The sizing used throughout the paper reproduction.
    pub const PAPER: HardwareParams = HardwareParams {
        contexts: 8,
        pipe_depth: 8,
        host_fifo_words: 16,
    };
}

/// Gate budget of one Dnode, split by sub-block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DnodeGates {
    /// 16-bit ALU (add/saturate/logic/shift/min-max/abs-diff).
    pub alu: f64,
    /// Hardwired 16x16 multiplier with the MAC chain into the adder.
    pub multiplier: f64,
    /// 4x16-bit master/slave register file.
    pub regfile: f64,
    /// Local sequencer: 8 x 48-bit instruction registers, LIMIT, counter,
    /// 8:1 mux.
    pub sequencer: f64,
    /// Microinstruction decode and output staging.
    pub decode: f64,
}

/// The per-Dnode budget (sums to the calibration constant of
/// [`crate::tech::DNODE_GATES_CALIBRATION`]).
pub const DNODE_GATES: DnodeGates = DnodeGates {
    alu: 1400.0,
    multiplier: 2600.0,
    regfile: 700.0,
    sequencer: 2400.0,
    decode: 300.0,
};

impl DnodeGates {
    /// Total gates of one Dnode.
    pub fn total(&self) -> f64 {
        self.alu + self.multiplier + self.regfile + self.sequencer + self.decode
    }
}

/// Gates of one RISC configuration controller core (registers, ALU,
/// decode, sequencing; program/data SRAM accounted separately).
pub const CONTROLLER_GATES: f64 = 12_000.0;

/// Controller program + data SRAM carried on-core, in bits (512 words
/// each; the simulator offers larger memories for convenience, but the
/// taped-out controller of the paper's era carries small tight SRAMs).
pub const CONTROLLER_SRAM_BITS: f64 = 2.0 * 512.0 * 32.0;

/// Fractional integration overhead (clock tree, top-level routing, pads
/// interface) applied to the summed core area.
pub const INTEGRATION_OVERHEAD: f64 = 0.08;

/// Per-component and total area of one ring core, in mm².
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreArea {
    /// All Dnodes.
    pub dnodes_mm2: f64,
    /// All switches (crossbars, pipelines, FIFOs, capture).
    pub switches_mm2: f64,
    /// Configuration-layer SRAM.
    pub config_mm2: f64,
    /// Controller logic + program/data SRAM.
    pub controller_mm2: f64,
    /// Integration overhead.
    pub overhead_mm2: f64,
}

impl CoreArea {
    /// Total core area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.dnodes_mm2
            + self.switches_mm2
            + self.config_mm2
            + self.controller_mm2
            + self.overhead_mm2
    }
}

/// Gates of one switch for the given geometry and sizing.
pub fn switch_gates(geometry: RingGeometry, hw: HardwareParams) -> f64 {
    let width = geometry.width() as f64;
    // Each downstream Dnode has 4 routed ports; each port is a 16-bit mux
    // over ~width + fixed sources plus its configuration register.
    let ports = width * 4.0;
    let per_port = 30.0 * width + 150.0;
    let crossbar = ports * per_port;
    // Feedback pipeline: depth x width 16-bit registers.
    let pipeline = hw.pipe_depth as f64 * width * 16.0 * 6.0;
    // Capture mux + control.
    let capture = 60.0 * width + 120.0;
    crossbar + pipeline + capture
}

/// SRAM bits of one switch's host FIFOs.
pub fn switch_fifo_bits(geometry: RingGeometry, hw: HardwareParams) -> f64 {
    // 2*width input FIFOs + 1 output FIFO, 16-bit words.
    (2.0 * geometry.width() as f64 + 1.0) * hw.host_fifo_words as f64 * 16.0
}

/// Configuration-layer bits for one context.
pub fn context_bits(geometry: RingGeometry) -> f64 {
    let dnodes = geometry.dnodes() as f64;
    let ports = (geometry.switches() * geometry.width() * 4) as f64;
    let captures = geometry.switches() as f64;
    dnodes * 48.0 + ports * 27.0 + captures * 9.0
}

/// Full core-area estimate for `geometry` in `tech`.
pub fn core_area(geometry: RingGeometry, hw: HardwareParams, tech: Tech) -> CoreArea {
    let dnodes_mm2 = tech.gates_to_mm2(DNODE_GATES.total() * geometry.dnodes() as f64);
    let switches = geometry.switches() as f64;
    let switches_mm2 = tech.gates_to_mm2(switch_gates(geometry, hw) * switches)
        + tech.sram_to_mm2(switch_fifo_bits(geometry, hw) * switches);
    let config_mm2 = tech.sram_to_mm2(context_bits(geometry) * hw.contexts as f64);
    let controller_mm2 =
        tech.gates_to_mm2(CONTROLLER_GATES) + tech.sram_to_mm2(CONTROLLER_SRAM_BITS);
    let subtotal = dnodes_mm2 + switches_mm2 + config_mm2 + controller_mm2;
    CoreArea {
        dnodes_mm2,
        switches_mm2,
        config_mm2,
        controller_mm2,
        overhead_mm2: subtotal * INTEGRATION_OVERHEAD,
    }
}

/// Area of a single Dnode in `tech`, in mm².
pub fn dnode_area_mm2(tech: Tech) -> f64 {
    tech.gates_to_mm2(DNODE_GATES.total())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::{DNODE_GATES_CALIBRATION, ST_CMOS_018, ST_CMOS_025};

    #[test]
    fn dnode_budget_matches_the_calibration_constant() {
        assert!((DNODE_GATES.total() - DNODE_GATES_CALIBRATION).abs() < 1e-9);
    }

    #[test]
    fn dnode_area_reproduces_table3() {
        assert!((dnode_area_mm2(ST_CMOS_025) - 0.06).abs() < 1e-9);
        assert!((dnode_area_mm2(ST_CMOS_018) - 0.04).abs() < 1e-9);
    }

    #[test]
    fn ring8_core_area_is_near_table3() {
        let a025 = core_area(RingGeometry::RING_8, HardwareParams::PAPER, ST_CMOS_025);
        let a018 = core_area(RingGeometry::RING_8, HardwareParams::PAPER, ST_CMOS_018);
        // Paper: 0.9 mm² and 0.7 mm². Accept +-20% from the gate model.
        assert!(
            (0.72..=1.08).contains(&a025.total_mm2()),
            "0.25um core = {:.3} mm2",
            a025.total_mm2()
        );
        assert!(
            (0.56..=0.84).contains(&a018.total_mm2()),
            "0.18um core = {:.3} mm2",
            a018.total_mm2()
        );
    }

    #[test]
    fn ring64_lands_near_the_soc_projection() {
        // Figure 7 projects 3.4 mm² for a Ring-64 in 0.18 um.
        let a = core_area(RingGeometry::RING_64, HardwareParams::PAPER, ST_CMOS_018);
        assert!(
            (2.6..=4.2).contains(&a.total_mm2()),
            "Ring-64 = {:.3} mm2",
            a.total_mm2()
        );
    }

    #[test]
    fn area_grows_roughly_linearly_with_dnodes() {
        // The paper's scalability pitch: no superlinear routing blow-up.
        let hw = HardwareParams::PAPER;
        let a16 = core_area(RingGeometry::RING_16, hw, ST_CMOS_018).total_mm2();
        let a64 = core_area(RingGeometry::RING_64, hw, ST_CMOS_018).total_mm2();
        let per_dnode_16 = a16 / 16.0;
        let per_dnode_64 = a64 / 64.0;
        // Per-Dnode cost should not grow more than ~40% from 16 to 64
        // (crossbars widen with width, but only within a layer).
        assert!(
            per_dnode_64 < per_dnode_16 * 1.4,
            "{per_dnode_16} vs {per_dnode_64}"
        );
    }

    #[test]
    fn components_are_all_positive() {
        let a = core_area(RingGeometry::RING_16, HardwareParams::PAPER, ST_CMOS_018);
        assert!(a.dnodes_mm2 > 0.0);
        assert!(a.switches_mm2 > 0.0);
        assert!(a.config_mm2 > 0.0);
        assert!(a.controller_mm2 > 0.0);
        assert!(a.overhead_mm2 > 0.0);
        assert!(a.total_mm2() > a.dnodes_mm2);
    }
}
