//! Analytical technology model for the Systolic Ring.
//!
//! Reproduces the physical-implementation results of the paper:
//!
//! * **Table 3** — Dnode and core area plus estimated frequency in the
//!   0.25 µm and 0.18 µm ST CMOS nodes ([`area`], [`timing`], [`tech`]),
//! * **Figure 7** — the projected Ring-64 + ARM7 SoC floorplan
//!   ([`floorplan`]),
//! * the §5.1 peak figures (1600 MIPS, ~3 GB/s for Ring-8 at 200 MHz)
//!   ([`timing`]),
//! * the §2 fine-vs-coarse-grain area argument — the same datapath priced
//!   on an FPGA-class bit-level fabric ([`grain`]).
//!
//! The model is calibrated at exactly two anchors — the Table 3 Dnode
//! areas and Ring-8 frequencies — and *predicts* everything else (core
//! areas, Ring-16/Ring-64, the scalability sweep). See
//! `DESIGN.md` §4 for the substitution rationale.

pub mod area;
pub mod floorplan;
pub mod grain;
pub mod tech;
pub mod timing;

pub use area::{core_area, dnode_area_mm2, CoreArea, HardwareParams};
pub use tech::{Tech, ST_CMOS_018, ST_CMOS_025};
pub use timing::{freq_mhz, peak_mips, peak_port_bandwidth_bytes};
