//! Critical-path and performance model.
//!
//! The clock-limiting path of the architecture is the Dnode MAC (multiplier
//! chained into the adder, §4.1) plus the switch crossbar mux in front of
//! it. The crossbar deepens logarithmically with the layer width — the
//! ring's only width-dependent timing term, and deliberately *not*
//! dependent on the layer count: that locality is the paper's scalability
//! argument (§4.2).

use systolic_ring_isa::RingGeometry;

use crate::tech::{Tech, RING8_LEVELS_CALIBRATION};

/// Logic levels on the critical path for a given geometry.
///
/// Calibrated so the Ring-8 (width 2) matches
/// [`RING8_LEVELS_CALIBRATION`]; every doubling of the width adds 1.5
/// levels of crossbar multiplexing.
pub fn critical_path_levels(geometry: RingGeometry) -> f64 {
    let width = geometry.width() as f64;
    let base = RING8_LEVELS_CALIBRATION - 1.5; // width-2 crossbar = 1 doubling
    base + 1.5 * width.log2()
}

/// Estimated clock frequency in MHz.
pub fn freq_mhz(geometry: RingGeometry, tech: Tech) -> f64 {
    tech.freq_mhz(critical_path_levels(geometry))
}

/// Peak instructions per second in MIPS, counting one operation per Dnode
/// per cycle (the paper's counting: Ring-8 at 200 MHz = 1600 MIPS).
pub fn peak_mips(geometry: RingGeometry, tech: Tech) -> f64 {
    geometry.dnodes() as f64 * freq_mhz(geometry, tech)
}

/// Peak operations per second counting the MAC as two arithmetic
/// operations ("able to compute up to two arithmetic operations each clock
/// cycle", §4.1).
pub fn peak_mops_mac(geometry: RingGeometry, tech: Tech) -> f64 {
    2.0 * peak_mips(geometry, tech)
}

/// Theoretical host-port bandwidth in bytes/s: every Dnode of the fabric
/// can absorb one 16-bit word per cycle through the direct dedicated ports
/// (the paper's "about 3 Gbytes/s" for Ring-8 at 200 MHz).
pub fn peak_port_bandwidth_bytes(geometry: RingGeometry, tech: Tech) -> f64 {
    geometry.dnodes() as f64 * 2.0 * freq_mhz(geometry, tech) * 1.0e6
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::{ST_CMOS_018, ST_CMOS_025};

    #[test]
    fn ring8_frequencies_match_table3() {
        assert!((freq_mhz(RingGeometry::RING_8, ST_CMOS_025) - 180.0).abs() < 1e-6);
        assert!((freq_mhz(RingGeometry::RING_8, ST_CMOS_018) - 200.0).abs() < 1e-6);
    }

    #[test]
    fn ring8_peak_mips_matches_section_5_1() {
        // "A 8 Dnodes ... version has a maximal computing power of 1600
        // MIPS at the typical 200 MHz evaluated functional frequency".
        let mips = peak_mips(RingGeometry::RING_8, ST_CMOS_018);
        assert!((mips - 1600.0).abs() < 1e-6, "mips = {mips}");
        assert!((peak_mops_mac(RingGeometry::RING_8, ST_CMOS_018) - 3200.0).abs() < 1e-6);
    }

    #[test]
    fn ring8_port_bandwidth_is_about_3_gbytes() {
        let bw = peak_port_bandwidth_bytes(RingGeometry::RING_8, ST_CMOS_018);
        assert!((bw - 3.2e9).abs() < 1e3, "bw = {bw}");
    }

    #[test]
    fn wider_fabrics_clock_slightly_slower() {
        let f2 = freq_mhz(RingGeometry::RING_8, ST_CMOS_018); // width 2
        let f4 = freq_mhz(RingGeometry::RING_16, ST_CMOS_018); // width 4
        let f8 = freq_mhz(RingGeometry::RING_64, ST_CMOS_018); // width 8
        assert!(f2 > f4 && f4 > f8);
        // ...but only logarithmically: Ring-64 keeps >85% of Ring-8's clock.
        assert!(f8 > 0.85 * f2, "f8 = {f8}, f2 = {f2}");
    }

    #[test]
    fn longer_rings_do_not_slow_the_clock() {
        // Layer count must not appear in the critical path (ring locality).
        let short = RingGeometry::new(4, 4).unwrap();
        let long = RingGeometry::new(64, 4).unwrap();
        assert_eq!(critical_path_levels(short), critical_path_levels(long));
    }
}
