//! Process-technology parameters.
//!
//! The paper reports Synopsys Design Compiler estimates in the two ST CMOS
//! nodes of the day (Table 3). Absent the original libraries, each node
//! carries two calibrated constants:
//!
//! * `um2_per_gate` — layout area of one NAND2-equivalent gate *including
//!   routing overhead*, calibrated so the modelled Dnode lands exactly on
//!   the paper's Dnode area (0.06 mm² at 0.25 µm, 0.04 mm² at 0.18 µm for
//!   the ~7400-gate Dnode budget of [`crate::area`]),
//! * `ps_per_level` — effective delay of one logic level on the critical
//!   path, calibrated so the Ring-8 core hits the paper's 180 / 200 MHz.
//!
//! All other configurations (Ring-16, Ring-64, the scalability sweep) are
//! then *predictions* of the same constants — the calibration points are
//! only the Table 3 anchors.

use std::fmt;

/// A CMOS process node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Tech {
    /// Display name, e.g. `"0.25um"`.
    pub name: &'static str,
    /// Drawn feature size in micrometres.
    pub feature_um: f64,
    /// Layout area per NAND2-equivalent gate, in µm² (routed).
    pub um2_per_gate: f64,
    /// Area per SRAM bit, in µm².
    pub um2_per_sram_bit: f64,
    /// Effective critical-path delay per logic level, in picoseconds.
    pub ps_per_level: f64,
}

/// The Dnode gate budget the area constants are calibrated against.
pub const DNODE_GATES_CALIBRATION: f64 = 7400.0;

/// The critical-path depth (logic levels) of the calibration Ring-8.
pub const RING8_LEVELS_CALIBRATION: f64 = 28.0;

/// ST CMOS 0.25 µm, calibrated to Table 3's first row
/// (Dnode 0.06 mm², Ring-8 core 0.9 mm², 180 MHz).
pub const ST_CMOS_025: Tech = Tech {
    name: "0.25um",
    feature_um: 0.25,
    // 0.06 mm² / 7400 gates.
    um2_per_gate: 60_000.0 / DNODE_GATES_CALIBRATION,
    um2_per_sram_bit: 60_000.0 / DNODE_GATES_CALIBRATION * 0.35,
    // 1 / (180 MHz * 28 levels).
    ps_per_level: 1.0e6 / (180.0 * RING8_LEVELS_CALIBRATION),
};

/// ST CMOS 0.18 µm, calibrated to Table 3's second row
/// (Dnode 0.04 mm², Ring-8 core 0.7 mm², 200 MHz).
pub const ST_CMOS_018: Tech = Tech {
    name: "0.18um",
    feature_um: 0.18,
    um2_per_gate: 40_000.0 / DNODE_GATES_CALIBRATION,
    um2_per_sram_bit: 40_000.0 / DNODE_GATES_CALIBRATION * 0.35,
    ps_per_level: 1.0e6 / (200.0 * RING8_LEVELS_CALIBRATION),
};

impl Tech {
    /// Area of `gates` NAND2-equivalents, in mm².
    pub fn gates_to_mm2(&self, gates: f64) -> f64 {
        gates * self.um2_per_gate / 1.0e6
    }

    /// Area of `bits` of SRAM, in mm².
    pub fn sram_to_mm2(&self, bits: f64) -> f64 {
        bits * self.um2_per_sram_bit / 1.0e6
    }

    /// Clock frequency in MHz for a critical path of `levels` logic levels.
    pub fn freq_mhz(&self, levels: f64) -> f64 {
        1.0e6 / (levels * self.ps_per_level)
    }
}

impl fmt::Display for Tech {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_reproduces_dnode_area() {
        assert!((ST_CMOS_025.gates_to_mm2(DNODE_GATES_CALIBRATION) - 0.06).abs() < 1e-9);
        assert!((ST_CMOS_018.gates_to_mm2(DNODE_GATES_CALIBRATION) - 0.04).abs() < 1e-9);
    }

    #[test]
    fn calibration_reproduces_core_frequency() {
        assert!((ST_CMOS_025.freq_mhz(RING8_LEVELS_CALIBRATION) - 180.0).abs() < 1e-6);
        assert!((ST_CMOS_018.freq_mhz(RING8_LEVELS_CALIBRATION) - 200.0).abs() < 1e-6);
    }

    #[test]
    fn newer_node_is_denser_and_faster() {
        let (new, old) = (ST_CMOS_018, ST_CMOS_025);
        assert!(new.um2_per_gate < old.um2_per_gate);
        assert!(new.ps_per_level < old.ps_per_level);
        assert!(new.sram_to_mm2(1000.0) < old.sram_to_mm2(1000.0));
    }
}
