//! Grain-size comparison: the paper's §2 motivation, quantified.
//!
//! §2 argues that fine-grained (bit-level) fabrics are the wrong substrate
//! for word-level DSP: "A study at MIT reports, that FPGAs use only one
//! percent chip area for the real application, whereas the other 99% are
//! used for reconfigurability artefacts (about 10% configuration code
//! memory, and about 90% for programmability of interconnect)."
//!
//! This module prices the same Ring-8 datapath on three substrates:
//!
//! * the **coarse-grained ASIC** fabric of the paper (the calibrated
//!   [`crate::area`] model),
//! * an **FPGA at the empirical ASIC:FPGA gap** (logic mapped to LUTs at
//!   [`LUT_LOGIC_INEFFICIENCY`], with [`FPGA_LOGIC_SHARE`] of each tile
//!   being usable logic — the ~35x of Kuon & Rose's later measurements),
//! * an **FPGA at the paper's quoted MIT shares** (1% application logic),
//!   the pessimistic utilization-inclusive bound the paper argues from.

use systolic_ring_isa::RingGeometry;

use crate::area::{core_area, HardwareParams};
use crate::tech::Tech;

/// Area inefficiency of mapping random word-level logic onto 4-LUTs
/// (LUT + carry + FF tile versus NAND2-equivalent standard cells).
pub const LUT_LOGIC_INEFFICIENCY: f64 = 3.5;

/// Fraction of an FPGA tile that is usable application logic in the
/// empirical model (the rest is routing mux trees and configuration
/// SRAM) — yields the classic ~35x ASIC:FPGA area gap.
pub const FPGA_LOGIC_SHARE: f64 = 0.10;

/// The paper's quoted MIT-study share of chip area doing "the real
/// application" on an FPGA.
pub const MIT_LOGIC_SHARE: f64 = 0.01;

/// The paper's quoted configuration-memory share.
pub const MIT_CONFIG_SHARE: f64 = 0.10;

/// The paper's quoted interconnect-programmability share.
pub const MIT_INTERCONNECT_SHARE: f64 = 0.90;

/// Areas of one ring datapath on the three substrates, in mm².
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GrainComparison {
    /// The coarse-grained ASIC core (this paper's architecture).
    pub ring_asic_mm2: f64,
    /// The same logic on an FPGA at the empirical ~35x gap.
    pub fpga_empirical_mm2: f64,
    /// The same logic on an FPGA at the paper's MIT shares (1% useful).
    pub fpga_mit_quote_mm2: f64,
}

impl GrainComparison {
    /// The empirical FPGA-over-ring area factor.
    pub fn empirical_factor(&self) -> f64 {
        self.fpga_empirical_mm2 / self.ring_asic_mm2
    }

    /// The MIT-quote FPGA-over-ring area factor.
    pub fn mit_factor(&self) -> f64 {
        self.fpga_mit_quote_mm2 / self.ring_asic_mm2
    }
}

/// Prices the `geometry` core on all three substrates in `tech`.
pub fn compare(geometry: RingGeometry, hw: HardwareParams, tech: Tech) -> GrainComparison {
    let ring = core_area(geometry, hw, tech).total_mm2();
    // The FPGA must implement the same application logic; its tiles carry
    // the LUT inefficiency and the non-logic overhead share.
    let logic_on_fpga = ring * LUT_LOGIC_INEFFICIENCY;
    GrainComparison {
        ring_asic_mm2: ring,
        fpga_empirical_mm2: logic_on_fpga / FPGA_LOGIC_SHARE,
        fpga_mit_quote_mm2: logic_on_fpga / MIT_LOGIC_SHARE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tech::ST_CMOS_018;

    #[test]
    fn mit_shares_are_the_papers_numbers() {
        assert_eq!(MIT_LOGIC_SHARE, 0.01);
        assert_eq!(MIT_CONFIG_SHARE, 0.10);
        assert_eq!(MIT_INTERCONNECT_SHARE, 0.90);
    }

    #[test]
    fn empirical_gap_is_the_classic_35x() {
        let c = compare(RingGeometry::RING_8, HardwareParams::PAPER, ST_CMOS_018);
        assert!((c.empirical_factor() - 35.0).abs() < 1e-9);
        // The paper's own quote implies an order of magnitude more.
        assert!((c.mit_factor() - 350.0).abs() < 1e-9);
    }

    #[test]
    fn fpga_never_wins_on_area() {
        for g in [RingGeometry::RING_8, RingGeometry::RING_64] {
            let c = compare(g, HardwareParams::PAPER, ST_CMOS_018);
            assert!(c.fpga_empirical_mm2 > c.ring_asic_mm2);
            assert!(c.fpga_mit_quote_mm2 > c.fpga_empirical_mm2);
        }
    }
}
