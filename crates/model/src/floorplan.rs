//! SoC floorplanning for the paper's Figure 7.
//!
//! Figure 7 sketches "a foreseeable SoC": a 4 x 3 mm die in 0.18 µm
//! carrying an ARM7TDMI (0.54 mm²), a Ring-64 (3.4 mm²), flash and
//! converters. This module packs rectangular blocks into a die outline
//! with a simple shelf (row) packer and renders an ASCII floorplan.

use std::fmt;

/// A block to place, with its required area.
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    /// Display name.
    pub name: String,
    /// Required area in mm².
    pub area_mm2: f64,
}

impl Block {
    /// Creates a block.
    pub fn new(name: impl Into<String>, area_mm2: f64) -> Self {
        Block {
            name: name.into(),
            area_mm2,
        }
    }
}

/// A placed block.
#[derive(Clone, Debug, PartialEq)]
pub struct Placement {
    /// The block.
    pub block: Block,
    /// Lower-left x in mm.
    pub x_mm: f64,
    /// Lower-left y in mm.
    pub y_mm: f64,
    /// Width in mm.
    pub w_mm: f64,
    /// Height in mm.
    pub h_mm: f64,
}

/// A completed floorplan.
#[derive(Clone, Debug, PartialEq)]
pub struct Floorplan {
    /// Die width in mm.
    pub die_w_mm: f64,
    /// Die height in mm.
    pub die_h_mm: f64,
    /// Placements in input order.
    pub placements: Vec<Placement>,
}

/// Error returned when the blocks do not fit the die.
#[derive(Clone, Debug, PartialEq)]
pub struct DoesNotFit {
    /// Total block area in mm².
    pub required_mm2: f64,
    /// Die area in mm².
    pub die_mm2: f64,
}

impl fmt::Display for DoesNotFit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "blocks need {:.2} mm2 but the die offers {:.2} mm2 (with packing margin)",
            self.required_mm2, self.die_mm2
        )
    }
}

impl std::error::Error for DoesNotFit {}

/// Packs `blocks` into a `die_w_mm` x `die_h_mm` die using shelf rows,
/// tallest-first within the input order preserved for display.
///
/// # Errors
///
/// Returns [`DoesNotFit`] if the summed block area exceeds 85% of the die
/// (routing/pad margin) or a shelf overflows.
pub fn pack(die_w_mm: f64, die_h_mm: f64, blocks: &[Block]) -> Result<Floorplan, DoesNotFit> {
    let required: f64 = blocks.iter().map(|b| b.area_mm2).sum();
    let die = die_w_mm * die_h_mm;
    if required > 0.85 * die {
        return Err(DoesNotFit {
            required_mm2: required,
            die_mm2: die,
        });
    }

    // Sort by area descending for packing, remembering original order.
    let mut order: Vec<usize> = (0..blocks.len()).collect();
    order.sort_by(|&a, &b| {
        blocks[b]
            .area_mm2
            .partial_cmp(&blocks[a].area_mm2)
            .expect("finite areas")
    });

    let mut placements: Vec<Option<Placement>> = vec![None; blocks.len()];
    let mut shelf_y = 0.0f64;
    let mut shelf_h = 0.0f64;
    let mut cursor_x = 0.0f64;
    for &idx in &order {
        let block = &blocks[idx];
        // Aspect: near-square, flattened to the remaining die height and
        // capped by the die width.
        let shape = |avail_h: f64| -> Option<(f64, f64)> {
            let mut w = block.area_mm2.sqrt().min(die_w_mm);
            let mut h = block.area_mm2 / w;
            if h > avail_h {
                if avail_h <= 0.0 {
                    return None;
                }
                h = avail_h;
                w = block.area_mm2 / h;
            }
            (w <= die_w_mm + 1e-9).then_some((w, h))
        };
        let (mut w, mut h) = shape(die_h_mm - shelf_y).ok_or(DoesNotFit {
            required_mm2: required,
            die_mm2: die,
        })?;
        if cursor_x + w > die_w_mm + 1e-9 {
            // New shelf.
            shelf_y += shelf_h;
            shelf_h = 0.0;
            cursor_x = 0.0;
            (w, h) = shape(die_h_mm - shelf_y).ok_or(DoesNotFit {
                required_mm2: required,
                die_mm2: die,
            })?;
        }
        if shelf_y + h > die_h_mm + 1e-9 || cursor_x + w > die_w_mm + 1e-9 {
            return Err(DoesNotFit {
                required_mm2: required,
                die_mm2: die,
            });
        }
        placements[idx] = Some(Placement {
            block: block.clone(),
            x_mm: cursor_x,
            y_mm: shelf_y,
            w_mm: w,
            h_mm: h,
        });
        cursor_x += w;
        if h > shelf_h {
            shelf_h = h;
        }
    }
    Ok(Floorplan {
        die_w_mm,
        die_h_mm,
        placements: placements.into_iter().map(|p| p.expect("placed")).collect(),
    })
}

impl Floorplan {
    /// Fraction of the die covered by placed blocks.
    pub fn utilization(&self) -> f64 {
        let used: f64 = self.placements.iter().map(|p| p.block.area_mm2).sum();
        used / (self.die_w_mm * self.die_h_mm)
    }

    /// Renders an ASCII sketch (`cols` x `rows` characters), each block
    /// filled with the first letter of its name.
    pub fn ascii(&self, cols: usize, rows: usize) -> String {
        let mut grid = vec![vec!['.'; cols]; rows];
        for (i, p) in self.placements.iter().enumerate() {
            let letter = p
                .block
                .name
                .chars()
                .next()
                .unwrap_or((b'A' + (i % 26) as u8) as char)
                .to_ascii_uppercase();
            let x0 = (p.x_mm / self.die_w_mm * cols as f64).floor() as usize;
            let x1 = (((p.x_mm + p.w_mm) / self.die_w_mm * cols as f64).ceil() as usize).min(cols);
            let y0 = (p.y_mm / self.die_h_mm * rows as f64).floor() as usize;
            let y1 = (((p.y_mm + p.h_mm) / self.die_h_mm * rows as f64).ceil() as usize).min(rows);
            for row in grid.iter_mut().take(y1).skip(y0) {
                for cell in row.iter_mut().take(x1).skip(x0) {
                    *cell = letter;
                }
            }
        }
        let mut out = String::new();
        out.push('+');
        out.push_str(&"-".repeat(cols));
        out.push_str("+\n");
        for row in grid.iter().rev() {
            out.push('|');
            out.extend(row.iter());
            out.push_str("|\n");
        }
        out.push('+');
        out.push_str(&"-".repeat(cols));
        out.push_str("+\n");
        out
    }
}

/// The Figure 7 block list: ARM7TDMI at the paper's 0.54 mm², the Ring-64
/// at `ring64_mm2` (from the area model), plus flash and converters sized
/// to the sketch.
pub fn figure7_blocks(ring64_mm2: f64) -> Vec<Block> {
    vec![
        Block::new("Ring-64", ring64_mm2),
        Block::new("ARM7TDMI", 0.54),
        Block::new("FLASH", 1.6),
        Block::new("CAN/CNA", 0.6),
        Block::new("SRAM", 1.2),
        Block::new("Peripherals", 0.7),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_fits_the_4x3_die() {
        let plan = pack(4.0, 3.0, &figure7_blocks(3.4)).unwrap();
        assert_eq!(plan.placements.len(), 6);
        assert!(plan.utilization() > 0.5 && plan.utilization() < 0.85);
        // Everything inside the outline.
        for p in &plan.placements {
            assert!(p.x_mm + p.w_mm <= 4.0 + 1e-6);
            assert!(p.y_mm + p.h_mm <= 3.0 + 1e-6);
        }
    }

    #[test]
    fn placements_do_not_overlap() {
        let plan = pack(4.0, 3.0, &figure7_blocks(3.4)).unwrap();
        for (i, a) in plan.placements.iter().enumerate() {
            for b in plan.placements.iter().skip(i + 1) {
                let disjoint = a.x_mm + a.w_mm <= b.x_mm + 1e-9
                    || b.x_mm + b.w_mm <= a.x_mm + 1e-9
                    || a.y_mm + a.h_mm <= b.y_mm + 1e-9
                    || b.y_mm + b.h_mm <= a.y_mm + 1e-9;
                assert!(disjoint, "{} overlaps {}", a.block.name, b.block.name);
            }
        }
    }

    #[test]
    fn oversized_blocks_are_rejected() {
        let blocks = vec![Block::new("huge", 100.0)];
        assert!(pack(4.0, 3.0, &blocks).is_err());
    }

    #[test]
    fn ascii_render_contains_all_blocks() {
        let plan = pack(4.0, 3.0, &figure7_blocks(3.4)).unwrap();
        let art = plan.ascii(48, 18);
        assert!(art.contains('R')); // Ring-64
        assert!(art.contains('A')); // ARM7TDMI
        assert!(art.contains('F')); // FLASH
        assert!(art.lines().count() >= 18);
    }
}
