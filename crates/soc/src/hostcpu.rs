//! Host-CPU stub: the DMA duties of the µP in the paper's SoC picture.
//!
//! "The host processor sends the data to the operating layer via a
//! specific scheme and then get back the computed data" (§3). These
//! helpers move data between on-board word memories and the ring's host
//! streams/sinks.

use systolic_ring_core::{ConfigError, RingMachine};
use systolic_ring_isa::Word16;

use crate::mem::WordMemory;

/// Queues the whole of `memory` (or the `range` within it) on the host
/// input stream of (`switch`, `port`).
///
/// # Errors
///
/// Returns [`ConfigError`] for out-of-range stream indices.
pub fn dma_to_stream(
    machine: &mut RingMachine,
    memory: &WordMemory,
    range: std::ops::Range<usize>,
    switch: usize,
    port: usize,
) -> Result<usize, ConfigError> {
    let words: Vec<Word16> = memory.words()[range].to_vec();
    let count = words.len();
    machine.attach_input(switch, port, words)?;
    Ok(count)
}

/// Drains the sink of (`switch`, `port`) into `memory` starting at
/// `addr`; returns the number of words stored (clipped to the memory
/// size).
///
/// # Errors
///
/// Returns [`ConfigError`] for out-of-range indices.
pub fn dma_from_sink(
    machine: &mut RingMachine,
    switch: usize,
    port: usize,
    memory: &mut WordMemory,
    addr: usize,
) -> Result<usize, ConfigError> {
    let words = machine.take_sink(switch, port)?;
    let room = memory.len().saturating_sub(addr);
    let n = words.len().min(room);
    memory.write_block(addr, &words[..n]);
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ring_isa::RingGeometry;

    #[test]
    fn dma_round_trip_through_streams() {
        let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
        let src = WordMemory::preloaded("SRC", (0..10).map(Word16::new));
        let n = dma_to_stream(&mut m, &src, 2..6, 0, 0).unwrap();
        assert_eq!(n, 4);
        assert!(dma_to_stream(&mut m, &src, 0..1, 9, 0).is_err());
    }

    #[test]
    fn dma_from_sink_clips_to_memory() {
        let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
        m.open_sink(1, 0).unwrap();
        let mut dst = WordMemory::new("DST", 4);
        let n = dma_from_sink(&mut m, 1, 0, &mut dst, 0).unwrap();
        assert_eq!(n, 0); // nothing captured yet
        assert!(dma_from_sink(&mut m, 9, 0, &mut dst, 0).is_err());
        assert!(dma_from_sink(&mut m, 1, 7, &mut dst, 0).is_err());
    }
}
