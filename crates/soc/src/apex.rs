//! The APEX-board prototype of Figure 6, end to end.
//!
//! "A Ring-8 (8 Dnodes) version including the configuration controller has
//! been synthesized and implemented. This core reads its configuration
//! code from a preloaded memory (PRG), and apply the corresponding
//! computations on an 16 bits coded image also preloaded on another memory
//! (IMAGE). The resulting image is then wrote on video memory (VIDEO)
//! displayed on a monitor by an also synthesized VGA controller."
//!
//! This module reproduces that complete system:
//!
//! 1. the demo program is **assembled** and its object code stored into
//!    the PRG word memory,
//! 2. at boot the object code is read back *out of PRG* and loaded into
//!    the Ring-8,
//! 3. the host DMA streams the IMAGE memory through the ring, which runs a
//!    horizontal smoothing filter `y[k] = (x[k] + x[k-1]) >> 1` over the
//!    raster scan (built from a pass Dnode, a feedback-pipeline delay tap,
//!    an adder and a shifter),
//! 4. the results land in the VIDEO memory and the VGA controller scans
//!    them out — [`ApexPrototype::scan_ppm`] is the monitor.

use systolic_ring_asm::assemble;
use systolic_ring_core::{MachineParams, RingMachine, SimError};
use systolic_ring_isa::object::Object;
use systolic_ring_isa::{RingGeometry, Word16};
use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::KernelError;

use crate::hostcpu;
use crate::mem::WordMemory;
use crate::ppm;
use crate::vga::VgaController;

/// Pipeline latency of the built-in smoothing demo, from a pixel's stream
/// slot to its processed value at the capture sink.
const DEMO_LATENCY: usize = 4;

/// A program to run on the board: the object code plus the I/O contract
/// the host DMA needs (where results appear and how deep the pipeline is).
#[derive(Clone, Debug)]
pub struct BoardProgram {
    /// The assembled object (stored into PRG, booted from there).
    pub object: Object,
    /// Switch whose capture produces the output stream.
    pub output_switch: usize,
    /// Host-output port on that switch.
    pub output_port: usize,
    /// Sink entries to skip before the first valid output (pipeline
    /// warm-up).
    pub latency: usize,
    /// Extra cycles granted beyond one per pixel.
    pub slack: u64,
}

/// The assembled demo: raster-scan horizontal smoothing on a Ring-8.
fn demo_source(pixels: usize) -> String {
    format!(
        "; Figure 6 demo: y[k] = (x[k] + x[k-1]) >> 1 over the raster scan.
         .ring 4x2
         route 0,1.in1 = host.0
         node  0,1: mov in1 > out            ; pass cell: x into pipe[1]
         route 1,0.in1 = prev.1
         route 1,0.fifo1 = pipe[1,0].1       ; one-pixel delay tap
         node  1,0: add in1, fifo1 > out     ; x[k] + x[k-1]
         route 2,0.in1 = prev.0
         node  2,0: asr in1, #1 > out        ; >> 1
         capture 3 = lane 0
         .code
           wait {wait}
           halt
        ",
        wait = pixels + 32
    )
}

/// Report of one prototype run.
#[derive(Clone, Debug)]
pub struct ApexReport {
    /// Ring core cycles until the controller halted.
    pub core_cycles: u64,
    /// Words written to the VIDEO memory.
    pub video_words: usize,
    /// Machine statistics.
    pub stats: systolic_ring_core::Stats,
}

/// The complete Figure 6 system.
#[derive(Clone, Debug)]
pub struct ApexPrototype {
    machine: RingMachine,
    prg: WordMemory,
    image: WordMemory,
    video: WordMemory,
    vga: VgaController,
    width: usize,
    height: usize,
    output_switch: usize,
    output_port: usize,
    latency: usize,
    slack: u64,
}

impl ApexPrototype {
    /// Builds the board: assembles the demo program into PRG, preloads
    /// IMAGE with `input`, zeroes VIDEO.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadParams`] if the demo program fails to
    /// assemble (a bug) or the image is empty.
    pub fn new(input: &Image) -> Result<Self, KernelError> {
        let pixels = input.width() * input.height();
        let object = assemble(&demo_source(pixels))
            .map_err(|e| KernelError::BadParams(format!("demo assembly: {e}")))?;
        ApexPrototype::with_program(
            input,
            BoardProgram {
                object,
                output_switch: 3,
                output_port: 0,
                latency: DEMO_LATENCY,
                slack: 128,
            },
        )
    }

    /// Builds the board around a user program: any assembled object whose
    /// fabric reads the image stream from switch 0 port 0 and captures its
    /// result per `program`'s I/O contract.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadParams`] if the image is empty.
    pub fn with_program(input: &Image, program: BoardProgram) -> Result<Self, KernelError> {
        let pixels = input.width() * input.height();
        if pixels == 0 {
            return Err(KernelError::BadParams("empty image".into()));
        }
        let object = program.object;
        // Object code lives in PRG as bytes packed into 16-bit words.
        let bytes = object.to_bytes();
        let mut prg_words: Vec<Word16> = Vec::with_capacity(bytes.len().div_ceil(2) + 1);
        prg_words.push(Word16::new(bytes.len() as u16));
        for pair in bytes.chunks(2) {
            let lo = pair[0] as u16;
            let hi = *pair.get(1).unwrap_or(&0) as u16;
            prg_words.push(Word16::new(lo | hi << 8));
        }
        let image_mem =
            WordMemory::preloaded("IMAGE", input.data().iter().map(|&p| Word16::from_i16(p)));
        Ok(ApexPrototype {
            machine: RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER),
            prg: WordMemory::preloaded("PRG", prg_words),
            image: image_mem,
            video: WordMemory::new("VIDEO", pixels),
            vga: VgaController::new(input.width(), input.height()),
            width: input.width(),
            height: input.height(),
            output_switch: program.output_switch,
            output_port: program.output_port,
            latency: program.latency,
            slack: program.slack,
        })
    }

    /// Reads the object code back out of the PRG memory.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError::BadParams`] if PRG does not hold a valid
    /// object (corrupted board).
    pub fn boot_object(&self) -> Result<Object, KernelError> {
        let len = self.prg.read(0).bits() as usize;
        let mut bytes = Vec::with_capacity(len);
        for addr in 0..len.div_ceil(2) {
            let word = self.prg.read(1 + addr).bits();
            bytes.push((word & 0xff) as u8);
            if bytes.len() < len {
                bytes.push((word >> 8) as u8);
            }
        }
        Object::from_bytes(&bytes).map_err(|e| KernelError::BadParams(format!("PRG contents: {e}")))
    }

    /// Boots and runs the demo: loads the PRG object, streams IMAGE
    /// through the ring, fills VIDEO.
    ///
    /// # Errors
    ///
    /// Returns [`KernelError`] on load or machine faults.
    pub fn run(&mut self) -> Result<ApexReport, KernelError> {
        let object = self.boot_object()?;
        self.machine.load(&object)?;
        self.machine
            .open_sink(self.output_switch, self.output_port)?;
        hostcpu::dma_to_stream(&mut self.machine, &self.image, 0..self.image.len(), 0, 0)?;
        let pixels = self.width * self.height;
        let budget = pixels as u64 + self.slack;
        let core_cycles = self
            .machine
            .run_until_halt(budget)
            .map_err(KernelError::Sim)?;
        // Collect the sink, dropping the pipeline warm-up prefix.
        let sink = self
            .machine
            .take_sink(self.output_switch, self.output_port)?;
        let produced: Vec<Word16> = sink
            .iter()
            .skip(self.latency)
            .take(pixels)
            .copied()
            .collect();
        if produced.len() < pixels {
            return Err(KernelError::Sim(SimError::CycleLimit { limit: budget }));
        }
        self.video.write_block(0, &produced);
        Ok(ApexReport {
            core_cycles,
            video_words: produced.len(),
            stats: self.machine.stats().clone(),
        })
    }

    /// The VIDEO memory (the framebuffer).
    pub fn video(&self) -> &WordMemory {
        &self.video
    }

    /// Scans one VGA frame and encodes it as a binary PGM image — the
    /// monitor picture.
    pub fn scan_pgm(&mut self) -> Vec<u8> {
        let frame = self.vga.scan_frame(&self.video);
        ppm::encode_pgm(self.width, self.height, &frame)
    }

    /// Scans one VGA frame and encodes it as a binary PPM image.
    pub fn scan_ppm(&mut self) -> Vec<u8> {
        let frame = self.vga.scan_frame(&self.video);
        ppm::encode_ppm(self.width, self.height, &frame)
    }

    /// The golden model of the demo computation, for validation:
    /// `y[k] = (x[k] + x[k-1]) >> 1` over the raster scan with `x[-1]=0`.
    pub fn golden(input: &Image) -> Vec<i16> {
        let data = input.data();
        (0..data.len())
            .map(|k| {
                let prev = if k == 0 { 0 } else { data[k - 1] as i32 };
                ((data[k] as i32 + prev) >> 1) as i16
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prototype_runs_and_matches_golden() {
        let input = Image::textured(16, 16, 42);
        let mut board = ApexPrototype::new(&input).unwrap();
        let report = board.run().unwrap();
        assert_eq!(report.video_words, 256);
        let expect = ApexPrototype::golden(&input);
        let got: Vec<i16> = board.video().words().iter().map(|w| w.as_i16()).collect();
        assert_eq!(got, expect);
        // Roughly one pixel per cycle plus the wait margin.
        assert!(report.core_cycles < 256 + 64);
    }

    #[test]
    fn object_survives_the_prg_round_trip() {
        let input = Image::textured(8, 8, 1);
        let board = ApexPrototype::new(&input).unwrap();
        let object = board.boot_object().unwrap();
        assert_eq!(object.geometry, Some(RingGeometry::RING_8));
        assert!(!object.code.is_empty());
        assert!(!object.preload.is_empty());
    }

    #[test]
    fn monitor_output_is_a_valid_pgm() {
        let input = Image::textured(8, 8, 2);
        let mut board = ApexPrototype::new(&input).unwrap();
        board.run().unwrap();
        let pgm = board.scan_pgm();
        assert!(pgm.starts_with(b"P5\n8 8\n255\n"));
        assert_eq!(pgm.len(), b"P5\n8 8\n255\n".len() + 64);
        let ppm = board.scan_ppm();
        assert!(ppm.starts_with(b"P6\n"));
    }

    #[test]
    fn rejects_empty_images() {
        let empty = Image::zeros(0, 0);
        assert!(ApexPrototype::new(&empty).is_err());
    }

    #[test]
    fn user_programs_run_on_the_board() {
        // A custom program: video inversion y = 255 - x, captured at
        // switch 1 (one Dnode deep).
        let input = Image::textured(12, 12, 4);
        let pixels = input.width() * input.height();
        let source = format!(
            ".ring 4x2
             route 0,0.in1 = host.0
             node 0,0: sub #255, in1 > out
             capture 1 = lane 0
             .code
               wait {}
               halt
            ",
            pixels + 16
        );
        let object = assemble(&source).unwrap();
        let mut board = ApexPrototype::with_program(
            &input,
            BoardProgram {
                object,
                output_switch: 1,
                output_port: 0,
                latency: 2,
                slack: 64,
            },
        )
        .unwrap();
        board.run().unwrap();
        let got: Vec<i16> = board.video().words().iter().map(|w| w.as_i16()).collect();
        let expect: Vec<i16> = input.data().iter().map(|&p| 255 - p).collect();
        assert_eq!(got, expect);
    }
}
