//! On-board word memories (the PRG, IMAGE and VIDEO memories of Figure 6).

use systolic_ring_isa::Word16;

/// A simple 16-bit-word memory with bounds-checked access.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WordMemory {
    name: &'static str,
    words: Vec<Word16>,
}

impl WordMemory {
    /// A zeroed memory of `size` words.
    pub fn new(name: &'static str, size: usize) -> Self {
        WordMemory {
            name,
            words: vec![Word16::ZERO; size],
        }
    }

    /// A memory preloaded from `data` (its length sets the size).
    pub fn preloaded(name: &'static str, data: impl IntoIterator<Item = Word16>) -> Self {
        WordMemory {
            name,
            words: data.into_iter().collect(),
        }
    }

    /// The memory's display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Capacity in words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` if the memory has zero capacity.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Reads word `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn read(&self, addr: usize) -> Word16 {
        assert!(
            addr < self.words.len(),
            "{}: read at {addr} out of range",
            self.name
        );
        self.words[addr]
    }

    /// Writes word `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn write(&mut self, addr: usize, value: Word16) {
        assert!(
            addr < self.words.len(),
            "{}: write at {addr} out of range",
            self.name
        );
        self.words[addr] = value;
    }

    /// The full contents.
    pub fn words(&self) -> &[Word16] {
        &self.words
    }

    /// Bulk-writes `data` starting at `addr`.
    ///
    /// # Panics
    ///
    /// Panics if the write leaves the memory.
    pub fn write_block(&mut self, addr: usize, data: &[Word16]) {
        assert!(
            addr + data.len() <= self.words.len(),
            "{}: block write of {} words at {addr} out of range",
            self.name,
            data.len()
        );
        self.words[addr..addr + data.len()].copy_from_slice(data);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_round_trip() {
        let mut mem = WordMemory::new("TEST", 16);
        assert_eq!(mem.len(), 16);
        mem.write(3, Word16::from_i16(-5));
        assert_eq!(mem.read(3), Word16::from_i16(-5));
        assert_eq!(mem.read(0), Word16::ZERO);
    }

    #[test]
    fn preloaded_and_block_write() {
        let mut mem = WordMemory::preloaded("P", (0..4).map(Word16::new));
        assert_eq!(mem.len(), 4);
        mem.write_block(1, &[Word16::new(9), Word16::new(8)]);
        let values: Vec<u16> = mem.words().iter().map(|w| w.bits()).collect();
        assert_eq!(values, vec![0, 9, 8, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_read_panics() {
        WordMemory::new("T", 2).read(2);
    }
}
