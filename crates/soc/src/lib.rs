//! SoC substrate around the Systolic Ring: the paper's system context.
//!
//! * [`mem`] — the PRG / IMAGE / VIDEO word memories of the APEX board,
//! * [`vga`] — the synthesized VGA controller model (standard 640x480@60
//!   timing, framebuffer scan-out),
//! * [`ppm`] — the "monitor": PGM/PPM encoders for scanned frames,
//! * [`hostcpu`] — host-CPU DMA duties (memory <-> ring streams),
//! * [`apex`] — the complete Figure 6 prototype: assembled object code in
//!   PRG, image processing on the Ring-8, results on the VGA output.

pub mod apex;
pub mod hostcpu;
pub mod mem;
pub mod ppm;
pub mod vga;

pub use apex::{ApexPrototype, ApexReport, BoardProgram};
