//! VGA controller model: scans the VIDEO memory out as frames.
//!
//! The APEX prototype (Figure 6) includes a synthesized VGA controller
//! displaying the VIDEO memory on a monitor. We model the standard
//! 640x480@60 timing (25.175 MHz pixel clock, 800x525 total slots) and
//! rasterize the framebuffer into a grayscale image — the monitor becomes
//! a PPM file.

use systolic_ring_isa::Word16;

use crate::mem::WordMemory;

/// Standard 640x480@60 VGA timing constants.
pub mod timing {
    /// Visible pixels per line.
    pub const H_VISIBLE: u64 = 640;
    /// Total pixel slots per line (front/back porch + sync included).
    pub const H_TOTAL: u64 = 800;
    /// Visible lines per frame.
    pub const V_VISIBLE: u64 = 480;
    /// Total lines per frame.
    pub const V_TOTAL: u64 = 525;
    /// Pixel clock in Hz.
    pub const PIXEL_CLOCK_HZ: u64 = 25_175_000;
}

/// A VGA controller bound to a framebuffer geometry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VgaController {
    fb_width: usize,
    fb_height: usize,
    frames_scanned: u64,
}

impl VgaController {
    /// A controller for a `fb_width` x `fb_height` framebuffer (displayed
    /// at the top-left of the 640x480 raster).
    pub fn new(fb_width: usize, fb_height: usize) -> Self {
        assert!(
            fb_width <= timing::H_VISIBLE as usize,
            "framebuffer too wide"
        );
        assert!(
            fb_height <= timing::V_VISIBLE as usize,
            "framebuffer too tall"
        );
        VgaController {
            fb_width,
            fb_height,
            frames_scanned: 0,
        }
    }

    /// Pixel-clock cycles per full frame.
    pub fn cycles_per_frame(&self) -> u64 {
        timing::H_TOTAL * timing::V_TOTAL
    }

    /// Frames scanned so far.
    pub fn frames_scanned(&self) -> u64 {
        self.frames_scanned
    }

    /// Scans one frame out of `video`, returning 8-bit grayscale pixels
    /// (row-major, `fb_width * fb_height`).
    ///
    /// 16-bit video words map to gray by clamping to `0..=255`.
    ///
    /// # Panics
    ///
    /// Panics if `video` is smaller than the framebuffer.
    pub fn scan_frame(&mut self, video: &WordMemory) -> Vec<u8> {
        assert!(
            video.len() >= self.fb_width * self.fb_height,
            "VIDEO memory smaller than the framebuffer"
        );
        let mut out = Vec::with_capacity(self.fb_width * self.fb_height);
        for y in 0..self.fb_height {
            for x in 0..self.fb_width {
                let word: Word16 = video.read(y * self.fb_width + x);
                out.push(word.as_i16().clamp(0, 255) as u8);
            }
        }
        self.frames_scanned += 1;
        out
    }

    /// Core-clock cycles spent scanning `frames` frames when the core runs
    /// at `core_mhz` (for co-simulation bookkeeping).
    pub fn core_cycles_for_frames(&self, frames: u64, core_mhz: f64) -> u64 {
        let seconds =
            frames as f64 * self.cycles_per_frame() as f64 / timing::PIXEL_CLOCK_HZ as f64;
        (seconds * core_mhz * 1.0e6).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_timing_is_standard_vga() {
        let vga = VgaController::new(64, 64);
        assert_eq!(vga.cycles_per_frame(), 800 * 525);
        // ~60 Hz refresh.
        let fps = timing::PIXEL_CLOCK_HZ as f64 / vga.cycles_per_frame() as f64;
        assert!((59.0..61.0).contains(&fps), "fps = {fps:.2}");
    }

    #[test]
    fn scan_clamps_to_8_bit() {
        let mut video = WordMemory::new("VIDEO", 4);
        video.write(0, Word16::from_i16(-5));
        video.write(1, Word16::from_i16(0));
        video.write(2, Word16::from_i16(128));
        video.write(3, Word16::from_i16(300));
        let mut vga = VgaController::new(2, 2);
        assert_eq!(vga.scan_frame(&video), vec![0, 0, 128, 255]);
        assert_eq!(vga.frames_scanned(), 1);
    }

    #[test]
    fn core_cycle_bookkeeping() {
        let vga = VgaController::new(64, 64);
        // One frame at 200 MHz core clock: (800*525/25.175e6) * 200e6.
        let cycles = vga.core_cycles_for_frames(1, 200.0);
        assert!(
            (3_300_000..3_400_000).contains(&cycles),
            "cycles = {cycles}"
        );
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn rejects_oversized_framebuffers() {
        VgaController::new(1000, 10);
    }
}
