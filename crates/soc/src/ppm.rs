//! Minimal PPM/PGM writers — the "monitor" output of the prototype.

/// Encodes 8-bit grayscale pixels as a binary PGM (P5) image.
///
/// # Panics
///
/// Panics if `pixels.len() != width * height`.
pub fn encode_pgm(width: usize, height: usize, pixels: &[u8]) -> Vec<u8> {
    assert_eq!(pixels.len(), width * height, "pixel count mismatch");
    let mut out = format!("P5\n{width} {height}\n255\n").into_bytes();
    out.extend_from_slice(pixels);
    out
}

/// Encodes 8-bit grayscale pixels as a binary PPM (P6) image (gray
/// replicated to RGB).
///
/// # Panics
///
/// Panics if `pixels.len() != width * height`.
pub fn encode_ppm(width: usize, height: usize, pixels: &[u8]) -> Vec<u8> {
    assert_eq!(pixels.len(), width * height, "pixel count mismatch");
    let mut out = format!("P6\n{width} {height}\n255\n").into_bytes();
    for &p in pixels {
        out.extend_from_slice(&[p, p, p]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pgm_layout() {
        let img = encode_pgm(2, 2, &[0, 64, 128, 255]);
        assert!(img.starts_with(b"P5\n2 2\n255\n"));
        assert_eq!(&img[img.len() - 4..], &[0, 64, 128, 255]);
    }

    #[test]
    fn ppm_replicates_channels() {
        let img = encode_ppm(1, 1, &[7]);
        assert!(img.starts_with(b"P6\n1 1\n255\n"));
        assert_eq!(&img[img.len() - 3..], &[7, 7, 7]);
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn size_is_checked() {
        encode_pgm(2, 2, &[1, 2, 3]);
    }
}
