//! Admission control for a shared simulation pool.
//!
//! A multi-tenant service in front of the batch runner needs to say *no*
//! early: an unbounded queue converts overload into unbounded latency and
//! memory, which is strictly worse than an honest rejection the client
//! can retry against. [`AdmissionQueue`] is that front door:
//!
//! * **bounded depth** — the queue holds at most `queue_capacity` jobs
//!   across all tenants; past that, [`Admission::Rejected`] with
//!   [`RejectReason::QueueFull`],
//! * **per-tenant quotas** — each tenant may have at most `tenant_quota`
//!   jobs *outstanding* (queued or running), so one tenant flooding the
//!   door cannot starve the rest even below the global cap,
//! * **backpressure hints** — every rejection carries a deterministic
//!   `retry_after_ms` derived from the queue state and the configured
//!   per-job service-time estimate, so well-behaved clients back off
//!   proportionally to the actual congestion (429-with-Retry-After
//!   semantics at the transport layer),
//! * **two service classes** — [`JobClass::Interactive`] jobs dequeue
//!   before [`JobClass::Batch`] jobs (FIFO within a class); the scheduler
//!   additionally uses a positive interactive queue depth as its signal
//!   to preempt running batch work,
//! * **drain** — [`AdmissionQueue::drain`] flips the queue into a
//!   terminal draining state: everything still queued is handed back for
//!   client-visible rejection and all further offers are refused with
//!   [`RejectReason::Draining`], the graceful-shutdown contract (no job
//!   is ever silently dropped).
//!
//! The queue stores `(ticket, tenant, class)` triples, not job payloads:
//! the caller keeps its own `ticket → job` map. That keeps this type free
//! of job lifetimes and lets the scheduler pull entries out of order when
//! packing compatible jobs into fused lane groups
//! ([`AdmissionQueue::take_where`]).

use std::collections::VecDeque;

/// Service class of a submitted job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobClass {
    /// Latency-sensitive; dequeues first and preempts running batch work.
    Interactive,
    /// Throughput work; runs when no interactive job is waiting.
    Batch,
}

impl std::fmt::Display for JobClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            JobClass::Interactive => "interactive",
            JobClass::Batch => "batch",
        })
    }
}

/// Why an offer was refused.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RejectReason {
    /// The global queue is at capacity.
    QueueFull,
    /// The tenant is at its outstanding-jobs quota.
    TenantQuota,
    /// The service is draining for shutdown.
    Draining,
}

impl std::fmt::Display for RejectReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RejectReason::QueueFull => "queue full",
            RejectReason::TenantQuota => "tenant quota exceeded",
            RejectReason::Draining => "service draining",
        })
    }
}

/// The verdict on one offered job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Admitted and queued.
    Admitted {
        /// Caller's handle for this entry (unique per queue).
        ticket: u64,
        /// Queue depth after admission.
        depth: usize,
    },
    /// Refused; try again after the hint.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Deterministic backoff hint derived from queue congestion.
        retry_after_ms: u64,
    },
}

/// One queued entry, handed back by the take methods.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct QueuedJob {
    /// The ticket issued at admission.
    pub ticket: u64,
    /// Owning tenant.
    pub tenant: String,
    /// Service class.
    pub class: JobClass,
}

/// Queue tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum queued jobs across all tenants.
    pub queue_capacity: usize,
    /// Maximum outstanding (queued + running) jobs per tenant.
    pub tenant_quota: usize,
    /// Per-job service-time estimate feeding the retry-after hints (ms).
    pub est_job_ms: u64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            queue_capacity: 64,
            tenant_quota: 16,
            est_job_ms: 20,
        }
    }
}

/// Counters the service exports and the bench records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Jobs admitted.
    pub admitted: u64,
    /// Rejections with [`RejectReason::QueueFull`].
    pub rejected_full: u64,
    /// Rejections with [`RejectReason::TenantQuota`].
    pub rejected_quota: u64,
    /// Rejections with [`RejectReason::Draining`].
    pub rejected_draining: u64,
    /// High-water mark of the queue depth.
    pub max_depth: usize,
}

impl AdmissionStats {
    /// Total rejections across all reasons.
    pub fn rejected(&self) -> u64 {
        self.rejected_full + self.rejected_quota + self.rejected_draining
    }
}

/// The admission front door. Not thread-safe by itself — the service
/// wraps it in its scheduler mutex.
#[derive(Clone, Debug)]
pub struct AdmissionQueue {
    config: AdmissionConfig,
    next_ticket: u64,
    interactive: VecDeque<QueuedJob>,
    batch: VecDeque<QueuedJob>,
    /// (tenant, outstanding) — linear scan; tenant counts are tiny.
    outstanding: Vec<(String, usize)>,
    draining: bool,
    stats: AdmissionStats,
}

impl AdmissionQueue {
    /// An empty queue with the given knobs.
    pub fn new(config: AdmissionConfig) -> AdmissionQueue {
        AdmissionQueue {
            config,
            next_ticket: 1,
            interactive: VecDeque::new(),
            batch: VecDeque::new(),
            outstanding: Vec::new(),
            draining: false,
            stats: AdmissionStats::default(),
        }
    }

    /// Jobs currently queued (both classes).
    pub fn depth(&self) -> usize {
        self.interactive.len() + self.batch.len()
    }

    /// Interactive jobs currently queued — the scheduler's preemption
    /// signal.
    pub fn interactive_waiting(&self) -> usize {
        self.interactive.len()
    }

    /// A tenant's outstanding (queued + running) jobs.
    pub fn outstanding(&self, tenant: &str) -> usize {
        self.outstanding
            .iter()
            .find(|(t, _)| t == tenant)
            .map_or(0, |(_, n)| *n)
    }

    /// `true` once [`AdmissionQueue::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining
    }

    /// The exported counters.
    pub fn stats(&self) -> &AdmissionStats {
        &self.stats
    }

    /// Offers a job for admission. On success the job is queued and the
    /// tenant's outstanding count rises; the caller files its payload
    /// under the returned ticket. On rejection nothing is retained and
    /// the hint tells the client how long to back off: congestion-
    /// proportional for a full queue (jobs ahead × the per-job service
    /// estimate), quota-proportional for a tenant at its cap, and one
    /// estimate flat while draining (time enough for a replacement
    /// instance to come up — there is nothing to wait out locally).
    pub fn offer(&mut self, tenant: &str, class: JobClass) -> Admission {
        let est = self.config.est_job_ms.max(1);
        if self.draining {
            self.stats.rejected_draining += 1;
            return Admission::Rejected {
                reason: RejectReason::Draining,
                retry_after_ms: est,
            };
        }
        if self.outstanding(tenant) >= self.config.tenant_quota {
            self.stats.rejected_quota += 1;
            return Admission::Rejected {
                reason: RejectReason::TenantQuota,
                retry_after_ms: est.saturating_mul(self.outstanding(tenant) as u64),
            };
        }
        if self.depth() >= self.config.queue_capacity {
            self.stats.rejected_full += 1;
            return Admission::Rejected {
                reason: RejectReason::QueueFull,
                retry_after_ms: est.saturating_mul(self.depth() as u64),
            };
        }
        let ticket = self.next_ticket;
        self.next_ticket += 1;
        let entry = QueuedJob {
            ticket,
            tenant: tenant.to_owned(),
            class,
        };
        match class {
            JobClass::Interactive => self.interactive.push_back(entry),
            JobClass::Batch => self.batch.push_back(entry),
        }
        match self.outstanding.iter_mut().find(|(t, _)| t == tenant) {
            Some((_, n)) => *n += 1,
            None => self.outstanding.push((tenant.to_owned(), 1)),
        }
        self.stats.admitted += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.depth());
        Admission::Admitted {
            ticket,
            depth: self.depth(),
        }
    }

    /// Dequeues the next job: interactive before batch, FIFO within a
    /// class. The tenant's outstanding count stays up (the job is now
    /// running) until [`AdmissionQueue::complete`].
    pub fn take(&mut self) -> Option<QueuedJob> {
        self.interactive
            .pop_front()
            .or_else(|| self.batch.pop_front())
    }

    /// Dequeues the first job (in dequeue priority order) whose ticket
    /// satisfies `want` — the scheduler's lane-packing scan, pulling
    /// compatible jobs from *different* queue positions (and different
    /// tenants) into one fused group.
    pub fn take_where(&mut self, mut want: impl FnMut(u64) -> bool) -> Option<QueuedJob> {
        for queue in [&mut self.interactive, &mut self.batch] {
            if let Some(pos) = queue.iter().position(|e| want(e.ticket)) {
                return queue.remove(pos);
            }
        }
        None
    }

    /// Marks one of `tenant`'s outstanding jobs terminal (completed,
    /// faulted, or rejected at drain), releasing its quota slot.
    pub fn complete(&mut self, tenant: &str) {
        if let Some(pos) = self.outstanding.iter().position(|(t, _)| t == tenant) {
            let (_, n) = &mut self.outstanding[pos];
            *n -= 1;
            if *n == 0 {
                self.outstanding.swap_remove(pos);
            }
        }
    }

    /// Enters the terminal draining state: refuses all future offers and
    /// returns everything still queued so the caller can reject each job
    /// client-visibly. Quota slots of the returned entries are released
    /// here; running jobs are untouched (the scheduler checkpoints
    /// those).
    pub fn drain(&mut self) -> Vec<QueuedJob> {
        self.draining = true;
        let evicted: Vec<QueuedJob> = self
            .interactive
            .drain(..)
            .chain(self.batch.drain(..))
            .collect();
        for entry in &evicted {
            self.complete(&entry.tenant);
        }
        evicted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> AdmissionConfig {
        AdmissionConfig {
            queue_capacity: 4,
            tenant_quota: 2,
            est_job_ms: 10,
        }
    }

    #[test]
    fn admits_until_quota_then_rejects_with_growing_hints() {
        let mut q = AdmissionQueue::new(config());
        assert!(matches!(
            q.offer("alice", JobClass::Batch),
            Admission::Admitted {
                ticket: 1,
                depth: 1
            }
        ));
        assert!(matches!(
            q.offer("alice", JobClass::Batch),
            Admission::Admitted {
                ticket: 2,
                depth: 2
            }
        ));
        // Third offer trips the per-tenant quota, not the global cap.
        match q.offer("alice", JobClass::Batch) {
            Admission::Rejected {
                reason: RejectReason::TenantQuota,
                retry_after_ms,
            } => assert_eq!(retry_after_ms, 20),
            other => panic!("expected quota rejection, got {other:?}"),
        }
        // Other tenants are unaffected by alice's quota.
        assert!(matches!(
            q.offer("bob", JobClass::Batch),
            Admission::Admitted { .. }
        ));
        assert!(matches!(
            q.offer("carol", JobClass::Batch),
            Admission::Admitted { .. }
        ));
        // The global cap now rejects even a fresh tenant, hint scaled by
        // the jobs ahead of it.
        match q.offer("dave", JobClass::Batch) {
            Admission::Rejected {
                reason: RejectReason::QueueFull,
                retry_after_ms,
            } => assert_eq!(retry_after_ms, 40),
            other => panic!("expected full rejection, got {other:?}"),
        }
        assert_eq!(q.stats().admitted, 4);
        assert_eq!(q.stats().rejected(), 2);
        assert_eq!(q.stats().max_depth, 4);
    }

    #[test]
    fn interactive_dequeues_before_batch() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        q.offer("a", JobClass::Batch);
        q.offer("b", JobClass::Interactive);
        q.offer("c", JobClass::Batch);
        q.offer("d", JobClass::Interactive);
        assert_eq!(q.interactive_waiting(), 2);
        let order: Vec<String> = std::iter::from_fn(|| q.take()).map(|e| e.tenant).collect();
        assert_eq!(order, ["b", "d", "a", "c"]);
    }

    #[test]
    fn quota_slots_release_on_complete_not_on_take() {
        let mut q = AdmissionQueue::new(config());
        q.offer("alice", JobClass::Batch);
        q.offer("alice", JobClass::Batch);
        let job = q.take().expect("queued");
        // Running still counts against the quota.
        assert!(matches!(
            q.offer("alice", JobClass::Batch),
            Admission::Rejected {
                reason: RejectReason::TenantQuota,
                ..
            }
        ));
        q.complete(&job.tenant);
        assert!(matches!(
            q.offer("alice", JobClass::Batch),
            Admission::Admitted { .. }
        ));
    }

    #[test]
    fn take_where_pulls_compatible_jobs_across_tenants() {
        let mut q = AdmissionQueue::new(AdmissionConfig::default());
        q.offer("a", JobClass::Batch); // ticket 1
        q.offer("b", JobClass::Batch); // ticket 2
        q.offer("c", JobClass::Batch); // ticket 3
                                       // Pack tickets 1 and 3, skipping the incompatible middle entry.
        let first = q.take_where(|t| t % 2 == 1).expect("ticket 1");
        let second = q.take_where(|t| t % 2 == 1).expect("ticket 3");
        assert_eq!((first.ticket, second.ticket), (1, 3));
        assert_eq!(q.take().expect("ticket 2 remains").ticket, 2);
    }

    #[test]
    fn drain_evicts_the_queue_and_refuses_new_offers() {
        let mut q = AdmissionQueue::new(config());
        q.offer("alice", JobClass::Batch);
        q.offer("bob", JobClass::Interactive);
        let evicted = q.drain();
        assert_eq!(evicted.len(), 2);
        assert!(q.is_draining());
        assert_eq!(q.depth(), 0);
        // Evicted quota slots were released; offers are still refused.
        assert_eq!(q.outstanding("alice"), 0);
        match q.offer("alice", JobClass::Batch) {
            Admission::Rejected {
                reason: RejectReason::Draining,
                retry_after_ms,
            } => assert_eq!(retry_after_ms, 10),
            other => panic!("expected draining rejection, got {other:?}"),
        }
        assert_eq!(q.stats().rejected_draining, 1);
    }
}
