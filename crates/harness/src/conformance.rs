//! Multi-tier ISA conformance runner over the shipped program corpus.
//!
//! Every program under `programs/` — plain `.sr` assembly or literate
//! `.sr.md` markdown — carries `;!` expectation directives (see
//! [`systolic_ring_isa::expect`]) that make it self-checking. This module
//! turns the corpus into a conformance suite:
//!
//! 1. **discover** — walk a directory for `.sr` / `.sr.md` sources and
//!    assemble each one (literate extraction included),
//! 2. **lint gate** — run `ringlint` over every object and fail the case
//!    on any warning-or-worse finding, mirroring the CI gate,
//! 3. **execute** — run the program on each declared execution tier
//!    (default: slow, decoded, fused and aot) through the existing
//!    [`Job`] machinery, binding the directive inputs and opening the
//!    expected sinks,
//! 4. **judge** — check every sink expectation, the simulated-cycle
//!    budget, and **cross-tier bit-equality**: all tiers must produce
//!    bit-identical sink streams and identical cycle counts, which is the
//!    architectural contract the fast paths are sold on.
//!
//! The machine-readable `BENCH_conformance.json` emission lives in the
//! bench crate (`systolic_ring_bench::record::conformance_file`), which
//! converts a [`ConformanceReport`] into the shared versioned
//! `systolic-ring-bench` record schema consumed by the `srbench-compare`
//! CI regression gate.

use std::path::{Path, PathBuf};

use systolic_ring_core::{MachineParams, Stats};
use systolic_ring_isa::expect::{Expectations, SinkMatch, Tier};
use systolic_ring_isa::object::Object;
use systolic_ring_isa::{RingGeometry, Word16};
use systolic_ring_lint::{lint_object, Severity};

use crate::job::{self, CycleBudget, Job};

/// Default `UntilHalt` bound when a program declares no `;! cycles`
/// budget.
pub const DEFAULT_MAX_CYCLES: u64 = 20_000;

/// The [`MachineParams`] for one execution tier: architecturally the
/// paper machine, with the internal fast paths toggled per tier.
pub fn tier_params(tier: Tier) -> MachineParams {
    match tier {
        Tier::Slow => MachineParams::PAPER
            .with_decode_cache(false)
            .with_fused(false),
        Tier::Decoded => MachineParams::PAPER
            .with_decode_cache(true)
            .with_fused(false),
        Tier::Fused => MachineParams::PAPER
            .with_decode_cache(true)
            .with_fused(true),
        Tier::Aot => MachineParams::PAPER
            .with_decode_cache(true)
            .with_fused(true)
            .with_aot(true),
    }
}

/// One discovered program: source path, assembled object and parsed
/// expectations.
#[derive(Clone, Debug)]
pub struct ConformanceCase {
    /// File name (e.g. `fir3.sr` or `iir_biquad.sr.md`).
    pub name: String,
    /// Full source path.
    pub path: PathBuf,
    /// `true` for literate `.sr.md` sources.
    pub literate: bool,
    /// The assembled object.
    pub object: Object,
    /// The `;!` expectation block.
    pub expectations: Expectations,
}

/// Loads and assembles one program source (literate-aware).
pub fn load_case(path: &Path) -> Result<ConformanceCase, String> {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let (object, expectations) = systolic_ring_asm::assemble_source(&name, &text)
        .map_err(|e| format!("{}:{e}", path.display()))?;
    Ok(ConformanceCase {
        literate: systolic_ring_asm::is_literate_name(&name),
        name,
        path: path.to_path_buf(),
        object,
        expectations,
    })
}

/// Walks `dir` for `.sr` and `.sr.md` program sources, assembles each
/// and returns the cases sorted by file name (deterministic order).
pub fn discover(dir: &Path) -> Result<Vec<ConformanceCase>, String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            let name = p.file_name().map(|n| n.to_string_lossy().into_owned());
            name.is_some_and(|n| n.ends_with(".sr") || n.ends_with(".sr.md"))
        })
        .collect();
    paths.sort();
    paths.iter().map(|p| load_case(p)).collect()
}

/// The outcome of one program on one tier.
#[derive(Clone, Debug)]
pub struct TierResult {
    /// The tier this row describes.
    pub tier: Tier,
    /// Simulated cycles to halt (0 when the run faulted).
    pub cycles: u64,
    /// Final machine counters — how the tier actually executed (which
    /// engines engaged, compiled coverage); zeroed when the run faulted.
    pub stats: Stats,
    /// Drained sink streams, in [`Expectations::sink_ports`] order.
    pub outputs: Vec<Vec<i16>>,
    /// Everything that went wrong on this tier (empty = pass).
    pub failures: Vec<String>,
}

impl TierResult {
    /// `true` when the tier met every expectation.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// The outcome of one program across its tier sweep.
#[derive(Clone, Debug)]
pub struct CaseResult {
    /// Program file name.
    pub name: String,
    /// `true` for literate `.sr.md` sources.
    pub literate: bool,
    /// The ring geometry the program ran on (its declared `.ring`, or
    /// the Ring-8 default).
    pub geometry: RingGeometry,
    /// Per-tier outcomes, in declared-tier order.
    pub tiers: Vec<TierResult>,
    /// Case-level failures: lint-gate findings, missing expectations,
    /// cross-tier divergence.
    pub failures: Vec<String>,
}

impl CaseResult {
    /// `true` when the lint gate, every tier and the cross-tier check
    /// all passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty() && self.tiers.iter().all(TierResult::passed)
    }

    /// Every failure across the case, prefixed with the program name.
    pub fn all_failures(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .failures
            .iter()
            .map(|f| format!("{}: {f}", self.name))
            .collect();
        for tier in &self.tiers {
            out.extend(
                tier.failures
                    .iter()
                    .map(|f| format!("{} [{}]: {f}", self.name, tier.tier)),
            );
        }
        out
    }
}

/// Abbreviates a sink stream for failure messages.
fn preview(stream: &[i16]) -> String {
    const KEEP: usize = 32;
    if stream.len() <= KEEP {
        format!("{stream:?}")
    } else {
        format!("{:?}.. ({} words)", &stream[..KEEP], stream.len())
    }
}

/// Runs one case on one tier through the [`Job`] machinery.
fn run_tier(case: &ConformanceCase, tier: Tier, sink_ports: &[(usize, usize)]) -> TierResult {
    let exp = &case.expectations;
    let geometry = case.object.geometry.unwrap_or(RingGeometry::RING_8);
    let max_cycles = exp.cycle_budget.unwrap_or(DEFAULT_MAX_CYCLES);
    let mut job = Job::from_object(
        format!("{}@{tier}", case.name),
        geometry,
        tier_params(tier),
        case.object.clone(),
        CycleBudget::UntilHalt { max_cycles },
    );
    for input in &exp.inputs {
        job = job.with_input(
            input.switch,
            input.port,
            input.words.iter().map(|&v| Word16::from_i16(v)),
        );
    }
    for &(switch, port) in sink_ports {
        job = job.with_sink(switch, port);
    }
    let (result, _recovery) = job::run(&job);
    let mut row = TierResult {
        tier,
        cycles: 0,
        stats: Stats::default(),
        outputs: Vec::new(),
        failures: Vec::new(),
    };
    let output = match result {
        Ok(output) => output,
        Err(fault) => {
            row.failures.push(fault.to_string());
            return row;
        }
    };
    row.cycles = output.cycles;
    row.stats = output.stats;
    row.outputs = output.outputs;
    if let Some(budget) = exp.cycle_budget {
        if output.cycles > budget {
            row.failures.push(format!(
                "cycle budget exceeded: {} > {budget}",
                output.cycles
            ));
        }
    }
    for sink in &exp.sinks {
        let idx = sink_ports
            .iter()
            .position(|&p| p == (sink.switch, sink.port))
            .expect("sink ports derive from expectations");
        let stream = &row.outputs[idx];
        if !sink.check(stream) {
            let how = match sink.matcher {
                SinkMatch::Exact => "expected exactly",
                SinkMatch::Contains => "expected (in order)",
            };
            row.failures.push(format!(
                "sink {}.{}: {how} {:?}, got {}",
                sink.switch,
                sink.port,
                sink.values,
                preview(stream)
            ));
        }
    }
    row
}

/// Runs one program across its declared tiers, with the lint gate first
/// and the cross-tier bit-equality check last.
pub fn run_case(case: &ConformanceCase) -> CaseResult {
    let mut result = CaseResult {
        name: case.name.clone(),
        literate: case.literate,
        geometry: case.object.geometry.unwrap_or(RingGeometry::RING_8),
        tiers: Vec::new(),
        failures: Vec::new(),
    };

    // A conformance program must be self-checking: directives are not
    // optional decoration here.
    if case.expectations.sinks.is_empty() {
        result
            .failures
            .push("no `;! expect` directive: program checks nothing".into());
    }

    // Lint gate, mirroring ci.sh: warnings are failures.
    let report = lint_object(&case.object);
    for diag in &report.diagnostics {
        if diag.severity >= Severity::Warning {
            result.failures.push(format!("ringlint: {diag}"));
        }
    }
    if !result.failures.is_empty() {
        return result;
    }

    let sink_ports = case.expectations.sink_ports();
    for &tier in case.expectations.effective_tiers() {
        result.tiers.push(run_tier(case, tier, &sink_ports));
    }

    // Static-vs-dynamic schedule cross-check: when the verify pass proved
    // a cycle bound, every tier's actual halt cycle must respect it — and
    // the bound must be *useful*, not vacuous. A `;! cycles` budget is
    // only considered discharged when the static bound covers it; a
    // budget with no bound at all means the corpus regressed out of the
    // statically-verifiable subset.
    match report.proof.cycle_bound {
        Some(bound) => {
            if let Some(budget) = case.expectations.cycle_budget {
                if bound > budget {
                    result.failures.push(format!(
                        "static cycle bound {bound} does not discharge the \
                         `;! cycles <= {budget}` budget"
                    ));
                }
            }
            for tier in result.tiers.iter().filter(|t| t.passed()) {
                if tier.cycles > bound {
                    result.failures.push(format!(
                        "static cycle bound violated: {} halted at cycle {}, \
                         past the proven bound {bound}",
                        tier.tier, tier.cycles
                    ));
                } else if bound > 4 * tier.cycles.max(1) {
                    result.failures.push(format!(
                        "static cycle bound vacuous: proven bound {bound} is \
                         more than 4x the {} halt cycle {}",
                        tier.tier, tier.cycles
                    ));
                }
            }
        }
        None => {
            if case.expectations.cycle_budget.is_some() {
                result.failures.push(
                    "`;! cycles` budget declared but the verify pass proved no \
                     static schedule bound (RL-T002/RL-T003)"
                        .into(),
                );
            }
        }
    }

    // Cross-tier bit-equality: every tier must produce the reference
    // tier's exact sink streams in the exact cycle count.
    if let Some((reference, rest)) = result.tiers.split_first() {
        if reference.passed() {
            for tier in rest.iter().filter(|t| t.passed()) {
                if tier.cycles != reference.cycles {
                    result.failures.push(format!(
                        "cross-tier divergence: {} halted at cycle {}, {} at {}",
                        reference.tier, reference.cycles, tier.tier, tier.cycles
                    ));
                }
                for (idx, &(switch, port)) in sink_ports.iter().enumerate() {
                    if tier.outputs[idx] != reference.outputs[idx] {
                        result.failures.push(format!(
                            "cross-tier divergence at sink {switch}.{port}: {} {} vs {} {}",
                            reference.tier,
                            preview(&reference.outputs[idx]),
                            tier.tier,
                            preview(&tier.outputs[idx])
                        ));
                    }
                }
            }
        }
    }
    result
}

/// The full suite outcome.
#[derive(Clone, Debug)]
pub struct ConformanceReport {
    /// Per-program outcomes, in discovery (file-name) order.
    pub cases: Vec<CaseResult>,
}

impl ConformanceReport {
    /// `true` when every case passed.
    pub fn passed(&self) -> bool {
        self.cases.iter().all(CaseResult::passed)
    }

    /// Every failure across the suite.
    pub fn failures(&self) -> Vec<String> {
        self.cases
            .iter()
            .flat_map(CaseResult::all_failures)
            .collect()
    }

    /// A human-readable result table.
    pub fn render(&self) -> String {
        let width = self
            .cases
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(8)
            .max(8);
        let mut out = format!(
            "{:width$}  {:>7} {:>8} {:>8} {:>8}  result\n",
            "program", "slow", "decoded", "fused", "aot"
        );
        for case in &self.cases {
            let mut cols = [
                String::from("-"),
                String::from("-"),
                String::from("-"),
                String::from("-"),
            ];
            for tier in &case.tiers {
                let col = match tier.tier {
                    Tier::Slow => 0,
                    Tier::Decoded => 1,
                    Tier::Fused => 2,
                    Tier::Aot => 3,
                };
                cols[col] = if tier.passed() {
                    tier.cycles.to_string()
                } else {
                    "FAIL".into()
                };
            }
            out.push_str(&format!(
                "{:width$}  {:>7} {:>8} {:>8} {:>8}  {}\n",
                case.name,
                cols[0],
                cols[1],
                cols[2],
                cols[3],
                if case.passed() { "pass" } else { "FAIL" }
            ));
        }
        out
    }
}

/// Discovers and runs every program under `dir`.
pub fn run_dir(dir: &Path) -> Result<ConformanceReport, String> {
    let cases = discover(dir)?;
    if cases.is_empty() {
        return Err(format!("{}: no .sr / .sr.md programs found", dir.display()));
    }
    Ok(ConformanceReport {
        cases: cases.iter().map(run_case).collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SELF_CHECKING: &str = "\
.ring 4x2
route 0,0.in1 = host.0
node 0,0: add in1, #5 > out
capture 1 = lane 0
.code
wait 32
halt
;! input 0.0 = 1, 2, 3
;! expect 1.0 contains 6, 7, 8
;! cycles <= 64
";

    fn case_from(source: &str) -> ConformanceCase {
        let (object, expectations) =
            systolic_ring_asm::assemble_source("inline.sr", source).expect("assembles");
        ConformanceCase {
            name: "inline.sr".into(),
            path: PathBuf::from("inline.sr"),
            literate: false,
            object,
            expectations,
        }
    }

    #[test]
    fn self_checking_program_passes_all_tiers() {
        let result = run_case(&case_from(SELF_CHECKING));
        assert!(result.passed(), "{:?}", result.all_failures());
        assert_eq!(result.tiers.len(), 4);
        let cycles: Vec<u64> = result.tiers.iter().map(|t| t.cycles).collect();
        assert!(cycles.iter().all(|&c| c == cycles[0] && c > 0));
    }

    #[test]
    fn wrong_expectation_fails_with_sink_detail() {
        let source = SELF_CHECKING.replace("contains 6, 7, 8", "contains 600");
        let result = run_case(&case_from(&source));
        assert!(!result.passed());
        let failures = result.all_failures().join("\n");
        assert!(failures.contains("sink 1.0"), "{failures}");
    }

    #[test]
    fn unchecked_program_is_rejected() {
        let source = SELF_CHECKING.replace(";! expect 1.0 contains 6, 7, 8\n", "");
        let result = run_case(&case_from(&source));
        assert!(!result.passed());
        assert!(result.failures[0].contains("checks nothing"));
    }

    #[test]
    fn tier_directive_restricts_the_sweep() {
        let source = format!("{SELF_CHECKING};! tiers fused\n");
        let result = run_case(&case_from(&source));
        assert!(result.passed(), "{:?}", result.all_failures());
        assert_eq!(result.tiers.len(), 1);
        assert_eq!(result.tiers[0].tier, Tier::Fused);
    }

    #[test]
    fn case_result_records_the_declared_geometry() {
        let result = run_case(&case_from(SELF_CHECKING));
        assert_eq!(result.geometry, RingGeometry::new(4, 2).unwrap());
    }
}
