//! A minimal wall-clock micro-benchmark timer.
//!
//! The seed repository timed its workloads with `criterion`, which cannot
//! be fetched in the offline build environment. The benches only need
//! honest medians over a handful of iterations of millisecond-scale
//! simulator runs, so this module provides exactly that on
//! `std::time::Instant`: warmup, N timed iterations, min/median/mean
//! reporting, and a `black_box` re-export to keep the optimizer honest.
//!
//! # Examples
//!
//! ```
//! use systolic_ring_harness::microbench::Group;
//!
//! let mut group = Group::new("example");
//! group.bench("sum_1k", || (0..1000u64).sum::<u64>());
//! let report = group.finish();
//! assert!(report.contains("sum_1k"));
//! ```

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Timing figures for one benchmark.
#[derive(Clone, Copy, Debug)]
pub struct Measurement {
    /// Timed iterations.
    pub iters: u32,
    /// Fastest iteration.
    pub min: Duration,
    /// Median iteration.
    pub median: Duration,
    /// Mean iteration.
    pub mean: Duration,
}

/// Times `f` over `iters` iterations after `warmup` untimed ones.
pub fn measure<T>(warmup: u32, iters: u32, mut f: impl FnMut() -> T) -> Measurement {
    let iters = iters.max(1);
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let started = Instant::now();
            black_box(f());
            started.elapsed()
        })
        .collect();
    samples.sort_unstable();
    let total: Duration = samples.iter().sum();
    Measurement {
        iters,
        min: samples[0],
        median: samples[samples.len() / 2],
        mean: total / iters,
    }
}

fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 10_000 {
        format!("{nanos} ns")
    } else if nanos < 10_000_000 {
        format!("{:.2} us", nanos as f64 / 1e3)
    } else if nanos < 10_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.2} s", nanos as f64 / 1e9)
    }
}

/// A named group of benchmarks with aligned text output.
#[derive(Clone, Debug)]
pub struct Group {
    name: String,
    warmup: u32,
    iters: u32,
    lines: Vec<String>,
}

impl Group {
    /// A group with the default 2 warmup + 10 timed iterations.
    pub fn new(name: impl Into<String>) -> Self {
        Group {
            name: name.into(),
            warmup: 2,
            iters: 10,
            lines: Vec::new(),
        }
    }

    /// Overrides the per-benchmark iteration counts.
    pub fn with_iters(mut self, warmup: u32, iters: u32) -> Self {
        self.warmup = warmup;
        self.iters = iters.max(1);
        self
    }

    /// Times `f` and records a result line.
    pub fn bench<T>(&mut self, name: &str, f: impl FnMut() -> T) -> Measurement {
        let m = measure(self.warmup, self.iters, f);
        self.lines.push(format!(
            "  {:<36} min {:>10}   median {:>10}   mean {:>10}   ({} iters)",
            name,
            fmt_duration(m.min),
            fmt_duration(m.median),
            fmt_duration(m.mean),
            m.iters
        ));
        m
    }

    /// Renders the group report.
    pub fn finish(self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.name);
        for line in &self.lines {
            let _ = writeln!(out, "{line}");
        }
        out
    }

    /// Renders and prints the group report.
    pub fn finish_print(self) {
        print!("{}", self.finish());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_reports_ordered_figures() {
        let m = measure(1, 5, || std::thread::sleep(Duration::from_micros(50)));
        assert_eq!(m.iters, 5);
        assert!(m.min >= Duration::from_micros(50));
        assert!(m.min <= m.median);
    }

    #[test]
    fn group_renders_all_lines() {
        let mut group = Group::new("g").with_iters(0, 3);
        group.bench("a", || 1 + 1);
        group.bench("b", || 2 + 2);
        let text = group.finish();
        assert!(text.starts_with("g\n"));
        assert!(text.contains("  a"));
        assert!(text.contains("  b"));
        assert!(text.contains("median"));
    }

    #[test]
    fn durations_format_across_scales() {
        assert!(fmt_duration(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_duration(Duration::from_micros(500)).ends_with("us"));
        assert!(fmt_duration(Duration::from_millis(500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(20)).ends_with(" s"));
    }
}
