//! Batch-execution engine and zero-dependency test kit for the Systolic
//! Ring simulator.
//!
//! The reproduction's evaluation sweeps many independent simulator runs —
//! kernel instances across geometries, randomized configuration fuzzing,
//! scaling tables. Every one of those runs is embarrassingly parallel:
//! a [`RingMachine`](systolic_ring_core::RingMachine) is plain owned data,
//! so independent machines can step on independent OS threads with no
//! shared state at all. This crate turns that observation into
//! infrastructure:
//!
//! * [`job`] — a [`Job`] describes one simulator run (geometry,
//!   sizing parameters, an assembled object or a raw configuration
//!   closure, input streams, cycle budget) or wraps an arbitrary
//!   self-contained workload closure,
//! * [`runner`] — a [`BatchRunner`] shards jobs
//!   across `std::thread::available_parallelism()` workers with
//!   work-stealing, captures panics and faults per job (a diverging or
//!   panicking job yields a fault report, never poisons the batch) and
//!   aggregates per-job [`Stats`](systolic_ring_core::Stats) into a
//!   batch-level summary,
//! * [`conformance`] — the four-tier ISA conformance runner: walks the
//!   literate program corpus (`programs/*.sr`, `programs/*.sr.md`),
//!   lints every object, executes it on the slow/decoded/fused/aot tiers and
//!   judges sink expectations, cycle budgets and cross-tier
//!   bit-equality (CLI: `srconform`),
//! * [`preempt`] — incremental, checkpoint-preemptible execution of the
//!   same jobs: a [`preempt::RunningJob`] advances slice by
//!   slice with bit-identical results to the single-shot path, suspends
//!   into a checkpoint and resumes later; a
//!   [`preempt::LaneGroup`] keeps many such jobs in fused
//!   lockstep — the execution layer under the multi-tenant service,
//! * [`admission`] — the service's bounded front door: per-tenant
//!   quotas, a global queue cap, interactive-over-batch priority,
//!   deterministic retry-after backpressure hints and a terminal drain
//!   state for graceful shutdown,
//! * [`campaign`] — a chaos-campaign driver sweeping fault-injection
//!   rates across a suite of golden-checked jobs and classifying every
//!   outcome (clean / recovered / detected-failed / undetected), the
//!   harness-level proof that detected faults stay detected,
//! * [`testkit`] — a deterministic SplitMix64 PRNG and the
//!   [`for_random_cases!`] helper, replacing external `rand`/`proptest`
//!   dependencies so the whole workspace builds and tests offline,
//! * [`microbench`] — a tiny `std::time::Instant` wall-clock benchmark
//!   timer, replacing `criterion` for the same reason.
//!
//! Everything here is `std`-only: no external crates, no unsafe code.
//!
//! # Examples
//!
//! Sweep a local-mode MAC program across a batch of machines:
//!
//! ```
//! use systolic_ring_harness::job::{CycleBudget, Job};
//! use systolic_ring_harness::runner::BatchRunner;
//! use systolic_ring_core::MachineParams;
//! use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
//! use systolic_ring_isa::RingGeometry;
//!
//! let jobs: Vec<Job> = (0..8)
//!     .map(|i| {
//!         Job::from_config(
//!             format!("mac-{i}"),
//!             RingGeometry::RING_8,
//!             MachineParams::PAPER,
//!             move |m| {
//!                 let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One)
//!                     .write_reg(Reg::R0);
//!                 m.set_local_program(0, &[mac])?;
//!                 m.set_mode(0, DnodeMode::Local);
//!                 Ok(())
//!             },
//!             CycleBudget::Cycles(64 + i),
//!         )
//!     })
//!     .collect();
//! let report = BatchRunner::new().run(&jobs);
//! assert_eq!(report.summary().completed, 8);
//! ```

pub mod admission;
pub mod campaign;
pub mod conformance;
pub mod job;
pub mod microbench;
pub mod preempt;
pub mod runner;
pub mod testkit;

pub use admission::{
    Admission, AdmissionConfig, AdmissionQueue, AdmissionStats, JobClass, QueuedJob, RejectReason,
};
pub use campaign::{CampaignCase, CampaignReport, CampaignRow, CaseResult};
pub use job::{
    CycleBudget, Job, JobFault, JobOutcome, JobOutput, JobReport, RecoveryStats, RetryPolicy,
};
pub use preempt::{group_eligible, groupable, preemptible, LaneGroup, RunningJob, SuspendedJob};
pub use runner::{BatchReport, BatchRunner, BatchSummary};
pub use testkit::TestRng;
