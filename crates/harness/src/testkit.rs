//! Deterministic randomness for tests, sweeps and synthetic workloads.
//!
//! The seed workspace leaned on `rand` and `proptest` from crates.io; this
//! module replaces both with a self-contained SplitMix64 generator so the
//! tier-1 command (`cargo build --release && cargo test -q`) needs no
//! network at all. Determinism is a feature, not a compromise: every
//! randomized sweep in the repository is reproducible from a printed seed,
//! and the differential oracle relies on that to replay failures.
//!
//! # Examples
//!
//! ```
//! use systolic_ring_harness::testkit::TestRng;
//!
//! let mut rng = TestRng::new(42);
//! let a = rng.range_i64(-300..300);
//! assert!((-300..300).contains(&a));
//! // Same seed, same stream.
//! assert_eq!(TestRng::new(7).next_u64(), TestRng::new(7).next_u64());
//! ```

/// The SplitMix64 state advance and output mix (Steele, Lea & Flood,
/// "Fast splittable pseudorandom number generators").
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic 64-bit PRNG (SplitMix64).
///
/// Not cryptographic; statistically solid for test-case generation and
/// synthetic DSP workloads, with a full 2^64 period and cheap seeding from
/// any `u64` (including 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform random `bool`.
    pub fn next_bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0) is empty");
        // Multiply-shift bounded generation (Lemire) with one rejection
        // pass: unbiased and branch-light.
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return hi;
            }
        }
    }

    /// A uniform value in the half-open range `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn range_i64(&mut self, range: std::ops::Range<i64>) -> i64 {
        assert!(range.start < range.end, "empty range {range:?}");
        let span = range.end.wrapping_sub(range.start) as u64;
        range.start.wrapping_add(self.below(span) as i64)
    }

    /// A uniform `i16` in the half-open range `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn i16_in(&mut self, range: std::ops::Range<i64>) -> i16 {
        self.range_i64(range) as i16
    }

    /// A uniform `i16` over the full 16-bit range.
    pub fn any_i16(&mut self) -> i16 {
        self.next_u64() as i16
    }

    /// A uniform `u16` over the full 16-bit range.
    pub fn any_u16(&mut self) -> u16 {
        self.next_u64() as u16
    }

    /// A uniform `usize` in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.index(items.len())]
    }

    /// A vector of `len` uniform `i16`s drawn from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn vec_i16(&mut self, len: usize, range: std::ops::Range<i64>) -> Vec<i16> {
        (0..len).map(|_| self.i16_in(range.clone())).collect()
    }

    /// An independent child generator; the parent stream advances by one.
    ///
    /// Useful to hand each job/thread of a sweep its own reproducible
    /// stream.
    pub fn fork(&mut self) -> TestRng {
        TestRng::new(self.next_u64())
    }
}

/// Runs `n` independently seeded random cases.
///
/// Case `i` sees a generator derived from `(seed, i)`, so a failing case
/// replays in isolation: `run_cases(seed, i + 1, ..)` reaches it, and the
/// case index reported by a panicking assertion identifies the stream.
pub fn run_cases<F>(seed: u64, n: usize, mut f: F)
where
    F: FnMut(usize, &mut TestRng),
{
    for case in 0..n {
        let mut state = seed ^ (case as u64).wrapping_mul(0xa076_1d64_78bd_642f);
        let mut rng = TestRng::new(splitmix64(&mut state));
        f(case, &mut rng);
    }
}

/// Property-test sugar over [`run_cases`]: runs the body `$n` times with a
/// fresh deterministic generator bound to `$rng` each time.
///
/// ```
/// use systolic_ring_harness::for_random_cases;
///
/// for_random_cases!(32, 0xdead, |rng| {
///     let v = rng.range_i64(0..100);
///     assert!(v < 100);
/// });
/// ```
#[macro_export]
macro_rules! for_random_cases {
    ($n:expr, $seed:expr, |$rng:ident| $body:expr) => {
        $crate::testkit::run_cases($seed, $n, |_case, $rng: &mut $crate::testkit::TestRng| {
            $body
        })
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_splitmix_vectors() {
        // Published SplitMix64 reference vector for seed 0.
        let mut rng = TestRng::new(0);
        let first = rng.next_u64();
        assert_eq!(first, 0xe220_a839_7b1d_cdaf);
    }

    #[test]
    fn determinism_and_fork_independence() {
        let mut a = TestRng::new(99);
        let mut b = TestRng::new(99);
        assert_eq!(
            (0..16).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..16).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
        let mut parent = TestRng::new(5);
        let mut child = parent.fork();
        assert_ne!(parent.next_u64(), child.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut rng = TestRng::new(1);
        let mut seen = [false; 7];
        for _ in 0..500 {
            let v = rng.below(7);
            assert!(v < 7);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reached");
    }

    #[test]
    fn ranges_honour_bounds() {
        let mut rng = TestRng::new(2);
        for _ in 0..200 {
            assert!((-50..50).contains(&rng.range_i64(-50..50)));
            let v = rng.i16_in(-4000..4000);
            assert!((-4000..4000).contains(&(v as i64)));
        }
    }

    #[test]
    fn choose_and_vec_helpers() {
        let mut rng = TestRng::new(3);
        let items = [10, 20, 30];
        for _ in 0..50 {
            assert!(items.contains(rng.choose(&items)));
        }
        let v = rng.vec_i16(32, 0..256);
        assert_eq!(v.len(), 32);
        assert!(v.iter().all(|&x| (0..256).contains(&(x as i64))));
    }

    #[test]
    fn cases_are_reproducible_per_index() {
        let mut first_pass = Vec::new();
        run_cases(7, 5, |case, rng| first_pass.push((case, rng.next_u64())));
        let mut second_pass = Vec::new();
        run_cases(7, 5, |case, rng| second_pass.push((case, rng.next_u64())));
        assert_eq!(first_pass, second_pass);
        // Distinct cases see distinct streams.
        assert_ne!(first_pass[0].1, first_pass[1].1);
    }

    #[test]
    fn macro_binds_rng() {
        let mut total = 0u64;
        for_random_cases!(8, 11, |rng| {
            total = total.wrapping_add(rng.next_u64());
        });
        assert_ne!(total, 0);
    }
}
