//! Chaos campaigns: fault-rate sweeps with oracle-checked outcomes.
//!
//! A chaos campaign answers the question the fault subsystem exists for:
//! *under injected faults, does the machine ever silently produce a wrong
//! answer?* For each fault rate in a sweep, the campaign re-derives a
//! deterministic suite of jobs with golden expected outputs, arms every
//! job with fault injection and a recovery policy, runs the batch, and
//! classifies every job into exactly one of four buckets:
//!
//! * **clean** — completed with matching outputs and no fault activity,
//! * **recovered** — completed with matching outputs after at least one
//!   detected fault (rollback/retry/remap did its job),
//! * **detected-failed** — did not complete, but every failure was a
//!   *detected* fault (fail-stop; the host knows the result is bad),
//! * **undetected** — the one unacceptable bucket: the job completed
//!   with outputs that differ from the golden model, or failed in a way
//!   the detection machinery cannot explain. Silent data corruption.
//!
//! [`CampaignReport::zero_undetected`] is the acceptance criterion: a
//! correct parity/scrub design keeps the last bucket empty at every rate,
//! because configuration faults are detected at the next scrub point
//! before the corrupted entry is used, and datapath faults are tagged at
//! injection time and reported before the poisoned value propagates.

use std::time::Duration;

use systolic_ring_core::FaultConfig;

use crate::job::{Job, JobOutcome, JobReport, RecoveryStats, RetryPolicy};
use crate::runner::BatchRunner;
use crate::testkit::TestRng;

/// One campaign case: a job plus the outputs its golden model predicts.
///
/// Mirrors the kernels crate's oracle cases; the campaign driver lives
/// here (below the kernels crate) so it stays reusable for raw machine
/// jobs too, and the kernels crate converts its oracle suite into this
/// shape.
#[derive(Debug)]
pub struct CampaignCase {
    /// Display name (kernel + parameters).
    pub name: String,
    /// The job to run (injection/retry are armed by the driver).
    pub job: Job,
    /// Expected job outputs, lane by lane.
    pub expected: Vec<Vec<i16>>,
}

/// The classification of one job under injection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CaseResult {
    /// Completed, outputs match, no fault activity.
    Clean,
    /// Completed, outputs match, after detected faults and recovery.
    Recovered,
    /// Failed, but every failure was a detected fault (fail-stop).
    DetectedFailed,
    /// Silent corruption: wrong outputs, or a failure the fault-detection
    /// machinery cannot account for.
    Undetected,
}

/// Classifies one job report against its golden expectation.
pub fn classify(report: &JobReport, expected: &[Vec<i16>]) -> CaseResult {
    match &report.outcome {
        JobOutcome::Completed(out) => {
            if out.outputs[..] == *expected {
                if report.recovery.faults_detected > 0 {
                    CaseResult::Recovered
                } else {
                    CaseResult::Clean
                }
            } else {
                CaseResult::Undetected
            }
        }
        JobOutcome::Fault(fault) => {
            if fault.is_detected_fault() {
                CaseResult::DetectedFailed
            } else {
                CaseResult::Undetected
            }
        }
    }
}

/// Aggregate outcome of one fault rate across the whole suite.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CampaignRow {
    /// Per-class injection rate, parts per million per cycle.
    pub ppm: u32,
    /// Jobs run at this rate.
    pub jobs: usize,
    /// Jobs completing cleanly.
    pub clean: usize,
    /// Jobs completing after recovery.
    pub recovered: usize,
    /// Jobs failing with every fault detected.
    pub detected_failed: usize,
    /// Jobs with silent corruption (must stay zero).
    pub undetected: usize,
    /// Detected faults summed across all attempts of all jobs.
    pub faults_detected: u64,
    /// Rollback-retries summed across all jobs.
    pub retries: u64,
    /// Spare-Dnode remaps summed across all jobs.
    pub remaps: u64,
}

/// The full campaign result: one row per fault rate.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Rows in sweep order.
    pub rows: Vec<CampaignRow>,
    /// Wall-clock time of the whole campaign.
    pub wall: Duration,
}

impl CampaignReport {
    /// The acceptance criterion: no job in any row was silently corrupted.
    pub fn zero_undetected(&self) -> bool {
        self.rows.iter().all(|row| row.undetected == 0)
    }

    /// Jobs executed across all rows.
    pub fn total_jobs(&self) -> usize {
        self.rows.iter().map(|row| row.jobs).sum()
    }

    /// Renders the campaign as an aligned resilience table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>9} {:>6} {:>6} {:>10} {:>9} {:>11} {:>7} {:>8} {:>7}",
            "rate/ppm",
            "jobs",
            "clean",
            "recovered",
            "det-fail",
            "UNDETECTED",
            "faults",
            "retries",
            "remaps"
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{:>9} {:>6} {:>6} {:>10} {:>9} {:>11} {:>7} {:>8} {:>7}",
                row.ppm,
                row.jobs,
                row.clean,
                row.recovered,
                row.detected_failed,
                row.undetected,
                row.faults_detected,
                row.retries,
                row.remaps
            );
        }
        let _ = writeln!(
            out,
            "{} jobs in {:.3} s — {}",
            self.total_jobs(),
            self.wall.as_secs_f64(),
            if self.zero_undetected() {
                "zero undetected corruptions"
            } else {
                "SILENT CORRUPTION PRESENT"
            }
        );
        out
    }
}

/// Runs a chaos campaign.
///
/// For each rate in `rates_ppm`, `suite` is asked for a fresh set of
/// cases (suites are cheap to re-derive because they are deterministic in
/// their seed); every job is armed with a [`FaultConfig::uniform`]
/// injection profile whose seed mixes `seed` with the rate, plus the
/// given recovery policy, and the batch runs under `runner`. A rate of
/// `0` injects nothing but keeps detection armed — the control row that
/// shows the parity/scrub machinery itself does not disturb results.
pub fn run_chaos<F>(
    runner: &BatchRunner,
    rates_ppm: &[u32],
    seed: u64,
    retry: RetryPolicy,
    mut suite: F,
) -> CampaignReport
where
    F: FnMut(u32) -> Vec<CampaignCase>,
{
    let started = std::time::Instant::now();
    let mut rows = Vec::with_capacity(rates_ppm.len());
    for &ppm in rates_ppm {
        // Each rate gets an independent but reproducible fault universe.
        let fault_seed = TestRng::new(seed ^ u64::from(ppm)).next_u64();
        let cases = suite(ppm);
        let mut jobs = Vec::with_capacity(cases.len());
        let mut expectations = Vec::with_capacity(cases.len());
        for case in cases {
            jobs.push(
                case.job
                    .with_faults(FaultConfig::uniform(fault_seed, ppm))
                    .with_retry(retry),
            );
            expectations.push(case.expected);
        }
        let report = runner.run(&jobs);
        let mut row = CampaignRow {
            ppm,
            jobs: report.reports.len(),
            clean: 0,
            recovered: 0,
            detected_failed: 0,
            undetected: 0,
            faults_detected: 0,
            retries: 0,
            remaps: 0,
        };
        for (job_report, expected) in report.reports.iter().zip(&expectations) {
            let recovery: RecoveryStats = job_report.recovery;
            row.faults_detected += u64::from(recovery.faults_detected);
            row.retries += u64::from(recovery.retries);
            row.remaps += u64::from(recovery.remaps);
            match classify(job_report, expected) {
                CaseResult::Clean => row.clean += 1,
                CaseResult::Recovered => row.recovered += 1,
                CaseResult::DetectedFailed => row.detected_failed += 1,
                CaseResult::Undetected => row.undetected += 1,
            }
        }
        rows.push(row);
    }
    CampaignReport {
        rows,
        wall: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CycleBudget, JobFault, JobOutput};
    use systolic_ring_core::{MachineParams, Stats};
    use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
    use systolic_ring_isa::RingGeometry;

    fn mac_case(name: &str, cycles: u64) -> CampaignCase {
        let job = Job::from_config(
            name.to_owned(),
            RingGeometry::RING_8,
            MachineParams::PAPER,
            |m| {
                let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0);
                for d in 0..m.geometry().dnodes() {
                    m.set_local_program(d, &[mac])?;
                    m.set_mode(d, DnodeMode::Local);
                }
                Ok(())
            },
            CycleBudget::Cycles(cycles),
        );
        CampaignCase {
            name: name.to_owned(),
            job,
            expected: Vec::new(),
        }
    }

    #[test]
    fn zero_rate_row_is_all_clean() {
        let report = run_chaos(
            &BatchRunner::with_workers(2),
            &[0],
            7,
            RetryPolicy::retries(2),
            |_| (0..6).map(|i| mac_case(&format!("m{i}"), 64)).collect(),
        );
        assert_eq!(report.rows.len(), 1);
        let row = &report.rows[0];
        assert_eq!(row.clean, 6);
        assert_eq!(row.recovered + row.detected_failed + row.undetected, 0);
        assert_eq!(row.faults_detected, 0);
        assert!(report.zero_undetected());
    }

    #[test]
    fn injected_rows_never_report_silent_corruption() {
        let report = run_chaos(
            &BatchRunner::with_workers(4),
            &[200, 2_000, 20_000],
            1234,
            RetryPolicy::retries(6).with_remap(true),
            |_| (0..8).map(|i| mac_case(&format!("m{i}"), 256)).collect(),
        );
        assert_eq!(report.total_jobs(), 24);
        assert!(report.zero_undetected(), "\n{}", report.render());
        // The sweep is wide enough that at least one job must see a fault.
        let total_faults: u64 = report.rows.iter().map(|r| r.faults_detected).sum();
        assert!(total_faults > 0, "no faults injected across the sweep");
        let text = report.render();
        assert!(text.contains("zero undetected corruptions"));
    }

    #[test]
    fn classification_buckets_are_exact() {
        let completed = |outputs: Vec<Vec<i16>>, recovery: RecoveryStats| JobReport {
            index: 0,
            name: "x".into(),
            wall: Duration::ZERO,
            outcome: JobOutcome::Completed(JobOutput {
                outputs,
                cycles: 1,
                stats: Stats::new(1),
            }),
            recovery,
        };
        let expected = vec![vec![1, 2]];
        assert_eq!(
            classify(
                &completed(expected.clone(), RecoveryStats::default()),
                &expected
            ),
            CaseResult::Clean
        );
        let recovered = RecoveryStats {
            faults_detected: 2,
            retries: 1,
            remaps: 0,
            recovered: true,
        };
        assert_eq!(
            classify(&completed(expected.clone(), recovered), &expected),
            CaseResult::Recovered
        );
        assert_eq!(
            classify(&completed(vec![vec![9, 9]], recovered), &expected),
            CaseResult::Undetected
        );
        let faulted = |fault: JobFault| JobReport {
            index: 0,
            name: "x".into(),
            wall: Duration::ZERO,
            outcome: JobOutcome::Fault(fault),
            recovery: RecoveryStats::default(),
        };
        assert_eq!(
            classify(
                &faulted(JobFault::Sim(
                    "cycle 1: configuration parity mismatch in context 0 at dnode 3".into()
                )),
                &expected
            ),
            CaseResult::DetectedFailed
        );
        assert_eq!(
            classify(&faulted(JobFault::Panic("boom".into())), &expected),
            CaseResult::Undetected
        );
    }
}
