//! The work-stealing batch runner and its aggregate reports.
//!
//! [`BatchRunner`] executes a slice of [`Job`]s on `N` scoped OS threads.
//! Scheduling is a single shared atomic cursor: each worker claims the
//! next unclaimed execution unit, so fast workers steal the tail of the
//! batch from slow ones and no static partition can go unbalanced.
//! Results land in per-job slots, so the report order always matches
//! submission order regardless of which worker ran what.
//!
//! **Lane fusion** (on by default, see [`BatchRunner::with_lane_fusion`]):
//! jobs that load an *identical* object program onto identically sized
//! machines with the same `Cycles(n)` budget — the shape of a parameter
//! sweep, where only the input streams differ — are grouped into one
//! execution unit of up to [`MAX_LANES`] lanes. The group steps all its
//! machines in lockstep through shared fused bursts
//! ([`systolic_ring_core::lockstep_burst`]), amortizing the compiled
//! schedule walk across the whole group; whatever the burst cannot cover
//! (warmup, controller activity) runs per machine through the ordinary
//! single-lane path. Outcomes are bit-identical to running each job
//! alone — [`BatchRunner::run_serial`] stays the reference.
//!
//! Fault isolation: a job that returns a simulator fault, exceeds its
//! budget, or outright panics produces a [`JobOutcome::Fault`] in its own
//! report slot; the remaining jobs are unaffected. A simulator fault in
//! one lane of a fused group detaches only that lane; a panic anywhere in
//! a group falls the whole group back to isolated per-job execution.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use systolic_ring_core::{lockstep_burst, RingMachine, Stats};

use crate::job::{
    build_machine, CycleBudget, Job, JobFault, JobOutcome, JobOutput, JobReport, JobSetup, JobWork,
    MachineJob, RecoveryStats, SLICE_CYCLES,
};

/// Maximum machines stepped in lockstep by one fused group.
pub const MAX_LANES: usize = 16;

/// Runs batches of jobs across worker threads.
#[derive(Clone, Debug)]
pub struct BatchRunner {
    workers: usize,
    lane_fusion: bool,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// A runner sized to `std::thread::available_parallelism()`.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchRunner {
            workers,
            lane_fusion: true,
        }
    }

    /// A runner with an explicit worker count (`0` is clamped to 1).
    pub fn with_workers(workers: usize) -> Self {
        BatchRunner {
            workers: workers.max(1),
            lane_fusion: true,
        }
    }

    /// Enables or disables lane-fused group execution (see the module
    /// docs; default on). With lane fusion off every job is its own
    /// execution unit, exactly the pre-fusion behaviour.
    pub fn with_lane_fusion(mut self, enabled: bool) -> Self {
        self.lane_fusion = enabled;
        self
    }

    /// The worker-thread count this runner uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job and returns the batch report (submission order).
    ///
    /// Jobs carrying a deferred builder error — a builder misuse or a
    /// failed object pre-flight lint (see
    /// [`Job::from_object`](crate::job::Job::from_object)) — are rejected
    /// before scheduling: their report slots are pre-filled with the
    /// [`JobFault::Config`] outcome and no execution unit is planned for
    /// them, so a bad object never reaches a worker thread.
    pub fn run(&self, jobs: &[Job]) -> BatchReport {
        let started = Instant::now();
        let mut slots: Vec<Option<JobReport>> = Vec::new();
        slots.resize_with(jobs.len(), || None);
        for (index, job) in jobs.iter().enumerate() {
            if let Some(msg) = job.builder_error() {
                slots[index] = Some(JobReport {
                    index,
                    name: job.name.clone(),
                    wall: Duration::ZERO,
                    outcome: JobOutcome::Fault(JobFault::Config(msg.to_owned())),
                    recovery: RecoveryStats::default(),
                });
            }
        }
        let schedulable = |index: &usize| jobs[*index].builder_error().is_none();
        let units = if self.lane_fusion {
            plan_units(jobs)
        } else {
            (0..jobs.len())
                .filter(schedulable)
                .map(Unit::Single)
                .collect()
        };
        let slots = Mutex::new(slots);
        let cursor = AtomicUsize::new(0);
        let workers = self.workers.min(units.len()).max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let unit = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(unit) = units.get(unit) else {
                        break;
                    };
                    let reports = match unit {
                        Unit::Single(index) => vec![execute(*index, &jobs[*index])],
                        Unit::Group(indices) => execute_group(indices, jobs),
                    };
                    let mut slots = slots.lock().expect("report lock");
                    for report in reports {
                        let index = report.index;
                        slots.get_mut(index).expect("slot").replace(report);
                    }
                });
            }
        });

        let reports = slots
            .into_inner()
            .expect("report lock")
            .into_iter()
            .map(|slot| slot.expect("every job executed"))
            .collect();
        BatchReport {
            reports,
            wall: started.elapsed(),
            workers,
        }
    }

    /// Runs every job on the calling thread (the serial baseline the
    /// speedup figures and determinism tests compare against).
    pub fn run_serial(jobs: &[Job]) -> BatchReport {
        let started = Instant::now();
        let reports = jobs
            .iter()
            .enumerate()
            .map(|(index, job)| execute(index, job))
            .collect();
        BatchReport {
            reports,
            wall: started.elapsed(),
            workers: 1,
        }
    }
}

/// Executes one job, translating panics into faults.
fn execute(index: usize, job: &Job) -> JobReport {
    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| crate::job::run(job)));
    let (outcome, recovery) = match result {
        Ok((Ok(output), recovery)) => (JobOutcome::Completed(output), recovery),
        Ok((Err(fault), recovery)) => (JobOutcome::Fault(fault), recovery),
        Err(panic) => (
            JobOutcome::Fault(JobFault::Panic(panic_message(&panic))),
            RecoveryStats::default(),
        ),
    };
    JobReport {
        index,
        name: job.name.clone(),
        wall: started.elapsed(),
        outcome,
        recovery,
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// One schedulable work item: a lone job, or a lane-fused group of jobs
/// sharing an identical machine configuration.
enum Unit {
    Single(usize),
    Group(Vec<usize>),
}

/// The machine job behind `job` when it is eligible for lane fusion.
///
/// Eligible means the outcome is a pure function of (configuration,
/// inputs) with no per-job execution policy attached: an assembled-object
/// setup, a fixed `Cycles(n)` budget, the fused engine enabled, and no
/// fault injection, watchdog, retry policy, wall limit or deferred
/// builder error. Everything else takes the single-job path unchanged.
fn lane_candidate(job: &Job) -> Option<&MachineJob> {
    if job.wall_limit.is_some()
        || job.faults.is_some()
        || job.retry.is_active()
        || job.builder_error().is_some()
    {
        return None;
    }
    let JobWork::Machine(mj) = &job.work else {
        return None;
    };
    if !matches!(mj.setup, JobSetup::Object(_)) || !matches!(mj.budget, CycleBudget::Cycles(_)) {
        return None;
    }
    let p = &mj.params;
    if !p.fused || !p.decode_cache || p.watchdog_interval != 0 || p.faults.is_active() {
        return None;
    }
    Some(mj)
}

/// `true` when two eligible machine jobs can share one fused group:
/// same geometry, same machine parameters, same budget and the same
/// object program. Inputs and sinks are per-lane state and may differ.
fn same_lane_group(a: &MachineJob, b: &MachineJob) -> bool {
    if a.geometry != b.geometry || a.params != b.params || a.budget != b.budget {
        return false;
    }
    match (&a.setup, &b.setup) {
        (JobSetup::Object(x), JobSetup::Object(y)) => x == y,
        _ => false,
    }
}

/// Partitions a batch into execution units, bucketing lane-eligible jobs
/// by machine configuration. Buckets cap at [`MAX_LANES`]; a bucket that
/// ends up with a single member is demoted back to a plain single unit.
fn plan_units(jobs: &[Job]) -> Vec<Unit> {
    let mut units: Vec<Unit> = Vec::new();
    // (representative index, members) — linear scan is fine: batch sizes
    // are small and the group key has no cheap hash.
    let mut buckets: Vec<(usize, Vec<usize>)> = Vec::new();
    for (index, job) in jobs.iter().enumerate() {
        if job.builder_error().is_some() {
            // Rejected before scheduling; its report slot is pre-filled.
            continue;
        }
        let Some(mj) = lane_candidate(job) else {
            units.push(Unit::Single(index));
            continue;
        };
        let bucket = buckets.iter_mut().find(|(rep, members)| {
            members.len() < MAX_LANES
                && same_lane_group(lane_candidate(&jobs[*rep]).expect("representative"), mj)
        });
        match bucket {
            Some((_, members)) => members.push(index),
            None => buckets.push((index, vec![index])),
        }
    }
    for (_, members) in buckets {
        if members.len() > 1 {
            units.push(Unit::Group(members));
        } else {
            units.push(Unit::Single(members[0]));
        }
    }
    units
}

/// Executes a lane-fused group, falling back to isolated per-job
/// execution when any machine fails to build or the group panics. The
/// fallback re-runs every member from scratch, so a panic costs the
/// group one wasted partial run but never a wrong result.
fn execute_group(indices: &[usize], jobs: &[Job]) -> Vec<JobReport> {
    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| run_lane_group(indices, jobs)));
    match result {
        Ok(Some(outcomes)) => {
            // Per-lane wall time is the group's elapsed time split evenly:
            // the lanes ran concurrently, so no per-lane figure exists.
            let wall = started.elapsed() / indices.len().max(1) as u32;
            indices
                .iter()
                .zip(outcomes)
                .map(|(&index, outcome)| JobReport {
                    index,
                    name: jobs[index].name.clone(),
                    wall,
                    outcome,
                    recovery: RecoveryStats::default(),
                })
                .collect()
        }
        _ => indices
            .iter()
            .map(|&index| execute(index, &jobs[index]))
            .collect(),
    }
}

/// Runs a group of identically configured machine jobs in lockstep.
///
/// Per [`SLICE_CYCLES`] slice, every live lane first advances through one
/// shared fused burst ([`lockstep_burst`]), then runs whatever remains of
/// the slice through its own single-lane path (which may itself fuse).
/// Every live lane therefore advances exactly `slice` cycles per
/// iteration, keeping the group cycle-synchronized — the precondition for
/// the next shared burst. A lane that faults is detached (its outcome
/// recorded) and never stepped again; the survivors continue.
///
/// Returns `None` if any machine fails to build, in which case the caller
/// re-runs the jobs individually so each reports its own error.
fn run_lane_group(indices: &[usize], jobs: &[Job]) -> Option<Vec<JobOutcome>> {
    let mjs: Vec<&MachineJob> = indices
        .iter()
        .map(|&i| lane_candidate(&jobs[i]).expect("group members are eligible"))
        .collect();
    let mut machines: Vec<RingMachine> = Vec::with_capacity(mjs.len());
    for mj in &mjs {
        machines.push(build_machine(mj, None).ok()?);
    }
    let CycleBudget::Cycles(max_cycles) = mjs[0].budget else {
        unreachable!("lane groups use fixed budgets");
    };

    let mut done: Vec<Option<JobOutcome>> = vec![None; machines.len()];
    // Runs until every lane faulted or the (shared) budget is reached.
    while let Some(cycle) = machines
        .iter()
        .zip(&done)
        .find(|(_, d)| d.is_none())
        .map(|(m, _)| m.cycle())
    {
        if cycle >= max_cycles {
            break;
        }
        let slice = SLICE_CYCLES.min(max_cycles - cycle);
        let burst = {
            let mut lanes: Vec<&mut RingMachine> = machines
                .iter_mut()
                .zip(&done)
                .filter(|(_, d)| d.is_none())
                .map(|(m, _)| m)
                .collect();
            lockstep_burst(&mut lanes, slice)
        };
        for (m, d) in machines.iter_mut().zip(done.iter_mut()) {
            if d.is_some() {
                continue;
            }
            let rest = slice - burst;
            if rest > 0 {
                if let Err(e) = m.run(rest) {
                    *d = Some(JobOutcome::Fault(JobFault::Sim(e.to_string())));
                }
            }
        }
    }

    let mut outcomes = Vec::with_capacity(machines.len());
    for ((mut m, d), mj) in machines.into_iter().zip(done).zip(&mjs) {
        if let Some(outcome) = d {
            outcomes.push(outcome);
            continue;
        }
        let mut outputs = Vec::with_capacity(mj.sinks.len());
        let mut failed = None;
        for sink in &mj.sinks {
            match m.take_sink(sink.switch, sink.port) {
                Ok(words) => outputs.push(words.into_iter().map(|w| w.as_i16()).collect()),
                Err(e) => {
                    failed = Some(JobFault::Config(e.to_string()));
                    break;
                }
            }
        }
        outcomes.push(match failed {
            Some(fault) => JobOutcome::Fault(fault),
            None => JobOutcome::Completed(JobOutput {
                outputs,
                cycles: m.cycle(),
                stats: m.stats().clone(),
            }),
        });
    }
    Some(outcomes)
}

/// The result of one batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job reports in submission order.
    pub reports: Vec<JobReport>,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Worker threads actually used.
    pub workers: usize,
}

impl BatchReport {
    /// `true` when both batches produced identical per-job outcomes
    /// (outputs, cycle counts and statistics; wall times and recovery
    /// records are ignored). Engine-internal counters — decode-cache and
    /// fused-burst bookkeeping — are excluded from the statistics
    /// comparison: they describe how the simulator ran, not what the
    /// machine did, and legitimately differ between a lane-fused run and
    /// a serial one.
    pub fn outcomes_match(&self, other: &BatchReport) -> bool {
        fn outcome_eq(a: &JobOutcome, b: &JobOutcome) -> bool {
            match (a, b) {
                (JobOutcome::Completed(x), JobOutcome::Completed(y)) => {
                    x.outputs == y.outputs
                        && x.cycles == y.cycles
                        && x.stats.without_cache_counters() == y.stats.without_cache_counters()
                }
                _ => a == b,
            }
        }
        self.reports.len() == other.reports.len()
            && self
                .reports
                .iter()
                .zip(&other.reports)
                .all(|(a, b)| a.name == b.name && outcome_eq(&a.outcome, &b.outcome))
    }

    /// Aggregates the batch into summary figures.
    pub fn summary(&self) -> BatchSummary {
        let mut merged = Stats::new(0);
        let mut completed = 0usize;
        let mut faulted = 0usize;
        let mut recovered = 0usize;
        let mut faults_detected = 0u64;
        let mut total_cycles = 0u64;
        let mut serial_wall = Duration::ZERO;
        let mut histogram = [0usize; 10];
        for report in &self.reports {
            serial_wall += report.wall;
            faults_detected += u64::from(report.recovery.faults_detected);
            if report.recovery.recovered {
                recovered += 1;
            }
            match &report.outcome {
                JobOutcome::Completed(out) => {
                    completed += 1;
                    total_cycles += out.cycles;
                    merged.merge(&out.stats);
                    let bucket = ((out.stats.utilization() * 10.0) as usize).min(9);
                    histogram[bucket] += 1;
                }
                JobOutcome::Fault(_) => faulted += 1,
            }
        }
        let secs = self.wall.as_secs_f64();
        BatchSummary {
            jobs: self.reports.len(),
            completed,
            faulted,
            recovered,
            faults_detected,
            workers: self.workers,
            total_cycles,
            total_ops: merged.total_ops(),
            wall: self.wall,
            serial_wall,
            speedup: if secs > 0.0 {
                serial_wall.as_secs_f64() / secs
            } else {
                1.0
            },
            sim_mips: if secs > 0.0 {
                merged.total_ops() as f64 / secs / 1.0e6
            } else {
                0.0
            },
            cycles_per_sec: if secs > 0.0 {
                total_cycles as f64 / secs
            } else {
                0.0
            },
            utilization_histogram: histogram,
            merged,
        }
    }
}

/// Batch-level aggregate figures.
#[derive(Clone, Debug)]
pub struct BatchSummary {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs that faulted (including panics).
    pub faulted: usize,
    /// Jobs that completed despite detected faults (rollback recovery).
    pub recovered: usize,
    /// Detected faults summed across every job's attempts.
    pub faults_detected: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Simulated cycles across completed jobs.
    pub total_cycles: u64,
    /// ALU + multiplier operations across completed jobs.
    pub total_ops: u64,
    /// Merged statistics across completed jobs.
    pub merged: Stats,
    /// Batch wall-clock time.
    pub wall: Duration,
    /// Sum of per-job wall times (the work a single thread would do).
    pub serial_wall: Duration,
    /// `serial_wall / wall` — observed parallel speedup.
    pub speedup: f64,
    /// Simulated operations per wall-clock second, in millions.
    pub sim_mips: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Completed-job count per 10%-wide fabric-utilization bucket.
    pub utilization_histogram: [usize; 10],
}

impl BatchSummary {
    /// Renders the summary as an aligned text block.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch: {} jobs ({} completed, {} faulted, {} recovered) on {} workers",
            self.jobs, self.completed, self.faulted, self.recovered, self.workers
        );
        if self.faults_detected > 0 {
            let _ = writeln!(
                out,
                "  {} detected faults across all attempts",
                self.faults_detected
            );
        }
        let _ = writeln!(
            out,
            "  wall {:>10.3} ms   serial {:>10.3} ms   speedup {:>5.2}x",
            self.wall.as_secs_f64() * 1e3,
            self.serial_wall.as_secs_f64() * 1e3,
            self.speedup
        );
        let _ = writeln!(
            out,
            "  {:>12} simulated cycles   {:>12} ops   {:>8.2} sim-MIPS   {:>10.0} cycles/s",
            self.total_cycles, self.total_ops, self.sim_mips, self.cycles_per_sec
        );
        if self.merged.fused_cycles > 0 {
            let _ = writeln!(
                out,
                "  fused: {} bursts   {} deopts   {} cycles   {:.2} mean lanes",
                self.merged.fused_entries,
                self.merged.fused_deopts,
                self.merged.fused_cycles,
                self.merged.fused_lane_occupancy as f64 / self.merged.fused_cycles as f64
            );
        }
        let _ = write!(out, "  utilization ");
        for (i, count) in self.utilization_histogram.iter().enumerate() {
            let _ = write!(out, "[{}0-{}0%:{}] ", i, i + 1, count);
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CycleBudget, JobOutput};
    use systolic_ring_core::MachineParams;
    use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
    use systolic_ring_isa::RingGeometry;

    fn mac_job(name: &str, cycles: u64) -> Job {
        Job::from_config(
            name.to_owned(),
            RingGeometry::RING_8,
            MachineParams::PAPER,
            |m| {
                let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0);
                for d in 0..m.geometry().dnodes() {
                    m.set_local_program(d, &[mac])?;
                    m.set_mode(d, DnodeMode::Local);
                }
                Ok(())
            },
            CycleBudget::Cycles(cycles),
        )
    }

    #[test]
    fn batch_matches_serial_bit_for_bit() {
        let jobs: Vec<Job> = (0..12).map(|i| mac_job(&format!("j{i}"), 50 + i)).collect();
        let parallel = BatchRunner::with_workers(4).run(&jobs);
        let serial = BatchRunner::run_serial(&jobs);
        assert!(parallel.outcomes_match(&serial));
        assert_eq!(parallel.summary().completed, 12);
    }

    #[test]
    fn report_order_matches_submission_order() {
        let jobs: Vec<Job> = (0..9).map(|i| mac_job(&format!("j{i}"), 10)).collect();
        let report = BatchRunner::with_workers(3).run(&jobs);
        for (i, r) in report.reports.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.name, format!("j{i}"));
        }
    }

    #[test]
    fn a_panicking_job_does_not_poison_the_batch() {
        let mut jobs = vec![mac_job("ok-0", 20)];
        jobs.push(Job::custom("bomb", || panic!("deliberate test panic")));
        jobs.push(mac_job("ok-1", 20));
        let report = BatchRunner::with_workers(2).run(&jobs);
        let summary = report.summary();
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.faulted, 1);
        match &report.reports[1].outcome {
            JobOutcome::Fault(JobFault::Panic(msg)) => {
                assert!(msg.contains("deliberate test panic"))
            }
            other => panic!("expected panic fault, got {other:?}"),
        }
    }

    #[test]
    fn custom_jobs_flow_through() {
        let job = Job::custom("fixed", || {
            Ok(JobOutput {
                outputs: vec![vec![1, 2, 3]],
                cycles: 7,
                stats: Stats::new(1),
            })
        });
        let report = BatchRunner::with_workers(1).run(&[job]);
        let out = report.reports[0].outcome.output().expect("completed");
        assert_eq!(out.outputs[0], vec![1, 2, 3]);
        assert_eq!(report.summary().total_cycles, 7);
    }

    #[test]
    fn summary_merges_stats_and_renders() {
        let jobs: Vec<Job> = (0..4).map(|i| mac_job(&format!("j{i}"), 100)).collect();
        let report = BatchRunner::with_workers(2).run(&jobs);
        let summary = report.summary();
        assert_eq!(summary.total_cycles, 400);
        // 8 Dnodes all MACing every cycle in every job.
        assert_eq!(summary.merged.cycles, 400);
        assert_eq!(summary.total_ops, 4 * 100 * 8 * 2);
        assert_eq!(summary.utilization_histogram[9], 4);
        let text = summary.render();
        assert!(text.contains("4 jobs"));
        assert!(text.contains("speedup"));
    }

    #[test]
    fn zero_and_oversubscribed_worker_counts_are_clamped() {
        assert_eq!(BatchRunner::with_workers(0).workers(), 1);
        let jobs = vec![mac_job("only", 5)];
        let report = BatchRunner::with_workers(64).run(&jobs);
        assert_eq!(report.workers, 1); // clamped to job count
        assert_eq!(report.summary().completed, 1);
    }

    use systolic_ring_isa::ctrl::CtrlInstr;
    use systolic_ring_isa::object::{Object, Preload};
    use systolic_ring_isa::switch::{HostCapture, PortSource};
    use systolic_ring_isa::Word16;

    /// An object program: Dnode (0,0) computes `in + 1` from host port
    /// (0,0), captured at switch 1 port 0; controller halts immediately,
    /// so a long run settles into fused steady state.
    fn increment_object() -> Object {
        let instr = MicroInstr::op(AluOp::Add, Operand::In1, Operand::One).write_out();
        Object {
            geometry: Some(RingGeometry::RING_8),
            contexts: 0,
            code: vec![CtrlInstr::Halt.encode()],
            data: vec![],
            preload: vec![
                Preload::SwitchPort {
                    ctx: 0,
                    switch: 0,
                    lane: 0,
                    input: 0,
                    word: PortSource::HostIn { port: 0 }.encode(),
                },
                Preload::DnodeInstr {
                    ctx: 0,
                    dnode: 0,
                    word: instr.encode(),
                },
                Preload::HostCapture {
                    ctx: 0,
                    switch: 1,
                    port: 0,
                    word: HostCapture::lane(0).encode(),
                },
            ],
        }
    }

    fn stream_job(name: &str, base: i16) -> Job {
        let words: Vec<Word16> = (0..32).map(|i| Word16::from_i16(base + i)).collect();
        Job::from_object(
            name.to_owned(),
            RingGeometry::RING_8,
            MachineParams::PAPER,
            increment_object(),
            // Several SLICE_CYCLES worth: the first slice warms up through
            // the single-lane path (detection window), later slices hit
            // the shared lockstep burst.
            CycleBudget::Cycles(4 * SLICE_CYCLES),
        )
        .with_input(0, 0, words)
        .with_sink(1, 0)
    }

    #[test]
    fn lane_fused_batch_matches_serial() {
        let jobs: Vec<Job> = (0..8)
            .map(|i| stream_job(&format!("s{i}"), i * 100))
            .collect();
        let fused = BatchRunner::with_workers(2).run(&jobs);
        let serial = BatchRunner::run_serial(&jobs);
        assert!(fused.outcomes_match(&serial));
        let merged = fused.summary().merged;
        // The group actually ran multi-lane: occupancy strictly exceeds
        // the fused cycle count (which it equals at one lane).
        assert!(merged.fused_lane_occupancy > merged.fused_cycles);
        // And the outputs are right: each lane streams `base + i + 1`.
        for (i, report) in fused.reports.iter().enumerate() {
            let out = report.outcome.output().expect("completed");
            let base = i as i16 * 100;
            assert!(out.outputs[0].contains(&(base + 1)));
            assert!(out.outputs[0].contains(&(base + 31 + 1)));
        }
    }

    #[test]
    fn lane_fusion_toggle_and_mixed_batches() {
        // Object jobs, a config-closure job and a custom job in one batch:
        // only the object jobs group; everything still matches serial.
        let mut jobs: Vec<Job> = (0..4)
            .map(|i| stream_job(&format!("s{i}"), i * 10))
            .collect();
        jobs.push(mac_job("cfg", 50));
        jobs.push(Job::custom("fixed", || {
            Ok(JobOutput {
                outputs: vec![vec![9]],
                cycles: 3,
                stats: Stats::new(1),
            })
        }));
        let fused = BatchRunner::with_workers(3).run(&jobs);
        let unfused = BatchRunner::with_workers(3)
            .with_lane_fusion(false)
            .run(&jobs);
        let serial = BatchRunner::run_serial(&jobs);
        assert!(fused.outcomes_match(&serial));
        assert!(unfused.outcomes_match(&serial));
    }

    #[test]
    fn lane_groups_cap_at_max_lanes() {
        let jobs: Vec<Job> = (0..MAX_LANES + 4)
            .map(|i| stream_job(&format!("s{i}"), i as i16))
            .collect();
        let units = plan_units(&jobs);
        let mut group_sizes: Vec<usize> = units
            .iter()
            .filter_map(|u| match u {
                Unit::Group(members) => Some(members.len()),
                Unit::Single(_) => None,
            })
            .collect();
        group_sizes.sort_unstable();
        assert_eq!(group_sizes, vec![4, MAX_LANES]);
        // Different budgets split groups.
        let mut mixed = vec![stream_job("a", 0), stream_job("b", 1)];
        mixed.push(
            Job::from_object(
                "c",
                RingGeometry::RING_8,
                MachineParams::PAPER,
                increment_object(),
                CycleBudget::Cycles(700),
            )
            .with_sink(1, 0),
        );
        let units = plan_units(&mixed);
        assert_eq!(
            units.iter().filter(|u| matches!(u, Unit::Group(_))).count(),
            1
        );
        assert_eq!(
            units
                .iter()
                .filter(|u| matches!(u, Unit::Single(_)))
                .count(),
            1
        );
    }

    /// An object that fails the static lint never reaches a worker: the
    /// job carries a deferred builder error, is excluded from unit
    /// planning and its report slot is pre-filled with a `Config` fault.
    #[test]
    fn lint_rejected_object_is_refused_before_scheduling() {
        let mut object = increment_object();
        object.preload.push(Preload::SwitchPort {
            ctx: 0,
            switch: 99, // far beyond RING_8's 4 switches
            lane: 0,
            input: 0,
            word: PortSource::Zero.encode(),
        });
        let bad = Job::from_object(
            "bad",
            RingGeometry::RING_8,
            MachineParams::PAPER,
            object.clone(),
            CycleBudget::Cycles(10),
        );
        assert!(bad.builder_error().unwrap().contains("pre-flight lint"));
        let jobs = vec![bad, stream_job("ok", 0)];
        let report = BatchRunner::with_workers(2).run(&jobs);
        match &report.reports[0].outcome {
            JobOutcome::Fault(JobFault::Config(msg)) => {
                assert!(msg.contains("pre-flight lint"), "{msg}")
            }
            other => panic!("expected pre-flight rejection, got {other:?}"),
        }
        assert!(report.reports[1].outcome.output().is_some());
        assert!(report.outcomes_match(&BatchRunner::run_serial(&jobs)));

        // The escape hatch skips the lint entirely.
        let unchecked = Job::from_object_unchecked(
            "unchecked",
            RingGeometry::RING_8,
            MachineParams::PAPER,
            object,
            CycleBudget::Cycles(10),
        );
        assert!(unchecked.builder_error().is_none());
    }

    #[test]
    fn ineligible_jobs_stay_single() {
        let eligible = stream_job("ok", 0);
        assert!(lane_candidate(&eligible).is_some());
        let with_retry = stream_job("retry", 0).with_retry(crate::job::RetryPolicy::retries(1));
        assert!(lane_candidate(&with_retry).is_none());
        let with_wall = stream_job("wall", 0).with_wall_limit(std::time::Duration::from_secs(1000));
        assert!(lane_candidate(&with_wall).is_none());
        let unfused = stream_job("unfused", 0).with_fused(false);
        assert!(lane_candidate(&unfused).is_none());
        assert!(lane_candidate(&mac_job("cfg", 10)).is_none());
    }
}
