//! The work-stealing batch runner and its aggregate reports.
//!
//! [`BatchRunner`] executes a slice of [`Job`]s on `N` scoped OS threads.
//! Scheduling is a single shared atomic cursor: each worker claims the
//! next unclaimed job index, so fast workers steal the tail of the batch
//! from slow ones and no static partition can go unbalanced. Results land
//! in per-job slots, so the report order always matches submission order
//! regardless of which worker ran what.
//!
//! Fault isolation: a job that returns a simulator fault, exceeds its
//! budget, or outright panics produces a [`JobOutcome::Fault`] in its own
//! report slot; the remaining jobs are unaffected.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use systolic_ring_core::Stats;

use crate::job::{Job, JobFault, JobOutcome, JobReport, RecoveryStats};

/// Runs batches of jobs across worker threads.
#[derive(Clone, Debug)]
pub struct BatchRunner {
    workers: usize,
}

impl Default for BatchRunner {
    fn default() -> Self {
        BatchRunner::new()
    }
}

impl BatchRunner {
    /// A runner sized to `std::thread::available_parallelism()`.
    pub fn new() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        BatchRunner { workers }
    }

    /// A runner with an explicit worker count (`0` is clamped to 1).
    pub fn with_workers(workers: usize) -> Self {
        BatchRunner {
            workers: workers.max(1),
        }
    }

    /// The worker-thread count this runner uses.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Runs every job and returns the batch report (submission order).
    pub fn run(&self, jobs: &[Job]) -> BatchReport {
        let started = Instant::now();
        let mut slots: Vec<Option<JobReport>> = Vec::new();
        slots.resize_with(jobs.len(), || None);
        let slots = Mutex::new(slots);
        let cursor = AtomicUsize::new(0);
        let workers = self.workers.min(jobs.len()).max(1);

        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(job) = jobs.get(index) else {
                        break;
                    };
                    let report = execute(index, job);
                    slots
                        .lock()
                        .expect("report lock")
                        .get_mut(index)
                        .expect("slot")
                        .replace(report);
                });
            }
        });

        let reports = slots
            .into_inner()
            .expect("report lock")
            .into_iter()
            .map(|slot| slot.expect("every job executed"))
            .collect();
        BatchReport {
            reports,
            wall: started.elapsed(),
            workers,
        }
    }

    /// Runs every job on the calling thread (the serial baseline the
    /// speedup figures and determinism tests compare against).
    pub fn run_serial(jobs: &[Job]) -> BatchReport {
        let started = Instant::now();
        let reports = jobs
            .iter()
            .enumerate()
            .map(|(index, job)| execute(index, job))
            .collect();
        BatchReport {
            reports,
            wall: started.elapsed(),
            workers: 1,
        }
    }
}

/// Executes one job, translating panics into faults.
fn execute(index: usize, job: &Job) -> JobReport {
    let started = Instant::now();
    let result = catch_unwind(AssertUnwindSafe(|| crate::job::run(job)));
    let (outcome, recovery) = match result {
        Ok((Ok(output), recovery)) => (JobOutcome::Completed(output), recovery),
        Ok((Err(fault), recovery)) => (JobOutcome::Fault(fault), recovery),
        Err(panic) => (
            JobOutcome::Fault(JobFault::Panic(panic_message(&panic))),
            RecoveryStats::default(),
        ),
    };
    JobReport {
        index,
        name: job.name.clone(),
        wall: started.elapsed(),
        outcome,
        recovery,
    }
}

fn panic_message(panic: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// The result of one batch run.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Per-job reports in submission order.
    pub reports: Vec<JobReport>,
    /// Wall-clock time of the whole batch.
    pub wall: Duration,
    /// Worker threads actually used.
    pub workers: usize,
}

impl BatchReport {
    /// `true` when both batches produced identical per-job outcomes
    /// (outputs, cycle counts and statistics; wall times and recovery
    /// records are ignored).
    pub fn outcomes_match(&self, other: &BatchReport) -> bool {
        self.reports.len() == other.reports.len()
            && self
                .reports
                .iter()
                .zip(&other.reports)
                .all(|(a, b)| a.name == b.name && a.outcome == b.outcome)
    }

    /// Aggregates the batch into summary figures.
    pub fn summary(&self) -> BatchSummary {
        let mut merged = Stats::new(0);
        let mut completed = 0usize;
        let mut faulted = 0usize;
        let mut recovered = 0usize;
        let mut faults_detected = 0u64;
        let mut total_cycles = 0u64;
        let mut serial_wall = Duration::ZERO;
        let mut histogram = [0usize; 10];
        for report in &self.reports {
            serial_wall += report.wall;
            faults_detected += u64::from(report.recovery.faults_detected);
            if report.recovery.recovered {
                recovered += 1;
            }
            match &report.outcome {
                JobOutcome::Completed(out) => {
                    completed += 1;
                    total_cycles += out.cycles;
                    merged.merge(&out.stats);
                    let bucket = ((out.stats.utilization() * 10.0) as usize).min(9);
                    histogram[bucket] += 1;
                }
                JobOutcome::Fault(_) => faulted += 1,
            }
        }
        let secs = self.wall.as_secs_f64();
        BatchSummary {
            jobs: self.reports.len(),
            completed,
            faulted,
            recovered,
            faults_detected,
            workers: self.workers,
            total_cycles,
            total_ops: merged.total_ops(),
            wall: self.wall,
            serial_wall,
            speedup: if secs > 0.0 {
                serial_wall.as_secs_f64() / secs
            } else {
                1.0
            },
            sim_mips: if secs > 0.0 {
                merged.total_ops() as f64 / secs / 1.0e6
            } else {
                0.0
            },
            cycles_per_sec: if secs > 0.0 {
                total_cycles as f64 / secs
            } else {
                0.0
            },
            utilization_histogram: histogram,
            merged,
        }
    }
}

/// Batch-level aggregate figures.
#[derive(Clone, Debug)]
pub struct BatchSummary {
    /// Jobs submitted.
    pub jobs: usize,
    /// Jobs that completed.
    pub completed: usize,
    /// Jobs that faulted (including panics).
    pub faulted: usize,
    /// Jobs that completed despite detected faults (rollback recovery).
    pub recovered: usize,
    /// Detected faults summed across every job's attempts.
    pub faults_detected: u64,
    /// Worker threads used.
    pub workers: usize,
    /// Simulated cycles across completed jobs.
    pub total_cycles: u64,
    /// ALU + multiplier operations across completed jobs.
    pub total_ops: u64,
    /// Merged statistics across completed jobs.
    pub merged: Stats,
    /// Batch wall-clock time.
    pub wall: Duration,
    /// Sum of per-job wall times (the work a single thread would do).
    pub serial_wall: Duration,
    /// `serial_wall / wall` — observed parallel speedup.
    pub speedup: f64,
    /// Simulated operations per wall-clock second, in millions.
    pub sim_mips: f64,
    /// Simulated cycles per wall-clock second.
    pub cycles_per_sec: f64,
    /// Completed-job count per 10%-wide fabric-utilization bucket.
    pub utilization_histogram: [usize; 10],
}

impl BatchSummary {
    /// Renders the summary as an aligned text block.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "batch: {} jobs ({} completed, {} faulted, {} recovered) on {} workers",
            self.jobs, self.completed, self.faulted, self.recovered, self.workers
        );
        if self.faults_detected > 0 {
            let _ = writeln!(
                out,
                "  {} detected faults across all attempts",
                self.faults_detected
            );
        }
        let _ = writeln!(
            out,
            "  wall {:>10.3} ms   serial {:>10.3} ms   speedup {:>5.2}x",
            self.wall.as_secs_f64() * 1e3,
            self.serial_wall.as_secs_f64() * 1e3,
            self.speedup
        );
        let _ = writeln!(
            out,
            "  {:>12} simulated cycles   {:>12} ops   {:>8.2} sim-MIPS   {:>10.0} cycles/s",
            self.total_cycles, self.total_ops, self.sim_mips, self.cycles_per_sec
        );
        let _ = write!(out, "  utilization ");
        for (i, count) in self.utilization_histogram.iter().enumerate() {
            let _ = write!(out, "[{}0-{}0%:{}] ", i, i + 1, count);
        }
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{CycleBudget, JobOutput};
    use systolic_ring_core::MachineParams;
    use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
    use systolic_ring_isa::RingGeometry;

    fn mac_job(name: &str, cycles: u64) -> Job {
        Job::from_config(
            name.to_owned(),
            RingGeometry::RING_8,
            MachineParams::PAPER,
            |m| {
                let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0);
                for d in 0..m.geometry().dnodes() {
                    m.set_local_program(d, &[mac])?;
                    m.set_mode(d, DnodeMode::Local);
                }
                Ok(())
            },
            CycleBudget::Cycles(cycles),
        )
    }

    #[test]
    fn batch_matches_serial_bit_for_bit() {
        let jobs: Vec<Job> = (0..12).map(|i| mac_job(&format!("j{i}"), 50 + i)).collect();
        let parallel = BatchRunner::with_workers(4).run(&jobs);
        let serial = BatchRunner::run_serial(&jobs);
        assert!(parallel.outcomes_match(&serial));
        assert_eq!(parallel.summary().completed, 12);
    }

    #[test]
    fn report_order_matches_submission_order() {
        let jobs: Vec<Job> = (0..9).map(|i| mac_job(&format!("j{i}"), 10)).collect();
        let report = BatchRunner::with_workers(3).run(&jobs);
        for (i, r) in report.reports.iter().enumerate() {
            assert_eq!(r.index, i);
            assert_eq!(r.name, format!("j{i}"));
        }
    }

    #[test]
    fn a_panicking_job_does_not_poison_the_batch() {
        let mut jobs = vec![mac_job("ok-0", 20)];
        jobs.push(Job::custom("bomb", || panic!("deliberate test panic")));
        jobs.push(mac_job("ok-1", 20));
        let report = BatchRunner::with_workers(2).run(&jobs);
        let summary = report.summary();
        assert_eq!(summary.completed, 2);
        assert_eq!(summary.faulted, 1);
        match &report.reports[1].outcome {
            JobOutcome::Fault(JobFault::Panic(msg)) => {
                assert!(msg.contains("deliberate test panic"))
            }
            other => panic!("expected panic fault, got {other:?}"),
        }
    }

    #[test]
    fn custom_jobs_flow_through() {
        let job = Job::custom("fixed", || {
            Ok(JobOutput {
                outputs: vec![vec![1, 2, 3]],
                cycles: 7,
                stats: Stats::new(1),
            })
        });
        let report = BatchRunner::with_workers(1).run(&[job]);
        let out = report.reports[0].outcome.output().expect("completed");
        assert_eq!(out.outputs[0], vec![1, 2, 3]);
        assert_eq!(report.summary().total_cycles, 7);
    }

    #[test]
    fn summary_merges_stats_and_renders() {
        let jobs: Vec<Job> = (0..4).map(|i| mac_job(&format!("j{i}"), 100)).collect();
        let report = BatchRunner::with_workers(2).run(&jobs);
        let summary = report.summary();
        assert_eq!(summary.total_cycles, 400);
        // 8 Dnodes all MACing every cycle in every job.
        assert_eq!(summary.merged.cycles, 400);
        assert_eq!(summary.total_ops, 4 * 100 * 8 * 2);
        assert_eq!(summary.utilization_histogram[9], 4);
        let text = summary.render();
        assert!(text.contains("4 jobs"));
        assert!(text.contains("speedup"));
    }

    #[test]
    fn zero_and_oversubscribed_worker_counts_are_clamped() {
        assert_eq!(BatchRunner::with_workers(0).workers(), 1);
        let jobs = vec![mac_job("only", 5)];
        let report = BatchRunner::with_workers(64).run(&jobs);
        assert_eq!(report.workers, 1); // clamped to job count
        assert_eq!(report.summary().completed, 1);
    }
}
