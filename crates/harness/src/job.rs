//! Batch jobs: self-contained descriptions of one simulator run.
//!
//! A [`Job`] is everything the [`runner`](crate::runner) needs to execute
//! a workload on a worker thread with no shared state: either a full
//! machine description (geometry, sizing parameters, an assembled
//! [`Object`] or a raw configuration closure, bound input streams, open
//! sinks and a cycle budget) or an opaque workload closure for kernels
//! whose drivers already own their machine setup and output extraction.
//!
//! Execution never lets one job hurt another: simulator faults, rejected
//! configurations, exceeded budgets and even panics inside a job are
//! captured as a [`JobFault`] in that job's [`JobReport`].

use std::time::{Duration, Instant};

use systolic_ring_core::{
    ConfigError, FaultConfig, FaultSite, MachineParams, RingMachine, SimError, Stats,
};
use systolic_ring_isa::object::Object;
use systolic_ring_isa::proof::ProofManifest;
use systolic_ring_isa::{RingGeometry, Word16};

/// A machine-configuration closure: applied to a freshly reset machine.
pub type SetupFn = dyn Fn(&mut RingMachine) -> Result<(), ConfigError> + Send + Sync;

/// A self-contained workload closure (kernel adapters use this form).
pub type CustomFn = dyn Fn() -> Result<JobOutput, String> + Send + Sync;

/// How long a machine job runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CycleBudget {
    /// Run exactly this many cycles.
    Cycles(u64),
    /// Run until the controller halts, faulting past `max_cycles`.
    UntilHalt {
        /// Upper bound on simulated cycles before the job is declared
        /// divergent.
        max_cycles: u64,
    },
}

/// One bound host input stream.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamBinding {
    /// Switch index.
    pub switch: usize,
    /// Host port index at that switch.
    pub port: usize,
    /// Words delivered in order.
    pub words: Vec<Word16>,
}

/// A (switch, port) sink to open and drain into the job output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SinkRef {
    /// Switch index.
    pub switch: usize,
    /// Host port index at that switch.
    pub port: usize,
}

/// How a machine job's fabric and controller are set up.
pub enum JobSetup {
    /// Load an assembled object (geometry checks included).
    Object(Box<Object>),
    /// Apply a raw configuration closure.
    Configure(Box<SetupFn>),
}

impl std::fmt::Debug for JobSetup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobSetup::Object(_) => f.write_str("JobSetup::Object(..)"),
            JobSetup::Configure(_) => f.write_str("JobSetup::Configure(..)"),
        }
    }
}

/// A full machine-level job description.
#[derive(Debug)]
pub struct MachineJob {
    /// Ring geometry to instantiate.
    pub geometry: RingGeometry,
    /// Machine sizing parameters.
    pub params: MachineParams,
    /// Fabric/controller setup.
    pub setup: JobSetup,
    /// Host input streams to attach before running.
    pub inputs: Vec<StreamBinding>,
    /// Host sinks to open before and drain after the run.
    pub sinks: Vec<SinkRef>,
    /// Cycle budget.
    pub budget: CycleBudget,
    /// Proof manifest from the pre-flight lint, attached to the machine
    /// after the object loads (see [`RingMachine::attach_proof`]); the
    /// machine re-validates the hash and silently ignores manifests that
    /// prove nothing, so carrying one is never a behaviour change.
    pub proof: Option<Box<ProofManifest>>,
}

/// The workload carried by a [`Job`].
pub enum JobWork {
    /// A declarative machine run.
    Machine(MachineJob),
    /// An opaque workload closure.
    Custom(Box<CustomFn>),
}

impl std::fmt::Debug for JobWork {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobWork::Machine(m) => f.debug_tuple("Machine").field(m).finish(),
            JobWork::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// Bounded fault-recovery policy for one job.
///
/// When a job's machine reports a *detected* fault (configuration parity
/// mismatch, tagged datapath fault or watchdog expiry — see
/// [`SimError::is_detected_fault`]), the executor may roll the machine
/// back to its post-setup checkpoint, re-salt the transient fault streams
/// and try again, up to `max_retries` times. With `remap` set, a
/// stuck-output fault additionally triggers a repair before the retry:
/// the faulty Dnode's role is migrated onto a spare Dnode in the same
/// layer (see [`RingMachine::remap_dnode`]), so a permanent fault does
/// not burn every remaining retry.
///
/// Custom jobs cannot be checkpointed from outside, so a retry re-runs
/// the whole workload closure under a re-salted
/// [`systolic_ring_core::with_faults`] scope instead.
///
/// # Backoff
///
/// By default retries are immediate — right for transient *simulated*
/// faults, where the rollback already undid the damage. Long-running
/// service jobs retrying against a congested shared pool want spacing
/// instead: [`RetryPolicy::backoff`] arms exponential backoff (the delay
/// before retry `n` is `base << (n - 1)`, capped at `max`), and
/// [`RetryPolicy::with_jitter`] adds a deterministic, seed-derived
/// jitter of up to +50% per attempt (drawn from
/// [`TestRng`](crate::testkit::TestRng), so a given `(seed, attempt)`
/// always produces the same schedule — reproducible in tests, decorrelated
/// across jobs that use different seeds). [`RetryPolicy::delay`] is the
/// pure schedule function the executors sleep on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Retries after the first attempt (`0` disables recovery).
    pub max_retries: u32,
    /// Attempt spare-Dnode remapping on stuck-output faults.
    pub remap: bool,
    /// Delay before the first retry (`ZERO` keeps retries immediate).
    pub backoff_base: Duration,
    /// Upper bound on any single backoff delay (jitter included).
    pub backoff_max: Duration,
    /// Seed for the deterministic per-attempt jitter draw.
    pub jitter_seed: u64,
}

impl RetryPolicy {
    /// No recovery: the first detected fault fails the job.
    pub const OFF: RetryPolicy = RetryPolicy {
        max_retries: 0,
        remap: false,
        backoff_base: Duration::ZERO,
        backoff_max: Duration::ZERO,
        jitter_seed: 0,
    };

    /// A policy allowing `max_retries` immediate rollback-retries, no
    /// remapping.
    pub const fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            ..RetryPolicy::OFF
        }
    }

    /// Enables or disables spare-Dnode remapping on stuck faults.
    pub const fn with_remap(mut self, remap: bool) -> Self {
        self.remap = remap;
        self
    }

    /// Arms exponential backoff: retry `n` waits `base << (n - 1)`,
    /// saturating at `max`. A zero `base` keeps retries immediate.
    pub const fn backoff(mut self, base: Duration, max: Duration) -> Self {
        self.backoff_base = base;
        self.backoff_max = max;
        self
    }

    /// Seeds the deterministic jitter draw (only meaningful with a
    /// nonzero backoff base). Jobs sharing a seed share a schedule;
    /// give each tenant or job its own seed to decorrelate retry storms.
    pub const fn with_jitter(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// `true` when at least one retry is allowed.
    pub fn is_active(&self) -> bool {
        self.max_retries > 0
    }

    /// The delay before retry `attempt` (1-based; `0` and a zero base
    /// both yield `ZERO`). Pure: `(policy, attempt)` fully determines the
    /// result, jitter included, so schedules are testable and replayable.
    pub fn delay(&self, attempt: u32) -> Duration {
        if attempt == 0 || self.backoff_base.is_zero() {
            return Duration::ZERO;
        }
        let base = self.backoff_base.as_nanos() as u64;
        let exp = base.saturating_shl(attempt - 1);
        // Up to +50% deterministic jitter, drawn per (seed, attempt).
        let mut rng = crate::testkit::TestRng::new(self.jitter_seed ^ (u64::from(attempt) << 32));
        let jitter = rng.below(exp / 2 + 1);
        let capped = exp
            .saturating_add(jitter)
            .min(self.backoff_max.as_nanos() as u64);
        Duration::from_nanos(capped)
    }
}

/// `u64::checked_shl` that saturates instead of wrapping — a retry count
/// past 63 pins the pre-cap delay at the maximum rather than cycling.
trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if self == 0 {
            return 0;
        }
        if shift >= self.leading_zeros() {
            u64::MAX
        } else {
            self << shift
        }
    }
}

/// Per-job fault/recovery outcome, reported alongside the job outcome.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Detected faults observed across all attempts.
    pub faults_detected: u32,
    /// Rollback-retries actually performed.
    pub retries: u32,
    /// Spare-Dnode remaps performed.
    pub remaps: u32,
    /// `true` when the job completed despite at least one detected fault.
    pub recovered: bool,
}

impl RecoveryStats {
    /// `true` when no fault activity occurred at all.
    pub fn is_clean(&self) -> bool {
        *self == RecoveryStats::default()
    }
}

/// One batch job.
#[derive(Debug)]
pub struct Job {
    /// Display name, carried into the report.
    pub name: String,
    /// The workload.
    pub work: JobWork,
    /// Optional wall-clock limit, enforced at cycle-slice granularity.
    pub wall_limit: Option<Duration>,
    /// Fault-injection configuration applied at execution time: machine
    /// jobs get it merged into their [`MachineParams`]; custom jobs run
    /// under a [`systolic_ring_core::with_faults`] scope.
    pub faults: Option<FaultConfig>,
    /// Recovery policy applied when detected faults interrupt the run.
    pub retry: RetryPolicy,
    /// First recorded builder misuse (see [`Job::with_input`]) or
    /// pre-flight lint failure (see [`Job::from_object`]); surfaced as
    /// [`JobFault::Config`] without ever building a machine.
    builder_error: Option<String>,
}

impl Job {
    /// A machine job configured by loading an assembled object.
    ///
    /// The object is pre-flighted through `ringlint`'s static checks
    /// against this job's geometry and machine sizing. A lint *error* — a
    /// configuration the machine is statically guaranteed to reject or
    /// fault on — is recorded as a deferred builder error, so the
    /// [`runner`](crate::runner) rejects the job before any machine is
    /// built or scheduled and reports it as a [`JobFault::Config`].
    /// Warnings do not fail pre-flight. [`Job::from_object_unchecked`] is
    /// the escape hatch for deliberately out-of-contract objects.
    pub fn from_object(
        name: impl Into<String>,
        geometry: RingGeometry,
        params: MachineParams,
        object: Object,
        budget: CycleBudget,
    ) -> Self {
        let limits = systolic_ring_lint::LintLimits {
            contexts: params.contexts,
            pipe_depth: params.pipe_depth,
            prog_capacity: params.prog_capacity,
            dmem_capacity: params.dmem_capacity,
            geometry: Some(geometry),
        };
        let report = systolic_ring_lint::lint_object_with(&object, &limits);
        let proof = report.proof.clone();
        let preflight = report
            .into_result(false)
            .err()
            .map(|e| format!("object failed pre-flight lint: {e}"));
        let mut job = Job::from_object_unchecked(name, geometry, params, object, budget);
        job.builder_error = preflight;
        if let JobWork::Machine(machine) = &mut job.work {
            machine.proof = Some(Box::new(proof));
        }
        job
    }

    /// [`Job::from_object`] without the pre-flight lint.
    pub fn from_object_unchecked(
        name: impl Into<String>,
        geometry: RingGeometry,
        params: MachineParams,
        object: Object,
        budget: CycleBudget,
    ) -> Self {
        Job {
            name: name.into(),
            work: JobWork::Machine(MachineJob {
                geometry,
                params,
                setup: JobSetup::Object(Box::new(object)),
                inputs: Vec::new(),
                sinks: Vec::new(),
                budget,
                proof: None,
            }),
            wall_limit: None,
            faults: None,
            retry: RetryPolicy::OFF,
            builder_error: None,
        }
    }

    /// A machine job configured by a raw closure.
    pub fn from_config<F>(
        name: impl Into<String>,
        geometry: RingGeometry,
        params: MachineParams,
        setup: F,
        budget: CycleBudget,
    ) -> Self
    where
        F: Fn(&mut RingMachine) -> Result<(), ConfigError> + Send + Sync + 'static,
    {
        Job {
            name: name.into(),
            work: JobWork::Machine(MachineJob {
                geometry,
                params,
                setup: JobSetup::Configure(Box::new(setup)),
                inputs: Vec::new(),
                sinks: Vec::new(),
                budget,
                proof: None,
            }),
            wall_limit: None,
            faults: None,
            retry: RetryPolicy::OFF,
            builder_error: None,
        }
    }

    /// A job wrapping a self-contained workload closure.
    pub fn custom<F>(name: impl Into<String>, work: F) -> Self
    where
        F: Fn() -> Result<JobOutput, String> + Send + Sync + 'static,
    {
        Job {
            name: name.into(),
            work: JobWork::Custom(Box::new(work)),
            wall_limit: None,
            faults: None,
            retry: RetryPolicy::OFF,
            builder_error: None,
        }
    }

    /// Binds an input stream (machine jobs only).
    ///
    /// # Contract
    ///
    /// Custom jobs own their machine setup, so they have nowhere to bind a
    /// stream. Calling this on a custom job never panics; the misuse is
    /// recorded on the job and surfaced as a [`JobFault::Config`] when the
    /// job executes, so a mis-built batch fails loudly in its report
    /// instead of taking down the builder thread.
    pub fn with_input<I>(mut self, switch: usize, port: usize, words: I) -> Self
    where
        I: IntoIterator<Item = Word16>,
    {
        match &mut self.work {
            JobWork::Machine(m) => m.inputs.push(StreamBinding {
                switch,
                port,
                words: words.into_iter().collect(),
            }),
            JobWork::Custom(_) => self.note_misuse("with_input"),
        }
        self
    }

    /// Opens a sink whose drained words become job outputs (machine jobs
    /// only).
    ///
    /// # Contract
    ///
    /// Same deferred-error contract as [`Job::with_input`]: on a custom
    /// job the misuse is recorded and reported as [`JobFault::Config`] at
    /// execution time, never a panic.
    pub fn with_sink(mut self, switch: usize, port: usize) -> Self {
        match &mut self.work {
            JobWork::Machine(m) => m.sinks.push(SinkRef { switch, port }),
            JobWork::Custom(_) => self.note_misuse("with_sink"),
        }
        self
    }

    /// Records the first builder misuse for deferred reporting.
    fn note_misuse(&mut self, method: &str) {
        if self.builder_error.is_none() {
            self.builder_error = Some(format!(
                "{method} on a custom job: custom jobs own their machine setup"
            ));
        }
    }

    /// The first recorded builder misuse, if any (the job will report it
    /// as a [`JobFault::Config`] when executed).
    pub fn builder_error(&self) -> Option<&str> {
        self.builder_error.as_deref()
    }

    /// Enables fault injection/detection for this job.
    ///
    /// Machine jobs get `faults` merged into their [`MachineParams`] when
    /// the machine is built; custom jobs — kernel drivers that build their
    /// machines internally — run under a
    /// [`systolic_ring_core::with_faults`] scope, which follows the
    /// closure onto whichever worker thread runs it. On a retry the
    /// configuration is re-salted per attempt so the same transient-fault
    /// schedule does not simply replay.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Sets the recovery policy applied when detected faults interrupt
    /// this job.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Arms the controller watchdog for this job's machine (machine jobs
    /// only; `0` disarms). Follows the same deferred-error contract as
    /// [`Job::with_input`] on custom jobs.
    pub fn with_watchdog(mut self, interval: u64) -> Self {
        match &mut self.work {
            JobWork::Machine(m) => m.params = m.params.with_watchdog(interval),
            JobWork::Custom(_) => self.note_misuse("with_watchdog"),
        }
        self
    }

    /// Sets a wall-clock limit for the job.
    pub fn with_wall_limit(mut self, limit: Duration) -> Self {
        self.wall_limit = Some(limit);
        self
    }

    /// Forces the predecoded configuration cache on or off for every
    /// machine this job creates.
    ///
    /// Machine jobs get the flag set directly on their
    /// [`MachineParams`]. Custom jobs — kernel drivers that build their
    /// machines internally with fixed parameters — are wrapped in a
    /// [`systolic_ring_core::with_decode_cache`] scope, which follows the
    /// closure onto whichever worker thread runs it. This is how the
    /// fast-vs-slow differential oracle obtains reference runs of every
    /// kernel family without widening each driver's signature.
    pub fn with_decode_cache(mut self, enabled: bool) -> Self {
        self.work = match self.work {
            JobWork::Machine(mut m) => {
                m.params = m.params.with_decode_cache(enabled);
                JobWork::Machine(m)
            }
            JobWork::Custom(work) => JobWork::Custom(Box::new(move || {
                systolic_ring_core::with_decode_cache(enabled, &*work)
            })),
        };
        self
    }

    /// Forces the fused steady-state engine on or off for every machine
    /// this job creates (see
    /// [`systolic_ring_core::MachineParams::fused`]; fusion additionally
    /// requires the decode cache).
    ///
    /// Machine jobs get the flag set directly on their
    /// [`MachineParams`]; custom jobs are wrapped in a
    /// [`systolic_ring_core::with_fused`] scope that follows the closure
    /// onto whichever worker thread runs it — the same mechanism as
    /// [`Job::with_decode_cache`], and how the three-way differential
    /// oracle (slow / decoded / fused) obtains per-path runs of every
    /// kernel family without widening each driver's signature.
    pub fn with_fused(mut self, enabled: bool) -> Self {
        self.work = match self.work {
            JobWork::Machine(mut m) => {
                m.params = m.params.with_fused(enabled);
                JobWork::Machine(m)
            }
            JobWork::Custom(work) => JobWork::Custom(Box::new(move || {
                systolic_ring_core::with_fused(enabled, &*work)
            })),
        };
        self
    }

    /// Forces the ahead-of-time superblock cache on or off for every
    /// machine this job creates (see
    /// [`systolic_ring_core::MachineParams::aot`]; the aot tier
    /// additionally requires the decode cache and the fused engine).
    ///
    /// Machine jobs get the flag set directly on their
    /// [`MachineParams`]; custom jobs are wrapped in a
    /// [`systolic_ring_core::with_aot`] scope that follows the closure
    /// onto whichever worker thread runs it — the same mechanism as
    /// [`Job::with_fused`], and how the four-way differential oracle
    /// (slow / decoded / fused / aot) obtains per-tier runs of every
    /// kernel family without widening each driver's signature.
    pub fn with_aot(mut self, enabled: bool) -> Self {
        self.work = match self.work {
            JobWork::Machine(mut m) => {
                m.params = m.params.with_aot(enabled);
                JobWork::Machine(m)
            }
            JobWork::Custom(work) => JobWork::Custom(Box::new(move || {
                systolic_ring_core::with_aot(enabled, &*work)
            })),
        };
        self
    }
}

/// A completed job's results.
#[derive(Clone, Debug, PartialEq)]
pub struct JobOutput {
    /// Output words, one vector per declared sink (machine jobs) or in
    /// workload-defined order (custom jobs).
    pub outputs: Vec<Vec<i16>>,
    /// Simulated cycles consumed — exactly the cycles executed, with no
    /// overshoot at budget boundaries. Machine jobs inherit the exact
    /// budget-boundary semantics of
    /// [`RingMachine::run_until_halt`]: a `Cycles(n)` budget reports `n`,
    /// and an `UntilHalt` run reports the cycle on which the halt retired
    /// (the `halt` occupies its own cycle), never a mid-slice rounding.
    pub cycles: u64,
    /// Machine statistics over the run.
    pub stats: Stats,
}

/// Why a job failed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum JobFault {
    /// The machine rejected the configuration or object.
    Config(String),
    /// The simulator faulted mid-run.
    Sim(String),
    /// `CycleBudget::UntilHalt` was exhausted without a halt.
    Diverged {
        /// The exceeded bound.
        max_cycles: u64,
    },
    /// The wall-clock limit elapsed.
    WallLimit {
        /// The configured limit.
        limit: Duration,
    },
    /// A custom workload reported an error.
    Workload(String),
    /// The job panicked; the batch survives.
    Panic(String),
}

impl JobFault {
    /// `true` when the fault is a *detected* machine fault — a
    /// configuration parity mismatch, a tagged datapath fault or a
    /// watchdog expiry — rather than silent divergence or an unrelated
    /// failure. Custom jobs stringify
    /// [`SimError`] on the way out, so detection is
    /// recognized by the stable phrases of the corresponding
    /// [`SimError`] `Display` implementations.
    pub fn is_detected_fault(&self) -> bool {
        match self {
            JobFault::Sim(msg) | JobFault::Workload(msg) => is_detected_fault_message(msg),
            _ => false,
        }
    }
}

/// Recognizes the `Display` phrases of the detected-fault
/// [`SimError`] variants inside a stringified error.
pub(crate) fn is_detected_fault_message(msg: &str) -> bool {
    msg.contains("parity mismatch")
        || msg.contains("datapath fault")
        || msg.contains("watchdog expired")
}

impl std::fmt::Display for JobFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JobFault::Config(msg) => write!(f, "configuration rejected: {msg}"),
            JobFault::Sim(msg) => write!(f, "simulator fault: {msg}"),
            JobFault::Diverged { max_cycles } => {
                write!(f, "no halt within {max_cycles} cycles")
            }
            JobFault::WallLimit { limit } => write!(f, "wall-clock limit {limit:?} exceeded"),
            JobFault::Workload(msg) => write!(f, "workload error: {msg}"),
            JobFault::Panic(msg) => write!(f, "job panicked: {msg}"),
        }
    }
}

/// Success-or-fault per job.
///
/// `Completed` carries the full output inline: outcomes are produced on
/// the batch hot path and consumed immediately, so boxing the large
/// variant would trade an allocation per job for nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum JobOutcome {
    /// The job ran to completion.
    Completed(JobOutput),
    /// The job failed; see the fault.
    Fault(JobFault),
}

impl JobOutcome {
    /// The output of a completed job.
    pub fn output(&self) -> Option<&JobOutput> {
        match self {
            JobOutcome::Completed(out) => Some(out),
            JobOutcome::Fault(_) => None,
        }
    }
}

/// The per-job record produced by the runner.
#[derive(Clone, Debug)]
pub struct JobReport {
    /// Index of the job in the submitted batch.
    pub index: usize,
    /// The job's display name.
    pub name: String,
    /// Wall-clock time this job took on its worker.
    pub wall: Duration,
    /// Success or captured failure.
    pub outcome: JobOutcome,
    /// Fault/recovery record across the job's attempts (all zeros when no
    /// fault machinery was exercised).
    pub recovery: RecoveryStats,
}

/// Cycles per wall-limit check; small enough to bound overshoot, large
/// enough to amortize the `Instant::now` call. The lane-fused group
/// executor in the runner and the service scheduler's preemption
/// granularity use the same slice so their cycle accounting lines up
/// with the single-job path.
pub const SLICE_CYCLES: u64 = 1024;

/// Executes a job to completion on the calling thread, returning the
/// result together with its fault/recovery record. Deferred builder
/// errors fail the job here, before any machine is built.
pub(crate) fn run(job: &Job) -> (Result<JobOutput, JobFault>, RecoveryStats) {
    if let Some(msg) = &job.builder_error {
        return (Err(JobFault::Config(msg.clone())), RecoveryStats::default());
    }
    match &job.work {
        JobWork::Machine(machine) => run_machine(machine, job),
        JobWork::Custom(work) => run_custom(work, job),
    }
}

/// Sleeps out a backoff delay (no-op for the immediate-retry default, so
/// the classic rollback loop costs nothing extra).
fn sleep_backoff(delay: Duration) {
    if !delay.is_zero() {
        std::thread::sleep(delay);
    }
}

/// Executes a custom job, retrying under a re-salted fault scope when the
/// workload reports a detected fault and the retry policy allows it.
fn run_custom(work: &CustomFn, spec: &Job) -> (Result<JobOutput, JobFault>, RecoveryStats) {
    let started = Instant::now();
    let mut recovery = RecoveryStats::default();
    let mut attempt: u32 = 0;
    loop {
        let result = match spec.faults {
            Some(cfg) => systolic_ring_core::with_faults(
                cfg.with_salt(cfg.salt.wrapping_add(u64::from(attempt))),
                work,
            ),
            None => work(),
        };
        if let Some(limit) = spec.wall_limit {
            if started.elapsed() >= limit {
                return (Err(JobFault::WallLimit { limit }), recovery);
            }
        }
        match result {
            Ok(out) => {
                recovery.recovered = recovery.faults_detected > 0;
                return (Ok(out), recovery);
            }
            Err(msg) => {
                let fault = JobFault::Workload(msg);
                if fault.is_detected_fault() {
                    recovery.faults_detected += 1;
                    if attempt < spec.retry.max_retries {
                        attempt += 1;
                        recovery.retries += 1;
                        sleep_backoff(spec.retry.delay(attempt));
                        continue;
                    }
                }
                return (Err(fault), recovery);
            }
        }
    }
}

/// Executes a machine job to completion on the calling thread.
///
/// Recovery loop: a post-setup [`systolic_ring_core::Checkpoint`] is
/// taken when the retry policy is active; a detected fault mid-run rolls
/// the machine back to it, optionally remaps a stuck Dnode onto a spare,
/// re-salts the transient fault streams and re-runs. The cycle budget is
/// accounted against `m.cycle()` so a rollback refunds the cycles of the
/// abandoned attempt.
fn run_machine(job: &MachineJob, spec: &Job) -> (Result<JobOutput, JobFault>, RecoveryStats) {
    let mut recovery = RecoveryStats::default();
    let result = run_machine_inner(job, spec, &mut recovery);
    recovery.recovered = result.is_ok() && recovery.faults_detected > 0;
    (result, recovery)
}

/// Builds, configures and wires a machine for a machine job: the shared
/// prefix of the single-job executor and the runner's lane-fused group
/// path, so the two construct bit-identical machines by construction.
pub(crate) fn build_machine(
    job: &MachineJob,
    faults: Option<FaultConfig>,
) -> Result<RingMachine, JobFault> {
    let mut params = job.params;
    if let Some(cfg) = faults {
        params = params.with_faults(cfg);
    }
    let mut m = RingMachine::new(job.geometry, params);
    match &job.setup {
        JobSetup::Object(object) => {
            m.load(object)
                .map_err(|e| JobFault::Config(e.to_string()))?;
            if let Some(proof) = &job.proof {
                // Hash-validated: a stale or foreign manifest is refused
                // and the machine simply keeps its runtime guards.
                m.attach_proof(proof);
            }
        }
        JobSetup::Configure(setup) => setup(&mut m).map_err(|e| JobFault::Config(e.to_string()))?,
    }
    for sink in &job.sinks {
        m.open_sink(sink.switch, sink.port)
            .map_err(|e| JobFault::Config(e.to_string()))?;
    }
    for input in &job.inputs {
        m.attach_input(input.switch, input.port, input.words.iter().copied())
            .map_err(|e| JobFault::Config(e.to_string()))?;
    }
    Ok(m)
}

fn run_machine_inner(
    job: &MachineJob,
    spec: &Job,
    recovery: &mut RecoveryStats,
) -> Result<JobOutput, JobFault> {
    let started = Instant::now();
    let mut m = build_machine(job, spec.faults)?;

    let mut checkpoint = spec.retry.is_active().then(|| m.checkpoint());
    let mut attempt: u32 = 0;
    let max_cycles = match job.budget {
        CycleBudget::Cycles(n) => n,
        CycleBudget::UntilHalt { max_cycles } => max_cycles,
    };
    while m.cycle() < max_cycles {
        if let CycleBudget::UntilHalt { .. } = job.budget {
            if m.controller().is_halted() {
                break;
            }
        }
        if let Some(limit) = spec.wall_limit {
            if started.elapsed() >= limit {
                return Err(JobFault::WallLimit { limit });
            }
        }
        let slice = SLICE_CYCLES.min(max_cycles - m.cycle());
        let stepped = match job.budget {
            CycleBudget::Cycles(_) => m.run(slice),
            // Delegate the slice to the machine's own halt-aware runner
            // so the two agree on budget-boundary accounting by
            // construction: a `CycleLimit` on the slice means exactly
            // `slice` cycles ran (never a partial step), and a halt
            // stops the count on the halt's own cycle.
            CycleBudget::UntilHalt { .. } => match m.run_until_halt(slice) {
                Ok(_) | Err(SimError::CycleLimit { .. }) => Ok(()),
                Err(e) => Err(e),
            },
        };
        if let Err(e) = stepped {
            if e.is_detected_fault() {
                recovery.faults_detected += 1;
                if let Some(ckpt) = checkpoint.as_mut() {
                    if attempt < spec.retry.max_retries {
                        attempt += 1;
                        recovery.retries += 1;
                        m.restore(ckpt);
                        if spec.retry.remap {
                            if let SimError::DatapathFault {
                                site: FaultSite::StuckOut { dnode },
                                ..
                            } = e
                            {
                                let (layer, _) = m.geometry().dnode_position(dnode);
                                if let Some(spare) = m.find_spare(layer) {
                                    if m.remap_dnode(dnode, spare).is_ok() {
                                        recovery.remaps += 1;
                                        // The repair is permanent: fold it
                                        // into the rollback point so later
                                        // retries keep it.
                                        *ckpt = m.checkpoint();
                                    }
                                }
                            }
                        }
                        m.rearm_faults(u64::from(attempt));
                        sleep_backoff(spec.retry.delay(attempt));
                        continue;
                    }
                }
            }
            return Err(JobFault::Sim(e.to_string()));
        }
    }
    if let CycleBudget::UntilHalt { max_cycles } = job.budget {
        if !m.controller().is_halted() {
            return Err(JobFault::Diverged { max_cycles });
        }
    }

    let mut outputs = Vec::with_capacity(job.sinks.len());
    for sink in &job.sinks {
        let words = m
            .take_sink(sink.switch, sink.port)
            .map_err(|e| JobFault::Config(e.to_string()))?;
        outputs.push(words.into_iter().map(|w| w.as_i16()).collect());
    }
    Ok(JobOutput {
        outputs,
        cycles: m.cycle(),
        stats: m.stats().clone(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};

    fn counting_job(cycles: u64) -> Job {
        Job::from_config(
            "count",
            RingGeometry::RING_8,
            MachineParams::PAPER,
            |m| {
                let inc = MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::One)
                    .write_reg(Reg::R0)
                    .write_out();
                m.set_local_program(0, &[inc])?;
                m.set_mode(0, DnodeMode::Local);
                Ok(())
            },
            CycleBudget::Cycles(cycles),
        )
    }

    #[test]
    fn machine_job_runs_and_reports_cycles() {
        let job = counting_job(17);
        let out = run(&job).0.expect("runs");
        assert_eq!(out.cycles, 17);
        assert_eq!(out.stats.cycles, 17);
        assert!(out.outputs.is_empty());
    }

    #[test]
    fn until_halt_without_halt_is_divergence() {
        let job = Job::from_config(
            "spin",
            RingGeometry::RING_8,
            MachineParams::PAPER,
            |_| Ok(()),
            CycleBudget::UntilHalt { max_cycles: 100 },
        );
        // An empty controller program never halts by itself? The reset
        // controller is halted; load a spin loop instead.
        match run(&job).0 {
            Ok(out) => assert!(out.cycles <= 100),
            Err(JobFault::Diverged { max_cycles }) => assert_eq!(max_cycles, 100),
            Err(other) => panic!("unexpected fault {other}"),
        }
    }

    #[test]
    fn bad_configuration_is_a_config_fault() {
        let job = Job::from_config(
            "bad",
            RingGeometry::RING_8,
            MachineParams::PAPER,
            |m| m.set_local_program(usize::MAX, &[]).map(|_| ()),
            CycleBudget::Cycles(1),
        );
        assert!(matches!(run(&job).0, Err(JobFault::Config(_))));
    }

    #[test]
    fn builder_attaches_streams_and_sinks() {
        let job = counting_job(4)
            .with_input(0, 0, [Word16::from_i16(5)])
            .with_sink(1, 0);
        let JobWork::Machine(m) = &job.work else {
            panic!("machine job")
        };
        assert_eq!(m.inputs.len(), 1);
        assert_eq!(m.sinks.len(), 1);
    }

    #[test]
    fn fault_display_is_informative() {
        let fault = JobFault::Diverged { max_cycles: 9 };
        assert!(fault.to_string().contains("9 cycles"));
        assert!(JobFault::Panic("boom".into()).to_string().contains("boom"));
    }

    fn halting_job(wait: u16, max_cycles: u64) -> Job {
        use systolic_ring_isa::ctrl::CtrlInstr;
        let program = vec![
            CtrlInstr::Wait { cycles: wait }.encode(),
            CtrlInstr::Halt.encode(),
        ];
        Job::from_config(
            "halting",
            RingGeometry::RING_8,
            MachineParams::PAPER,
            move |m| m.controller_mut().load_program(&program),
            CycleBudget::UntilHalt { max_cycles },
        )
    }

    /// The batch runner's `UntilHalt` accounting must agree exactly with
    /// `RingMachine::run_until_halt`, including at budget boundaries.
    #[test]
    fn until_halt_cycle_accounting_matches_run_until_halt() {
        use systolic_ring_isa::ctrl::CtrlInstr;
        let program = vec![
            CtrlInstr::Wait { cycles: 37 }.encode(),
            CtrlInstr::Halt.encode(),
        ];
        let mut reference = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER);
        reference.controller_mut().load_program(&program).unwrap();
        let halted_at = reference.run_until_halt(10_000).expect("halts");

        let job = halting_job(37, 10_000);
        let out = run(&job).0.expect("runs");
        assert_eq!(out.cycles, halted_at);
        assert_eq!(out.stats.cycles, halted_at);

        // A budget of exactly the halt cycle completes; one less diverges
        // with exactly the budget consumed — no mid-step overshoot.
        let job = halting_job(37, halted_at);
        assert_eq!(run(&job).0.expect("exact fit").cycles, halted_at);

        let job = halting_job(37, halted_at - 1);
        assert!(matches!(
            run(&job).0,
            Err(JobFault::Diverged { max_cycles }) if max_cycles == halted_at - 1
        ));
    }

    #[test]
    fn decode_cache_toggle_reaches_machine_jobs() {
        for (enabled, expect_hits) in [(true, true), (false, false)] {
            let job = counting_job(64).with_decode_cache(enabled);
            let JobWork::Machine(m) = &job.work else {
                panic!("machine job")
            };
            assert_eq!(m.params.decode_cache, enabled);
            let out = run(&job).0.expect("runs");
            assert_eq!(out.stats.decode_cache_hits > 0, expect_hits);
        }
    }

    #[test]
    fn decode_cache_toggle_wraps_custom_jobs() {
        let job = Job::custom("probe", || {
            let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
            m.run(16).map_err(|e| e.to_string())?;
            Ok(JobOutput {
                outputs: Vec::new(),
                cycles: m.cycle(),
                stats: m.stats().clone(),
            })
        })
        .with_decode_cache(false);
        let JobWork::Custom(work) = &job.work else {
            panic!("custom job")
        };
        let out = work().expect("runs");
        assert_eq!(out.stats.decode_cache_hits, 0);
        assert_eq!(out.stats.decode_cache_misses, 0);
    }

    /// Satellite contract: machine-only builders on a custom job never
    /// panic; the misuse is deferred and reported as a `Config` fault.
    #[test]
    fn builder_misuse_on_custom_job_is_deferred_not_a_panic() {
        let job = Job::custom("opaque", || {
            Ok(JobOutput {
                outputs: Vec::new(),
                cycles: 0,
                stats: Stats::new(1),
            })
        })
        .with_sink(1, 0)
        .with_input(0, 0, [Word16::ZERO]);
        // The first misuse wins; both are recorded as the same fault kind.
        let msg = job.builder_error().expect("misuse recorded");
        assert!(msg.contains("with_sink on a custom job"), "{msg}");
        let (result, recovery) = run(&job);
        assert!(recovery.is_clean());
        match result {
            Err(JobFault::Config(m)) => assert!(m.contains("custom jobs own their machine setup")),
            other => panic!("expected deferred config fault, got {other:?}"),
        }
    }

    #[test]
    fn injected_machine_job_recovers_or_fails_detected() {
        let mut recovered_any = false;
        for seed in 0..20u64 {
            let job = counting_job(256)
                .with_faults(FaultConfig::uniform(seed, 2_000))
                .with_retry(RetryPolicy::retries(50).with_remap(true));
            let (result, recovery) = run(&job);
            match result {
                Ok(out) => {
                    assert_eq!(out.cycles, 256);
                    if recovery.faults_detected > 0 {
                        assert!(recovery.recovered);
                        recovered_any = true;
                    }
                }
                Err(fault) => {
                    assert!(fault.is_detected_fault(), "undetected failure: {fault}");
                    assert!(!recovery.recovered);
                }
            }
            assert!(recovery.retries <= 50);
        }
        assert!(recovered_any, "no seed exercised the recovery path");
    }

    /// Without a retry policy the first detected fault fails the job,
    /// and the fault is classified as detected.
    #[test]
    fn injected_machine_job_without_retry_fails_detected() {
        let mut faulted_any = false;
        for seed in 0..10u64 {
            let job = counting_job(4096).with_faults(FaultConfig::uniform(seed, 5_000));
            let (result, recovery) = run(&job);
            if let Err(fault) = result {
                assert!(fault.is_detected_fault(), "undetected failure: {fault}");
                assert_eq!(recovery.retries, 0);
                assert!(recovery.faults_detected > 0);
                faulted_any = true;
            }
        }
        assert!(faulted_any, "no seed produced a fault at 0.5%/class/cycle");
    }

    /// Pins the exponential-backoff schedule: the delay sequence for a
    /// given `(base, max, jitter seed)` is part of the policy's contract
    /// — any change to the exponent rule, cap or jitter draw must show up
    /// here as a deliberate diff.
    #[test]
    fn backoff_schedule_is_pinned() {
        let policy = RetryPolicy::retries(8)
            .backoff(Duration::from_millis(10), Duration::from_millis(200))
            .with_jitter(0xfeed);
        let schedule_ms: Vec<u128> = (0..=6).map(|n| policy.delay(n).as_millis()).collect();
        // attempt 0 never waits; 1..=5 double (plus seeded jitter <= +50%);
        // the cap flattens the tail at 200ms exactly.
        assert_eq!(schedule_ms, vec![0, 14, 27, 42, 83, 200, 200]);
        // The schedule is a pure function: same policy, same delays.
        assert_eq!(policy.delay(3), policy.delay(3));
        // A different seed decorrelates the jitter but keeps every delay
        // inside the [exp, min(1.5 * exp, max)] envelope.
        let other = policy.with_jitter(0xbeef);
        for n in 1..=10u32 {
            let exp = 10u128 << (n - 1);
            let d = other.delay(n).as_millis();
            assert!(
                d >= exp.min(200) && d <= (exp + exp / 2).min(200),
                "{n}: {d}"
            );
        }
        assert_ne!(policy.delay(2), other.delay(2));
        // Immediate-retry policies (the default) never wait at all.
        assert_eq!(RetryPolicy::retries(3).delay(5), Duration::ZERO);
        // Huge attempt counts saturate instead of wrapping.
        assert_eq!(policy.delay(200), Duration::from_millis(200));
    }

    #[test]
    fn detected_fault_classification_matches_display_phrases() {
        assert!(JobFault::Sim(
            "cycle 3: configuration parity mismatch in context 0 at dnode 1".into()
        )
        .is_detected_fault());
        assert!(JobFault::Workload(
            "machine fault: cycle 9: datapath fault in context 0 at dnode 2 register R1".into()
        )
        .is_detected_fault());
        assert!(JobFault::Sim(
            "cycle 8: watchdog expired after 8 cycles without progress \
             in context 0 at controller pc 0x2"
                .into()
        )
        .is_detected_fault());
        assert!(!JobFault::Sim("cycle limit".into()).is_detected_fault());
        assert!(!JobFault::Panic("parity mismatch".into()).is_detected_fault());
    }
}
