//! Incremental, checkpoint-preemptible job execution.
//!
//! The batch [`runner`](crate::runner) owns a job from start to finish:
//! `run()` returns only when the job is done. A multi-tenant service
//! cannot afford that — a long batch job must *yield* the shared pool to
//! interactive traffic and come back later without losing work or
//! changing its answer. This module splits job execution into resumable
//! pieces:
//!
//! * [`RunningJob`] — one machine job being executed slice by slice.
//!   [`RunningJob::advance`] uses the same [`SLICE_CYCLES`] loop, the
//!   same budget-boundary accounting and the same sink-drain order as the
//!   single-shot executor, so an interrupted run is bit-identical to an
//!   uninterrupted one by construction.
//! * [`SuspendedJob`] — a parked job: a
//!   [`systolic_ring_core::Checkpoint`] plus the job metadata
//!   needed to resume. The live machine is dropped at suspension —
//!   preemption really is checkpoint-based, not thread-parking — and
//!   [`SuspendedJob::resume`] rehydrates a machine that continues exactly
//!   where the old one stopped (sink buffers and partially consumed input
//!   streams travel inside the checkpoint image).
//! * [`LaneGroup`] — up to [`MAX_LANES`](crate::runner::MAX_LANES)
//!   running jobs stepped in cycle lockstep through shared fused bursts,
//!   mirroring the runner's lane-fused group path. A lane that faults is
//!   detached and the survivors continue; the whole group can be
//!   suspended between slices and resumed lane by lane.
//!
//! # What preemption does and does not change
//!
//! Architectural results — sink streams, halt cycles, machine state — are
//! bit-identical across any preempt/resume schedule, including schedules
//! that cut a fused window in half (the resumed machine simply re-enters
//! fusion when it next can; entering fusion is an engine decision, never
//! an architectural one). The *recovery counters*
//! ([`Stats::checkpoints`](systolic_ring_core::Stats) and `restores`)
//! legitimately count the preemption activity itself, and engine-internal
//! cache/fusion counters may differ; equivalence is judged on outputs and
//! cycles, the same contract as
//! [`BatchReport::outcomes_match`](crate::runner::BatchReport).
//!
//! # What cannot be preempted
//!
//! Custom jobs own their machines, so there is nothing to checkpoint:
//! [`RunningJob::start`] rejects them as a [`JobFault::Config`]. Retry
//! policies are also rejected: rollback-retry keeps its own post-setup
//! checkpoint whose interaction with external suspension is deliberately
//! out of scope — a service retries at the admission layer instead (see
//! [`RetryPolicy::delay`](crate::job::RetryPolicy::delay) for the
//! client-side schedule). Wall-clock limits are the *caller's* job here:
//! a scheduler checks deadlines between [`RunningJob::advance`] calls,
//! where it also makes its preemption decisions.

use systolic_ring_core::{lockstep_burst, Checkpoint, RingMachine, SimError};

use crate::job::{
    build_machine, CycleBudget, Job, JobFault, JobOutcome, JobOutput, JobSetup, JobWork, SinkRef,
    SLICE_CYCLES,
};

/// `true` when `job` can be executed preemptibly by [`RunningJob::start`]:
/// a machine job with no retry policy and no deferred builder error.
pub fn preemptible(job: &Job) -> bool {
    job.builder_error().is_none()
        && !job.retry.is_active()
        && matches!(job.work, JobWork::Machine(_))
}

/// `true` when `job` may share a [`LaneGroup`] with other jobs: an
/// assembled-object machine job with a fixed `Cycles(n)` budget (and
/// preemptible at all). Fault injection and watchdogs do *not* disqualify
/// a job — an armed lane simply never enters the shared burst, so its
/// lane-mates pay a throughput cost, never a correctness one.
pub fn group_eligible(job: &Job) -> bool {
    if !preemptible(job) {
        return false;
    }
    let JobWork::Machine(mj) = &job.work else {
        return false;
    };
    matches!(mj.setup, JobSetup::Object(_)) && matches!(mj.budget, CycleBudget::Cycles(_))
}

/// `true` when two [`group_eligible`] jobs belong in the same
/// [`LaneGroup`]: same geometry, same machine parameters *excluding the
/// per-job fault configuration*, same budget, same object program.
/// Normalizing faults out of the key is what lets a chaos tenant's jobs
/// pack with clean tenants' — isolation is the group's problem, not the
/// scheduler's (see [`LaneGroup`]).
pub fn groupable(a: &Job, b: &Job) -> bool {
    let (JobWork::Machine(x), JobWork::Machine(y)) = (&a.work, &b.work) else {
        return false;
    };
    if x.geometry != y.geometry
        || x.budget != y.budget
        || x.params.with_faults(Default::default()) != y.params.with_faults(Default::default())
    {
        return false;
    }
    match (&x.setup, &y.setup) {
        (JobSetup::Object(p), JobSetup::Object(q)) => p == q,
        _ => false,
    }
}

/// One machine job being executed incrementally on the caller's thread.
#[derive(Debug)]
pub struct RunningJob {
    name: String,
    machine: RingMachine,
    sinks: Vec<SinkRef>,
    budget: CycleBudget,
    fault: Option<JobFault>,
}

impl RunningJob {
    /// Builds the job's machine and returns it poised at cycle 0.
    ///
    /// Fails with the same [`JobFault::Config`] the batch runner would
    /// produce for a deferred builder error or a rejected configuration,
    /// plus two preemption-specific rejections: custom jobs (nothing to
    /// checkpoint) and jobs carrying an active retry policy (see the
    /// module docs).
    pub fn start(job: &Job) -> Result<RunningJob, JobFault> {
        if let Some(msg) = job.builder_error() {
            return Err(JobFault::Config(msg.to_owned()));
        }
        if job.retry.is_active() {
            return Err(JobFault::Config(
                "retry policies cannot run preemptibly: retry at the admission layer".into(),
            ));
        }
        let JobWork::Machine(mj) = &job.work else {
            return Err(JobFault::Config(
                "custom jobs own their machines and cannot be checkpoint-preempted".into(),
            ));
        };
        let machine = build_machine(mj, job.faults)?;
        Ok(RunningJob {
            name: job.name.clone(),
            machine,
            sinks: mj.sinks.clone(),
            budget: mj.budget,
            fault: None,
        })
    }

    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current simulated cycle.
    pub fn cycle(&self) -> u64 {
        self.machine.cycle()
    }

    /// The absolute cycle bound of this job's budget.
    pub fn max_cycles(&self) -> u64 {
        match self.budget {
            CycleBudget::Cycles(n) => n,
            CycleBudget::UntilHalt { max_cycles } => max_cycles,
        }
    }

    /// Budget cycles still to run (0 once done).
    pub fn remaining(&self) -> u64 {
        if self.is_done() {
            0
        } else {
            self.max_cycles() - self.machine.cycle()
        }
    }

    /// `true` once the job needs no further [`RunningJob::advance`]:
    /// faulted, budget consumed, or (for `UntilHalt`) halted.
    pub fn is_done(&self) -> bool {
        if self.fault.is_some() || self.machine.cycle() >= self.max_cycles() {
            return true;
        }
        matches!(self.budget, CycleBudget::UntilHalt { .. })
            && self.machine.controller().is_halted()
    }

    /// The recorded fault, if the job has failed.
    pub fn fault(&self) -> Option<&JobFault> {
        self.fault.as_ref()
    }

    /// Runs up to `cycles` more cycles, returning the cycles actually
    /// executed (less than requested when the job completes, halts or
    /// faults first). Identical slice semantics to the single-shot
    /// executor: `Cycles(n)` budgets drive [`RingMachine::run`],
    /// `UntilHalt` budgets delegate each slice to
    /// [`RingMachine::run_until_halt`] so budget-boundary accounting
    /// agrees by construction. A fault is latched; further calls return 0.
    pub fn advance(&mut self, cycles: u64) -> u64 {
        let start = self.machine.cycle();
        let deadline = start.saturating_add(cycles).min(self.max_cycles());
        while self.fault.is_none() && self.machine.cycle() < deadline {
            if let CycleBudget::UntilHalt { .. } = self.budget {
                if self.machine.controller().is_halted() {
                    break;
                }
            }
            let slice = SLICE_CYCLES.min(deadline - self.machine.cycle());
            let stepped = match self.budget {
                CycleBudget::Cycles(_) => self.machine.run(slice),
                CycleBudget::UntilHalt { .. } => match self.machine.run_until_halt(slice) {
                    Ok(_) | Err(SimError::CycleLimit { .. }) => Ok(()),
                    Err(e) => Err(e),
                },
            };
            if let Err(e) = stepped {
                self.fault = Some(JobFault::Sim(e.to_string()));
            }
        }
        if self.fault.is_none() {
            if let CycleBudget::UntilHalt { max_cycles } = self.budget {
                if self.machine.cycle() >= max_cycles && !self.machine.controller().is_halted() {
                    self.fault = Some(JobFault::Diverged { max_cycles });
                }
            }
        }
        self.machine.cycle() - start
    }

    /// Parks the job: snapshots the machine into a checkpoint and drops
    /// it. Sink buffers and partially consumed input streams are part of
    /// the image, so nothing is lost. Works in any state — a scheduler
    /// draining at shutdown suspends even jobs that just faulted, so the
    /// client can still be told what happened on resume.
    pub fn suspend(mut self) -> SuspendedJob {
        SuspendedJob {
            name: self.name,
            checkpoint: self.machine.checkpoint(),
            sinks: self.sinks,
            budget: self.budget,
            fault: self.fault,
        }
    }

    /// Consumes the job and produces its outcome: the latched fault, or
    /// the drained sink outputs of a completed run (same drain order and
    /// error mapping as the batch runner). Calling this before
    /// [`RunningJob::is_done`] is a scheduler bug and reports a
    /// [`JobFault::Workload`] rather than a truncated result.
    pub fn finish(mut self) -> JobOutcome {
        if let Some(fault) = self.fault {
            return JobOutcome::Fault(fault);
        }
        if !self.is_done() {
            return JobOutcome::Fault(JobFault::Workload(format!(
                "job finished early at cycle {} of {}",
                self.machine.cycle(),
                self.max_cycles()
            )));
        }
        let mut outputs = Vec::with_capacity(self.sinks.len());
        for sink in &self.sinks {
            match self.machine.take_sink(sink.switch, sink.port) {
                Ok(words) => outputs.push(words.into_iter().map(|w| w.as_i16()).collect()),
                Err(e) => return JobOutcome::Fault(JobFault::Config(e.to_string())),
            }
        }
        JobOutcome::Completed(JobOutput {
            outputs,
            cycles: self.machine.cycle(),
            stats: self.machine.stats().clone(),
        })
    }
}

/// A preempted job: checkpoint image plus resume metadata. The machine
/// that was running no longer exists.
#[derive(Debug)]
pub struct SuspendedJob {
    name: String,
    checkpoint: Checkpoint,
    sinks: Vec<SinkRef>,
    budget: CycleBudget,
    fault: Option<JobFault>,
}

impl SuspendedJob {
    /// The job's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The cycle the job was suspended at.
    pub fn cycle(&self) -> u64 {
        self.checkpoint.cycle()
    }

    /// Rehydrates the machine from the checkpoint and hands back a
    /// [`RunningJob`] that continues bit-identically from the suspension
    /// point.
    pub fn resume(self) -> RunningJob {
        RunningJob {
            name: self.name,
            machine: self.checkpoint.hydrate(),
            sinks: self.sinks,
            budget: self.budget,
            fault: self.fault,
        }
    }
}

/// A cycle-synchronized set of [`RunningJob`]s sharing fused bursts.
///
/// Mirrors the batch runner's lane-fused group execution: per slice,
/// every live lane first advances through one shared
/// [`lockstep_burst`], then runs the remainder of the slice through its
/// own single-lane path (which may itself fuse). `lockstep_burst`
/// verifies program/phase identity across lanes at entry and refuses
/// (returning 0) otherwise, so grouping incompatible or fault-armed
/// lanes costs throughput, never correctness — this is the mechanism
/// behind per-tenant fault isolation: a chaos tenant's lane never
/// enters the shared burst while armed, faults on its own single-lane
/// path, and is detached without its lane-mates ever observing it.
///
/// Lanes are expected to share a `Cycles(n)` budget and start cycle (the
/// [`groupable`] key guarantees this); misaligned lanes still execute
/// correctly but forfeit shared bursts.
#[derive(Debug)]
pub struct LaneGroup {
    lanes: Vec<RunningJob>,
}

impl LaneGroup {
    /// Wraps running jobs into a lockstep group.
    pub fn new(lanes: Vec<RunningJob>) -> LaneGroup {
        debug_assert!(
            lanes
                .iter()
                .all(|l| matches!(l.budget, CycleBudget::Cycles(_))),
            "lane groups are for fixed-budget jobs"
        );
        LaneGroup { lanes }
    }

    /// Lanes still running (not done, not faulted).
    pub fn live(&self) -> usize {
        self.lanes.iter().filter(|l| !l.is_done()).count()
    }

    /// Per-lane liveness flags, in lane order (matching the caller's
    /// ticket bookkeeping) — for attributing an advanced slice to the
    /// lanes that actually executed it.
    pub fn live_mask(&self) -> Vec<bool> {
        self.lanes.iter().map(|l| !l.is_done()).collect()
    }

    /// `true` once every lane is done.
    pub fn is_done(&self) -> bool {
        self.live() == 0
    }

    /// The common cycle of the live lanes (`None` when all done). Lanes
    /// are advanced together, so live lanes share one cycle position.
    pub fn cycle(&self) -> Option<u64> {
        self.lanes.iter().find(|l| !l.is_done()).map(|l| l.cycle())
    }

    /// Advances every live lane by up to `cycles` cycles (clamped to the
    /// smallest live remaining budget, keeping lanes cycle-aligned for
    /// the next shared burst). Returns the cycles the group advanced.
    pub fn advance(&mut self, cycles: u64) -> u64 {
        let Some(cap) = self
            .lanes
            .iter()
            .filter(|l| !l.is_done())
            .map(|l| l.remaining())
            .min()
        else {
            return 0;
        };
        let slice = cycles.min(cap);
        if slice == 0 {
            return 0;
        }
        let burst = {
            let mut machines: Vec<&mut RingMachine> = self
                .lanes
                .iter_mut()
                .filter(|l| !l.is_done())
                .map(|l| &mut l.machine)
                .collect();
            lockstep_burst(&mut machines, slice)
        };
        // Live lanes are all at (cycle + burst); each runs the remainder
        // through its own path, latching any fault on its own lane only.
        for lane in &mut self.lanes {
            if !lane.is_done() {
                lane.advance(slice - burst);
            }
        }
        slice
    }

    /// Dissolves the group back into its lanes — the caller finishes the
    /// done ones and suspends the rest (preemption or drain).
    pub fn into_lanes(self) -> Vec<RunningJob> {
        self.lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{Job, RetryPolicy};
    use crate::testkit::TestRng;
    use systolic_ring_core::{FaultConfig, MachineParams, Stats};
    use systolic_ring_isa::ctrl::CtrlInstr;
    use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand};
    use systolic_ring_isa::object::{Object, Preload};
    use systolic_ring_isa::switch::{HostCapture, PortSource};
    use systolic_ring_isa::{RingGeometry, Word16};

    /// The runner tests' increment-stream object: Dnode (0,0) computes
    /// `in + 1` from host port (0,0), captured at switch 1 port 0.
    fn increment_object() -> Object {
        let instr = MicroInstr::op(AluOp::Add, Operand::In1, Operand::One).write_out();
        Object {
            geometry: Some(RingGeometry::RING_8),
            contexts: 0,
            code: vec![CtrlInstr::Halt.encode()],
            data: vec![],
            preload: vec![
                Preload::SwitchPort {
                    ctx: 0,
                    switch: 0,
                    lane: 0,
                    input: 0,
                    word: PortSource::HostIn { port: 0 }.encode(),
                },
                Preload::DnodeInstr {
                    ctx: 0,
                    dnode: 0,
                    word: instr.encode(),
                },
                Preload::HostCapture {
                    ctx: 0,
                    switch: 1,
                    port: 0,
                    word: HostCapture::lane(0).encode(),
                },
            ],
        }
    }

    fn stream_job_on(name: &str, base: i16, cycles: u64, params: MachineParams) -> Job {
        let words: Vec<Word16> = (0..48).map(|i| Word16::from_i16(base + i)).collect();
        Job::from_object(
            name.to_owned(),
            RingGeometry::RING_8,
            params,
            increment_object(),
            CycleBudget::Cycles(cycles),
        )
        .with_input(0, 0, words)
        .with_sink(1, 0)
    }

    fn stream_job(name: &str, base: i16, cycles: u64) -> Job {
        stream_job_on(name, base, cycles, MachineParams::PAPER)
    }

    fn outcome_of(job: &Job) -> JobOutcome {
        let mut r = RunningJob::start(job).expect("starts");
        while !r.is_done() {
            r.advance(u64::MAX);
        }
        r.finish()
    }

    /// Outputs/cycles equality — the `outcomes_match` contract.
    fn assert_equivalent(a: &JobOutcome, b: &JobOutcome) {
        match (a, b) {
            (JobOutcome::Completed(x), JobOutcome::Completed(y)) => {
                assert_eq!(x.outputs, y.outputs);
                assert_eq!(x.cycles, y.cycles);
                assert_eq!(
                    x.stats.without_cache_counters().without_recovery_counters(),
                    y.stats.without_cache_counters().without_recovery_counters()
                );
            }
            _ => assert_eq!(a, b),
        }
    }

    trait WithoutRecovery {
        fn without_recovery_counters(self) -> Stats;
    }
    impl WithoutRecovery for Stats {
        fn without_recovery_counters(mut self) -> Stats {
            self.checkpoints = 0;
            self.restores = 0;
            self
        }
    }

    #[test]
    fn incremental_run_matches_single_shot() {
        let job = stream_job("inc", 100, 3 * SLICE_CYCLES);
        let (single, _) = crate::job::run(&job);
        let single = single.expect("completes");
        match outcome_of(&job) {
            JobOutcome::Completed(out) => {
                assert_eq!(out.outputs, single.outputs);
                assert_eq!(out.cycles, single.cycles);
            }
            other => panic!("expected completion, got {other:?}"),
        }
    }

    #[test]
    fn suspend_resume_is_bit_identical_at_random_boundaries() {
        let budget = 3 * SLICE_CYCLES;
        let job = stream_job("inc", 7, budget);
        let baseline = outcome_of(&job);
        let mut rng = TestRng::new(0x5eed);
        for _ in 0..6 {
            let mut r = RunningJob::start(&job).expect("starts");
            // A handful of random, deliberately slice-misaligned cuts.
            while !r.is_done() {
                let step = 1 + rng.below(budget);
                r.advance(step);
                if !r.is_done() {
                    let parked = r.suspend();
                    assert!(parked.cycle() < budget);
                    r = parked.resume();
                }
            }
            assert_equivalent(&r.finish(), &baseline);
        }
    }

    /// Preempt/resume equivalence holds on every execution tier — the
    /// decode-per-cycle reference path, the predecoded path, the fused
    /// steady-state engine and the ahead-of-time superblock cache — at
    /// arbitrary, deliberately awkward cycle boundaries. On the fused and
    /// aot tiers the cuts land *inside* compiled windows (the step
    /// schedule is slice-misaligned and the run still accumulates
    /// fused/aot cycles), exercising the module-doc claim that a resumed
    /// machine simply re-enters the compiled path when it next can. The
    /// four tiers must also agree with each other on outputs and
    /// cycles, so a tier-specific checkpoint bug cannot hide behind a
    /// same-tier baseline.
    #[test]
    fn suspend_resume_is_tier_independent_even_mid_fused_window() {
        let budget = 3 * SLICE_CYCLES;
        let tiers = [
            ("slow", MachineParams::PAPER.with_decode_cache(false)),
            ("decoded", MachineParams::PAPER.with_fused(false)),
            ("fused", MachineParams::PAPER.with_fused(true)),
            ("aot", MachineParams::PAPER.with_fused(true).with_aot(true)),
        ];
        let mut per_tier: Vec<(&str, JobOutput)> = Vec::new();
        for (tier, params) in tiers {
            let job = stream_job_on(tier, 11, budget, params);
            let baseline = outcome_of(&job);
            let mut rng = TestRng::new(0xF05E ^ tier.len() as u64);
            let mut cut_cycles = Vec::new();
            let mut fused_after_resume = 0;
            for _ in 0..4 {
                let mut r = RunningJob::start(&job).expect("starts");
                while !r.is_done() {
                    r.advance(1 + rng.below(2 * SLICE_CYCLES));
                    if !r.is_done() {
                        cut_cycles.push(r.cycle());
                        r = r.suspend().resume();
                    }
                }
                fused_after_resume += r.machine.stats().fused_cycles + r.machine.stats().aot_cycles;
                assert_equivalent(&r.finish(), &baseline);
            }
            assert!(
                cut_cycles.iter().any(|c| c % SLICE_CYCLES != 0),
                "{tier}: every cut landed on a slice boundary: {cut_cycles:?}"
            );
            if tier == "fused" || tier == "aot" {
                assert!(
                    fused_after_resume > 0,
                    "{tier} tier never entered a compiled burst across the preemption schedule"
                );
            }
            match baseline {
                JobOutcome::Completed(out) => per_tier.push((tier, out)),
                other => panic!("{tier}: expected completion, got {other:?}"),
            }
        }
        let (_, reference) = &per_tier[0];
        for (tier, out) in &per_tier[1..] {
            assert_eq!(out.outputs, reference.outputs, "{tier} outputs diverge");
            assert_eq!(out.cycles, reference.cycles, "{tier} cycles diverge");
        }
    }

    #[test]
    fn custom_and_retry_jobs_are_rejected() {
        let custom = Job::custom("opaque", || Err("never runs".into()));
        match RunningJob::start(&custom) {
            Err(JobFault::Config(msg)) => assert!(msg.contains("checkpoint"), "{msg}"),
            other => panic!("expected config fault, got {other:?}"),
        }
        let retry = stream_job("retry", 0, 64).with_retry(RetryPolicy::retries(1));
        assert!(!preemptible(&retry));
        match RunningJob::start(&retry) {
            Err(JobFault::Config(msg)) => assert!(msg.contains("admission layer"), "{msg}"),
            other => panic!("expected config fault, got {other:?}"),
        }
    }

    #[test]
    fn until_halt_budget_agrees_with_single_shot_at_boundaries() {
        let program = vec![
            CtrlInstr::Wait { cycles: 37 }.encode(),
            CtrlInstr::Halt.encode(),
        ];
        let halting = |max_cycles| {
            let program = program.clone();
            Job::from_config(
                "halting",
                RingGeometry::RING_8,
                MachineParams::PAPER,
                move |m| m.controller_mut().load_program(&program),
                CycleBudget::UntilHalt { max_cycles },
            )
        };
        let (single, _) = crate::job::run(&halting(10_000));
        let halted_at = single.expect("halts").cycles;
        // Incremental run in awkward 13-cycle steps, with a mid-run park.
        let mut r = RunningJob::start(&halting(10_000)).expect("starts");
        while !r.is_done() {
            r.advance(13);
            if r.cycle() == 26 {
                r = r.suspend().resume();
            }
        }
        match r.finish() {
            JobOutcome::Completed(out) => assert_eq!(out.cycles, halted_at),
            other => panic!("expected completion, got {other:?}"),
        }
        // One cycle short of the halt: divergence, exactly as single-shot.
        let mut r = RunningJob::start(&halting(halted_at - 1)).expect("starts");
        r.advance(u64::MAX);
        assert!(r.is_done());
        match r.finish() {
            JobOutcome::Fault(JobFault::Diverged { max_cycles }) => {
                assert_eq!(max_cycles, halted_at - 1)
            }
            other => panic!("expected divergence, got {other:?}"),
        }
    }

    #[test]
    fn lane_group_matches_serial_and_survives_suspension() {
        let budget = 3 * SLICE_CYCLES;
        let jobs: Vec<Job> = (0..4)
            .map(|i| stream_job(&format!("s{i}"), i * 100, budget))
            .collect();
        let baselines: Vec<JobOutcome> = jobs.iter().map(outcome_of).collect();
        assert!(jobs.windows(2).all(|w| groupable(&w[0], &w[1])));

        let lanes: Vec<RunningJob> = jobs
            .iter()
            .map(|j| RunningJob::start(j).expect("starts"))
            .collect();
        let mut group = LaneGroup::new(lanes);
        // Advance past warmup, preempt the whole group mid-flight,
        // resume each lane and regroup.
        group.advance(SLICE_CYCLES + 7);
        assert_eq!(group.cycle(), Some(SLICE_CYCLES + 7));
        let parked: Vec<SuspendedJob> = group
            .into_lanes()
            .into_iter()
            .map(RunningJob::suspend)
            .collect();
        let mut group = LaneGroup::new(parked.into_iter().map(SuspendedJob::resume).collect());
        while group.advance(u64::MAX) > 0 {}
        assert!(group.is_done());
        let mut fused_any = false;
        for (lane, baseline) in group.into_lanes().into_iter().zip(&baselines) {
            fused_any |= lane.machine.stats().fused_cycles > 0;
            assert_equivalent(&lane.finish(), baseline);
        }
        assert!(fused_any, "group never reached fused execution");
    }

    #[test]
    fn faulty_lane_detaches_without_corrupting_lane_mates() {
        let budget = 4 * SLICE_CYCLES;
        let clean: Vec<Job> = (0..3)
            .map(|i| stream_job(&format!("clean{i}"), i * 10, budget))
            .collect();
        let baselines: Vec<JobOutcome> = clean.iter().map(outcome_of).collect();

        // A chaos job with a fault rate high enough to fault well within
        // the budget; groupable with the clean jobs despite the armed
        // injector, because faults are normalized out of the group key.
        let chaos = stream_job("chaos", 999, budget).with_faults(FaultConfig::uniform(3, 20_000));
        assert!(group_eligible(&chaos));
        assert!(groupable(&clean[0], &chaos));

        let mut lanes: Vec<RunningJob> = clean
            .iter()
            .map(|j| RunningJob::start(j).expect("starts"))
            .collect();
        lanes.push(RunningJob::start(&chaos).expect("starts"));
        let mut group = LaneGroup::new(lanes);
        while group.advance(u64::MAX) > 0 {}
        let mut lanes = group.into_lanes();
        let chaos_lane = lanes.pop().expect("chaos lane");
        assert!(
            chaos_lane.fault().is_some_and(JobFault::is_detected_fault),
            "chaos lane should fault detected, got {:?}",
            chaos_lane.fault()
        );
        for (lane, baseline) in lanes.into_iter().zip(&baselines) {
            assert_equivalent(&lane.finish(), baseline);
        }
    }
}
