//! Dedicated wavelet-core comparators for Table 2.
//!
//! Table 2 compares the Ring-16 wavelet implementation against two
//! dedicated (fixed-function) wavelet chips by their published
//! implementation figures:
//!
//! * **Navarro \[10\]** — a 2-D Mallat transform VLSI in 0.7 µm,
//! * **Diou et al. \[11\]** — the LIRMM lifting-scheme video core in 0.25 µm.
//!
//! Those numbers are *inputs* to the paper's table (quoted from the cited
//! publications), not measurements of the ring; we carry them as records
//! and pair them with the simulated Ring-16 row. All three designs sustain
//! one pixel sample per clock cycle; the contrast the paper draws is area
//! and flexibility.

/// One row of Table 2.
#[derive(Clone, Debug, PartialEq)]
pub struct WaveletCoreRecord {
    /// Design name as cited.
    pub name: &'static str,
    /// Process node in micrometres.
    pub techno_um: f64,
    /// Core area in mm².
    pub area_mm2: f64,
    /// Clock frequency in MHz.
    pub freq_mhz: f64,
    /// On-chip memory, as described in the source.
    pub memory: &'static str,
    /// Sustained throughput in pixel samples per cycle.
    pub pixels_per_cycle: f64,
    /// `true` if the design computes only the wavelet transform.
    pub fixed_function: bool,
}

impl WaveletCoreRecord {
    /// Sustained pixel throughput in megasamples per second.
    pub fn msamples_per_s(&self) -> f64 {
        self.pixels_per_cycle * self.freq_mhz
    }

    /// Area efficiency in megasamples per second per mm².
    pub fn msamples_per_s_per_mm2(&self) -> f64 {
        self.msamples_per_s() / self.area_mm2
    }
}

/// Navarro's 2-D Mallat wavelet VLSI \[10\] as quoted by the paper.
pub const NAVARRO_MALLAT: WaveletCoreRecord = WaveletCoreRecord {
    name: "Mallat 2-D VLSI [10]",
    techno_um: 0.7,
    area_mm2: 48.4,
    freq_mhz: 50.0,
    memory: "(768+30) x 16 bits",
    pixels_per_cycle: 1.0,
    fixed_function: true,
};

/// Diou's lifting-scheme wavelet core \[11\] as quoted by the paper.
pub const DIOU_LIFTING: WaveletCoreRecord = WaveletCoreRecord {
    name: "Lifting core [11]",
    techno_um: 0.25,
    area_mm2: 2.2,
    freq_mhz: 150.0,
    memory: "897 bytes",
    pixels_per_cycle: 1.0,
    fixed_function: true,
};

/// Builds the Ring-16 row from measured simulator figures and the
/// technology model's area/frequency estimates.
pub fn ring16_record(area_mm2: f64, freq_mhz: f64, pixels_per_cycle: f64) -> WaveletCoreRecord {
    WaveletCoreRecord {
        name: "Ring-16 (this work)",
        techno_um: 0.18,
        area_mm2,
        freq_mhz,
        memory: "none (streaming)",
        pixels_per_cycle,
        fixed_function: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_constants_are_carried_verbatim() {
        assert_eq!(NAVARRO_MALLAT.area_mm2, 48.4);
        assert_eq!(NAVARRO_MALLAT.freq_mhz, 50.0);
        assert_eq!(DIOU_LIFTING.area_mm2, 2.2);
        assert_eq!(DIOU_LIFTING.freq_mhz, 150.0);
        let (a, b) = (NAVARRO_MALLAT, DIOU_LIFTING);
        assert!(a.fixed_function && b.fixed_function);
    }

    #[test]
    fn throughput_derivations() {
        assert_eq!(NAVARRO_MALLAT.msamples_per_s(), 50.0);
        assert_eq!(DIOU_LIFTING.msamples_per_s(), 150.0);
        let ring = ring16_record(1.4, 200.0, 1.0);
        assert_eq!(ring.msamples_per_s(), 200.0);
        assert!(!ring.fixed_function);
        // The ring's area efficiency beats the old Mallat chip handily.
        assert!(ring.msamples_per_s_per_mm2() > NAVARRO_MALLAT.msamples_per_s_per_mm2());
    }
}
