//! Scalar-CPU baseline: the §5.1 MIPS anchor.
//!
//! The paper contrasts the Ring-8's "1600 MIPS of raw power for data
//! dominated applications" at 200 MHz with "the 400 MIPS of a Pentium II
//! 450 MHz processor". To make that comparison reproducible we simulate a
//! small in-order scalar core with a classic load/compute/branch cost
//! model, run the same MAC-style workloads on it, and report sustained
//! operations per cycle x clock.
//!
//! The model is deliberately conservative-superscalar-free: one instruction
//! per cycle peak, multi-cycle multiplies, a load-use penalty and a
//! taken-branch bubble — the effective throughput that turns a 450 MHz
//! clock into a few hundred sustained MIPS on data-flow loops.

use systolic_ring_kernels::golden;

/// Per-instruction costs of the scalar model, in cycles.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Plain ALU operation.
    pub alu: u64,
    /// Load (cache hit).
    pub load: u64,
    /// Store.
    pub store: u64,
    /// Integer multiply.
    pub mul: u64,
    /// Extra bubble on a taken branch.
    pub taken_branch_bubble: u64,
}

impl CostModel {
    /// A Pentium-II-class effective model (as seen by a dataflow loop that
    /// the out-of-order core cannot fully hide: 1-cycle ALU, 1-cycle cache
    /// hits, 4-cycle multiply, 1-cycle taken-branch bubble).
    pub const PENTIUM_II_CLASS: CostModel = CostModel {
        alu: 1,
        load: 1,
        store: 1,
        mul: 4,
        taken_branch_bubble: 1,
    };
}

/// Result of a scalar-model run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ScalarRun {
    /// Computed result (workload-specific meaning).
    pub result: i64,
    /// Total cycles.
    pub cycles: u64,
    /// Instructions retired.
    pub instructions: u64,
}

impl ScalarRun {
    /// Sustained MIPS at `clock_mhz`.
    pub fn mips(&self, clock_mhz: f64) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64 * clock_mhz
    }
}

/// Runs a dot product (`sum a[i]*b[i]`, 16-bit wrapping like the Dnode MAC)
/// on the scalar model.
///
/// Per element: two loads, one multiply, one add, one index increment, one
/// compare-and-branch — the canonical six-instruction MAC loop.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot_product(model: CostModel, a: &[i16], b: &[i16]) -> ScalarRun {
    assert_eq!(a.len(), b.len(), "operand length mismatch");
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    let mut acc: i16 = 0;
    for (&x, &y) in a.iter().zip(b) {
        acc = acc.wrapping_add(x.wrapping_mul(y));
        cycles +=
            2 * model.load + model.mul + 2 * model.alu + model.alu + model.taken_branch_bubble;
        instructions += 6;
    }
    debug_assert_eq!(acc, golden::dot_product(a, b));
    ScalarRun {
        result: acc as i64,
        cycles,
        instructions,
    }
}

/// Runs an 8x8 SAD (one block-matching candidate) on the scalar model.
///
/// Per pixel: two loads, subtract, conditional negate (modelled as two ALU
/// ops), accumulate, and loop bookkeeping amortized at one instruction per
/// pixel plus a per-row branch.
pub fn sad_8x8(model: CostModel, block: &[i16], candidate: &[i16]) -> ScalarRun {
    assert_eq!(block.len(), 64, "block must be 8x8");
    assert_eq!(candidate.len(), 64, "candidate must be 8x8");
    let mut cycles = 0u64;
    let mut instructions = 0u64;
    let mut acc = 0i64;
    for i in 0..64 {
        acc += (block[i] as i64 - candidate[i] as i64)
            .abs()
            .min(i16::MAX as i64);
        // ld, ld, sub, abs (2 ops), add, index bump.
        cycles += 2 * model.load + 5 * model.alu;
        instructions += 7;
    }
    // Per-row branches.
    cycles += 8 * (model.alu + model.taken_branch_bubble);
    instructions += 8;
    debug_assert_eq!(acc, golden::sad(block, candidate) as i64);
    ScalarRun {
        result: acc,
        cycles,
        instructions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_product_matches_golden() {
        let a: Vec<i16> = (0..50).collect();
        let b: Vec<i16> = (0..50).map(|v| v * 3 - 7).collect();
        let run = dot_product(CostModel::PENTIUM_II_CLASS, &a, &b);
        assert_eq!(run.result, golden::dot_product(&a, &b) as i64);
        // 6 instructions per element at < 1 IPC.
        assert_eq!(run.instructions, 300);
        assert!(run.cycles > run.instructions);
    }

    #[test]
    fn mips_anchor_is_in_the_paper_ballpark() {
        let a = vec![3i16; 10_000];
        let b = vec![-2i16; 10_000];
        let run = dot_product(CostModel::PENTIUM_II_CLASS, &a, &b);
        let mips = run.mips(450.0);
        // The paper quotes 400 MIPS for a Pentium II 450.
        assert!((200.0..500.0).contains(&mips), "sustained MIPS = {mips:.0}");
    }

    #[test]
    fn sad_matches_golden() {
        let block: Vec<i16> = (0..64).map(|v| v * 3 % 251).collect();
        let cand: Vec<i16> = (0..64).map(|v| (v * 7 + 13) % 251).collect();
        let run = sad_8x8(CostModel::PENTIUM_II_CLASS, &block, &cand);
        assert_eq!(run.result, golden::sad(&block, &cand) as i64);
        assert!(run.cycles >= 64 * 7);
    }

    #[test]
    fn zero_length_run() {
        let run = dot_product(CostModel::PENTIUM_II_CLASS, &[], &[]);
        assert_eq!(run.cycles, 0);
        assert_eq!(run.mips(450.0), 0.0);
    }
}
