//! Comparator baselines for the Systolic Ring evaluation.
//!
//! Every system the paper compares against is built here, from scratch:
//!
//! * [`mmx`] — a Pentium-MMX-class packed-SIMD functional + timing
//!   simulator running the documented pre-`PSADBW` SAD loop (Table 1),
//! * [`asic_me`] — the systolic-array block-matching ASIC schedule of
//!   Bugeja & Yang \[7\] with real PE arithmetic (Table 1),
//! * [`scalar`] — an in-order scalar CPU cost model anchoring the §5.1
//!   "Pentium II 450 = 400 MIPS" comparison,
//! * [`wavelet_cores`] — the dedicated wavelet chips of Table 2, carried
//!   as the published implementation records the paper quotes.

pub mod asic_me;
pub mod mmx;
pub mod scalar;
pub mod wavelet_cores;
