//! Systolic-array block-matching ASIC baseline for Table 1.
//!
//! The paper's fastest comparator is the dedicated VLSI block-matching
//! coprocessor of Bugeja & Yang \[7\] (in the tradition of Hsieh & Lin \[4\]):
//! a 2-D systolic array with one processing element per block pixel that
//! sustains **one candidate SAD per cycle** once its pipelines are full,
//! at the price of being wired for exactly this algorithm.
//!
//! We simulate the canonical schedule of such an array:
//!
//! * `block^2` PEs, the reference block resident in the array,
//! * the search window streamed through shift registers; after an initial
//!   fill of `block^2` cycles the array emits one candidate SAD per cycle
//!   along each search row,
//! * a `block`-cycle window-register reload between search rows (the
//!   vertical data-reuse seam).
//!
//! The simulator performs the real arithmetic PE by PE — the SADs it
//! returns are validated against the golden model — while charging cycles
//! per that schedule.

use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::motion::BlockMatch;

/// Result of the ASIC-model full search.
#[derive(Clone, Debug)]
pub struct AsicSearch {
    /// Winning displacement.
    pub best: (isize, isize),
    /// Winning SAD.
    pub best_sad: u32,
    /// All `(dx, dy, sad)` candidates.
    pub candidates: Vec<(isize, isize, u32)>,
    /// Total cycles per the systolic schedule.
    pub cycles: u64,
    /// Number of processing elements in the array.
    pub pes: usize,
}

/// Closed-form cycle count of the systolic schedule.
///
/// `rows` and `cols` are the search-grid dimensions (candidates per
/// column/row), `block` the block side.
pub fn schedule_cycles(block: usize, rows: usize, cols: usize) -> u64 {
    if rows == 0 || cols == 0 {
        return 0;
    }
    // Fill the PE array once, then one SAD per cycle along each row with a
    // `block`-cycle seam between rows.
    (block * block) as u64 + rows as u64 * (cols as u64 + block as u64)
}

/// One processing element: holds a reference pixel, accumulates into the
/// passing partial sum.
#[derive(Clone, Copy, Debug, Default)]
struct Pe {
    reference: i16,
}

impl Pe {
    fn step(&self, window_pixel: i16, partial: u32) -> u32 {
        partial
            + (window_pixel as i32 - self.reference as i32)
                .unsigned_abs()
                .min(i16::MAX as u32)
    }
}

/// Runs the full search on the systolic-array model.
///
/// # Panics
///
/// Panics if the block leaves the current frame.
pub fn full_search(reference: &Image, current: &Image, spec: BlockMatch) -> AsicSearch {
    let bs = spec.block;
    // Load the PE array with the tracked block.
    let block = current.block(spec.x0, spec.y0, bs, bs);
    let pes: Vec<Pe> = block.iter().map(|&p| Pe { reference: p }).collect();

    // Candidate grid (in-frame only), row-major like the hardware scan.
    let mut grid_rows: Vec<Vec<(isize, isize)>> = Vec::new();
    for dy in -spec.range..=spec.range {
        let mut row = Vec::new();
        for dx in -spec.range..=spec.range {
            let cx = spec.x0 as isize + dx;
            let cy = spec.y0 as isize + dy;
            if cx < 0
                || cy < 0
                || cx as usize + bs > reference.width()
                || cy as usize + bs > reference.height()
            {
                continue;
            }
            row.push((dx, dy));
        }
        if !row.is_empty() {
            grid_rows.push(row);
        }
    }

    let mut candidates = Vec::new();
    let mut best = (0isize, 0isize);
    let mut best_sad = u32::MAX;
    let (rows, cols) = (
        grid_rows.len(),
        grid_rows.iter().map(Vec::len).max().unwrap_or(0),
    );
    for row in &grid_rows {
        for &(dx, dy) in row {
            // The array computes the SAD by pumping the window through the
            // PEs: partial sums snake through the array, one PE per pixel.
            let cx = (spec.x0 as isize + dx) as usize;
            let cy = (spec.y0 as isize + dy) as usize;
            let mut partial = 0u32;
            for by in 0..bs {
                for bx in 0..bs {
                    let pe = pes[by * bs + bx];
                    partial = pe.step(reference.pixel(cx + bx, cy + by), partial);
                }
            }
            candidates.push((dx, dy, partial));
            if partial < best_sad {
                best_sad = partial;
                best = (dx, dy);
            }
        }
    }

    AsicSearch {
        best,
        best_sad,
        candidates,
        cycles: schedule_cycles(bs, rows, cols),
        pes: bs * bs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ring_kernels::golden;

    #[test]
    fn sads_match_golden() {
        let (reference, current) = Image::motion_pair(48, 48, -2, 3, 8);
        let spec = BlockMatch {
            x0: 20,
            y0: 20,
            block: 8,
            range: 6,
        };
        let result = full_search(&reference, &current, spec);
        let block = current.block(20, 20, 8, 8);
        for &(dx, dy, sad) in &result.candidates {
            let cand = reference.block((20 + dx) as usize, (20 + dy) as usize, 8, 8);
            assert_eq!(sad as i32, golden::sad(&block, &cand));
        }
        let (gdx, gdy, gsad) =
            golden::full_search(reference.data(), 48, 48, &block, 8, 8, 20, 20, 6);
        assert_eq!(result.best, (gdx, gdy));
        assert_eq!(result.best_sad as i32, gsad);
    }

    #[test]
    fn schedule_is_one_candidate_per_cycle_steady_state() {
        // Paper problem: 17x17 grid of 8x8 SADs.
        let cycles = schedule_cycles(8, 17, 17);
        assert_eq!(cycles, 64 + 17 * (17 + 8));
        // Way below one candidate-SAD's worth of sequential work.
        assert!(cycles < 17 * 17 * 4);
        assert_eq!(schedule_cycles(8, 0, 0), 0);
    }

    #[test]
    fn pe_saturates_like_the_golden_model() {
        let pe = Pe { reference: -30000 };
        assert_eq!(pe.step(30000, 0), i16::MAX as u32);
    }
}
