//! MMX-class packed-SIMD baseline for Table 1.
//!
//! The paper compares the Systolic Ring against "Intel MMX instructions
//! \[8\] using the criterion of the number of cycles needed for matching a
//! 8x8 reference block against its search area" and concludes the ring "is
//! also almost 8 times faster than an MMX solution".
//!
//! This module is a small functional + timing simulator of a Pentium-MMX
//! class SIMD unit: 8 x 64-bit registers, packed byte/word arithmetic, and
//! a dual-issue (U/V pipe) pairing model. The SAD inner loop is the
//! documented pre-`PSADBW` sequence (`psubusb` both ways, `por`, unpack,
//! `paddw`) — `PSADBW` arrived with SSE, after the paper's comparison
//! point.
//!
//! # Timing model
//!
//! * every instruction has a base cost of one cycle,
//! * two adjacent instructions dual-issue when independent, at most one of
//!   them touches memory and at most one uses the shift/pack unit,
//! * unaligned 64-bit loads (the candidate window walks byte positions)
//!   cost three cycles and do not pair — the dominant cost Intel's
//!   application notes attribute to block matching on MMX.

use systolic_ring_kernels::image::Image;
use systolic_ring_kernels::motion::BlockMatch;

/// One simulated MMX-unit operation.
#[derive(Clone, Debug)]
pub enum Op {
    /// Aligned 8-byte load into `dst`.
    LoadAligned {
        /// Destination register (0..8).
        dst: usize,
        /// Source bytes (exactly 8).
        data: [u8; 8],
    },
    /// Unaligned 8-byte load into `dst` (3 cycles, unpairable).
    LoadUnaligned {
        /// Destination register (0..8).
        dst: usize,
        /// Source bytes (exactly 8).
        data: [u8; 8],
    },
    /// Register move.
    Movq {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
    },
    /// Packed unsigned saturating byte subtract.
    Psubusb {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
    },
    /// Bitwise OR.
    Por {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
    },
    /// Bitwise XOR.
    Pxor {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
    },
    /// Unpack low bytes to words (with `src` supplying the high bytes).
    Punpcklbw {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
    },
    /// Unpack high bytes to words.
    Punpckhbw {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
    },
    /// Packed 16-bit add.
    Paddw {
        /// Destination register.
        dst: usize,
        /// Source register.
        src: usize,
    },
    /// Logical right shift of the whole register.
    Psrlq {
        /// Destination register.
        dst: usize,
        /// Shift amount in bits.
        amount: u32,
    },
    /// Scalar bookkeeping (pointer update, loop counter, branch): executes
    /// in the integer pipe, one cycle, pairable with anything.
    Scalar,
}

impl Op {
    fn dst(&self) -> Option<usize> {
        match self {
            Op::LoadAligned { dst, .. }
            | Op::LoadUnaligned { dst, .. }
            | Op::Movq { dst, .. }
            | Op::Psubusb { dst, .. }
            | Op::Por { dst, .. }
            | Op::Pxor { dst, .. }
            | Op::Punpcklbw { dst, .. }
            | Op::Punpckhbw { dst, .. }
            | Op::Paddw { dst, .. }
            | Op::Psrlq { dst, .. } => Some(*dst),
            Op::Scalar => None,
        }
    }

    fn sources(&self) -> Vec<usize> {
        match self {
            Op::LoadAligned { .. } | Op::LoadUnaligned { .. } | Op::Scalar => vec![],
            Op::Movq { src, .. } => vec![*src],
            Op::Psubusb { dst, src }
            | Op::Por { dst, src }
            | Op::Pxor { dst, src }
            | Op::Punpcklbw { dst, src }
            | Op::Punpckhbw { dst, src }
            | Op::Paddw { dst, src } => vec![*dst, *src],
            Op::Psrlq { dst, .. } => vec![*dst],
        }
    }

    fn is_memory(&self) -> bool {
        matches!(self, Op::LoadAligned { .. } | Op::LoadUnaligned { .. })
    }

    fn uses_shift_unit(&self) -> bool {
        matches!(
            self,
            Op::Punpcklbw { .. } | Op::Punpckhbw { .. } | Op::Psrlq { .. }
        )
    }

    fn base_cost(&self) -> u64 {
        match self {
            Op::LoadUnaligned { .. } => 3,
            _ => 1,
        }
    }

    fn pairable(&self) -> bool {
        !matches!(self, Op::LoadUnaligned { .. })
    }
}

/// A Pentium-MMX-class SIMD unit: functional state plus the pairing model.
#[derive(Clone, Debug, Default)]
pub struct MmxUnit {
    regs: [u64; 8],
    cycles: u64,
    instructions: u64,
    /// Previously issued op awaiting a pairing partner, if any.
    slot: Option<Op>,
}

fn packed_bytes(value: u64) -> [u8; 8] {
    value.to_le_bytes()
}

fn from_bytes(bytes: [u8; 8]) -> u64 {
    u64::from_le_bytes(bytes)
}

impl MmxUnit {
    /// A fresh unit with zeroed registers and counters.
    pub fn new() -> Self {
        MmxUnit::default()
    }

    /// Register contents (little-endian packed).
    pub fn reg(&self, index: usize) -> u64 {
        self.regs[index]
    }

    /// Cycles consumed so far (including a pending unpaired slot).
    pub fn cycles(&self) -> u64 {
        self.cycles + u64::from(self.slot.is_some())
    }

    /// Instructions issued so far.
    pub fn instructions(&self) -> u64 {
        self.instructions
    }

    fn can_pair(first: &Op, second: &Op) -> bool {
        if !first.pairable() || !second.pairable() {
            return false;
        }
        // Dependency: the second may not read or overwrite the first's
        // destination.
        if let Some(dst) = first.dst() {
            if second.sources().contains(&dst) || second.dst() == Some(dst) {
                return false;
            }
        }
        // Structural: one memory port, one shift/pack unit.
        if first.is_memory() && second.is_memory() {
            return false;
        }
        if first.uses_shift_unit() && second.uses_shift_unit() {
            return false;
        }
        true
    }

    fn execute(&mut self, op: &Op) {
        match *op {
            Op::LoadAligned { dst, data } | Op::LoadUnaligned { dst, data } => {
                self.regs[dst] = from_bytes(data);
            }
            Op::Movq { dst, src } => self.regs[dst] = self.regs[src],
            Op::Psubusb { dst, src } => {
                let a = packed_bytes(self.regs[dst]);
                let b = packed_bytes(self.regs[src]);
                let mut out = [0u8; 8];
                for i in 0..8 {
                    out[i] = a[i].saturating_sub(b[i]);
                }
                self.regs[dst] = from_bytes(out);
            }
            Op::Por { dst, src } => self.regs[dst] |= self.regs[src],
            Op::Pxor { dst, src } => self.regs[dst] ^= self.regs[src],
            Op::Punpcklbw { dst, src } => {
                let a = packed_bytes(self.regs[dst]);
                let b = packed_bytes(self.regs[src]);
                let mut out = [0u8; 8];
                for i in 0..4 {
                    out[2 * i] = a[i];
                    out[2 * i + 1] = b[i];
                }
                self.regs[dst] = from_bytes(out);
            }
            Op::Punpckhbw { dst, src } => {
                let a = packed_bytes(self.regs[dst]);
                let b = packed_bytes(self.regs[src]);
                let mut out = [0u8; 8];
                for i in 0..4 {
                    out[2 * i] = a[4 + i];
                    out[2 * i + 1] = b[4 + i];
                }
                self.regs[dst] = from_bytes(out);
            }
            Op::Paddw { dst, src } => {
                let mut out = 0u64;
                for i in 0..4 {
                    let a = (self.regs[dst] >> (16 * i)) as u16;
                    let b = (self.regs[src] >> (16 * i)) as u16;
                    out |= (a.wrapping_add(b) as u64) << (16 * i);
                }
                self.regs[dst] = out;
            }
            Op::Psrlq { dst, amount } => self.regs[dst] >>= amount,
            Op::Scalar => {}
        }
    }

    /// Issues one instruction: executes it functionally and charges cycles
    /// per the pairing model.
    pub fn issue(&mut self, op: Op) {
        self.instructions += 1;
        self.execute(&op);
        match self.slot.take() {
            Some(pending) => {
                if Self::can_pair(&pending, &op) {
                    // Both retire in one cycle.
                    self.cycles += 1;
                } else {
                    self.cycles += pending.base_cost();
                    if op.base_cost() == 1 && op.pairable() {
                        self.slot = Some(op);
                    } else {
                        self.cycles += op.base_cost();
                    }
                }
            }
            None => {
                if op.base_cost() == 1 && op.pairable() {
                    self.slot = Some(op);
                } else {
                    self.cycles += op.base_cost();
                }
            }
        }
    }

    /// Flushes a pending unpaired instruction (end of a measured region).
    pub fn drain(&mut self) {
        if let Some(pending) = self.slot.take() {
            self.cycles += pending.base_cost();
        }
    }
}

/// Result of the MMX full-search baseline.
#[derive(Clone, Debug)]
pub struct MmxSearch {
    /// Winning displacement.
    pub best: (isize, isize),
    /// Winning SAD.
    pub best_sad: u32,
    /// All `(dx, dy, sad)` candidates.
    pub candidates: Vec<(isize, isize, u32)>,
    /// Total cycles per the pairing model.
    pub cycles: u64,
    /// Total instructions issued.
    pub instructions: u64,
}

fn row8(image: &Image, x: usize, y: usize) -> [u8; 8] {
    let mut out = [0u8; 8];
    for (i, slot) in out.iter_mut().enumerate() {
        *slot = image.pixel(x + i, y) as u8;
    }
    out
}

/// One candidate SAD on the MMX unit (8x8 block): returns the SAD.
///
/// The reference block rows load aligned (the encoder copies the tracked
/// block into an aligned buffer once); candidate rows load unaligned.
fn candidate_sad(
    unit: &mut MmxUnit,
    block_rows: &[[u8; 8]; 8],
    reference: &Image,
    cx: usize,
    cy: usize,
) -> u32 {
    // mm7 = 0 (zero for unpacking); mm6 = word accumulator.
    unit.issue(Op::Pxor { dst: 7, src: 7 });
    unit.issue(Op::Pxor { dst: 6, src: 6 });
    for (r, block_row) in block_rows.iter().enumerate() {
        unit.issue(Op::LoadAligned {
            dst: 0,
            data: *block_row,
        });
        unit.issue(Op::LoadUnaligned {
            dst: 1,
            data: row8(reference, cx, cy + r),
        });
        unit.issue(Op::Movq { dst: 2, src: 0 });
        unit.issue(Op::Psubusb { dst: 0, src: 1 });
        unit.issue(Op::Psubusb { dst: 1, src: 2 });
        unit.issue(Op::Por { dst: 0, src: 1 });
        unit.issue(Op::Movq { dst: 3, src: 0 });
        unit.issue(Op::Punpcklbw { dst: 0, src: 7 });
        unit.issue(Op::Punpckhbw { dst: 3, src: 7 });
        unit.issue(Op::Paddw { dst: 6, src: 0 });
        unit.issue(Op::Paddw { dst: 6, src: 3 });
        // Row pointer bookkeeping.
        unit.issue(Op::Scalar);
    }
    // Horizontal reduction of the four word lanes.
    unit.issue(Op::Movq { dst: 0, src: 6 });
    unit.issue(Op::Psrlq { dst: 0, amount: 32 });
    unit.issue(Op::Paddw { dst: 6, src: 0 });
    unit.issue(Op::Movq { dst: 0, src: 6 });
    unit.issue(Op::Psrlq { dst: 0, amount: 16 });
    unit.issue(Op::Paddw { dst: 6, src: 0 });
    // Store / compare-update of the best SAD (scalar side).
    unit.issue(Op::Scalar);
    unit.issue(Op::Scalar);
    (unit.reg(6) & 0xffff) as u32
}

/// Runs the full-search baseline for the paper's Table 1 configuration.
///
/// # Panics
///
/// Panics if `spec.block != 8` (the MMX loop is written for 8x8 blocks) or
/// if the block leaves the frame.
pub fn full_search(reference: &Image, current: &Image, spec: BlockMatch) -> MmxSearch {
    assert_eq!(
        spec.block, 8,
        "the MMX kernel is specialized for 8x8 blocks"
    );
    let mut block_rows = [[0u8; 8]; 8];
    for (r, row) in block_rows.iter_mut().enumerate() {
        *row = row8(current, spec.x0, spec.y0 + r);
    }
    let mut unit = MmxUnit::new();
    let mut candidates = Vec::new();
    let mut best = (0isize, 0isize);
    let mut best_sad = u32::MAX;
    for dy in -spec.range..=spec.range {
        for dx in -spec.range..=spec.range {
            let cx = spec.x0 as isize + dx;
            let cy = spec.y0 as isize + dy;
            if cx < 0
                || cy < 0
                || cx as usize + 8 > reference.width()
                || cy as usize + 8 > reference.height()
            {
                continue;
            }
            let sad = candidate_sad(&mut unit, &block_rows, reference, cx as usize, cy as usize);
            candidates.push((dx, dy, sad));
            if sad < best_sad {
                best_sad = sad;
                best = (dx, dy);
            }
        }
    }
    unit.drain();
    MmxSearch {
        best,
        best_sad,
        candidates,
        cycles: unit.cycles(),
        instructions: unit.instructions(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ring_kernels::golden;

    #[test]
    fn packed_ops_behave() {
        let mut u = MmxUnit::new();
        u.issue(Op::LoadAligned {
            dst: 0,
            data: [10, 200, 0, 5, 255, 1, 2, 3],
        });
        u.issue(Op::LoadAligned {
            dst: 1,
            data: [20, 100, 0, 9, 0, 1, 3, 2],
        });
        u.issue(Op::Movq { dst: 2, src: 0 });
        u.issue(Op::Psubusb { dst: 0, src: 1 });
        u.issue(Op::Psubusb { dst: 1, src: 2 });
        u.issue(Op::Por { dst: 0, src: 1 });
        // |a-b| per byte.
        assert_eq!(packed_bytes(u.reg(0)), [10, 100, 0, 4, 255, 0, 1, 1]);
    }

    #[test]
    fn unpack_and_accumulate() {
        let mut u = MmxUnit::new();
        u.issue(Op::Pxor { dst: 7, src: 7 });
        u.issue(Op::LoadAligned {
            dst: 0,
            data: [1, 2, 3, 4, 5, 6, 7, 8],
        });
        u.issue(Op::Movq { dst: 3, src: 0 });
        u.issue(Op::Punpcklbw { dst: 0, src: 7 });
        u.issue(Op::Punpckhbw { dst: 3, src: 7 });
        u.issue(Op::Pxor { dst: 6, src: 6 });
        u.issue(Op::Paddw { dst: 6, src: 0 });
        u.issue(Op::Paddw { dst: 6, src: 3 });
        // Word lanes: 1+5, 2+6, 3+7, 4+8.
        let words: Vec<u16> = (0..4).map(|i| (u.reg(6) >> (16 * i)) as u16).collect();
        assert_eq!(words, vec![6, 8, 10, 12]);
    }

    #[test]
    fn pairing_model_counts() {
        let mut u = MmxUnit::new();
        // Two independent single-cycle ops pair: one cycle.
        u.issue(Op::Pxor { dst: 0, src: 0 });
        u.issue(Op::Pxor { dst: 1, src: 1 });
        u.drain();
        assert_eq!(u.cycles(), 1);

        // Dependent ops do not pair.
        let mut u = MmxUnit::new();
        u.issue(Op::Pxor { dst: 0, src: 0 });
        u.issue(Op::Por { dst: 1, src: 0 });
        u.drain();
        assert_eq!(u.cycles(), 2);

        // Unaligned loads cost 3 and break pairing.
        let mut u = MmxUnit::new();
        u.issue(Op::LoadUnaligned {
            dst: 0,
            data: [0; 8],
        });
        u.issue(Op::LoadUnaligned {
            dst: 1,
            data: [0; 8],
        });
        u.drain();
        assert_eq!(u.cycles(), 6);

        // Two shift-unit ops cannot pair.
        let mut u = MmxUnit::new();
        u.issue(Op::Psrlq { dst: 0, amount: 8 });
        u.issue(Op::Psrlq { dst: 1, amount: 8 });
        u.drain();
        assert_eq!(u.cycles(), 2);
    }

    #[test]
    fn sad_matches_golden_on_every_candidate() {
        let (reference, current) = Image::motion_pair(40, 40, 2, 1, 5);
        let spec = BlockMatch {
            x0: 16,
            y0: 16,
            block: 8,
            range: 4,
        };
        let result = full_search(&reference, &current, spec);
        let block = current.block(16, 16, 8, 8);
        for &(dx, dy, sad) in &result.candidates {
            let cand = reference.block((16 + dx) as usize, (16 + dy) as usize, 8, 8);
            assert_eq!(sad as i32, golden::sad(&block, &cand), "({dx},{dy})");
        }
        // And the argmin agrees with an exhaustive check.
        let (gdx, gdy, gsad) =
            golden::full_search(reference.data(), 40, 40, &block, 8, 8, 16, 16, 4);
        assert_eq!(result.best, (gdx, gdy));
        assert_eq!(result.best_sad as i32, gsad);
    }

    #[test]
    fn per_candidate_cost_is_tens_of_cycles() {
        let (reference, current) = Image::motion_pair(40, 40, 0, 0, 1);
        let spec = BlockMatch {
            x0: 16,
            y0: 16,
            block: 8,
            range: 4,
        };
        let result = full_search(&reference, &current, spec);
        let per_candidate = result.cycles as f64 / result.candidates.len() as f64;
        // The documented loop: ~12 instructions/row x 8 rows + reduction,
        // partially paired, with 8 unaligned loads at 3 cycles each.
        assert!(
            (50.0..100.0).contains(&per_candidate),
            "per-candidate cycles = {per_candidate:.1}"
        );
    }
}
