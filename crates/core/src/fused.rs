//! The fused steady-state execution engine.
//!
//! Most DSP kernels run the ring in a *steady state*: the active context's
//! configuration is static for long windows, local-mode Dnodes replay
//! ≤8-instruction loops, and the controller is halted or sitting in a
//! `wait`. The predecoded cache (`plan`) already removed the
//! per-cycle decode from that regime, but the stepper still pays per-cycle
//! dispatch: a mode match and sequencer index per Dnode, operand matches,
//! staged-write buffering, per-Dnode statistics branches, a controller
//! call and a host-interface call — every cycle, for work that is known in
//! advance to be identical for the whole window.
//!
//! This module compiles such a window *once* into a `FusedProgram` — a
//! flat, phase-scheduled operation list — and replays it over a
//! struct-of-arrays snapshot of machine state:
//!
//! * **Phases.** With the configuration frozen, the only per-cycle
//!   variation is the local sequencers' counters, which all advance by one
//!   each cycle. The whole ring is therefore periodic with period
//!   `lcm(limits)` (≤ 840 for limits in 1..=8). Each phase's operations
//!   are fully resolved: operand sources collapse to flat array indices,
//!   write destinations to flat array indices, bus arbitration to a single
//!   precomputed result index, statistics to a per-phase increment list.
//! * **SoA state.** Registers, outputs, output stamps, feedback-pipeline
//!   words and the bus are gathered into contiguous arrays (lane-major for
//!   multi-lane bursts), stepped with no `HashMap` or nested `match`
//!   dispatch, and scattered back at the end of the burst — so between
//!   bursts the machine always holds canonical architectural state and
//!   checkpoints, traces and accessors need no special cases.
//! * **Lanes.** [`lockstep_burst`] steps N machines that share one
//!   compiled program in lockstep over `[word; LANES]`-style lane-major
//!   arrays, amortizing the schedule walk across a whole batch of jobs
//!   (the harness groups jobs with identical object programs onto it).
//!
//! # Entry and deoptimization
//!
//! A burst is entered only from [`crate::RingMachine::run`] /
//! [`crate::RingMachine::run_until_halt`] (never from
//! [`crate::RingMachine::step`], so single-cycle stepping and per-cycle
//! tracing always take the decoded path), and only when the machine is
//! *quiescent*: controller halted or mid-`wait`, no fault injector armed,
//! no watchdog, no staged context switch, and the configuration epochs
//! stable for `DETECTION_WINDOW` cycles. Any reconfiguration write, mode
//! flip, sequencer write or context switch bumps an epoch the engine
//! stamps its program with, which invalidates the program
//! ([`crate::Stats::fused_deopts`]) and falls back to the decoded path;
//! arming a fault injector or watchdog does the same. Since nothing that
//! can fault executes inside a burst (no controller instructions, no
//! configuration writes, no detection sweeps), a burst cannot fail
//! mid-flight — the PR-3 cycle-boundary fail-stop contract is preserved
//! bit-for-bit by construction.

use systolic_ring_isa::dnode::{AluOp, DnodeMode};
use systolic_ring_isa::{RingGeometry, Word16};

use crate::controller::CtrlState;
use crate::dnode::DnodeState;
use crate::host::HostBurstPlan;
use crate::machine::RingMachine;
use crate::params::LinkModel;
use crate::plan::{CtxPlan, DecodedOp, FastSrc};
use crate::switch::PushOutcome;

/// Cycles the configuration epochs must have been stable before a window
/// is considered steady-state and compiled. Also guarantees the decoded
/// path (and its cache counters) is exercised at the start of every run
/// and after every reconfiguration, so short steady regions between
/// context rewrites still pay for their decode-cache refills before the
/// fused engine takes over.
pub(crate) const DETECTION_WINDOW: u64 = 32;

/// Minimum burst length worth the gather/scatter round trip.
pub(crate) const MIN_BURST: u64 = 8;

/// Flat-index sentinel for "no destination / not present".
const NONE32: u32 = u32::MAX;

/// The configuration-epoch fingerprint a [`FusedProgram`] is valid for.
///
/// Every mutation that could change compiled behaviour bumps one of these
/// monotonic clocks (see [`crate::config::ConfigLayer`] and
/// [`crate::plan::DecodedPlan`]); equality therefore proves the program
/// still matches the machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct FusedStamps {
    ctx: usize,
    cfg_epoch: u64,
    capture_epoch: u64,
    modes_clock: u64,
    seq_clock: u64,
}

/// A fully lowered operand source: one match from a flat array index.
#[derive(Clone, Copy, Debug, PartialEq)]
enum FusedSrc {
    /// Compile-time constant.
    Const(Word16),
    /// `regs[i]` (flat `dnode * 4 + reg`).
    Reg(u32),
    /// The shared bus.
    Bus,
    /// `outs[d]`.
    Out(u32),
    /// Feedback-pipeline tap: `base` is the switch's flat offset
    /// (`switch * depth * width`), `stage` is logical (0 = newest).
    Pipe { base: u32, stage: u32, lane: u32 },
    /// Head of the `slot`-th host-input FIFO read in this phase
    /// (phase-local index into the staged head values).
    HostIn(u32),
}

/// One lowered Dnode operation: evaluate, then commit to flat indices.
#[derive(Clone, Copy, Debug, PartialEq)]
struct FusedOp {
    alu: AluOp,
    a: FusedSrc,
    b: FusedSrc,
    /// Accumulator source (flat register index) or [`NONE32`].
    acc: u32,
    /// Register destination (flat register index) or [`NONE32`].
    wr_reg: u32,
    /// Output destination (flat Dnode index) or [`NONE32`].
    wr_out: u32,
}

/// Per-phase slices into the program's flat tables.
#[derive(Clone, Copy, Debug, PartialEq)]
struct PhaseMeta {
    /// Range into [`FusedProgram::ops`].
    ops: (u32, u32),
    /// Range into [`FusedProgram::pops`].
    pops: (u32, u32),
    /// Range into [`FusedProgram::incs`].
    incs: (u32, u32),
    /// Phase-local result index driving the bus, or [`NONE32`].
    bus: u32,
    /// More than one Dnode drives the bus this phase.
    conflict: bool,
}

/// A compiled steady-state window: the whole ring's behaviour for one
/// configuration epoch, scheduled over `period` phases.
///
/// Derives `PartialEq` so the lane-fusion path can prove two machines
/// compiled *identical* programs before stepping them in lockstep.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct FusedProgram {
    /// `lcm` of the local-mode sequencer limits (1 with none in local
    /// mode).
    pub(crate) period: u32,
    /// Geometry snapshot the flat indices were computed against.
    dnodes: u32,
    width: u32,
    depth: u32,
    switches: u32,
    /// All phases' operations, concatenated.
    ops: Vec<FusedOp>,
    phases: Vec<PhaseMeta>,
    /// Host-input FIFO reads per phase: `(switch, port, operand reads)` —
    /// the FIFO is popped once, but an empty FIFO underflows once per
    /// operand read, exactly as the decoded path counts it.
    pops: Vec<(u32, u32, u32)>,
    /// Per-phase statistics increments: `(dnode, uses multiplier)`.
    incs: Vec<(u32, bool)>,
    /// Host captures (static across phases): `(switch, port, src dnode)`.
    captures: Vec<(u32, u32, u32)>,
    /// Local-mode Dnodes: `(dnode, limit, counter at phase 0)`.
    locals: Vec<(u32, u8, u8)>,
    /// Upstream Dnode feeding each `(switch, lane)` pipeline slot.
    pipe_rows: Vec<u32>,
    /// Widest phase (sizes the result buffer).
    max_phase_ops: u32,
    /// Most host-input reads in one phase (sizes the head-value buffer).
    max_phase_slots: u32,
}

impl FusedProgram {
    /// `true` when `phase` lines up with every local sequencer counter.
    fn phase_matches(&self, phase: u32, dnodes: &[DnodeState]) -> bool {
        self.locals.iter().all(|&(d, limit, base)| {
            dnodes[d as usize].sequencer().counter()
                == ((u32::from(base) + phase) % u32::from(limit)) as u8
        })
    }

    /// Finds the phase matching the machine's current sequencer counters,
    /// trying `hint` first (the phase a previous burst stopped before).
    pub(crate) fn find_phase(&self, hint: u32, dnodes: &[DnodeState]) -> Option<u32> {
        let hint = hint % self.period;
        if self.phase_matches(hint, dnodes) {
            return Some(hint);
        }
        (0..self.period).find(|&p| self.phase_matches(p, dnodes))
    }
}

/// Per-machine fused-engine state: the compiled program, the epoch stamps
/// it is valid for, and the stability bookkeeping that gates entry.
#[derive(Clone, Debug, Default)]
pub(crate) struct FusedEngine {
    program: Option<FusedProgram>,
    /// Epoch fingerprint observed at the last quiescent check.
    stamps: Option<FusedStamps>,
    /// Cycles executed since the stamps last changed.
    stable_cycles: u64,
    /// Machine cycle of the last quiescent check.
    last_seen_cycle: u64,
    /// Entry phase prepared for the imminent burst.
    entry_phase: u32,
    /// Phase the next burst is expected to start at (hint).
    next_phase: u32,
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

fn lcm(a: u32, b: u32) -> u32 {
    a / gcd(a, b) * b
}

/// Lowers a [`FastSrc`] into a [`FusedSrc`], registering host-input reads
/// in this phase's pop table.
fn lower_src(
    src: FastSrc,
    d: usize,
    depth: usize,
    width: usize,
    pops: &mut Vec<(u32, u32, u32)>,
    phase_start: usize,
) -> FusedSrc {
    match src {
        FastSrc::Const(word) => FusedSrc::Const(word),
        FastSrc::Reg(reg) => FusedSrc::Reg((d * 4 + reg.index()) as u32),
        FastSrc::Bus => FusedSrc::Bus,
        FastSrc::Out(index) => FusedSrc::Out(index as u32),
        FastSrc::Pipe {
            switch,
            stage,
            lane,
        } => FusedSrc::Pipe {
            base: (switch * depth * width) as u32,
            stage: stage as u32,
            lane: lane as u32,
        },
        FastSrc::HostIn { switch, port } => {
            let key = (switch as u32, port as u32);
            let slot = match pops[phase_start..]
                .iter()
                .position(|&(s, p, _)| (s, p) == key)
            {
                Some(j) => {
                    pops[phase_start + j].2 += 1;
                    j
                }
                None => {
                    pops.push((key.0, key.1, 1));
                    pops.len() - 1 - phase_start
                }
            };
            FusedSrc::HostIn(slot as u32)
        }
    }
}

/// Compiles the active context's decoded plan into a [`FusedProgram`],
/// with phase 0 anchored at the local sequencers' *current* counters.
/// Shared by the fused engine and the AOT phase cache (`crate::aot`).
pub(crate) fn compile(
    cp: &CtxPlan,
    dnodes: &[DnodeState],
    g: RingGeometry,
    depth: usize,
) -> FusedProgram {
    let width = g.width();
    let mut locals: Vec<(u32, u8, u8)> = Vec::new();
    for &d32 in &cp.work {
        let d = d32 as usize;
        if dnodes[d].mode() == DnodeMode::Local {
            let seq = dnodes[d].sequencer();
            locals.push((d32, seq.limit(), seq.counter()));
        }
    }
    let period = locals
        .iter()
        .fold(1u32, |acc, &(_, limit, _)| lcm(acc, u32::from(limit)));

    let mut ops = Vec::new();
    let mut phases = Vec::with_capacity(period as usize);
    let mut pops: Vec<(u32, u32, u32)> = Vec::new();
    let mut incs: Vec<(u32, bool)> = Vec::new();
    let mut max_phase_ops = 0u32;
    let mut max_phase_slots = 0u32;

    for phase in 0..period {
        let ops_start = ops.len() as u32;
        let pops_start = pops.len();
        let incs_start = incs.len() as u32;
        let mut bus = NONE32;
        let mut bus_count = 0u32;
        for &d32 in &cp.work {
            let d = d32 as usize;
            let op: &DecodedOp = match dnodes[d].mode() {
                DnodeMode::Global => &cp.ops[d],
                DnodeMode::Local => {
                    let &(_, limit, base) = locals
                        .iter()
                        .find(|x| x.0 == d32)
                        .expect("local Dnode recorded");
                    let lp = cp.local[d].as_ref().expect("local plan refreshed");
                    &lp.ops[((u32::from(base) + phase) % u32::from(limit)) as usize]
                }
            };
            if op.skip {
                continue;
            }
            let a = lower_src(op.a, d, depth, width, &mut pops, pops_start);
            let b = lower_src(op.b, d, depth, width, &mut pops, pops_start);
            if op.wr_bus {
                if bus == NONE32 {
                    bus = ops.len() as u32 - ops_start;
                }
                bus_count += 1;
            }
            if op.active {
                incs.push((d32, op.mult));
            }
            ops.push(FusedOp {
                alu: op.alu,
                a,
                b,
                acc: op.acc.map_or(NONE32, |r| (d * 4 + r.index()) as u32),
                wr_reg: op.wr_reg.map_or(NONE32, |r| (d * 4 + r.index()) as u32),
                wr_out: if op.wr_out { d32 } else { NONE32 },
            });
        }
        phases.push(PhaseMeta {
            ops: (ops_start, ops.len() as u32),
            pops: (pops_start as u32, pops.len() as u32),
            incs: (incs_start, incs.len() as u32),
            bus,
            conflict: bus_count >= 2,
        });
        max_phase_ops = max_phase_ops.max(ops.len() as u32 - ops_start);
        max_phase_slots = max_phase_slots.max((pops.len() - pops_start) as u32);
    }

    let captures = cp
        .captures
        .iter()
        .map(|c| (c.switch as u32, c.port as u32, c.src as u32))
        .collect();
    let pipe_rows = (0..g.switches())
        .flat_map(|s| {
            let layer = g.upstream_layer(s);
            (0..width).map(move |lane| g.dnode_index(layer, lane) as u32)
        })
        .collect();

    FusedProgram {
        period,
        dnodes: g.dnodes() as u32,
        width: width as u32,
        depth: depth as u32,
        switches: g.switches() as u32,
        ops,
        phases,
        pops,
        incs,
        captures,
        locals,
        pipe_rows,
        max_phase_ops,
        max_phase_slots,
    }
}

/// Immutable lane-major state views for operand reads.
struct LaneView<'a> {
    regs: &'a [Word16],
    outs: &'a [Word16],
    pipes: &'a [Word16],
    bus: &'a [Word16],
    hv: &'a [Word16],
    head: usize,
    depth: usize,
    width: usize,
    lanes: usize,
}

#[inline]
fn read_src(src: FusedSrc, lane: usize, v: &LaneView<'_>) -> Word16 {
    match src {
        FusedSrc::Const(word) => word,
        FusedSrc::Reg(i) => v.regs[i as usize * v.lanes + lane],
        FusedSrc::Bus => v.bus[lane],
        FusedSrc::Out(d) => v.outs[d as usize * v.lanes + lane],
        FusedSrc::Pipe {
            base,
            stage,
            lane: pl,
        } => {
            let phys = (v.head + stage as usize) % v.depth;
            v.pipes[(base as usize + phys * v.width + pl as usize) * v.lanes + lane]
        }
        FusedSrc::HostIn(slot) => v.hv[slot as usize * v.lanes + lane],
    }
}

/// Replays `program` for `k` cycles over all `lanes` in lockstep,
/// starting at phase `entry`. Every lane must have been prepared
/// (validated + entered) by [`RingMachine::prepare_fused`], and for
/// multi-lane calls the prepared programs must be equal.
///
/// Infallible by construction: nothing inside a burst can raise a
/// [`crate::SimError`] (no controller execution, no configuration writes,
/// no fault machinery).
///
/// `aot` selects which engine's entry/cycle counters account the burst
/// ([`crate::Stats::aot_entries`] vs [`crate::Stats::fused_entries`]); the
/// architectural effects are identical.
pub(crate) fn execute(
    program: &FusedProgram,
    entry: u32,
    lanes: &mut [&mut RingMachine],
    k: u64,
    aot: bool,
) {
    // Monomorphize the hot lane counts: a literal `L` lets every
    // `* l + lane` fold to a plain index and the per-lane loops unroll
    // (1 = the single-machine path, 16 = a full lane group in the batch
    // runner). `L = 0` keeps a fully dynamic fallback for other widths.
    match lanes.len() {
        1 => execute_impl::<1>(program, entry, lanes, k, aot),
        16 => execute_impl::<16>(program, entry, lanes, k, aot),
        _ => execute_impl::<0>(program, entry, lanes, k, aot),
    }
}

fn execute_impl<const L: usize>(
    program: &FusedProgram,
    entry: u32,
    lanes: &mut [&mut RingMachine],
    k: u64,
    aot: bool,
) {
    debug_assert!(k >= 1 && !lanes.is_empty());
    let l = if L == 0 { lanes.len() } else { L };
    let nd = program.dnodes as usize;
    let width = program.width as usize;
    let depth = program.depth as usize;
    let nsw = program.switches as usize;
    let period = program.period as usize;

    // ---- Gather machine state into lane-major SoA arrays ---------------
    let mut regs = vec![Word16::ZERO; nd * 4 * l];
    let mut outs = vec![Word16::ZERO; nd * l];
    let mut stamps: Vec<Option<u64>> = vec![None; nd * l];
    let mut pipes = vec![Word16::ZERO; nsw * depth * width * l];
    let mut bus = vec![Word16::ZERO; l];
    let mut bases = vec![0u64; l];
    let mut quiet = vec![false; l];
    let mut plans: Vec<Option<HostBurstPlan>> = Vec::with_capacity(l);
    for (lane, m) in lanes.iter().enumerate() {
        bases[lane] = m.cycle;
        bus[lane] = m.bus;
        // A quiet host (all sources drained, no open sinks, direct link)
        // would only advance its round-robin rotation each cycle; skip it
        // per cycle and advance the rotation in bulk at scatter. A busy
        // direct-link host gets a port plan so each replayed cycle visits
        // only live ports; metered hosts keep the full credit-metered step.
        quiet[lane] = m.params.link == LinkModel::Direct
            && m.host.inputs_drained()
            && !m.host.any_sink_open();
        plans.push(if quiet[lane] {
            None
        } else {
            m.host.burst_plan()
        });
        for d in 0..nd {
            let r = m.dnodes[d].regs_raw();
            for (i, word) in r.iter().enumerate() {
                regs[(d * 4 + i) * l + lane] = *word;
            }
            outs[d * l + lane] = m.dnodes[d].out();
            stamps[d * l + lane] = m.dnodes[d].out_written_at();
        }
        for s in 0..nsw {
            for st in 0..depth {
                for w in 0..width {
                    pipes[((s * depth + st) * width + w) * l + lane] =
                        m.switches[s].pipe.read(st, w);
                }
            }
        }
    }
    // Physical index of logical pipeline stage 0; rotation decrements it.
    let mut head = 0usize;
    let mut results = vec![Word16::ZERO; program.max_phase_ops as usize * l];
    let mut hv = vec![Word16::ZERO; program.max_phase_slots as usize * l];
    let mut under = vec![0u64; l];
    let mut over = vec![0u64; l];

    // ---- Replay ---------------------------------------------------------
    let mut phase = entry as usize;
    for t in 0..k {
        let pm = &program.phases[phase];
        // Stage the host-input FIFO heads read this phase (underflows
        // count once per operand read of an empty FIFO).
        let pops = &program.pops[pm.pops.0 as usize..pm.pops.1 as usize];
        for (j, &(s, p, reads)) in pops.iter().enumerate() {
            for lane in 0..l {
                match lanes[lane].switches[s as usize].host_in[p as usize].peek() {
                    Some(word) => hv[j * l + lane] = word,
                    None => {
                        hv[j * l + lane] = Word16::ZERO;
                        under[lane] += u64::from(reads);
                    }
                }
            }
        }
        // Evaluate this phase's operations against pre-cycle state.
        let ops = &program.ops[pm.ops.0 as usize..pm.ops.1 as usize];
        {
            let view = LaneView {
                regs: &regs,
                outs: &outs,
                pipes: &pipes,
                bus: &bus,
                hv: &hv,
                head,
                depth,
                width,
                lanes: l,
            };
            for (i, op) in ops.iter().enumerate() {
                for lane in 0..l {
                    let a = read_src(op.a, lane, &view);
                    let b = read_src(op.b, lane, &view);
                    let acc = if op.acc != NONE32 {
                        view.regs[op.acc as usize * l + lane]
                    } else {
                        Word16::ZERO
                    };
                    results[i * l + lane] = op.alu.eval(a, b, acc);
                }
            }
        }
        // Consume the read FIFO heads.
        for &(s, p, _) in pops {
            for m in lanes.iter_mut() {
                m.switches[s as usize].host_in[p as usize].pop();
            }
        }
        // Host stream movement (skipped per cycle for quiet lanes).
        for (lane, m) in lanes.iter_mut().enumerate() {
            match &mut plans[lane] {
                Some(plan) => m.host.step_planned(plan, &mut m.switches, &mut m.stats),
                None if quiet[lane] => {}
                None => m.host.step(&mut m.switches, &mut m.stats),
            }
        }
        // Host captures from pre-commit outputs, in commit order.
        for &(s, p, src) in &program.captures {
            for lane in 0..l {
                let word = outs[src as usize * l + lane];
                if lanes[lane].switches[s as usize].host_out[p as usize].push(word)
                    == PushOutcome::Dropped
                {
                    over[lane] += 1;
                }
            }
        }
        // Feedback pipelines: evict the oldest stage, capture the upstream
        // layer's pre-commit outputs as the new stage 0.
        head = (head + depth - 1) % depth;
        for s in 0..nsw {
            let row = (s * depth + head) * width;
            for w in 0..width {
                let src = program.pipe_rows[s * width + w] as usize;
                for lane in 0..l {
                    pipes[(row + w) * l + lane] = outs[src * l + lane];
                }
            }
        }
        // Commit register and output writes.
        for (i, op) in ops.iter().enumerate() {
            if op.wr_reg != NONE32 {
                let base = op.wr_reg as usize * l;
                for lane in 0..l {
                    regs[base + lane] = results[i * l + lane];
                }
            }
            if op.wr_out != NONE32 {
                let base = op.wr_out as usize * l;
                for lane in 0..l {
                    outs[base + lane] = results[i * l + lane];
                    stamps[base + lane] = Some(bases[lane] + t);
                }
            }
        }
        // Shared bus (no controller inside a burst: lowest-index Dnode
        // wins; the bus holds its value on driverless cycles).
        if pm.bus != NONE32 {
            let i = pm.bus as usize;
            for lane in 0..l {
                bus[lane] = results[i * l + lane];
            }
        }
        phase = (phase + 1) % period;
    }

    // ---- Scatter + batched accounting -----------------------------------
    // How many times each phase executed over the k cycles from `entry`.
    let mut execs = vec![k / period as u64; period];
    for i in 0..(k % period as u64) as usize {
        execs[(entry as usize + i) % period] += 1;
    }
    for (lane, m) in lanes.iter_mut().enumerate() {
        for d in 0..nd {
            let mut r = [Word16::ZERO; 4];
            for (i, word) in r.iter_mut().enumerate() {
                *word = regs[(d * 4 + i) * l + lane];
            }
            m.dnodes[d].scatter_raw(r, outs[d * l + lane], stamps[d * l + lane]);
        }
        for s in 0..nsw {
            for st in 0..depth {
                let phys = (head + st) % depth;
                for w in 0..width {
                    m.switches[s].pipe.poke(
                        st,
                        w,
                        pipes[((s * depth + phys) * width + w) * l + lane],
                    );
                }
            }
        }
        m.bus = bus[lane];
        for &(d, limit, base) in &program.locals {
            let cpt = ((u64::from(base) + u64::from(entry) + k) % u64::from(limit)) as u8;
            m.dnodes[d as usize].sequencer_mut().set_counter_raw(cpt);
            m.stats.dnodes[d as usize].local_cycles += k;
        }
        if quiet[lane] {
            m.host.skip_quiet_cycles(k);
        }
        // The controller spent the whole burst halted or waiting: every
        // cycle is a stall cycle, and a pending wait shrinks by k.
        if let CtrlState::Waiting(_) = m.controller.state() {
            m.controller.skip_wait(k);
        }
        m.stats.ctrl_stall_cycles += k;
        for (p, &n) in execs.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let pm = &program.phases[p];
            for &(d, mult) in &program.incs[pm.incs.0 as usize..pm.incs.1 as usize] {
                let ds = &mut m.stats.dnodes[d as usize];
                ds.active_cycles += n;
                ds.alu_ops += n;
                if mult {
                    ds.mult_ops += n;
                }
            }
            if pm.conflict {
                m.stats.bus_conflicts += n;
            }
        }
        m.stats.fifo_underflows += under[lane];
        m.stats.fifo_overflows += over[lane];
        m.cycle += k;
        m.stats.cycles += k;
        if aot {
            m.stats.aot_entries += 1;
            m.stats.aot_cycles += k;
        } else {
            m.stats.fused_entries += 1;
            m.stats.fused_cycles += k;
            m.stats.fused_lane_occupancy += k * l as u64;
        }
    }
}

impl RingMachine {
    /// The current configuration-epoch fingerprint (also the AOT guard's
    /// cheap content-unchanged revalidation: equal stamps prove no
    /// configuration, mode or sequencer write happened in between).
    pub(crate) fn fused_stamps(&self) -> FusedStamps {
        let ctx = self.config.active_index();
        let (modes_clock, seq_clock) = self.plan.clocks();
        FusedStamps {
            ctx,
            cfg_epoch: self.config.ctx_epoch(ctx),
            capture_epoch: self.config.capture_epoch(ctx),
            modes_clock,
            seq_clock,
        }
    }

    /// Drops a live compiled program, counting the deoptimization.
    fn fused_deopt_if_live(&mut self) {
        if let Some(engine) = &mut self.fused {
            if engine.program.take().is_some() {
                self.stats.fused_deopts += 1;
            }
            engine.stamps = None;
            engine.stable_cycles = 0;
        }
    }

    /// Gatekeeper for fused execution: checks quiescence, maintains the
    /// epoch-stability window, compiles (or revalidates) the program and
    /// locates the entry phase. Returns the admissible burst length
    /// (`<= remaining`), or `None` to stay on the decoded path.
    pub(crate) fn prepare_fused(&mut self, remaining: u64) -> Option<u64> {
        if !self.params.fused || !self.params.decode_cache {
            return None;
        }
        if self.fault.is_some() || self.params.watchdog_interval > 0 {
            // Persistent ineligibility: armed fault machinery or watchdog
            // demand the per-cycle bracketing of the decoded path.
            self.fused_deopt_if_live();
            return None;
        }
        let window = match self.controller.state() {
            CtrlState::Halted => remaining,
            CtrlState::Waiting(n) => remaining.min(u64::from(n)),
            CtrlState::Running => 0,
        };
        if window == 0 || self.config.select_pending() {
            // Transient: the program (if any) stays cached; a real
            // configuration change will show up in the stamps.
            return None;
        }
        let stamps = self.fused_stamps();
        let mut engine = self.fused.take().unwrap_or_default();
        let prepared = (|| {
            match engine.stamps {
                Some(prev) if prev == stamps => {
                    engine.stable_cycles += self.cycle - engine.last_seen_cycle;
                }
                Some(_) => {
                    if engine.program.take().is_some() {
                        self.stats.fused_deopts += 1;
                    }
                    engine.stamps = Some(stamps);
                    engine.stable_cycles = 0;
                }
                None => {
                    engine.stamps = Some(stamps);
                    engine.stable_cycles = 0;
                }
            }
            engine.last_seen_cycle = self.cycle;
            if window < MIN_BURST {
                return None;
            }
            if engine.stable_cycles < DETECTION_WINDOW {
                // Stability not yet *observed* — but an attached proof
                // manifest may have *proven* it: past the manifest's
                // stability cycle no configuration write can happen on any
                // execution path, so the detection window is pure warm-up
                // and the engine may engage immediately. The burst itself
                // is bit-identical replay either way; only the entry
                // heuristic is waived.
                match self.proof_stable_from {
                    Some(stable) if self.cycle >= stable => {
                        self.stats.guards_elided += 1;
                    }
                    _ => return None,
                }
            }
            let active = self.config.active_index();
            let misses = self
                .plan
                .refresh(active, &self.config, &self.dnodes, self.geometry);
            if misses > 0 {
                self.stats.decode_cache_misses += misses;
            }
            if engine.program.is_none() {
                engine.program = Some(compile(
                    self.plan.context_plan(active),
                    &self.dnodes,
                    self.geometry,
                    self.params.pipe_depth,
                ));
                engine.next_phase = 0;
            }
            let entry = engine
                .program
                .as_ref()
                .expect("program just ensured")
                .find_phase(engine.next_phase, &self.dnodes);
            engine.entry_phase = match entry {
                Some(p) => p,
                None => {
                    // Sequencer counters no longer line up with the
                    // compiled phase origin: re-anchor at the current
                    // counters (always succeeds with entry phase 0).
                    engine.program = Some(compile(
                        self.plan.context_plan(active),
                        &self.dnodes,
                        self.geometry,
                        self.params.pipe_depth,
                    ));
                    0
                }
            };
            Some(window)
        })();
        self.fused = Some(engine);
        prepared
    }

    /// Attempts one single-lane fused burst of up to `remaining` cycles;
    /// returns the cycles executed (0 = not entered).
    pub(crate) fn try_fused(&mut self, remaining: u64) -> u64 {
        let Some(window) = self.prepare_fused(remaining) else {
            return 0;
        };
        let mut engine = self.fused.take().expect("engine prepared");
        let program = engine.program.take().expect("program prepared");
        let entry = engine.entry_phase;
        {
            let mut lanes = [&mut *self];
            execute(&program, entry, &mut lanes, window, false);
        }
        engine.next_phase = ((u64::from(entry) + window) % u64::from(program.period)) as u32;
        engine.program = Some(program);
        self.fused = Some(engine);
        window
    }
}

/// Steps `lanes` machines in lockstep through one shared fused burst of at
/// most `max_cycles` cycles, returning the cycles executed (0 = the burst
/// was not entered and no machine advanced).
///
/// Entry requires *every* lane to be individually fusible right now (see
/// [`crate::MachineParams::fused`]) and all lanes to have compiled equal
/// programs at the same entry phase — the batch runner arranges this by
/// grouping jobs that share an identical object program and cycle budget.
/// When the burst executes, all lanes advance exactly `max_cycles`
/// (bounded by each lane's own admissible window) over shared lane-major
/// state arrays, so per-cycle schedule-walk costs are paid once for the
/// whole group. Each lane's statistics account the burst with
/// `fused_lane_occupancy = cycles * lanes` (see
/// [`crate::Stats::fused_lane_occupancy`]).
///
/// Machines left unentered (return 0) are completely untouched; callers
/// fall back to stepping them individually.
pub fn lockstep_burst(lanes: &mut [&mut RingMachine], max_cycles: u64) -> u64 {
    if lanes.is_empty() || max_cycles == 0 {
        return 0;
    }
    let mut window = max_cycles;
    for m in lanes.iter_mut() {
        match m.prepare_fused(window) {
            Some(w) => window = window.min(w),
            None => return 0,
        }
    }
    {
        let first = lanes[0].fused.as_ref().expect("prepared");
        let program = first.program.as_ref().expect("prepared");
        let entry = first.entry_phase;
        for m in lanes[1..].iter() {
            let engine = m.fused.as_ref().expect("prepared");
            if engine.entry_phase != entry || engine.program.as_ref() != Some(program) {
                return 0;
            }
        }
    }
    let mut engine0 = lanes[0].fused.take().expect("prepared");
    let program = engine0.program.take().expect("prepared");
    let entry = engine0.entry_phase;
    execute(&program, entry, lanes, window, false);
    let next = ((u64::from(entry) + window) % u64::from(program.period)) as u32;
    engine0.next_phase = next;
    engine0.program = Some(program);
    lanes[0].fused = Some(engine0);
    for m in lanes[1..].iter_mut() {
        m.fused.as_mut().expect("prepared").next_phase = next;
    }
    window
}
