//! Switch state: feedback pipelines and host FIFOs.
//!
//! The crossbar routing itself is stateless (it is configuration, held in
//! the configuration layer); this module holds the *stateful* parts of a
//! switch — the feedback pipeline it owns and its host-side FIFOs.

use std::collections::VecDeque;

use systolic_ring_isa::Word16;

/// The feedback pipeline owned by one switch (paper §4.2, Figure 5).
///
/// Every cycle the switch unconditionally pushes the upstream layer's output
/// vector; reads address `(stage, lane)` with stage 0 being the most recent
/// capture. The fixed depth bounds the reverse-dataflow reach and "the
/// required delays on recursive branch are automatically achieved in them".
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FeedbackPipeline {
    stages: VecDeque<Vec<Word16>>,
    depth: usize,
    width: usize,
}

impl FeedbackPipeline {
    /// A pipeline of `depth` stages, each a vector of `width` words,
    /// initially all zero.
    pub fn new(depth: usize, width: usize) -> Self {
        assert!(depth >= 1, "pipeline depth must be at least 1");
        let stages = (0..depth).map(|_| vec![Word16::ZERO; width]).collect();
        FeedbackPipeline {
            stages,
            depth,
            width,
        }
    }

    /// Pipeline depth in stages.
    #[inline]
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Reads `(stage, lane)`; stage 0 is the newest capture.
    ///
    /// # Panics
    ///
    /// Panics if `stage >= depth` or `lane >= width`; routing is validated
    /// at configuration-write time.
    #[inline]
    pub fn read(&self, stage: usize, lane: usize) -> Word16 {
        self.stages[stage][lane]
    }

    /// Pushes a captured layer-output vector, evicting the oldest stage.
    ///
    /// # Panics
    ///
    /// Panics if `vector.len() != width`.
    pub fn push(&mut self, vector: Vec<Word16>) {
        assert_eq!(vector.len(), self.width, "capture width mismatch");
        self.stages.push_front(vector);
        self.stages.pop_back();
    }

    /// Captures a new stage-0 vector without allocating: the evicted
    /// oldest stage's buffer is refilled lane-by-lane from `fill` and
    /// reinserted as the newest stage. Equivalent to
    /// [`FeedbackPipeline::push`] with `vec![fill(0), .., fill(width-1)]`.
    pub fn rotate_with<F: FnMut(usize) -> Word16>(&mut self, mut fill: F) {
        let mut stage = self.stages.pop_back().expect("depth >= 1");
        for (lane, slot) in stage.iter_mut().enumerate() {
            *slot = fill(lane);
        }
        self.stages.push_front(stage);
    }

    /// Overwrites one `(stage, lane)` word in place (fault injection).
    ///
    /// # Panics
    ///
    /// Panics if `stage >= depth` or `lane >= width`.
    pub fn poke(&mut self, stage: usize, lane: usize, word: Word16) {
        self.stages[stage][lane] = word;
    }

    /// Swaps the contents of two lanes across every stage (Dnode remap:
    /// the in-flight output history follows the swapped roles).
    ///
    /// # Panics
    ///
    /// Panics if either lane is `>= width`.
    pub(crate) fn swap_lanes(&mut self, a: usize, b: usize) {
        assert!(a < self.width && b < self.width, "lane out of range");
        for stage in &mut self.stages {
            stage.swap(a, b);
        }
    }
}

/// Outcome of a bounded FIFO push.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PushOutcome {
    /// The word was enqueued.
    Stored,
    /// The FIFO was full; the word was dropped.
    Dropped,
}

/// A bounded word FIFO (host-input or host-output side of a switch).
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct WordFifo {
    queue: VecDeque<Word16>,
    capacity: usize,
}

impl WordFifo {
    /// An empty FIFO holding at most `capacity` words.
    pub fn new(capacity: usize) -> Self {
        WordFifo {
            queue: VecDeque::new(),
            capacity,
        }
    }

    /// Words currently enqueued.
    #[inline]
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// `true` if no words are enqueued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// `true` if at capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.queue.len() >= self.capacity
    }

    /// The word a reader would observe this cycle (head), if any.
    #[inline]
    pub fn peek(&self) -> Option<Word16> {
        self.queue.front().copied()
    }

    /// Removes and returns the head.
    pub fn pop(&mut self) -> Option<Word16> {
        self.queue.pop_front()
    }

    /// Enqueues `word`, dropping it if the FIFO is full.
    pub fn push(&mut self, word: Word16) -> PushOutcome {
        if self.is_full() {
            PushOutcome::Dropped
        } else {
            self.queue.push_back(word);
            PushOutcome::Stored
        }
    }
}

/// Stateful parts of one switch.
///
/// A switch owns `2 * width` host-input FIFOs and `width` host-output
/// FIFOs — the paper's "direct dedicated ports", enough to feed both
/// forward ports of every downstream Dnode and to capture the whole
/// upstream layer every cycle.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SwitchState {
    /// The feedback pipeline this switch owns.
    pub pipe: FeedbackPipeline,
    /// Host-to-ring FIFOs (filled by host streams or controller `hpush`),
    /// indexed by host-input port.
    pub host_in: Vec<WordFifo>,
    /// Ring-to-host FIFOs (filled by the per-port capture selectors,
    /// drained by host sinks or controller `hpop`), indexed by out-port.
    pub host_out: Vec<WordFifo>,
}

impl SwitchState {
    /// A reset switch with the given pipeline depth, layer width and host
    /// FIFO capacity.
    pub fn new(pipe_depth: usize, width: usize, fifo_capacity: usize) -> Self {
        SwitchState {
            pipe: FeedbackPipeline::new(pipe_depth, width),
            host_in: (0..2 * width)
                .map(|_| WordFifo::new(fifo_capacity))
                .collect(),
            host_out: (0..width).map(|_| WordFifo::new(fifo_capacity)).collect(),
        }
    }

    /// Number of host-input ports on this switch.
    pub fn host_in_ports(&self) -> usize {
        self.host_in.len()
    }

    /// Number of host-output ports on this switch.
    pub fn host_out_ports(&self) -> usize {
        self.host_out.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: i16) -> Word16 {
        Word16::from_i16(v)
    }

    #[test]
    fn pipeline_shifts_and_reads_by_age() {
        let mut p = FeedbackPipeline::new(3, 2);
        assert_eq!(p.read(2, 1), Word16::ZERO);
        p.push(vec![w(1), w(2)]);
        p.push(vec![w(3), w(4)]);
        assert_eq!(p.read(0, 0), w(3));
        assert_eq!(p.read(0, 1), w(4));
        assert_eq!(p.read(1, 0), w(1));
        assert_eq!(p.read(2, 0), Word16::ZERO);
        p.push(vec![w(5), w(6)]);
        p.push(vec![w(7), w(8)]);
        // The (1,2) capture has been evicted.
        assert_eq!(p.read(2, 0), w(3));
        assert_eq!(p.depth(), 3);
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn pipeline_rejects_wrong_width() {
        FeedbackPipeline::new(2, 2).push(vec![w(1)]);
    }

    #[test]
    fn fifo_ordering_and_capacity() {
        let mut f = WordFifo::new(2);
        assert!(f.is_empty());
        assert_eq!(f.push(w(1)), PushOutcome::Stored);
        assert_eq!(f.push(w(2)), PushOutcome::Stored);
        assert!(f.is_full());
        assert_eq!(f.push(w(3)), PushOutcome::Dropped);
        assert_eq!(f.peek(), Some(w(1)));
        assert_eq!(f.pop(), Some(w(1)));
        assert_eq!(f.pop(), Some(w(2)));
        assert_eq!(f.pop(), None);
        assert_eq!(f.len(), 0);
    }

    #[test]
    fn switch_state_construction() {
        let s = SwitchState::new(4, 3, 16);
        assert_eq!(s.pipe.depth(), 4);
        assert_eq!(s.host_in_ports(), 6);
        assert_eq!(s.host_out_ports(), 3);
        assert!(s.host_in.iter().all(WordFifo::is_empty));
        assert!(s.host_out.iter().all(WordFifo::is_empty));
    }
}
