//! The ahead-of-time multi-phase superblock cache (the `aot` tier).
//!
//! The fused engine (see [`crate::fused`]) discovers steady-state windows
//! at run time: it waits [`crate::fused::DETECTION_WINDOW`] stable cycles
//! before compiling, and *deoptimizes* — drops the compiled program and
//! falls back to the decoded path — on every reconfiguration write. For
//! kernels that reconfigure frequently (Table 1 motion estimation switches
//! contexts every few hundred cycles) most of the run is therefore spent
//! re-detecting windows it has already compiled and thrown away.
//!
//! This module keeps a *cache of compiled programs keyed by configuration
//! content* instead of a single program keyed by monotonic epochs:
//!
//! * **Load-time prefill.** [`RingMachine::load`] walks the controller
//!   program over shadow state (controller + configuration layer only, no
//!   datapath), applying configuration effects as it goes. Every steady
//!   window it can prove — a `wait` of at least [`MIN_BURST`] cycles or a
//!   `halt` — has its configuration snapshot compiled into the cache
//!   before cycle 0. The walk is best-effort and conservative: it stops at
//!   anything whose value it cannot know at load time (`busr`, `hpop`,
//!   controller faults) and is bounded by a retire budget, so it is an
//!   accelerator, never an oracle.
//! * **Content-keyed guard.** At run time, entry into a compiled program
//!   is guarded by the configuration *content* (every active-context
//!   microinstruction, route, capture, mode and live sequencer slot), not
//!   by the monotonic epochs: rewriting a context with identical words, or
//!   cycling A→B→A, re-enters the cached program instead of deoptimizing.
//!   The epoch fingerprint ([`crate::fused::FusedStamps`]) is kept as a
//!   cheap revalidation — equal stamps prove the content (and therefore
//!   the resolved cache entry) is unchanged without re-serializing it.
//! * **Guard stitching.** A guard miss ([`crate::Stats::aot_guard_misses`])
//!   does not abandon compiled execution the way a fused deopt does: the
//!   unseen configuration is compiled on the spot ([`crate::Stats::
//!   aot_compiles`]) and entered immediately, with no re-detection window.
//! * **Schedule bursts.** A *running* controller does not force the
//!   decoded path either, as long as it stays off the datapath: a
//!   lookahead over a cloned controller admits every cycle whose
//!   instruction provably retires without reading the bus or a host FIFO
//!   and whose only architectural effect is a context select. The admitted
//!   region partitions into per-context segments; each segment's fabric
//!   cycles run through the cached compiled program for that
//!   configuration, and the controller then replays over the same cycles
//!   (one instruction per cycle, datapath-free by admission). Within the
//!   region the controller and the fabric only interact at the
//!   segment-boundary context commits, so the decomposition is
//!   cycle-exact. This is what covers multi-phase schedules whose
//!   controller ping-pongs contexts without ever waiting.
//!
//! The decoded path is only taken for cycles that are structurally
//! inadmissible: a pending context select, an armed fault injector,
//! sub-[`MIN_BURST`] windows, or controller instructions that touch the
//! datapath (`busr`, `hpop`, `busw`, `hpush`, configuration writes).
//!
//! Because admission is by content equality, soundness never depends on
//! the load-time walk being right: a stale or missing prefill entry can
//! only cost a recompile, never a wrong result. Replay itself is the fused
//! engine's [`crate::fused::execute`], so the two tiers share one compiled
//! semantics and differ only in admission policy.
//!
//! # Watchdog interaction
//!
//! The fused engine refuses to run with the watchdog armed. The AOT tier
//! admits *provably quiet* windows (direct link, input streams drained, no
//! open sinks — so no host progress is possible inside the burst) bounded
//! so the burst ends no later than the earliest possible trip: the skipped
//! per-cycle boundary checks are then exact no-ops, and a due trip is
//! raised by the decoded path at the same cycle, with the same
//! architectural context, as it would have been cycle-by-cycle.

use std::cell::Cell;

use systolic_ring_isa::dnode::{DnodeMode, MicroInstr};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

use crate::config::ConfigLayer;
use crate::controller::{CtrlEffect, CtrlPorts, CtrlState};
use crate::dnode::DnodeState;
use crate::error::ConfigError;
use crate::fused::{self, FusedProgram, FusedStamps, MIN_BURST};
use crate::machine::RingMachine;
use crate::params::LinkModel;
use crate::plan::DecodedPlan;
use crate::stats::Stats;

/// Most compiled programs kept per machine. Conformance kernels use a
/// handful of configuration phases; the cap is a backstop against
/// pathological controller programs that generate unbounded distinct
/// configurations (eviction is FIFO — oldest program first).
pub(crate) const AOT_CACHE_CAP: usize = 64;

/// Controller instructions the load-time walk may retire before giving
/// up. Real controller programs finish their configuration prologue in a
/// few hundred instructions; the budget only exists to bound datapath-free
/// infinite loops.
const PREFILL_RETIRE_BUDGET: u64 = 10_000;

/// One compiled configuration phase.
#[derive(Clone, Debug)]
struct AotEntry {
    /// FNV-1a hash of `key` (cheap reject before the exact compare).
    hash: u64,
    /// Canonical serialization of the configuration content the program
    /// was compiled from (see [`content_key`]).
    key: Vec<u64>,
    program: FusedProgram,
    /// Phase the next burst through this entry is expected to start at.
    next_phase: u32,
}

/// Recently resolved stamps the engine remembers; schedules ping-pong
/// among a handful of contexts, so a short most-recently-used list hits
/// on every segment of a steady multi-phase loop.
const STAMP_MEMO_CAP: usize = 8;

/// Per-machine AOT state: the content-keyed program cache plus the
/// stamps memo that skips re-serialization on already-seen epochs.
#[derive(Clone, Debug, Default)]
pub(crate) struct AotEngine {
    entries: Vec<AotEntry>,
    /// Resolved (fingerprint → entry) pairs, most recent first; an equal
    /// fingerprint proves the content key (and therefore the entry)
    /// without re-serializing it, because every content mutation bumps
    /// an epoch or clock in the fingerprint.
    stamp_memo: Vec<(FusedStamps, usize)>,
    /// Cycle before which a running-controller schedule lookahead is known
    /// to come up short: the instruction that stopped the last lookahead
    /// cannot retire before this cycle, so re-walking earlier is wasted
    /// work (the lookahead is deterministic).
    schedule_stuck_until: u64,
    /// Entry pinned by a proof manifest: once the machine is past its
    /// proven configuration-stability cycle, the first resolved entry is
    /// remembered here and subsequent quiet-window bursts reuse it
    /// without re-probing the content hash (the proof guarantees the
    /// content cannot have changed). Cleared on FIFO eviction (indices
    /// shift) and whenever the machine detaches its proof.
    pub(crate) proof_idx: Option<usize>,
    /// Entry compiled for the halt-state configuration when the load-time
    /// walk covered the *whole* controller execution (reached `halt`
    /// without ever touching the datapath). The walk is deterministic and
    /// datapath-free, so the real run retires the same instructions: once
    /// a proof manifest additionally establishes a stability cycle,
    /// `RingMachine::attach_proof` pins this entry as [`Self::proof_idx`]
    /// — every post-stability burst runs this exact configuration.
    pub(crate) prefill_final: Option<usize>,
}

impl AotEngine {
    /// Number of compiled programs currently cached (test/lint hook).
    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    fn lookup(&self, hash: u64, key: &[u64]) -> Option<usize> {
        self.entries
            .iter()
            .position(|e| e.hash == hash && e.key == key)
    }

    fn insert(&mut self, entry: AotEntry) -> usize {
        if self.entries.len() >= AOT_CACHE_CAP {
            self.entries.remove(0);
            // Indices shifted: the memo (and any proof- or prefill-pinned
            // index) may name wrong entries now.
            self.stamp_memo.clear();
            self.proof_idx = None;
            self.prefill_final = None;
        }
        self.entries.push(entry);
        self.entries.len() - 1
    }
}

/// FNV-1a over the key words.
fn fnv1a(key: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &w in key {
        for b in w.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Serializes everything a compiled program's behaviour depends on:
/// the active context's microinstructions, routes and captures, every
/// Dnode's mode, and — for local-mode Dnodes — the sequencer limit and
/// the slots below it.
///
/// Deliberately excluded: sequencer *counters* (handled by
/// [`FusedProgram::find_phase`] / re-anchoring), slots at or above the
/// limit (unreachable until a `wlim` raises it, which changes the key),
/// and all datapath state (registers, outputs, pipelines, FIFOs, bus),
/// which the replay engine reads live.
fn content_key(config: &ConfigLayer, dnodes: &[DnodeState], g: RingGeometry) -> Vec<u64> {
    let width = g.width();
    let ctx = config.active();
    let mut key = Vec::with_capacity(g.dnodes() * 3 + g.switches() * width * 5);
    for d in 0..g.dnodes() {
        key.push(ctx.dnode_instr(d).encode());
    }
    for s in 0..g.switches() {
        for lane in 0..width {
            for port in 0..4 {
                key.push(u64::from(ctx.port(width, s, lane, port).encode()));
            }
        }
        for port in 0..width {
            key.push(u64::from(ctx.capture(width, s, port).encode()));
        }
    }
    for d in dnodes {
        match d.mode() {
            DnodeMode::Global => key.push(0),
            DnodeMode::Local => {
                let seq = d.sequencer();
                key.push(1 | u64::from(seq.limit()) << 1);
                for slot in 0..usize::from(seq.limit()) {
                    key.push(seq.slot(slot).encode());
                }
            }
        }
    }
    key
}

/// Compiles the shadow configuration into `engine` unless an identical
/// content key is already cached.
fn prefill_compile(
    engine: &mut AotEngine,
    config: &ConfigLayer,
    dnodes: &[DnodeState],
    plan: &mut DecodedPlan,
    g: RingGeometry,
    depth: usize,
    stats: &mut Stats,
) -> Option<usize> {
    if engine.entries.len() >= AOT_CACHE_CAP {
        return None;
    }
    let key = content_key(config, dnodes, g);
    let hash = fnv1a(&key);
    if let Some(idx) = engine.lookup(hash, &key) {
        return Some(idx);
    }
    let active = config.active_index();
    plan.refresh(active, config, dnodes, g);
    let program = fused::compile(plan.context_plan(active), dnodes, g, depth);
    stats.aot_compiles += 1;
    Some(engine.insert(AotEntry {
        hash,
        key,
        program,
        next_phase: 0,
    }))
}

/// The load-time walk's controller environment: the walk has no datapath,
/// so a `busr` returns an unknowable value (flagged, aborting the walk)
/// and an `hpop` always stalls (a non-retiring step, likewise aborting).
#[derive(Default)]
struct BlindPorts {
    blind: Cell<bool>,
}

impl CtrlPorts for BlindPorts {
    fn bus(&self) -> Word16 {
        self.blind.set(true);
        Word16::ZERO
    }

    fn hpop(&mut self, _switch: usize, _port: usize) -> Result<Option<Word16>, ConfigError> {
        Ok(None)
    }
}

/// Applies one controller effect to the walk's shadow configuration,
/// mirroring [`RingMachine`]'s end-of-cycle commit (validation included)
/// minus statistics and datapath side effects: `busw` only matters to a
/// later `busr` (which aborts the walk anyway) and `hpush` only feeds the
/// datapath, so both are no-ops here.
fn apply_walk_effect(
    effect: &CtrlEffect,
    config: &mut ConfigLayer,
    dnodes: &mut [DnodeState],
    plan: &mut DecodedPlan,
) -> Result<(), ConfigError> {
    match *effect {
        CtrlEffect::WriteDnode { ctx, dnode, word } => {
            let instr = MicroInstr::decode(word)?;
            config.set_dnode_instr(ctx, dnode, instr)
        }
        CtrlEffect::WritePort { ctx, flat, word } => {
            let source = PortSource::decode(word)?;
            config.set_port_flat(ctx, flat, source)
        }
        CtrlEffect::WriteCapture {
            ctx,
            switch,
            port,
            word,
        } => {
            let capture = HostCapture::decode(word)?;
            config.set_capture(ctx, switch, port, capture)
        }
        CtrlEffect::WriteMode { dnode, local } => {
            let count = dnodes.len();
            let state = dnodes.get_mut(dnode).ok_or(ConfigError::DnodeOutOfRange {
                dnode,
                dnodes: count,
            })?;
            let mode = if local {
                DnodeMode::Local
            } else {
                DnodeMode::Global
            };
            if state.mode() != mode {
                plan.note_mode_write();
            }
            state.set_mode(mode);
            Ok(())
        }
        CtrlEffect::WriteLocalSlot { dnode, slot, word } => {
            let count = dnodes.len();
            let state = dnodes.get_mut(dnode).ok_or(ConfigError::DnodeOutOfRange {
                dnode,
                dnodes: count,
            })?;
            if slot >= 8 {
                return Err(ConfigError::SlotOutOfRange { slot });
            }
            let instr = MicroInstr::decode(word)?;
            state.sequencer_mut().set_slot(slot, instr);
            plan.note_seq_write(dnode);
            Ok(())
        }
        CtrlEffect::WriteLocalLimit { dnode, limit } => {
            let count = dnodes.len();
            let state = dnodes.get_mut(dnode).ok_or(ConfigError::DnodeOutOfRange {
                dnode,
                dnodes: count,
            })?;
            if !(1..=8).contains(&limit) {
                return Err(ConfigError::BadLocalLimit {
                    limit: limit as usize,
                });
            }
            state.sequencer_mut().set_limit(limit as u8);
            plan.note_seq_write(dnode);
            Ok(())
        }
        CtrlEffect::SetActiveCtx(ctx) => config.stage_select(ctx),
        CtrlEffect::DriveBus(_) => Ok(()),
        CtrlEffect::HostPush { .. } => Ok(()),
    }
}

impl RingMachine {
    /// Number of compiled programs in the AOT cache (0 with the tier off).
    /// Exposed for the lint cross-check and tests.
    pub fn aot_cached_programs(&self) -> usize {
        self.aot.as_ref().map_or(0, |e| e.len())
    }

    /// Load-time prefill: walks the freshly loaded controller program over
    /// shadow state and compiles every provable steady window into the AOT
    /// cache. Called from [`RingMachine::load`]; a no-op unless the `aot`
    /// tier is fully enabled.
    pub(crate) fn aot_prefill(&mut self) {
        if !self.params.aot || !self.params.fused || !self.params.decode_cache {
            return;
        }
        let mut engine = self.aot.take().unwrap_or_default();
        let mut ctrl = self.controller.clone();
        let mut config = self.config.clone();
        let mut dnodes = self.dnodes.clone();
        let mut plan = DecodedPlan::new(self.geometry, self.params.contexts);
        let mut ports = BlindPorts::default();
        let mut retired = 0u64;
        'walk: while retired < PREFILL_RETIRE_BUDGET && engine.entries.len() < AOT_CACHE_CAP {
            match ctrl.state() {
                CtrlState::Halted => {
                    // A halt is an unbounded steady window — and reaching
                    // it means the walk covered the whole (deterministic,
                    // datapath-free) controller execution, so this entry
                    // is the configuration every post-stability burst
                    // will run; remember it for proof-pinned elision.
                    engine.prefill_final = prefill_compile(
                        &mut engine,
                        &config,
                        &dnodes,
                        &mut plan,
                        self.geometry,
                        self.params.pipe_depth,
                        &mut self.stats,
                    );
                    break 'walk;
                }
                CtrlState::Waiting(n) => {
                    if u64::from(n) >= MIN_BURST {
                        let _ = prefill_compile(
                            &mut engine,
                            &config,
                            &dnodes,
                            &mut plan,
                            self.geometry,
                            self.params.pipe_depth,
                            &mut self.stats,
                        );
                    }
                    ctrl.skip_wait(u64::from(n));
                    continue;
                }
                CtrlState::Running => {}
            }
            let Ok(step) = ctrl.step(&mut ports) else {
                // The walk reached an instruction that faults; the real run
                // will stop there too, but everything compiled so far is
                // still reachable before the fault.
                break;
            };
            if ports.blind.get() || !step.retired {
                // `busr` read a bus value the walk cannot know, or `hpop`
                // stalled on run-time FIFO data: control flow past this
                // point is unknowable at load time.
                break;
            }
            retired += 1;
            for effect in &step.effects {
                if apply_walk_effect(effect, &mut config, &mut dnodes, &mut plan).is_err() {
                    break 'walk;
                }
            }
            config.commit();
        }
        self.aot = Some(engine);
    }

    /// Resolves the current configuration content against the cache under
    /// `stamps`, stitch-compiling on a guard miss. Returns the entry
    /// index, remembered in the stamps memo for the next resolution.
    fn aot_resolve(&mut self, engine: &mut AotEngine, stamps: FusedStamps) -> usize {
        if let Some(pos) = engine.stamp_memo.iter().position(|(s, _)| *s == stamps) {
            let hit = engine.stamp_memo.remove(pos);
            let idx = hit.1;
            engine.stamp_memo.insert(0, hit);
            return idx;
        }
        // The epochs moved past the memo: re-resolve the configuration
        // content against the cache. The decoded plan is the compiler's
        // input, so bring it up to date first (counting the misses
        // exactly as the decoded path would).
        let active = self.config.active_index();
        let misses = self
            .plan
            .refresh(active, &self.config, &self.dnodes, self.geometry);
        if misses > 0 {
            self.stats.decode_cache_misses += misses;
        }
        let key = content_key(&self.config, &self.dnodes, self.geometry);
        let hash = fnv1a(&key);
        let idx = match engine.lookup(hash, &key) {
            Some(i) => i,
            None => {
                // Guard miss: stitch by compiling the unseen
                // configuration now, instead of deoptimizing.
                self.stats.aot_guard_misses += 1;
                let program = fused::compile(
                    self.plan.context_plan(active),
                    &self.dnodes,
                    self.geometry,
                    self.params.pipe_depth,
                );
                self.stats.aot_compiles += 1;
                engine.insert(AotEntry {
                    hash,
                    key,
                    program,
                    next_phase: 0,
                })
            }
        };
        engine.stamp_memo.insert(0, (stamps, idx));
        engine.stamp_memo.truncate(STAMP_MEMO_CAP);
        idx
    }

    /// Locates the entry phase of `engine.entries[idx]` against the live
    /// sequencer counters, re-anchoring (recompiling in place) when the
    /// counters left the compiled orbit.
    fn aot_anchor(&mut self, engine: &mut AotEngine, idx: usize) -> u32 {
        let hint = engine.entries[idx].next_phase;
        match engine.entries[idx].program.find_phase(hint, &self.dnodes) {
            Some(p) => p,
            None => {
                // The sequencer counters left the compiled orbit (e.g. a
                // `wlim` reset skewed one Dnode against the others):
                // re-anchor at the current counters. Same content key, so
                // the entry is replaced in place.
                let active = self.config.active_index();
                let misses = self
                    .plan
                    .refresh(active, &self.config, &self.dnodes, self.geometry);
                if misses > 0 {
                    self.stats.decode_cache_misses += misses;
                }
                engine.entries[idx].program = fused::compile(
                    self.plan.context_plan(active),
                    &self.dnodes,
                    self.geometry,
                    self.params.pipe_depth,
                );
                self.stats.aot_compiles += 1;
                0
            }
        }
    }

    /// Attempts one AOT superblock burst of up to `remaining` cycles;
    /// returns the cycles executed (0 = not entered, fall through to the
    /// fused engine and then the decoded path).
    pub(crate) fn try_aot(&mut self, remaining: u64) -> u64 {
        if !self.params.aot || !self.params.fused || !self.params.decode_cache {
            return 0;
        }
        if self.fault.is_some() {
            // Armed fault machinery demands the decoded path's per-cycle
            // injection/detection bracketing.
            return 0;
        }
        if self.config.select_pending() {
            return 0;
        }
        let mut window = match self.controller.state() {
            CtrlState::Halted => remaining,
            CtrlState::Waiting(n) => remaining.min(u64::from(n)),
            CtrlState::Running => return self.try_aot_schedule(remaining),
        };
        if window == 0 {
            return 0;
        }
        if self.params.watchdog_interval > 0 {
            // Watchdog-armed admission (see the module docs): only quiet
            // windows, bounded to end no later than the earliest possible
            // trip. First fold outstanding progress into the heartbeat —
            // the update half of the boundary check we are about to skip.
            if self.params.link != LinkModel::Direct
                || !self.host.inputs_drained()
                || self.host.any_sink_open()
            {
                return 0;
            }
            self.watchdog_observe();
            window = window.min(self.watchdog_margin());
        }
        if window < MIN_BURST {
            return 0;
        }
        let mut engine = self.aot.take().unwrap_or_default();
        // Past the proven stability cycle the configuration content is a
        // constant: the guard probe (stamp memo, content serialization,
        // hash lookup) can only ever re-derive the pinned entry, so skip
        // it. First resolution past the proof binds the pin.
        let proven_stable = self.proof_stable_from.is_some_and(|s| self.cycle >= s);
        let idx = match engine.proof_idx {
            Some(idx) if proven_stable => {
                self.stats.guards_elided += 1;
                idx
            }
            _ => {
                let stamps = self.fused_stamps();
                let idx = self.aot_resolve(&mut engine, stamps);
                if proven_stable {
                    engine.proof_idx = Some(idx);
                }
                idx
            }
        };
        let entry_phase = self.aot_anchor(&mut engine, idx);
        {
            let program = &engine.entries[idx].program;
            let mut lanes = [&mut *self];
            fused::execute(program, entry_phase, &mut lanes, window, true);
        }
        let period = u64::from(engine.entries[idx].program.period);
        engine.entries[idx].next_phase = ((u64::from(entry_phase) + window) % period) as u32;
        self.aot = Some(engine);
        window
    }

    /// Walks a *clone* of the controller up to `limit` cycles ahead,
    /// admitting only datapath-independent cycles: every instruction must
    /// retire without touching the datapath (`busr`, `hpop`), and the only
    /// architectural effect allowed is a valid `ctx` select. Returns the
    /// admitted cycles partitioned into per-active-context segments (a
    /// segment ends on the cycle whose commit switches contexts), plus
    /// whether the walk stopped at the budget rather than at an
    /// inadmissible cycle.
    ///
    /// The walk is deterministic: admitted instructions read only
    /// controller-internal state (registers, data memory, the program
    /// counter), so replaying the real controller over the admitted prefix
    /// retires exactly the same instructions with the same effects.
    fn schedule_lookahead(&self, limit: u64) -> (Vec<u64>, bool) {
        let mut ctrl = self.controller.lookahead_clone();
        let mut ports = BlindPorts::default();
        let contexts = self.config.contexts();
        let mut segments = Vec::new();
        let mut seg = 0u64;
        let mut total = 0u64;
        while total < limit {
            match ctrl.state() {
                // Leave the halt (and any not-yet-started wait tail) to
                // the plain window path: it covers those cycles with bulk
                // accounting instead of a per-cycle replay.
                CtrlState::Halted => break,
                CtrlState::Waiting(n) => {
                    let k = u64::from(n).min(limit - total);
                    ctrl.skip_wait(k);
                    seg += k;
                    total += k;
                    continue;
                }
                CtrlState::Running => {}
            }
            let Ok(step) = ctrl.step(&mut ports) else {
                // The next instruction faults: the decoded path must be
                // the one to raise it.
                break;
            };
            if ports.blind.get() || !step.retired {
                // `busr` needs the live bus, or `hpop` may block on
                // run-time FIFO data: control flow past this cycle is
                // unknowable without the datapath.
                break;
            }
            let mut admissible = true;
            let mut switches_ctx = false;
            for effect in &step.effects {
                match *effect {
                    CtrlEffect::SetActiveCtx(ctx) if ctx < contexts => switches_ctx = true,
                    _ => admissible = false,
                }
            }
            if !admissible {
                break;
            }
            seg += 1;
            total += 1;
            if switches_ctx {
                segments.push(seg);
                seg = 0;
            }
        }
        if seg > 0 {
            segments.push(seg);
        }
        (segments, total == limit)
    }

    /// The running-controller burst: covers multi-phase schedules whose
    /// controller never goes quiet (context ping-pong loops). The admitted
    /// region decomposes into per-context segments; each segment's fabric
    /// cycles replay through the cached compiled program for that
    /// configuration, then the controller replays over the same cycles at
    /// one instruction per cycle — cheap, datapath-free by admission, and
    /// bit-identical to the decoded interleaving because within the region
    /// the controller and the fabric only interact at the segment-boundary
    /// context commits.
    fn try_aot_schedule(&mut self, remaining: u64) -> u64 {
        if self.params.watchdog_interval > 0 {
            // The heartbeat samples controller progress at every decoded
            // cycle boundary; keep that bracketing exact.
            return 0;
        }
        let mut engine = self.aot.take().unwrap_or_default();
        if self.cycle < engine.schedule_stuck_until {
            self.aot = Some(engine);
            return 0;
        }
        let (segments, capped) = self.schedule_lookahead(remaining);
        let total: u64 = segments.iter().sum();
        if total < MIN_BURST {
            if !capped {
                // The blocking instruction sits `total` cycles out and the
                // controller retires at most one instruction per cycle, so
                // any earlier re-walk stops at the same place.
                engine.schedule_stuck_until = self.cycle + total + 1;
            }
            self.aot = Some(engine);
            return 0;
        }
        for len in segments {
            // Same proof-pinned elision as the quiet-window path, gated
            // per segment: a segment starting past the proven stability
            // cycle can only be running the pinned configuration.
            let proven_stable = self.proof_stable_from.is_some_and(|s| self.cycle >= s);
            let idx = match engine.proof_idx {
                Some(idx) if proven_stable => {
                    self.stats.guards_elided += 1;
                    idx
                }
                _ => {
                    let stamps = self.fused_stamps();
                    let idx = self.aot_resolve(&mut engine, stamps);
                    if proven_stable {
                        engine.proof_idx = Some(idx);
                    }
                    idx
                }
            };
            let entry_phase = self.aot_anchor(&mut engine, idx);
            {
                let program = &engine.entries[idx].program;
                let mut lanes = [&mut *self];
                fused::execute(program, entry_phase, &mut lanes, len, true);
            }
            let period = u64::from(engine.entries[idx].program.period);
            engine.entries[idx].next_phase = ((u64::from(entry_phase) + len) % period) as u32;
            // The burst accounted the controller as stalled for the whole
            // segment (the quiet-window convention); the replay below
            // re-counts each of these cycles exactly as the decoded path
            // would have.
            self.stats.ctrl_stall_cycles -= len;
            for i in 0..len {
                let cycle = self.cycle - len + i;
                let step = self
                    .controller_substep(cycle)
                    .expect("schedule replay diverged from the admitted lookahead");
                for effect in &step.effects {
                    let CtrlEffect::SetActiveCtx(ctx) = *effect else {
                        unreachable!("inadmissible effect in a schedule segment");
                    };
                    self.config
                        .stage_select(ctx)
                        .expect("lookahead validated the context index");
                }
                if self.config.commit() {
                    self.stats.ctx_switches += 1;
                }
            }
        }
        self.aot = Some(engine);
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::MachineParams;
    use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
    use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand, Reg};
    use systolic_ring_isa::object::Object;

    fn aot_params() -> MachineParams {
        MachineParams::PAPER
            .with_decode_cache(true)
            .with_fused(true)
            .with_aot(true)
    }

    fn mac_object() -> Object {
        use systolic_ring_isa::object::Preload;
        let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2).write_reg(Reg::R0);
        Object {
            geometry: Some(RingGeometry::RING_8),
            contexts: 1,
            code: vec![
                CtrlInstr::Wait { cycles: 64 }.encode(),
                CtrlInstr::Halt.encode(),
            ],
            data: vec![],
            preload: vec![
                Preload::SwitchPort {
                    ctx: 0,
                    switch: 0,
                    lane: 0,
                    input: 0,
                    word: PortSource::HostIn { port: 0 }.encode(),
                },
                Preload::SwitchPort {
                    ctx: 0,
                    switch: 0,
                    lane: 0,
                    input: 1,
                    word: PortSource::HostIn { port: 1 }.encode(),
                },
                Preload::LocalSlot {
                    dnode: 0,
                    slot: 0,
                    word: mac.encode(),
                },
                Preload::LocalLimit { dnode: 0, limit: 1 },
                Preload::Mode {
                    dnode: 0,
                    local: true,
                },
            ],
        }
    }

    #[test]
    fn content_key_ignores_counters_and_dead_slots() {
        let m = RingMachine::new(RingGeometry::RING_8, aot_params());
        let mut dnodes = m.dnodes.clone();
        let base = content_key(&m.config, &dnodes, m.geometry);
        // Counters are excluded: advancing one changes nothing.
        dnodes[0].sequencer_mut().set_limit(4);
        let with_local_global_mode = content_key(&m.config, &dnodes, m.geometry);
        assert_eq!(
            base, with_local_global_mode,
            "sequencer state of a global-mode Dnode is dead content"
        );
        dnodes[0].set_mode(DnodeMode::Local);
        let local = content_key(&m.config, &dnodes, m.geometry);
        assert_ne!(base, local, "mode flips must change the key");
        // A slot at or above the limit is unreachable: still equal.
        let nop = MicroInstr::NOP;
        dnodes[0]
            .sequencer_mut()
            .set_slot(7, nop.with_imm(Word16::from_i16(3)));
        assert_eq!(local, content_key(&m.config, &dnodes, m.geometry));
        // A live slot is not.
        dnodes[0]
            .sequencer_mut()
            .set_slot(0, nop.with_imm(Word16::from_i16(3)));
        assert_ne!(local, content_key(&m.config, &dnodes, m.geometry));
    }

    #[test]
    fn prefill_compiles_the_wait_window_at_load() {
        let mut m = RingMachine::new(RingGeometry::RING_8, aot_params());
        m.load(&mac_object()).unwrap();
        assert_eq!(m.aot_cached_programs(), 1, "one steady window prefilled");
        assert_eq!(m.stats().aot_compiles, 1);
        // The very first run enters the cache with no detection warmup and
        // no guard miss: the prefill already paid for the compile.
        m.attach_input(0, 0, [1, 3, 5].map(Word16::from_i16))
            .unwrap();
        m.attach_input(0, 1, [2, 4, 6].map(Word16::from_i16))
            .unwrap();
        m.run(32).unwrap();
        assert_eq!(m.dnode(0).reg(Reg::R0).as_i16(), 44);
        assert!(m.stats().aot_entries >= 1, "burst entered");
        assert_eq!(m.stats().aot_guard_misses, 0, "prefill hit, no stitch");
        assert_eq!(m.stats().fused_entries, 0, "aot outranks fused dispatch");
    }

    #[test]
    fn aot_matches_decoded_bit_for_bit() {
        let inputs: [Vec<Word16>; 2] = [
            (0..48).map(|i| Word16::from_i16(i - 7)).collect(),
            (0..48).map(|i| Word16::from_i16(3 * i + 1)).collect(),
        ];
        let run = |params: MachineParams| {
            let mut m = RingMachine::new(RingGeometry::RING_8, params);
            m.load(&mac_object()).unwrap();
            m.attach_input(0, 0, inputs[0].iter().copied()).unwrap();
            m.attach_input(0, 1, inputs[1].iter().copied()).unwrap();
            m.run(80).unwrap();
            (
                m.dnode(0).reg(Reg::R0),
                m.cycle(),
                m.stats().without_cache_counters(),
            )
        };
        let decoded = run(MachineParams::PAPER.with_decode_cache(true));
        let aot = run(aot_params());
        assert_eq!(decoded, aot);
    }

    /// A context ping-pong loop whose controller never waits: the
    /// schedule burst must cover it, entering one superblock per
    /// per-context segment, with counters bit-identical to decoded.
    #[test]
    fn schedule_burst_covers_a_running_context_ping_pong() {
        use systolic_ring_isa::object::Preload;
        let add7 = MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::Imm)
            .with_imm(Word16::from_i16(7))
            .write_reg(Reg::R0);
        let sub2 = MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R1), Operand::Imm)
            .with_imm(Word16::from_i16(-2))
            .write_reg(Reg::R1);
        let r1 = CReg::new(1).unwrap();
        let r0 = CReg::new(0).unwrap();
        let object = Object {
            geometry: Some(RingGeometry::RING_8),
            contexts: 2,
            code: vec![
                CtrlInstr::Addi {
                    rd: r1,
                    ra: r0,
                    imm: 24,
                }
                .encode(),
                // flip: ctx 1; ctx 0; countdown; loop
                CtrlInstr::Ctx { ctx: 1 }.encode(),
                CtrlInstr::Ctx { ctx: 0 }.encode(),
                CtrlInstr::Addi {
                    rd: r1,
                    ra: r1,
                    imm: -1,
                }
                .encode(),
                CtrlInstr::Bne {
                    ra: r1,
                    rb: r0,
                    offset: -4,
                }
                .encode(),
                CtrlInstr::Halt.encode(),
            ],
            data: vec![],
            preload: vec![
                Preload::DnodeInstr {
                    ctx: 0,
                    dnode: 0,
                    word: add7.encode(),
                },
                Preload::DnodeInstr {
                    ctx: 1,
                    dnode: 1,
                    word: sub2.encode(),
                },
            ],
        };
        let run = |params: MachineParams| {
            let mut m = RingMachine::new(RingGeometry::RING_8, params);
            m.load(&object).unwrap();
            m.run(128).unwrap();
            (
                m.dnode(0).reg(Reg::R0),
                m.dnode(1).reg(Reg::R1),
                m.cycle(),
                m.stats().without_cache_counters(),
            )
        };
        let decoded = run(MachineParams::PAPER.with_decode_cache(true));
        let aot = run(aot_params());
        assert_eq!(decoded, aot, "schedule bursts must be cycle-exact");

        let mut m = RingMachine::new(RingGeometry::RING_8, aot_params());
        m.load(&object).unwrap();
        m.run(128).unwrap();
        let stats = m.stats();
        assert_eq!(
            stats.aot_cycles, 128,
            "the whole run is schedule-burst admissible"
        );
        assert!(
            stats.aot_entries > 2,
            "one superblock per per-context segment, got {}",
            stats.aot_entries
        );
        assert_eq!(stats.ctx_switches, 48, "24 rounds of ctx 1 / ctx 0");
    }

    #[test]
    fn blind_reads_abort_the_prefill_walk() {
        let mut object = mac_object();
        object.code = vec![
            CtrlInstr::Busr {
                rd: CReg::new(1).unwrap(),
            }
            .encode(),
            CtrlInstr::Wait { cycles: 64 }.encode(),
            CtrlInstr::Halt.encode(),
        ];
        let mut m = RingMachine::new(RingGeometry::RING_8, aot_params());
        m.load(&object).unwrap();
        assert_eq!(
            m.aot_cached_programs(),
            0,
            "no window may be compiled past a datapath-dependent read"
        );
        // The run still covers the wait via a guard-miss stitch.
        m.run(40).unwrap();
        assert_eq!(m.stats().aot_guard_misses, 1);
        assert!(m.stats().aot_cycles > 0);
    }
}
