//! The RISC configuration controller.
//!
//! A single-issue, one-instruction-per-cycle core running the dedicated ISA
//! of [`systolic_ring_isa::ctrl`]. It owns its program and data memories
//! (the paper's controller "has its own program memory"), a 16-bit
//! configuration-immediate register `CIR`, and a write-target context
//! register `WCTX`.
//!
//! The controller never touches fabric state directly: each cycle it emits
//! [`CtrlEffect`]s that the machine validates and commits at the end of the
//! cycle, preserving the global two-phase clock discipline.

use systolic_ring_isa::ctrl::{CtrlInstr, DecodeCtrlError};
use systolic_ring_isa::Word16;

use crate::error::ConfigError;

/// Execution state of the controller.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum CtrlState {
    /// Executing one instruction per cycle.
    #[default]
    Running,
    /// Stalled by `wait`; the ring keeps running.
    Waiting(u16),
    /// Stopped by `halt`.
    Halted,
}

/// A fabric-visible side effect emitted by one controller instruction,
/// applied by the machine at end-of-cycle commit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlEffect {
    /// Write a Dnode microinstruction word into the `WCTX` context.
    WriteDnode {
        /// Target context (the controller's `WCTX` at issue).
        ctx: usize,
        /// Flat Dnode index.
        dnode: usize,
        /// Encoded microinstruction.
        word: u64,
    },
    /// Write a crossbar port (flat index) into the `WCTX` context.
    WritePort {
        /// Target context.
        ctx: usize,
        /// Flat port index.
        flat: usize,
        /// Encoded port source.
        word: u32,
    },
    /// Write a host-capture selector into the `WCTX` context.
    WriteCapture {
        /// Target context.
        ctx: usize,
        /// Switch index.
        switch: usize,
        /// Host-output port.
        port: usize,
        /// Encoded capture selector.
        word: u32,
    },
    /// Set a Dnode's execution mode.
    WriteMode {
        /// Flat Dnode index.
        dnode: usize,
        /// `true` for local mode.
        local: bool,
    },
    /// Write a local-sequencer slot.
    WriteLocalSlot {
        /// Flat Dnode index.
        dnode: usize,
        /// Slot (0..8).
        slot: usize,
        /// Encoded microinstruction.
        word: u64,
    },
    /// Set a local-sequencer limit.
    WriteLocalLimit {
        /// Flat Dnode index.
        dnode: usize,
        /// New limit (validated as 1..=8 at commit).
        limit: u32,
    },
    /// Switch the active context at commit.
    SetActiveCtx(usize),
    /// Drive the shared bus for the next cycle.
    DriveBus(Word16),
    /// Push a word into a switch host-input FIFO.
    HostPush {
        /// Switch index.
        switch: usize,
        /// Host-input port.
        port: usize,
        /// Pushed word.
        word: Word16,
    },
}

/// A controller fault (maps to [`crate::SimError`] with the faulting cycle).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CtrlFault {
    /// Fetch outside program memory.
    PcOutOfRange {
        /// Faulting pc.
        pc: u32,
    },
    /// Fetched word failed to decode.
    BadInstruction {
        /// Faulting pc.
        pc: u32,
        /// Decode failure.
        cause: DecodeCtrlError,
    },
    /// Data access outside data memory.
    DmemOutOfRange {
        /// Faulting word address.
        addr: u32,
    },
    /// `hpop` named a switch the machine does not have.
    BadPort(ConfigError),
}

/// Environment the controller observes during its step: the shared bus and
/// the host-output FIFOs (for `hpop`).
pub trait CtrlPorts {
    /// Pre-cycle value of the shared bus.
    fn bus(&self) -> Word16;

    /// Pops the head of the host-output FIFO at (`switch`, `port`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices.
    fn hpop(&mut self, switch: usize, port: usize) -> Result<Option<Word16>, ConfigError>;
}

/// Result of one controller cycle.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CtrlStep {
    /// Effects to commit at end of cycle.
    pub effects: Vec<CtrlEffect>,
    /// `true` if an instruction retired (false on stall/halt cycles).
    pub retired: bool,
}

/// The configuration controller core.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Controller {
    regs: [u32; 16],
    pc: u32,
    cir: u16,
    wctx: u16,
    pmem: Vec<u32>,
    dmem: Vec<u32>,
    prog_len: usize,
    /// One past the highest data-memory address ever initialized or
    /// stored to (bounds [`Controller::lookahead_clone`]).
    dmem_hwm: usize,
    state: CtrlState,
}

impl Controller {
    /// A reset controller with empty program memory.
    pub fn new(prog_capacity: usize, dmem_capacity: usize) -> Self {
        Controller {
            regs: [0; 16],
            pc: 0,
            cir: 0,
            wctx: 0,
            pmem: vec![0; prog_capacity],
            dmem: vec![0; dmem_capacity],
            prog_len: 0,
            dmem_hwm: 0,
            state: CtrlState::Halted,
        }
    }

    /// Loads a program at address 0 and resets pc/registers/state.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ProgramTooLarge`] if the program exceeds
    /// program memory.
    pub fn load_program(&mut self, code: &[u32]) -> Result<(), ConfigError> {
        if code.len() > self.pmem.len() {
            return Err(ConfigError::ProgramTooLarge {
                words: code.len(),
                capacity: self.pmem.len(),
            });
        }
        self.pmem[..code.len()].copy_from_slice(code);
        self.prog_len = code.len();
        self.reset();
        Ok(())
    }

    /// Loads initial data memory at address 0.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::DataTooLarge`] if the data exceeds data
    /// memory.
    pub fn load_data(&mut self, data: &[u32]) -> Result<(), ConfigError> {
        if data.len() > self.dmem.len() {
            return Err(ConfigError::DataTooLarge {
                words: data.len(),
                capacity: self.dmem.len(),
            });
        }
        self.dmem[..data.len()].copy_from_slice(data);
        self.dmem_hwm = self.dmem_hwm.max(data.len());
        Ok(())
    }

    /// Resets pc, registers, `CIR`, `WCTX` and starts running (if a program
    /// is loaded).
    pub fn reset(&mut self) {
        self.regs = [0; 16];
        self.pc = 0;
        self.cir = 0;
        self.wctx = 0;
        self.state = if self.prog_len > 0 {
            CtrlState::Running
        } else {
            CtrlState::Halted
        };
    }

    /// Current execution state.
    pub fn state(&self) -> CtrlState {
        self.state
    }

    /// `true` once `halt` has executed (or no program is loaded).
    pub fn is_halted(&self) -> bool {
        self.state == CtrlState::Halted
    }

    /// Fused-burst fast-forward: consumes `cycles` stall cycles of a
    /// `wait`, exactly as that many [`Controller::step`] calls would.
    ///
    /// The caller guarantees `cycles` does not exceed the pending wait
    /// count, so the controller ends `Waiting(n - cycles)` or `Running` —
    /// never skips past the instruction after the wait.
    pub(crate) fn skip_wait(&mut self, cycles: u64) {
        let CtrlState::Waiting(n) = self.state else {
            panic!("skip_wait while {:?}", self.state);
        };
        assert!(cycles <= u64::from(n), "skip_wait {cycles} > wait {n}");
        self.state = if u64::from(n) > cycles {
            CtrlState::Waiting(n - cycles as u16)
        } else {
            CtrlState::Running
        };
    }

    /// A bounded clone for the AOT schedule lookahead: program memory is
    /// truncated to the loaded program (fetch never reads past it) and
    /// data memory to the written high-water mark. Truncation can only
    /// make the clone fault where the real controller would not — and
    /// the lookahead treats any fault as the end of admission — so it
    /// costs at most burst coverage, never soundness. What it buys is a
    /// clone proportional to the *used* memory instead of the 64K-word
    /// capacities, cheap enough to take on every lookahead attempt.
    pub(crate) fn lookahead_clone(&self) -> Controller {
        Controller {
            regs: self.regs,
            pc: self.pc,
            cir: self.cir,
            wctx: self.wctx,
            pmem: self.pmem[..self.prog_len].to_vec(),
            dmem: self.dmem[..self.dmem_hwm].to_vec(),
            prog_len: self.prog_len,
            dmem_hwm: self.dmem_hwm,
            state: self.state,
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Reads register `index & 15` (r0 reads as zero).
    pub fn reg(&self, index: usize) -> u32 {
        self.regs[index & 15]
    }

    /// Writes register `index & 15` (writes to r0 are discarded).
    pub fn set_reg(&mut self, index: usize, value: u32) {
        if index & 15 != 0 {
            self.regs[index & 15] = value;
        }
    }

    /// Reads a data-memory word (testing/inspection).
    pub fn dmem(&self, addr: usize) -> Option<u32> {
        self.dmem.get(addr).copied()
    }

    fn write_reg(&mut self, rd: systolic_ring_isa::ctrl::CReg, value: u32) {
        if rd.index() != 0 {
            self.regs[rd.index()] = value;
        }
    }

    /// Executes one controller cycle.
    ///
    /// # Errors
    ///
    /// Returns a [`CtrlFault`] on fetch/decode/memory faults; the machine
    /// converts these into [`crate::SimError`]s.
    pub fn step<P: CtrlPorts>(&mut self, ports: &mut P) -> Result<CtrlStep, CtrlFault> {
        use CtrlInstr::*;

        let mut out = CtrlStep::default();
        match self.state {
            CtrlState::Halted => return Ok(out),
            CtrlState::Waiting(n) => {
                self.state = if n > 1 {
                    CtrlState::Waiting(n - 1)
                } else {
                    CtrlState::Running
                };
                return Ok(out);
            }
            CtrlState::Running => {}
        }

        let pc = self.pc;
        let word = *self
            .pmem
            .get(pc as usize)
            .filter(|_| (pc as usize) < self.prog_len)
            .ok_or(CtrlFault::PcOutOfRange { pc })?;
        let instr =
            CtrlInstr::decode(word).map_err(|cause| CtrlFault::BadInstruction { pc, cause })?;

        let mut next_pc = pc.wrapping_add(1);
        let r = |reg: systolic_ring_isa::ctrl::CReg| self.regs[reg.index()];

        match instr {
            Nop => {}
            Add { rd, ra, rb } => self.write_reg(rd, r(ra).wrapping_add(r(rb))),
            Sub { rd, ra, rb } => self.write_reg(rd, r(ra).wrapping_sub(r(rb))),
            And { rd, ra, rb } => self.write_reg(rd, r(ra) & r(rb)),
            Or { rd, ra, rb } => self.write_reg(rd, r(ra) | r(rb)),
            Xor { rd, ra, rb } => self.write_reg(rd, r(ra) ^ r(rb)),
            Sll { rd, ra, rb } => self.write_reg(rd, r(ra) << (r(rb) & 31)),
            Srl { rd, ra, rb } => self.write_reg(rd, r(ra) >> (r(rb) & 31)),
            Sra { rd, ra, rb } => self.write_reg(rd, ((r(ra) as i32) >> (r(rb) & 31)) as u32),
            Slt { rd, ra, rb } => self.write_reg(rd, ((r(ra) as i32) < (r(rb) as i32)) as u32),
            Sltu { rd, ra, rb } => self.write_reg(rd, (r(ra) < r(rb)) as u32),
            Mul { rd, ra, rb } => self.write_reg(rd, r(ra).wrapping_mul(r(rb))),
            Addi { rd, ra, imm } => self.write_reg(rd, r(ra).wrapping_add(imm as i32 as u32)),
            Andi { rd, ra, imm } => self.write_reg(rd, r(ra) & imm as u32),
            Ori { rd, ra, imm } => self.write_reg(rd, r(ra) | imm as u32),
            Xori { rd, ra, imm } => self.write_reg(rd, r(ra) ^ imm as u32),
            Slti { rd, ra, imm } => self.write_reg(rd, ((r(ra) as i32) < imm as i32) as u32),
            Lui { rd, imm } => self.write_reg(rd, (imm as u32) << 16),
            Lw { rd, ra, imm } => {
                let addr = r(ra).wrapping_add(imm as i32 as u32);
                let value = *self
                    .dmem
                    .get(addr as usize)
                    .ok_or(CtrlFault::DmemOutOfRange { addr })?;
                self.write_reg(rd, value);
            }
            Sw { rs, ra, imm } => {
                let addr = r(ra).wrapping_add(imm as i32 as u32);
                let slot = self
                    .dmem
                    .get_mut(addr as usize)
                    .ok_or(CtrlFault::DmemOutOfRange { addr })?;
                *slot = r(rs);
                self.dmem_hwm = self.dmem_hwm.max(addr as usize + 1);
            }
            Beq { ra, rb, offset } => {
                if r(ra) == r(rb) {
                    next_pc = branch_target(pc, offset);
                }
            }
            Bne { ra, rb, offset } => {
                if r(ra) != r(rb) {
                    next_pc = branch_target(pc, offset);
                }
            }
            Blt { ra, rb, offset } => {
                if (r(ra) as i32) < (r(rb) as i32) {
                    next_pc = branch_target(pc, offset);
                }
            }
            Bge { ra, rb, offset } => {
                if (r(ra) as i32) >= (r(rb) as i32) {
                    next_pc = branch_target(pc, offset);
                }
            }
            J { target } => next_pc = target as u32,
            Jal { target } => {
                self.regs[15] = pc.wrapping_add(1);
                next_pc = target as u32;
            }
            Jr { ra } => next_pc = r(ra),
            Cimm { imm } => self.cir = imm,
            Wctx { ctx } => self.wctx = ctx,
            Wdn { rs, dnode } => out.effects.push(CtrlEffect::WriteDnode {
                ctx: self.wctx as usize,
                dnode: dnode as usize,
                word: r(rs) as u64 | (self.cir as u64) << 32,
            }),
            Wsw { rs, port } => out.effects.push(CtrlEffect::WritePort {
                ctx: self.wctx as usize,
                flat: port as usize,
                word: r(rs),
            }),
            Who { rs, switch } => out.effects.push(CtrlEffect::WriteCapture {
                ctx: self.wctx as usize,
                switch: (switch >> 8) as usize,
                port: (switch & 0xff) as usize,
                word: r(rs),
            }),
            Wmode { rs, dnode } => out.effects.push(CtrlEffect::WriteMode {
                dnode: dnode as usize,
                local: r(rs) != 0,
            }),
            Wloc { rs, packed } => out.effects.push(CtrlEffect::WriteLocalSlot {
                dnode: (packed >> 3) as usize,
                slot: (packed & 7) as usize,
                word: r(rs) as u64 | (self.cir as u64) << 32,
            }),
            Wlim { rs, dnode } => out.effects.push(CtrlEffect::WriteLocalLimit {
                dnode: dnode as usize,
                limit: r(rs),
            }),
            Ctx { ctx } => out.effects.push(CtrlEffect::SetActiveCtx(ctx as usize)),
            Busw { rs } => out
                .effects
                .push(CtrlEffect::DriveBus(Word16::new(r(rs) as u16))),
            Busr { rd } => {
                let value = ports.bus();
                self.write_reg(rd, value.bits() as u32);
            }
            Hpush { rs, switch } => out.effects.push(CtrlEffect::HostPush {
                switch: (switch >> 8) as usize,
                port: (switch & 0xff) as usize,
                word: Word16::new(r(rs) as u16),
            }),
            Hpop { rd, switch } => {
                match ports
                    .hpop((switch >> 8) as usize, (switch & 0xff) as usize)
                    .map_err(CtrlFault::BadPort)?
                {
                    Some(word) => self.write_reg(rd, word.bits() as u32),
                    None => {
                        // Stall: retry the same instruction next cycle.
                        return Ok(out);
                    }
                }
            }
            Wait { cycles } => {
                if cycles > 1 {
                    self.state = CtrlState::Waiting(cycles - 1);
                }
            }
            Halt => {
                self.state = CtrlState::Halted;
                out.retired = true;
                return Ok(out);
            }
        }

        self.pc = next_pc;
        out.retired = true;
        Ok(out)
    }
}

fn branch_target(pc: u32, offset: i16) -> u32 {
    pc.wrapping_add(1).wrapping_add(offset as i32 as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ring_isa::ctrl::CReg;

    struct FakePorts {
        bus: Word16,
        fifo: Vec<Word16>,
    }

    impl CtrlPorts for FakePorts {
        fn bus(&self) -> Word16 {
            self.bus
        }
        fn hpop(&mut self, switch: usize, _port: usize) -> Result<Option<Word16>, ConfigError> {
            if switch > 3 {
                return Err(ConfigError::SwitchOutOfRange {
                    switch,
                    switches: 4,
                });
            }
            Ok(if self.fifo.is_empty() {
                None
            } else {
                Some(self.fifo.remove(0))
            })
        }
    }

    fn r(i: u8) -> CReg {
        CReg::new(i).unwrap()
    }

    fn run(code: &[CtrlInstr], max_cycles: usize) -> (Controller, Vec<CtrlEffect>) {
        let mut ctrl = Controller::new(1024, 256);
        let words: Vec<u32> = code.iter().map(CtrlInstr::encode).collect();
        ctrl.load_program(&words).unwrap();
        let mut ports = FakePorts {
            bus: Word16::from_i16(77),
            fifo: vec![Word16::from_i16(5)],
        };
        let mut effects = Vec::new();
        for _ in 0..max_cycles {
            if ctrl.is_halted() {
                break;
            }
            let step = ctrl.step(&mut ports).unwrap();
            effects.extend(step.effects);
        }
        (ctrl, effects)
    }

    use systolic_ring_isa::ctrl::CtrlInstr;

    #[test]
    fn arithmetic_and_halt() {
        let (ctrl, _) = run(
            &[
                CtrlInstr::Addi {
                    rd: r(1),
                    ra: r(0),
                    imm: 10,
                },
                CtrlInstr::Addi {
                    rd: r(2),
                    ra: r(0),
                    imm: -3,
                },
                CtrlInstr::Add {
                    rd: r(3),
                    ra: r(1),
                    rb: r(2),
                },
                CtrlInstr::Mul {
                    rd: r(4),
                    ra: r(3),
                    rb: r(3),
                },
                CtrlInstr::Halt,
            ],
            10,
        );
        assert!(ctrl.is_halted());
        assert_eq!(ctrl.reg(3), 7);
        assert_eq!(ctrl.reg(4), 49);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (ctrl, _) = run(
            &[
                CtrlInstr::Addi {
                    rd: r(0),
                    ra: r(0),
                    imm: 42,
                },
                CtrlInstr::Halt,
            ],
            10,
        );
        assert_eq!(ctrl.reg(0), 0);
    }

    #[test]
    fn loop_with_branch() {
        // r1 = 5; r2 = 0; while (r1 != 0) { r2 += r1; r1 -= 1 }
        let code = [
            CtrlInstr::Addi {
                rd: r(1),
                ra: r(0),
                imm: 5,
            },
            CtrlInstr::Beq {
                ra: r(1),
                rb: r(0),
                offset: 3,
            },
            CtrlInstr::Add {
                rd: r(2),
                ra: r(2),
                rb: r(1),
            },
            CtrlInstr::Addi {
                rd: r(1),
                ra: r(1),
                imm: -1,
            },
            CtrlInstr::J { target: 1 },
            CtrlInstr::Halt,
        ];
        let (ctrl, _) = run(&code, 100);
        assert!(ctrl.is_halted());
        assert_eq!(ctrl.reg(2), 15);
    }

    #[test]
    fn jal_links_and_jr_returns() {
        let code = [
            CtrlInstr::Jal { target: 3 }, // 0: call
            CtrlInstr::Addi {
                rd: r(2),
                ra: r(0),
                imm: 1,
            }, // 1: after return
            CtrlInstr::Halt,              // 2
            CtrlInstr::Addi {
                rd: r(1),
                ra: r(0),
                imm: 9,
            }, // 3: callee
            CtrlInstr::Jr { ra: r(15) },  // 4: return
        ];
        let (ctrl, _) = run(&code, 20);
        assert!(ctrl.is_halted());
        assert_eq!(ctrl.reg(1), 9);
        assert_eq!(ctrl.reg(2), 1);
        assert_eq!(ctrl.reg(15), 1);
    }

    #[test]
    fn memory_load_store() {
        let code = [
            CtrlInstr::Addi {
                rd: r(1),
                ra: r(0),
                imm: 123,
            },
            CtrlInstr::Sw {
                rs: r(1),
                ra: r(0),
                imm: 7,
            },
            CtrlInstr::Lw {
                rd: r(2),
                ra: r(0),
                imm: 7,
            },
            CtrlInstr::Halt,
        ];
        let (ctrl, _) = run(&code, 10);
        assert_eq!(ctrl.reg(2), 123);
        assert_eq!(ctrl.dmem(7), Some(123));
    }

    #[test]
    fn dmem_fault() {
        let mut ctrl = Controller::new(16, 4);
        ctrl.load_program(&[CtrlInstr::Lw {
            rd: r(1),
            ra: r(0),
            imm: 100,
        }
        .encode()])
            .unwrap();
        let mut ports = FakePorts {
            bus: Word16::ZERO,
            fifo: vec![],
        };
        assert_eq!(
            ctrl.step(&mut ports),
            Err(CtrlFault::DmemOutOfRange { addr: 100 })
        );
    }

    #[test]
    fn pc_fault_on_running_off_the_end() {
        let mut ctrl = Controller::new(16, 4);
        ctrl.load_program(&[CtrlInstr::Nop.encode()]).unwrap();
        let mut ports = FakePorts {
            bus: Word16::ZERO,
            fifo: vec![],
        };
        ctrl.step(&mut ports).unwrap();
        assert_eq!(
            ctrl.step(&mut ports),
            Err(CtrlFault::PcOutOfRange { pc: 1 })
        );
    }

    #[test]
    fn config_effects_carry_cir_and_wctx() {
        let code = [
            CtrlInstr::Cimm { imm: 0xbeef },
            CtrlInstr::Wctx { ctx: 2 },
            CtrlInstr::Addi {
                rd: r(1),
                ra: r(0),
                imm: 0x55,
            },
            CtrlInstr::Wdn { rs: r(1), dnode: 3 },
            CtrlInstr::Wloc {
                rs: r(1),
                packed: (5 << 3) | 2,
            },
            CtrlInstr::Ctx { ctx: 1 },
            CtrlInstr::Halt,
        ];
        let (_, effects) = run(&code, 10);
        assert_eq!(
            effects,
            vec![
                CtrlEffect::WriteDnode {
                    ctx: 2,
                    dnode: 3,
                    word: 0x55 | 0xbeef_u64 << 32
                },
                CtrlEffect::WriteLocalSlot {
                    dnode: 5,
                    slot: 2,
                    word: 0x55 | 0xbeef_u64 << 32
                },
                CtrlEffect::SetActiveCtx(1),
            ]
        );
    }

    #[test]
    fn bus_read_and_write() {
        let code = [
            CtrlInstr::Busr { rd: r(1) },
            CtrlInstr::Busw { rs: r(1) },
            CtrlInstr::Halt,
        ];
        let (ctrl, effects) = run(&code, 10);
        assert_eq!(ctrl.reg(1), 77);
        assert_eq!(effects, vec![CtrlEffect::DriveBus(Word16::from_i16(77))]);
    }

    #[test]
    fn hpop_pops_then_stalls() {
        let code = [
            CtrlInstr::Hpop {
                rd: r(1),
                switch: 0,
            },
            CtrlInstr::Hpop {
                rd: r(2),
                switch: 0,
            },
            CtrlInstr::Halt,
        ];
        let mut ctrl = Controller::new(16, 4);
        let words: Vec<u32> = code.iter().map(CtrlInstr::encode).collect();
        ctrl.load_program(&words).unwrap();
        let mut ports = FakePorts {
            bus: Word16::ZERO,
            fifo: vec![Word16::from_i16(5)],
        };
        // First hpop succeeds.
        assert!(ctrl.step(&mut ports).unwrap().retired);
        assert_eq!(ctrl.reg(1), 5);
        // Second hpop stalls on an empty FIFO.
        for _ in 0..3 {
            assert!(!ctrl.step(&mut ports).unwrap().retired);
            assert_eq!(ctrl.pc(), 1);
        }
        // Data arrives; it completes.
        ports.fifo.push(Word16::from_i16(6));
        assert!(ctrl.step(&mut ports).unwrap().retired);
        assert_eq!(ctrl.reg(2), 6);
    }

    #[test]
    fn hpop_bad_switch_faults() {
        let mut ctrl = Controller::new(16, 4);
        // switch field packs switch<<8|port: switch 9 is out of range.
        ctrl.load_program(&[CtrlInstr::Hpop {
            rd: r(1),
            switch: 9 << 8,
        }
        .encode()])
            .unwrap();
        let mut ports = FakePorts {
            bus: Word16::ZERO,
            fifo: vec![],
        };
        assert!(matches!(ctrl.step(&mut ports), Err(CtrlFault::BadPort(_))));
    }

    #[test]
    fn wait_stalls_for_n_cycles() {
        let code = [
            CtrlInstr::Wait { cycles: 3 },
            CtrlInstr::Addi {
                rd: r(1),
                ra: r(0),
                imm: 1,
            },
            CtrlInstr::Halt,
        ];
        let mut ctrl = Controller::new(16, 4);
        let words: Vec<u32> = code.iter().map(CtrlInstr::encode).collect();
        ctrl.load_program(&words).unwrap();
        let mut ports = FakePorts {
            bus: Word16::ZERO,
            fifo: vec![],
        };
        // Cycle 1: wait retires and schedules 2 stall cycles.
        assert!(ctrl.step(&mut ports).unwrap().retired);
        // Cycles 2-3: stalled.
        assert!(!ctrl.step(&mut ports).unwrap().retired);
        assert!(!ctrl.step(&mut ports).unwrap().retired);
        // Cycle 4: addi.
        assert!(ctrl.step(&mut ports).unwrap().retired);
        assert_eq!(ctrl.reg(1), 1);
    }

    #[test]
    fn program_too_large_is_rejected() {
        let mut ctrl = Controller::new(2, 4);
        assert!(matches!(
            ctrl.load_program(&[0, 0, 0]),
            Err(ConfigError::ProgramTooLarge { .. })
        ));
    }

    #[test]
    fn empty_program_stays_halted() {
        let mut ctrl = Controller::new(16, 4);
        ctrl.load_program(&[]).unwrap();
        assert!(ctrl.is_halted());
    }
}
