//! Cycle-accurate simulator of the **Systolic Ring**, the coarse-grained
//! dynamically reconfigurable DSP architecture of Sassatelli et al.
//! (DATE 2002).
//!
//! The simulated system comprises (paper §3-§4):
//!
//! * an **operating layer** of 16-bit Dnodes arranged in layers around a
//!   ring ([`dnode`], [`RingMachine`]),
//! * dynamically reconfigurable **switches** between adjacent layers, each
//!   owning a **feedback pipeline** that forms the reverse dataflow
//!   ([`switch`]),
//! * a multi-context **configuration layer** ([`config`]),
//! * a **RISC configuration controller** with a dedicated instruction set
//!   ([`controller`]),
//! * a **host interface** of direct dedicated ports with a bandwidth model
//!   ([`host`]).
//!
//! Everything advances under a single two-phase clock (see
//! [`RingMachine::step`]), so simulated cycle counts are exact and
//! deterministic — they are the substrate for every performance figure in
//! the reproduction.
//!
//! # Examples
//!
//! Build a Ring-8, route a host stream through a pass-through Dnode and
//! capture the results:
//!
//! ```
//! use systolic_ring_core::RingMachine;
//! use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand};
//! use systolic_ring_isa::switch::{HostCapture, PortSource};
//! use systolic_ring_isa::{RingGeometry, Word16};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
//! // Dnode (layer 0, lane 0): out = in1 + 1.
//! m.configure().set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })?;
//! m.configure().set_dnode_instr(
//!     0,
//!     0,
//!     MicroInstr::op(AluOp::Add, Operand::In1, Operand::One).write_out(),
//! )?;
//! // Switch 1 (after layer 0) captures lane 0 to the host.
//! m.configure().set_capture(0, 1, 0, HostCapture::lane(0))?;
//! m.open_sink(1, 0)?;
//! m.attach_input(0, 0, [10, 20, 30].map(Word16::from_i16))?;
//! m.run(8)?;
//! let out = m.take_sink(1, 0)?;
//! assert!(out.windows(2).any(|w| w == [Word16::from_i16(11), Word16::from_i16(21)]));
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod aot;
pub mod config;
pub mod controller;
pub mod dnode;
mod error;
pub mod fault;
pub mod fused;
pub mod host;
mod machine;
mod params;
mod plan;
pub mod stats;
pub mod switch;
pub mod trace;

pub use error::{ConfigError, SimError};
pub use fault::{FaultConfig, FaultInjector, FaultSite};
pub use fused::lockstep_burst;
pub use machine::{Checkpoint, RingMachine};
pub use params::{with_aot, with_decode_cache, with_faults, with_fused, LinkModel, MachineParams};
pub use stats::{DnodeStats, Stats};
