//! Deterministic fault injection and the machinery that detects it.
//!
//! The paper positions the Systolic Ring as an IP core inside a SoC, where
//! soft errors in the configuration layer or the datapath would silently
//! corrupt dataflow results. This module gives the simulator a *fault
//! model* so the reproduction can demonstrate graceful degradation instead
//! of silent corruption:
//!
//! * [`FaultConfig`] — a plain-data description of per-cycle fault rates,
//!   carried in [`MachineParams`](crate::MachineParams) (and overridable
//!   per thread with [`with_faults`](crate::with_faults), mirroring
//!   [`with_decode_cache`](crate::with_decode_cache)).
//! * [`FaultInjector`] — the seed-driven injector owned by a running
//!   [`RingMachine`](crate::RingMachine). Every injection decision is a
//!   pure function of `(seed, salt, cycle)` — never of machine state — so
//!   the predecoded fast path and the decode-per-cycle reference path
//!   observe *identical* fault schedules and report identical fault
//!   cycles under the same seed.
//! * [`FaultSite`] — where a datapath fault landed, carried by
//!   [`SimError::DatapathFault`](crate::SimError).
//!
//! # The fault classes
//!
//! | class | what flips | detected by |
//! |-------|------------|-------------|
//! | configuration | one bit of a stored microinstruction or switch-port word | per-(context, Dnode) parity, checked at scrub points |
//! | register file | one bit of one Dnode register | modeled word parity (a sticky fault tag) |
//! | feedback pipeline | one bit of one pipeline stage word | modeled word parity |
//! | local sequencer | one bit of one instruction slot | modeled word parity |
//! | stuck output | a Dnode's output write port sticks at a fixed value | write-back readback compare |
//!
//! Configuration corruption flips a bit of the *encoded* word and
//! re-decodes it, retrying deterministically until the flipped word is
//! still decodable and routable: undecodable or unroutable flips
//! correspond to faults the existing decode/validation machinery already
//! rejects, so the interesting (silent) faults are exactly the in-space
//! ones. A corrupted configuration entry bumps the same write epochs the
//! predecoded plan cache watches, so the fast path re-decodes exactly the
//! corrupted entries — the plan epochs double as scrub points.
//!
//! Datapath flips (registers, pipeline stages, sequencer slots) are
//! modeled as leaving a bad parity bit on the flipped word: the injector
//! keeps a sticky [`FaultSite`] tag which the next scrub reports. This is
//! conservative — a flipped word that is overwritten before anyone reads
//! it still reports a fault (a false positive, counted as detected), but
//! there are no false *negatives*.
//!
//! A stuck output is permanent (it survives [`rearm`](FaultInjector) — the
//! silicon stays broken), which is what makes the harness's
//! remap-to-spare-Dnode recovery meaningful: rollback alone replays into
//! the same stuck cycle forever.

use std::fmt;

use systolic_ring_isa::dnode::{MicroInstr, Reg, LOCAL_SLOTS};
use systolic_ring_isa::switch::PortSource;
use systolic_ring_isa::{RingGeometry, Word16};

use crate::config::{ConfigLayer, DNODE_PORTS};
use crate::dnode::DnodeState;
use crate::error::SimError;
use crate::plan::DecodedPlan;
use crate::stats::Stats;
use crate::switch::SwitchState;

/// Per-cycle fault rates and detection cadence for one machine.
///
/// Rates are probabilities in parts-per-million per cycle (at most one
/// fault of each class fires per cycle). All-zero rates with a nonzero
/// [`scrub_interval`](FaultConfig::scrub_interval) give a detection-only
/// machine (the configuration parity is swept but nothing is injected) —
/// that is the configuration whose overhead the resilience bench reports.
///
/// # Examples
///
/// ```
/// use systolic_ring_core::fault::FaultConfig;
///
/// let cfg = FaultConfig::uniform(0x5EED, 50);
/// assert!(cfg.injects() && cfg.detects() && cfg.is_active());
/// assert!(!FaultConfig::OFF.is_active());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultConfig {
    /// Master seed of the fault schedule.
    pub seed: u64,
    /// Retry salt mixed into the *transient* fault draws; stuck faults
    /// deliberately ignore it (broken silicon stays broken across
    /// retries). The harness bumps the salt on every rollback so a replay
    /// does not re-execute the same transient flips.
    pub salt: u64,
    /// Configuration-layer bit flips (microinstruction or switch-port
    /// words), per cycle, in parts-per-million.
    pub config_ppm: u32,
    /// Dnode register-file bit flips, per cycle, in ppm.
    pub reg_ppm: u32,
    /// Feedback-pipeline stage bit flips, per cycle, in ppm.
    pub pipe_ppm: u32,
    /// Local-sequencer instruction-slot bit flips, per cycle, in ppm.
    pub seq_ppm: u32,
    /// Stuck-at activations of a Dnode output write port, per cycle, in
    /// ppm. Once activated a stuck fault is permanent.
    pub stuck_ppm: u32,
    /// Cycles between detection sweeps (configuration parity plus pending
    /// datapath fault tags), checked at the *start* of a cycle before any
    /// compute. `1` detects every corruption before it can propagate;
    /// larger intervals trade detection latency for sweep cost; `0`
    /// disables detection entirely.
    pub scrub_interval: u32,
}

impl FaultConfig {
    /// No injection, no detection — the default in
    /// [`MachineParams::PAPER`](crate::MachineParams::PAPER).
    pub const OFF: FaultConfig = FaultConfig {
        seed: 0,
        salt: 0,
        config_ppm: 0,
        reg_ppm: 0,
        pipe_ppm: 0,
        seq_ppm: 0,
        stuck_ppm: 0,
        scrub_interval: 0,
    };

    /// Every fault class at the same rate, scrubbed every cycle.
    pub const fn uniform(seed: u64, ppm: u32) -> FaultConfig {
        FaultConfig {
            seed,
            salt: 0,
            config_ppm: ppm,
            reg_ppm: ppm,
            pipe_ppm: ppm,
            seq_ppm: ppm,
            stuck_ppm: ppm / 4,
            scrub_interval: 1,
        }
    }

    /// Detection only: parity swept every `scrub_interval` cycles, nothing
    /// injected. This is the configuration whose overhead the acceptance
    /// criteria bound.
    pub const fn detect_only(scrub_interval: u32) -> FaultConfig {
        FaultConfig {
            scrub_interval,
            ..FaultConfig::OFF
        }
    }

    /// Builder: replace the retry salt.
    pub const fn with_salt(mut self, salt: u64) -> FaultConfig {
        self.salt = salt;
        self
    }

    /// `true` if any fault class has a nonzero rate.
    pub const fn injects(&self) -> bool {
        self.config_ppm | self.reg_ppm | self.pipe_ppm | self.seq_ppm | self.stuck_ppm != 0
    }

    /// `true` if detection sweeps run.
    pub const fn detects(&self) -> bool {
        self.scrub_interval != 0
    }

    /// `true` if the machine needs a [`FaultInjector`] at all.
    pub const fn is_active(&self) -> bool {
        self.injects() || self.detects()
    }
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig::OFF
    }
}

/// Where a datapath fault landed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// A Dnode register-file word.
    Reg {
        /// Flat Dnode index.
        dnode: usize,
        /// The flipped register.
        reg: Reg,
    },
    /// A feedback-pipeline stage word.
    Pipe {
        /// Owning switch.
        switch: usize,
        /// Pipeline stage (0 = newest).
        stage: usize,
        /// Lane within the stage.
        lane: usize,
    },
    /// A local-sequencer instruction slot.
    Seq {
        /// Flat Dnode index.
        dnode: usize,
        /// Slot index (0-based).
        slot: usize,
    },
    /// A Dnode output write port stuck at a fixed value (readback after
    /// commit observed a value different from the one written).
    StuckOut {
        /// Flat Dnode index.
        dnode: usize,
    },
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSite::Reg { dnode, reg } => write!(f, "dnode {dnode} register {reg}"),
            FaultSite::Pipe {
                switch,
                stage,
                lane,
            } => write!(f, "pipeline of switch {switch}, stage {stage}, lane {lane}"),
            FaultSite::Seq { dnode, slot } => {
                write!(f, "dnode {dnode} sequencer slot S{}", slot + 1)
            }
            FaultSite::StuckOut { dnode } => write!(f, "dnode {dnode} output stuck"),
        }
    }
}

/// SplitMix64 finalizer: the bit mixer behind every fault draw.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A deterministic draw stream for one (seed, cycle, fault class).
struct Draw(u64);

/// Fault-class discriminators folded into the draw seed.
const CLASS_CONFIG: u64 = 1;
const CLASS_REG: u64 = 2;
const CLASS_PIPE: u64 = 3;
const CLASS_SEQ: u64 = 4;
const CLASS_STUCK: u64 = 5;

impl Draw {
    fn new(seed: u64, cycle: u64, class: u64) -> Draw {
        Draw(mix(seed
            ^ cycle.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ class.wrapping_mul(0xd134_2543_de82_ef95)))
    }

    fn next(&mut self) -> u64 {
        self.0 = mix(self.0.wrapping_add(0x9e37_79b9_7f4a_7c15));
        self.0
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    /// One Bernoulli trial at `ppm` parts-per-million.
    fn fires(&mut self, ppm: u32) -> bool {
        ppm > 0 && self.next() % 1_000_000 < u64::from(ppm)
    }
}

/// Microinstruction bits a flip may target: the architecturally meaningful
/// bits of the 48-bit encoding (flipping a reserved bit is a fault the
/// decoder already rejects, so it is never silent).
const INSTR_BITS: [u8; 34] = [
    0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, // opcode..bus
    32, 33, 34, 35, 36, 37, 38, 39, 40, 41, 42, 43, 44, 45, 46, 47, // immediate
];

/// Bit-flip retry budget: how many candidate bits a corruption draw tries
/// before giving up on finding a decodable in-space flip this cycle.
const FLIP_ATTEMPTS: usize = 8;

/// The mutable machine parts the injector touches at the start of a cycle.
///
/// Passed by the stepper with split field borrows; keeping the injector
/// outside the machine's field tree would otherwise fight the borrow
/// checker.
pub(crate) struct FaultCtx<'a> {
    pub geometry: RingGeometry,
    pub config: &'a mut ConfigLayer,
    pub dnodes: &'a mut [DnodeState],
    pub switches: &'a mut [SwitchState],
    pub plan: &'a mut DecodedPlan,
    pub stats: &'a mut Stats,
}

/// The per-machine fault state: pending stuck faults and sticky datapath
/// fault tags.
///
/// Owned (boxed) by a [`RingMachine`](crate::RingMachine) whenever its
/// [`FaultConfig::is_active`]; cloned with the machine, so checkpoints
/// capture and restores rewind the fault state alongside the architecture.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultInjector {
    cfg: FaultConfig,
    /// Active retry salt (starts at `cfg.salt`, bumped by `rearm`).
    salt: u64,
    /// Per-Dnode stuck-output value, once activated.
    stuck: Vec<Option<Word16>>,
    /// Whether any stuck entry is live (gates the per-cycle readback
    /// sweep in `end_cycle`).
    any_stuck: bool,
    /// Pending (injected but not yet reported) datapath fault sites.
    tags: Vec<FaultSite>,
}

impl FaultInjector {
    pub(crate) fn new(cfg: FaultConfig, dnodes: usize) -> FaultInjector {
        FaultInjector {
            cfg,
            salt: cfg.salt,
            stuck: vec![None; dnodes],
            any_stuck: false,
            tags: Vec::new(),
        }
    }

    /// The fault configuration this injector runs.
    pub fn config(&self) -> &FaultConfig {
        &self.cfg
    }

    /// The stuck-output value of `dnode`, if a stuck fault has activated.
    pub fn stuck_value(&self, dnode: usize) -> Option<Word16> {
        self.stuck.get(dnode).copied().flatten()
    }

    /// Pending datapath fault tags (injected, not yet reported or rolled
    /// back).
    pub fn pending(&self) -> &[FaultSite] {
        &self.tags
    }

    /// Re-arms the transient fault schedule with a new salt (rollback
    /// retries call this so the replay does not hit the same flips).
    /// Stuck faults are unaffected: broken silicon stays broken.
    pub(crate) fn rearm(&mut self, salt: u64) {
        self.salt = self.cfg.salt ^ mix(salt.wrapping_add(1));
    }

    /// Drops pending fault tags (resume-after-fault without rollback).
    pub(crate) fn clear_tags(&mut self) {
        self.tags.clear();
    }

    /// Testing hook: activate a stuck-output fault directly.
    pub(crate) fn force_stuck(&mut self, dnode: usize, value: Word16) {
        self.stuck[dnode] = Some(value);
        self.any_stuck = true;
    }

    fn tag(&mut self, site: FaultSite) {
        if !self.tags.contains(&site) {
            self.tags.push(site);
        }
    }

    /// Seed of the transient (salt-sensitive) draws.
    fn transient_seed(&self) -> u64 {
        self.cfg.seed ^ mix(self.salt ^ 0xa5a5_5a5a_c0ff_ee00)
    }

    /// Start-of-cycle hook: inject this cycle's faults, then run the
    /// detection sweep if a scrub is due. Runs before any compute, so with
    /// `scrub_interval == 1` a corruption is reported before it can
    /// propagate into the datapath.
    pub(crate) fn begin_cycle(&mut self, cycle: u64, mut m: FaultCtx<'_>) -> Result<(), SimError> {
        if self.cfg.injects() {
            self.inject(cycle, &mut m);
        }
        self.detect(cycle, m.config, m.stats)
    }

    /// The detection half of a cycle start: configuration parity at scrub
    /// points plus pending datapath fault tags. Split out of
    /// [`FaultInjector::begin_cycle`] so a detection-only machine (the
    /// always-armed production profile) skips assembling a full
    /// [`FaultCtx`] every cycle.
    pub(crate) fn detect(
        &self,
        cycle: u64,
        config: &mut ConfigLayer,
        stats: &mut Stats,
    ) -> Result<(), SimError> {
        if self.cfg.detects() && cycle.is_multiple_of(u64::from(self.cfg.scrub_interval)) {
            stats.parity_scrubs += 1;
            let active = config.active_index();
            if let Some(dnode) = config.scrub(active) {
                stats.config_faults_detected += 1;
                return Err(SimError::ConfigCorruption {
                    cycle,
                    ctx: active,
                    dnode,
                });
            }
            if let Some(site) = self.tags.first() {
                stats.datapath_faults_detected += 1;
                return Err(SimError::DatapathFault {
                    cycle,
                    ctx: active,
                    site: *site,
                });
            }
        }
        Ok(())
    }

    fn inject(&mut self, cycle: u64, m: &mut FaultCtx<'_>) {
        let tseed = self.transient_seed();
        let g = m.geometry;

        // Configuration layer: flip one bit of a stored microinstruction
        // or switch-port word, staying inside the decodable/routable space.
        let mut d = Draw::new(tseed, cycle, CLASS_CONFIG);
        if d.fires(self.cfg.config_ppm) {
            let ctx = d.below(m.config.contexts());
            if d.below(2) == 0 {
                let dnode = d.below(g.dnodes());
                let original = m
                    .config
                    .context(ctx)
                    .expect("ctx in range")
                    .dnode_instr(dnode);
                let word = original.encode();
                for _ in 0..FLIP_ATTEMPTS {
                    let bit = INSTR_BITS[d.below(INSTR_BITS.len())];
                    if let Ok(flipped) = MicroInstr::decode(word ^ (1u64 << bit)) {
                        if flipped != original {
                            m.config
                                .corrupt_dnode_instr(ctx, dnode, flipped)
                                .expect("in-range corruption");
                            m.stats.faults_injected += 1;
                            break;
                        }
                    }
                }
            } else {
                let switch = d.below(g.switches());
                let lane = d.below(g.width());
                let port = d.below(DNODE_PORTS);
                let original = m.config.context(ctx).expect("ctx in range").port(
                    g.width(),
                    switch,
                    lane,
                    port,
                );
                let word = original.encode();
                for _ in 0..FLIP_ATTEMPTS {
                    let bit = d.below(27) as u32;
                    if let Ok(flipped) = PortSource::decode(word ^ (1u32 << bit)) {
                        if flipped != original && m.config.validate_source(flipped).is_ok() {
                            m.config
                                .corrupt_port(ctx, switch, lane, port, flipped)
                                .expect("in-range corruption");
                            m.stats.faults_injected += 1;
                            break;
                        }
                    }
                }
            }
        }

        // Dnode register files.
        let mut d = Draw::new(tseed, cycle, CLASS_REG);
        if d.fires(self.cfg.reg_ppm) {
            let dnode = d.below(g.dnodes());
            let reg = Reg::ALL[d.below(Reg::ALL.len())];
            let bit = d.below(16) as u16;
            let old = m.dnodes[dnode].reg(reg);
            m.dnodes[dnode].set_reg(reg, Word16::new(old.bits() ^ (1 << bit)));
            self.tag(FaultSite::Reg { dnode, reg });
            m.stats.faults_injected += 1;
        }

        // Feedback-pipeline stages.
        let mut d = Draw::new(tseed, cycle, CLASS_PIPE);
        if d.fires(self.cfg.pipe_ppm) {
            let switch = d.below(g.switches());
            let pipe = &mut m.switches[switch].pipe;
            let stage = d.below(pipe.depth());
            let lane = d.below(g.width());
            let bit = d.below(16) as u16;
            let old = pipe.read(stage, lane);
            pipe.poke(stage, lane, Word16::new(old.bits() ^ (1 << bit)));
            self.tag(FaultSite::Pipe {
                switch,
                stage,
                lane,
            });
            m.stats.faults_injected += 1;
        }

        // Local-sequencer instruction slots.
        let mut d = Draw::new(tseed, cycle, CLASS_SEQ);
        if d.fires(self.cfg.seq_ppm) {
            let dnode = d.below(g.dnodes());
            let slot = d.below(LOCAL_SLOTS);
            let original = m.dnodes[dnode].sequencer().slot(slot);
            let word = original.encode();
            for _ in 0..FLIP_ATTEMPTS {
                let bit = INSTR_BITS[d.below(INSTR_BITS.len())];
                if let Ok(flipped) = MicroInstr::decode(word ^ (1u64 << bit)) {
                    if flipped != original {
                        m.dnodes[dnode].sequencer_mut().set_slot(slot, flipped);
                        m.plan.note_seq_write(dnode);
                        self.tag(FaultSite::Seq { dnode, slot });
                        m.stats.faults_injected += 1;
                        break;
                    }
                }
            }
        }

        // Stuck-output activation: keyed off the *unsalted* seed so the
        // fault persists across rollback retries.
        let mut d = Draw::new(self.cfg.seed, cycle, CLASS_STUCK);
        if d.fires(self.cfg.stuck_ppm) {
            let dnode = d.below(g.dnodes());
            if self.stuck[dnode].is_none() {
                self.stuck[dnode] = Some(Word16::new(d.next() as u16));
                self.any_stuck = true;
                m.stats.faults_injected += 1;
            }
        }
    }

    /// End-of-cycle hook, after commit: apply stuck-output forcing. A
    /// stuck write port only matters when the Dnode actually committed an
    /// output write this cycle (`committed_cycle`); the forced value is
    /// then observed by the write-back readback compare and tagged.
    pub(crate) fn end_cycle(&mut self, committed_cycle: u64, dnodes: &mut [DnodeState]) {
        // Fast exit for the common case: stuck faults only activate at
        // `stuck_ppm` draws, so a healthy machine pays one flag test per
        // cycle, not a per-Dnode sweep.
        if !self.any_stuck {
            return;
        }
        let mut tags = Vec::new();
        for (dnode, stuck) in self.stuck.iter().enumerate() {
            let Some(value) = *stuck else { continue };
            if dnodes[dnode].out_written_at() == Some(committed_cycle)
                && dnodes[dnode].out() != value
            {
                dnodes[dnode].force_out(value);
                tags.push(FaultSite::StuckOut { dnode });
            }
        }
        for site in tags {
            self.tag(site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn off_is_inactive_and_uniform_is_active() {
        assert!(!FaultConfig::OFF.is_active());
        assert!(!FaultConfig::OFF.injects());
        assert!(!FaultConfig::OFF.detects());
        let cfg = FaultConfig::uniform(9, 100);
        assert!(cfg.injects() && cfg.detects());
        assert!(FaultConfig::detect_only(4).detects());
        assert!(!FaultConfig::detect_only(4).injects());
    }

    #[test]
    fn draws_are_deterministic_and_class_separated() {
        let mut a = Draw::new(1, 5, CLASS_REG);
        let mut b = Draw::new(1, 5, CLASS_REG);
        assert_eq!(a.next(), b.next());
        let mut c = Draw::new(1, 5, CLASS_PIPE);
        assert_ne!(a.next(), c.next());
    }

    #[test]
    fn fires_honours_rate_extremes() {
        let mut d = Draw::new(3, 0, CLASS_CONFIG);
        assert!(!d.fires(0));
        assert!(d.fires(1_000_000));
    }

    #[test]
    fn rearm_changes_transient_seed_only() {
        let mut inj = FaultInjector::new(FaultConfig::uniform(7, 10), 4);
        let before = inj.transient_seed();
        inj.rearm(1);
        assert_ne!(before, inj.transient_seed());
        // Stuck state untouched by rearm.
        inj.force_stuck(2, Word16::from_i16(9));
        inj.rearm(2);
        assert_eq!(inj.stuck_value(2), Some(Word16::from_i16(9)));
    }

    #[test]
    fn tags_deduplicate() {
        let mut inj = FaultInjector::new(FaultConfig::uniform(7, 10), 4);
        let site = FaultSite::Reg {
            dnode: 1,
            reg: Reg::R0,
        };
        inj.tag(site);
        inj.tag(site);
        assert_eq!(inj.pending().len(), 1);
        inj.clear_tags();
        assert!(inj.pending().is_empty());
    }

    #[test]
    fn site_display_is_informative() {
        assert!(FaultSite::Seq { dnode: 3, slot: 0 }
            .to_string()
            .contains("S1"));
        assert!(FaultSite::StuckOut { dnode: 2 }
            .to_string()
            .contains("stuck"));
    }
}
