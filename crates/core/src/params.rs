//! Machine parameterization beyond the ring geometry.

use std::cell::Cell;

use crate::fault::FaultConfig;

/// Host-link bandwidth model.
///
/// The paper quotes two operating points for Ring-8 at 200 MHz (§5.1): the
/// theoretical ~3 GB/s of the direct dedicated ports and the 250 MB/s of the
/// implemented PCI-class link. The link model meters how many 16-bit words
/// the host interface may move (in plus out) per cycle.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum LinkModel {
    /// Direct dedicated ports: no metering (on-chip memories feed every
    /// switch at full rate, as on the APEX prototype).
    #[default]
    Direct,
    /// A metered link moving at most `bytes_per_cycle` bytes per clock
    /// cycle, shared by all host traffic in both directions.
    Metered {
        /// Link budget in bytes per core clock cycle.
        bytes_per_cycle: f64,
    },
}

impl LinkModel {
    /// The paper's implemented PCI-class link: 250 MB/s at a 200 MHz core
    /// clock = 1.25 bytes per cycle.
    pub const PCI_250MBPS_AT_200MHZ: LinkModel = LinkModel::Metered {
        bytes_per_cycle: 1.25,
    };

    /// Words the link may move this cycle given `credit` accumulated bytes;
    /// returns the new credit and the word allowance.
    pub(crate) fn allowance(self, credit: f64) -> (f64, usize) {
        match self {
            LinkModel::Direct => (0.0, usize::MAX),
            LinkModel::Metered { bytes_per_cycle } => {
                let total = credit + bytes_per_cycle;
                let words = (total / 2.0).floor() as usize;
                (total - words as f64 * 2.0, words)
            }
        }
    }
}

/// Sizing parameters of a [`crate::RingMachine`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineParams {
    /// Number of configuration contexts in the configuration layer.
    pub contexts: usize,
    /// Depth of each switch's feedback pipeline (stages).
    pub pipe_depth: usize,
    /// Capacity of each switch's host-input and host-output FIFOs (words).
    pub host_fifo_capacity: usize,
    /// Controller program-memory capacity (words).
    pub prog_capacity: usize,
    /// Controller data-memory capacity (words).
    pub dmem_capacity: usize,
    /// Host-link bandwidth model.
    pub link: LinkModel,
    /// Execute from the predecoded configuration cache (the fast path).
    ///
    /// When `true` (the default), [`crate::RingMachine::step`] runs each
    /// cycle from dense pre-resolved operation plans that are decoded once
    /// per distinct configuration and invalidated only by configuration
    /// writes; NOP/idle Dnodes are skipped entirely. When `false` the
    /// machine takes the original decode-per-cycle reference path. The two
    /// paths are architecturally identical — same outputs, same traces,
    /// same statistics except the [`crate::Stats::decode_cache_hits`] /
    /// [`crate::Stats::decode_cache_misses`] counters — so differential
    /// tests oracle one against the other.
    pub decode_cache: bool,
    /// Execute steady-state windows through the fused-epoch engine.
    ///
    /// When `true` (the default) *and* the predecoded cache is enabled,
    /// [`crate::RingMachine::run`] and
    /// [`crate::RingMachine::run_until_halt`] watch for quiescent windows —
    /// the controller halted or mid-`wait`, no fault injector armed, no
    /// watchdog, a direct host link, and the configuration epochs stable
    /// for a detection window — and execute them as *fused bursts*: the
    /// whole ring is compiled once into a flat, phase-scheduled operation
    /// list over a struct-of-arrays snapshot of machine state and replayed
    /// with no per-cycle decode, dispatch or staging. Any reconfiguration
    /// write, context switch, armed fault injector or watchdog arm
    /// deoptimizes back to the decoded path, so the two are architecturally
    /// indistinguishable — same outputs, traces and statistics except the
    /// engine's own [`crate::Stats::fused_entries`] /
    /// [`crate::Stats::fused_deopts`] / [`crate::Stats::fused_cycles`] /
    /// [`crate::Stats::fused_lane_occupancy`] counters (and the decode
    /// cache's hit counter, which fused cycles do not touch).
    /// [`crate::RingMachine::step`] never fuses: single-cycle stepping (and
    /// therefore per-cycle tracing) always takes the decoded path.
    pub fused: bool,
    /// Execute through the ahead-of-time multi-phase superblock cache.
    ///
    /// When `true` *and* both [`MachineParams::decode_cache`] and
    /// [`MachineParams::fused`] are enabled, [`crate::RingMachine::load`]
    /// walks the controller program once and pre-compiles a fused program
    /// for every configuration phase it can bound, keyed by the *exact
    /// configuration content* rather than monotonic write epochs. At run
    /// time every quiescent window (controller halted or mid-`wait`) is
    /// stitched to a cached program through a cheap guard check — content
    /// fingerprint, no armed injector, no staged context switch, watchdog
    /// distance — with no stability-detection warmup, so programs survive
    /// reconfiguration rounds instead of deoptimizing: a loop that returns
    /// to a previously seen configuration re-enters its compiled program
    /// immediately. Guard misses compile the new phase on the spot and
    /// fall back to the decoded path for at most that window. Off by
    /// default (`MachineParams::PAPER`) so the `fused` tier's measured
    /// behaviour is unchanged; the `aot` tier enables it explicitly.
    pub aot: bool,
    /// Fault-injection and fault-detection configuration.
    ///
    /// [`FaultConfig::OFF`] (the default) builds no fault machinery at
    /// all — the stepper takes the exact pre-fault code path. Any active
    /// configuration attaches a seed-driven
    /// [`FaultInjector`](crate::fault::FaultInjector) whose per-cycle
    /// decisions depend only on `(seed, salt, cycle)`, so the predecoded
    /// fast path and the reference path see identical fault schedules.
    pub faults: FaultConfig,
    /// Watchdog interval in cycles; `0` (the default) disables it.
    ///
    /// When nonzero, the machine checks at every cycle boundary whether
    /// any controller or host progress (instructions retired,
    /// configuration writes, context switches, host words moved) happened
    /// in the last `watchdog_interval` cycles, and raises
    /// [`SimError::Watchdog`](crate::SimError::Watchdog) if not — the
    /// heartbeat that catches hung or diverged local-mode loops spinning
    /// without supervision.
    pub watchdog_interval: u64,
}

impl MachineParams {
    /// Parameters used throughout the paper reproduction: 8 contexts,
    /// 8-stage feedback pipelines, generous on-chip FIFOs, direct ports.
    pub const PAPER: MachineParams = MachineParams {
        contexts: 8,
        pipe_depth: 8,
        host_fifo_capacity: 4096,
        prog_capacity: 65536,
        dmem_capacity: 65536,
        link: LinkModel::Direct,
        decode_cache: true,
        fused: true,
        aot: false,
        faults: FaultConfig::OFF,
        watchdog_interval: 0,
    };

    /// Builder: set the context count.
    pub fn with_contexts(mut self, contexts: usize) -> Self {
        self.contexts = contexts;
        self
    }

    /// Builder: set the feedback-pipeline depth.
    pub fn with_pipe_depth(mut self, pipe_depth: usize) -> Self {
        self.pipe_depth = pipe_depth;
        self
    }

    /// Builder: set the host FIFO capacity.
    pub fn with_host_fifo_capacity(mut self, capacity: usize) -> Self {
        self.host_fifo_capacity = capacity;
        self
    }

    /// Builder: set the host-link model.
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }

    /// Builder: enable or disable the predecoded configuration cache.
    ///
    /// # Examples
    ///
    /// The cached fast path and the uncached reference path are
    /// bit-identical:
    ///
    /// ```
    /// use systolic_ring_core::{MachineParams, RingMachine};
    /// use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand, Reg};
    /// use systolic_ring_isa::RingGeometry;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let count = MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::One)
    ///     .write_reg(Reg::R0)
    ///     .write_out();
    /// let mut runs = Vec::new();
    /// for cached in [true, false] {
    ///     let params = MachineParams::PAPER.with_decode_cache(cached);
    ///     let mut m = RingMachine::new(RingGeometry::RING_8, params);
    ///     m.configure().set_dnode_instr(0, 0, count)?;
    ///     m.run(5)?;
    ///     runs.push(m.dnode(0).reg(Reg::R0));
    /// }
    /// assert_eq!(runs[0], runs[1]);
    /// # Ok(())
    /// # }
    /// ```
    pub fn with_decode_cache(mut self, decode_cache: bool) -> Self {
        self.decode_cache = decode_cache;
        self
    }

    /// Builder: enable or disable the fused steady-state execution engine.
    ///
    /// Fusion additionally requires the predecoded cache
    /// ([`MachineParams::decode_cache`]); with the cache off this flag has
    /// no effect, which keeps `with_decode_cache(false)` an honest
    /// decode-per-cycle reference path.
    pub fn with_fused(mut self, fused: bool) -> Self {
        self.fused = fused;
        self
    }

    /// Builder: enable or disable the ahead-of-time superblock cache.
    ///
    /// The AOT tier additionally requires the predecoded cache and the
    /// fused engine ([`MachineParams::decode_cache`],
    /// [`MachineParams::fused`]); with either off this flag has no effect.
    pub fn with_aot(mut self, aot: bool) -> Self {
        self.aot = aot;
        self
    }

    /// Builder: set the fault-injection/detection configuration.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Builder: set the watchdog interval (`0` disables the watchdog).
    pub fn with_watchdog(mut self, interval: u64) -> Self {
        self.watchdog_interval = interval;
        self
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams::PAPER
    }
}

thread_local! {
    static DECODE_CACHE_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Runs `f` with [`MachineParams::decode_cache`] forced to `enabled` for
/// every [`crate::RingMachine`] *created* on this thread inside the call.
///
/// Kernel drivers and other workload adapters construct their machines
/// internally with fixed parameters; differential fast-vs-slow oracles wrap
/// whole driver calls in `with_decode_cache(false, ..)` to obtain the
/// uncached reference run without widening every driver signature. The
/// override nests, applies only to machine construction (an existing
/// machine keeps the flag it was built with), and is restored even if `f`
/// panics.
///
/// # Examples
///
/// ```
/// use systolic_ring_core::{with_decode_cache, MachineParams, RingMachine};
/// use systolic_ring_isa::RingGeometry;
///
/// let m = with_decode_cache(false, || RingMachine::with_defaults(RingGeometry::RING_8));
/// assert!(!m.params().decode_cache);
/// assert!(RingMachine::with_defaults(RingGeometry::RING_8).params().decode_cache);
/// ```
pub fn with_decode_cache<T>(enabled: bool, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            DECODE_CACHE_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(DECODE_CACHE_OVERRIDE.with(|cell| cell.replace(Some(enabled))));
    f()
}

/// The active scoped override, if any (consulted by machine construction).
pub(crate) fn decode_cache_override() -> Option<bool> {
    DECODE_CACHE_OVERRIDE.with(|cell| cell.get())
}

thread_local! {
    static FUSED_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Runs `f` with [`MachineParams::fused`] forced to `enabled` for every
/// [`crate::RingMachine`] *created* on this thread inside the call.
///
/// The fused-engine analogue of [`with_decode_cache`]: kernel drivers
/// construct their machines internally with fixed parameters, so the
/// three-way differential oracle (slow / decoded / fused) wraps whole
/// driver calls in `with_fused` scopes instead of widening every driver
/// signature. Nests, applies only to machine construction, and is restored
/// even if `f` panics.
///
/// # Examples
///
/// ```
/// use systolic_ring_core::{with_fused, RingMachine};
/// use systolic_ring_isa::RingGeometry;
///
/// let m = with_fused(false, || RingMachine::with_defaults(RingGeometry::RING_8));
/// assert!(!m.params().fused);
/// assert!(RingMachine::with_defaults(RingGeometry::RING_8).params().fused);
/// ```
pub fn with_fused<T>(enabled: bool, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FUSED_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(FUSED_OVERRIDE.with(|cell| cell.replace(Some(enabled))));
    f()
}

/// The active scoped fused override, if any (consulted by machine
/// construction).
pub(crate) fn fused_override() -> Option<bool> {
    FUSED_OVERRIDE.with(|cell| cell.get())
}

thread_local! {
    static AOT_OVERRIDE: Cell<Option<bool>> = const { Cell::new(None) };
}

/// Runs `f` with [`MachineParams::aot`] forced to `enabled` for every
/// [`crate::RingMachine`] *created* on this thread inside the call.
///
/// The AOT-tier analogue of [`with_fused`]: kernel drivers construct their
/// machines internally with fixed parameters, so the four-way differential
/// oracle (slow / decoded / fused / aot) wraps whole driver calls in
/// `with_aot` scopes instead of widening every driver signature. Nests,
/// applies only to machine construction, and is restored even if `f`
/// panics.
///
/// # Examples
///
/// ```
/// use systolic_ring_core::{with_aot, RingMachine};
/// use systolic_ring_isa::RingGeometry;
///
/// let m = with_aot(true, || RingMachine::with_defaults(RingGeometry::RING_8));
/// assert!(m.params().aot);
/// assert!(!RingMachine::with_defaults(RingGeometry::RING_8).params().aot);
/// ```
pub fn with_aot<T>(enabled: bool, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<bool>);
    impl Drop for Restore {
        fn drop(&mut self) {
            AOT_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(AOT_OVERRIDE.with(|cell| cell.replace(Some(enabled))));
    f()
}

/// The active scoped AOT override, if any (consulted by machine
/// construction).
pub(crate) fn aot_override() -> Option<bool> {
    AOT_OVERRIDE.with(|cell| cell.get())
}

thread_local! {
    static FAULT_OVERRIDE: Cell<Option<FaultConfig>> = const { Cell::new(None) };
}

/// Runs `f` with [`MachineParams::faults`] forced to `faults` for every
/// [`crate::RingMachine`] *created* on this thread inside the call.
///
/// The fault-injection analogue of [`with_decode_cache`]: kernel drivers
/// construct their machines internally, so chaos campaigns wrap whole
/// driver calls in a `with_faults` scope to subject them to injection (and
/// retries re-wrap with a different [`FaultConfig::salt`]) without
/// widening every driver signature. Nests, applies only to machine
/// construction, and is restored even if `f` panics.
///
/// # Examples
///
/// ```
/// use systolic_ring_core::fault::FaultConfig;
/// use systolic_ring_core::{with_faults, RingMachine};
/// use systolic_ring_isa::RingGeometry;
///
/// let cfg = FaultConfig::uniform(7, 100);
/// let m = with_faults(cfg, || RingMachine::with_defaults(RingGeometry::RING_8));
/// assert_eq!(m.params().faults, cfg);
/// assert_eq!(
///     RingMachine::with_defaults(RingGeometry::RING_8).params().faults,
///     FaultConfig::OFF,
/// );
/// ```
pub fn with_faults<T>(faults: FaultConfig, f: impl FnOnce() -> T) -> T {
    struct Restore(Option<FaultConfig>);
    impl Drop for Restore {
        fn drop(&mut self) {
            FAULT_OVERRIDE.with(|cell| cell.set(self.0));
        }
    }
    let _restore = Restore(FAULT_OVERRIDE.with(|cell| cell.replace(Some(faults))));
    f()
}

/// The active scoped fault override, if any (consulted by machine
/// construction).
pub(crate) fn fault_override() -> Option<FaultConfig> {
    FAULT_OVERRIDE.with(|cell| cell.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_params() {
        let p = MachineParams::default();
        assert_eq!(p.contexts, 8);
        assert_eq!(p.pipe_depth, 8);
        assert_eq!(p.link, LinkModel::Direct);
    }

    #[test]
    fn builders_chain() {
        let p = MachineParams::default()
            .with_contexts(2)
            .with_pipe_depth(4)
            .with_host_fifo_capacity(64)
            .with_link(LinkModel::PCI_250MBPS_AT_200MHZ);
        assert_eq!(p.contexts, 2);
        assert_eq!(p.pipe_depth, 4);
        assert_eq!(p.host_fifo_capacity, 64);
        assert_ne!(p.link, LinkModel::Direct);
    }

    #[test]
    fn direct_link_is_unmetered() {
        let (credit, words) = LinkModel::Direct.allowance(0.0);
        assert_eq!(words, usize::MAX);
        assert_eq!(credit, 0.0);
    }

    #[test]
    fn metered_link_accumulates_credit() {
        // 1.25 bytes/cycle: first cycle 0 words (1.25 B), second 1 word
        // (2.5 B -> 1 word, 0.5 B left), etc.
        let link = LinkModel::PCI_250MBPS_AT_200MHZ;
        let (credit, words) = link.allowance(0.0);
        assert_eq!(words, 0);
        assert!((credit - 1.25).abs() < 1e-9);
        let (credit, words) = link.allowance(credit);
        assert_eq!(words, 1);
        assert!((credit - 0.5).abs() < 1e-9);
        // Long-run rate: 0.625 words/cycle.
        let mut credit = 0.0;
        let mut total = 0usize;
        for _ in 0..1000 {
            let (c, w) = link.allowance(credit);
            credit = c;
            total += w;
        }
        assert_eq!(total, 625);
    }
}
