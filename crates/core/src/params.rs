//! Machine parameterization beyond the ring geometry.

/// Host-link bandwidth model.
///
/// The paper quotes two operating points for Ring-8 at 200 MHz (§5.1): the
/// theoretical ~3 GB/s of the direct dedicated ports and the 250 MB/s of the
/// implemented PCI-class link. The link model meters how many 16-bit words
/// the host interface may move (in plus out) per cycle.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum LinkModel {
    /// Direct dedicated ports: no metering (on-chip memories feed every
    /// switch at full rate, as on the APEX prototype).
    #[default]
    Direct,
    /// A metered link moving at most `bytes_per_cycle` bytes per clock
    /// cycle, shared by all host traffic in both directions.
    Metered {
        /// Link budget in bytes per core clock cycle.
        bytes_per_cycle: f64,
    },
}

impl LinkModel {
    /// The paper's implemented PCI-class link: 250 MB/s at a 200 MHz core
    /// clock = 1.25 bytes per cycle.
    pub const PCI_250MBPS_AT_200MHZ: LinkModel = LinkModel::Metered {
        bytes_per_cycle: 1.25,
    };

    /// Words the link may move this cycle given `credit` accumulated bytes;
    /// returns the new credit and the word allowance.
    pub(crate) fn allowance(self, credit: f64) -> (f64, usize) {
        match self {
            LinkModel::Direct => (0.0, usize::MAX),
            LinkModel::Metered { bytes_per_cycle } => {
                let total = credit + bytes_per_cycle;
                let words = (total / 2.0).floor() as usize;
                (total - words as f64 * 2.0, words)
            }
        }
    }
}

/// Sizing parameters of a [`crate::RingMachine`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineParams {
    /// Number of configuration contexts in the configuration layer.
    pub contexts: usize,
    /// Depth of each switch's feedback pipeline (stages).
    pub pipe_depth: usize,
    /// Capacity of each switch's host-input and host-output FIFOs (words).
    pub host_fifo_capacity: usize,
    /// Controller program-memory capacity (words).
    pub prog_capacity: usize,
    /// Controller data-memory capacity (words).
    pub dmem_capacity: usize,
    /// Host-link bandwidth model.
    pub link: LinkModel,
}

impl MachineParams {
    /// Parameters used throughout the paper reproduction: 8 contexts,
    /// 8-stage feedback pipelines, generous on-chip FIFOs, direct ports.
    pub const PAPER: MachineParams = MachineParams {
        contexts: 8,
        pipe_depth: 8,
        host_fifo_capacity: 4096,
        prog_capacity: 65536,
        dmem_capacity: 65536,
        link: LinkModel::Direct,
    };

    /// Builder: set the context count.
    pub fn with_contexts(mut self, contexts: usize) -> Self {
        self.contexts = contexts;
        self
    }

    /// Builder: set the feedback-pipeline depth.
    pub fn with_pipe_depth(mut self, pipe_depth: usize) -> Self {
        self.pipe_depth = pipe_depth;
        self
    }

    /// Builder: set the host FIFO capacity.
    pub fn with_host_fifo_capacity(mut self, capacity: usize) -> Self {
        self.host_fifo_capacity = capacity;
        self
    }

    /// Builder: set the host-link model.
    pub fn with_link(mut self, link: LinkModel) -> Self {
        self.link = link;
        self
    }
}

impl Default for MachineParams {
    fn default() -> Self {
        MachineParams::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_params() {
        let p = MachineParams::default();
        assert_eq!(p.contexts, 8);
        assert_eq!(p.pipe_depth, 8);
        assert_eq!(p.link, LinkModel::Direct);
    }

    #[test]
    fn builders_chain() {
        let p = MachineParams::default()
            .with_contexts(2)
            .with_pipe_depth(4)
            .with_host_fifo_capacity(64)
            .with_link(LinkModel::PCI_250MBPS_AT_200MHZ);
        assert_eq!(p.contexts, 2);
        assert_eq!(p.pipe_depth, 4);
        assert_eq!(p.host_fifo_capacity, 64);
        assert_ne!(p.link, LinkModel::Direct);
    }

    #[test]
    fn direct_link_is_unmetered() {
        let (credit, words) = LinkModel::Direct.allowance(0.0);
        assert_eq!(words, usize::MAX);
        assert_eq!(credit, 0.0);
    }

    #[test]
    fn metered_link_accumulates_credit() {
        // 1.25 bytes/cycle: first cycle 0 words (1.25 B), second 1 word
        // (2.5 B -> 1 word, 0.5 B left), etc.
        let link = LinkModel::PCI_250MBPS_AT_200MHZ;
        let (credit, words) = link.allowance(0.0);
        assert_eq!(words, 0);
        assert!((credit - 1.25).abs() < 1e-9);
        let (credit, words) = link.allowance(credit);
        assert_eq!(words, 1);
        assert!((credit - 0.5).abs() < 1e-9);
        // Long-run rate: 0.625 words/cycle.
        let mut credit = 0.0;
        let mut total = 0usize;
        for _ in 0..1000 {
            let (c, w) = link.allowance(credit);
            credit = c;
            total += w;
        }
        assert_eq!(total, 625);
    }
}
