//! The configuration layer: multi-context fabric configuration memory.
//!
//! "The configuration layer follows the same principle as FPGAs, it's a
//! \[memory\] which contains the configuration of all the components (Dnodes
//! and interconnect) of the operative layer" (§3). We model it as a set of
//! *contexts*, each holding a full fabric configuration (every Dnode
//! microinstruction, every switch crossbar port, every host-capture
//! selector). The configuration controller edits contexts word-by-word and
//! switches the *active* context in a single cycle — the mechanism behind
//! "the configuration controller is able to change up to the entire content
//! of the [configuration layer]" each clock cycle.

use systolic_ring_isa::dnode::MicroInstr;
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::RingGeometry;

use crate::error::ConfigError;

/// Number of routed input ports per Dnode (`In1`, `In2`, `Fifo1`, `Fifo2`).
pub const DNODE_PORTS: usize = 4;

/// One full fabric configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Context {
    /// Microinstruction per Dnode (flat index).
    dnode_instr: Vec<MicroInstr>,
    /// Port sources per `(switch * width + lane) * 4 + port`.
    ports: Vec<PortSource>,
    /// Host-capture selector per `(switch * width + out_port)`.
    capture: Vec<HostCapture>,
}

impl Context {
    fn new(geometry: RingGeometry) -> Self {
        Context {
            dnode_instr: vec![MicroInstr::NOP; geometry.dnodes()],
            ports: vec![PortSource::Zero; geometry.switches() * geometry.width() * DNODE_PORTS],
            capture: vec![HostCapture::DISABLED; geometry.switches() * geometry.width()],
        }
    }

    /// Microinstruction of Dnode `dnode`.
    pub fn dnode_instr(&self, dnode: usize) -> MicroInstr {
        self.dnode_instr[dnode]
    }

    /// Source of input `port` (0..4) of the Dnode at (`switch`, `lane`).
    pub fn port(&self, width: usize, switch: usize, lane: usize, port: usize) -> PortSource {
        self.ports[(switch * width + lane) * DNODE_PORTS + port]
    }

    /// Host-capture selector of out-port `port` of `switch`.
    pub fn capture(&self, width: usize, switch: usize, port: usize) -> HostCapture {
        self.capture[switch * width + port]
    }
}

/// The modeled configuration parity of one (context, Dnode) entry: parity
/// of the Dnode's encoded microinstruction XOR its four encoded port
/// words. The ports of flat Dnode `d` sit at `d * 4 ..` because the switch
/// feeding layer `l` carries index `l` (see [`ConfigLayer::set_port`]).
fn entry_parity(context: &Context, dnode: usize) -> bool {
    let mut ones = context.dnode_instr[dnode].encode().count_ones();
    for port in 0..DNODE_PORTS {
        ones += context.ports[dnode * DNODE_PORTS + port]
            .encode()
            .count_ones();
    }
    ones % 2 == 1
}

/// The multi-context configuration memory plus the active-context register.
///
/// Besides the configuration words themselves, the layer keeps a monotonic
/// *write clock* and per-entry epochs recording when each Dnode's
/// configuration (microinstruction or any of its routed input ports) and
/// each context's host-capture table were last written. The predecoded
/// configuration cache compares epochs against the epochs its entries were
/// built at, so a controller write invalidates exactly the touched entries.
/// Epochs are bookkeeping, not architectural state: two layers holding the
/// same configuration compare equal regardless of write history.
#[derive(Clone, Debug)]
pub struct ConfigLayer {
    geometry: RingGeometry,
    pipe_depth: usize,
    contexts: Vec<Context>,
    active: usize,
    /// Context switch staged by the controller, applied at commit.
    staged_active: Option<usize>,
    /// Monotonic write clock: bumped once per configuration write.
    clock: u64,
    /// Per-context, per-Dnode epoch of the last write touching that Dnode's
    /// microinstruction or input routing.
    dnode_epochs: Vec<Vec<u64>>,
    /// Per-context epoch of the last host-capture write.
    capture_epochs: Vec<u64>,
    /// Per-context epoch of the last write of any kind.
    ctx_epochs: Vec<u64>,
    /// Per-(context, Dnode) configuration parity: the expected parity of
    /// the Dnode's stored microinstruction word XOR its four port words.
    /// Legitimate writes keep it in sync; fault-injected corruption
    /// (`corrupt_*`) deliberately does not, which is what
    /// [`ConfigLayer::scrub`] detects. Granularity matches the predecoded
    /// plan cache's per-(context, Dnode) epochs — one scrub group per
    /// cache entry, so a detected corruption invalidates exactly one plan
    /// entry and nothing else.
    parity: Vec<Vec<bool>>,
    /// Per-context count of `corrupt_*` writes since the context last
    /// verified clean. A scrub of a context with a zero count is O(1) —
    /// only corruption can create a mismatch, so the full parity scan
    /// runs only while corruption is actually outstanding. This keeps
    /// the always-armed detection profile effectively free on healthy
    /// machines without changing *when* a mismatch is reported.
    suspect: Vec<u32>,
}

impl PartialEq for ConfigLayer {
    fn eq(&self, other: &Self) -> bool {
        self.geometry == other.geometry
            && self.pipe_depth == other.pipe_depth
            && self.contexts == other.contexts
            && self.active == other.active
            && self.staged_active == other.staged_active
    }
}

impl Eq for ConfigLayer {}

impl ConfigLayer {
    /// A configuration layer of `contexts` all-NOP contexts.
    pub fn new(geometry: RingGeometry, contexts: usize, pipe_depth: usize) -> Self {
        assert!(contexts >= 1, "at least one context is required");
        ConfigLayer {
            geometry,
            pipe_depth,
            contexts: (0..contexts).map(|_| Context::new(geometry)).collect(),
            active: 0,
            staged_active: None,
            clock: 0,
            dnode_epochs: vec![vec![0; geometry.dnodes()]; contexts],
            capture_epochs: vec![0; contexts],
            ctx_epochs: vec![0; contexts],
            parity: {
                let reset = Context::new(geometry);
                let lane = (0..geometry.dnodes())
                    .map(|d| entry_parity(&reset, d))
                    .collect::<Vec<bool>>();
                vec![lane; contexts]
            },
            suspect: vec![0; contexts],
        }
    }

    /// Epoch of the last write of any kind into context `ctx`.
    pub(crate) fn ctx_epoch(&self, ctx: usize) -> u64 {
        self.ctx_epochs[ctx]
    }

    /// Epoch of the last write touching `dnode`'s configuration in `ctx`.
    pub(crate) fn dnode_epoch(&self, ctx: usize, dnode: usize) -> u64 {
        self.dnode_epochs[ctx][dnode]
    }

    /// Epoch of the last host-capture write into context `ctx`.
    pub(crate) fn capture_epoch(&self, ctx: usize) -> u64 {
        self.capture_epochs[ctx]
    }

    /// Bumps the write clock and stamps `ctx` (and `dnode`, when the write
    /// targets one) with the new epoch.
    fn touch(&mut self, ctx: usize, dnode: Option<usize>, capture: bool) {
        self.clock += 1;
        self.ctx_epochs[ctx] = self.clock;
        if let Some(d) = dnode {
            self.dnode_epochs[ctx][d] = self.clock;
        }
        if capture {
            self.capture_epochs[ctx] = self.clock;
        }
    }

    /// Number of contexts.
    pub fn contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Index of the active context.
    pub fn active_index(&self) -> usize {
        self.active
    }

    /// The context id a fault or watchdog report should carry: the staged
    /// select target when a context switch is pending commit (the switch
    /// is architecturally decided at this boundary), else the active
    /// index. Keeps same-cycle deopt + trip reports from naming the stale
    /// pre-switch context.
    pub(crate) fn architectural_ctx(&self) -> usize {
        self.staged_active.unwrap_or(self.active)
    }

    /// The active context.
    pub fn active(&self) -> &Context {
        &self.contexts[self.active]
    }

    /// A context by index.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ContextOutOfRange`] for a bad index.
    pub fn context(&self, ctx: usize) -> Result<&Context, ConfigError> {
        self.contexts
            .get(ctx)
            .ok_or(ConfigError::ContextOutOfRange {
                ctx,
                contexts: self.contexts.len(),
            })
    }

    fn context_mut(&mut self, ctx: usize) -> Result<&mut Context, ConfigError> {
        let contexts = self.contexts.len();
        self.contexts
            .get_mut(ctx)
            .ok_or(ConfigError::ContextOutOfRange { ctx, contexts })
    }

    /// Validates that `source` is routable on this machine.
    pub fn validate_source(&self, source: PortSource) -> Result<(), ConfigError> {
        let g = self.geometry;
        match source {
            PortSource::Zero | PortSource::Bus => Ok(()),
            PortSource::PrevOut { lane } => {
                if (lane as usize) < g.width() {
                    Ok(())
                } else {
                    Err(ConfigError::LaneOutOfRange {
                        lane: lane as usize,
                        width: g.width(),
                    })
                }
            }
            PortSource::Pipe {
                switch,
                stage,
                lane,
            } => {
                if switch as usize >= g.switches() {
                    Err(ConfigError::SwitchOutOfRange {
                        switch: switch as usize,
                        switches: g.switches(),
                    })
                } else if stage as usize >= self.pipe_depth {
                    Err(ConfigError::StageOutOfRange {
                        stage: stage as usize,
                        depth: self.pipe_depth,
                    })
                } else if lane as usize >= g.width() {
                    Err(ConfigError::LaneOutOfRange {
                        lane: lane as usize,
                        width: g.width(),
                    })
                } else {
                    Ok(())
                }
            }
            PortSource::HostIn { port } => {
                let ports = 2 * g.width();
                if (port as usize) < ports {
                    Ok(())
                } else {
                    Err(ConfigError::HostPortOutOfRange {
                        port: port as usize,
                        ports,
                    })
                }
            }
        }
    }

    /// Sets the microinstruction of `dnode` in context `ctx`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices.
    pub fn set_dnode_instr(
        &mut self,
        ctx: usize,
        dnode: usize,
        instr: MicroInstr,
    ) -> Result<(), ConfigError> {
        let dnodes = self.geometry.dnodes();
        if dnode >= dnodes {
            return Err(ConfigError::DnodeOutOfRange { dnode, dnodes });
        }
        self.context_mut(ctx)?.dnode_instr[dnode] = instr;
        self.touch(ctx, Some(dnode), false);
        self.refresh_parity(ctx, dnode);
        Ok(())
    }

    /// Sets input `port` (0..4) of the Dnode at (`switch`, `lane`) in
    /// context `ctx`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices or an unroutable
    /// source.
    pub fn set_port(
        &mut self,
        ctx: usize,
        switch: usize,
        lane: usize,
        port: usize,
        source: PortSource,
    ) -> Result<(), ConfigError> {
        let g = self.geometry;
        if switch >= g.switches() {
            return Err(ConfigError::SwitchOutOfRange {
                switch,
                switches: g.switches(),
            });
        }
        if lane >= g.width() {
            return Err(ConfigError::LaneOutOfRange {
                lane,
                width: g.width(),
            });
        }
        if port >= DNODE_PORTS {
            return Err(ConfigError::PortOutOfRange { port });
        }
        self.validate_source(source)?;
        let width = g.width();
        self.context_mut(ctx)?.ports[(switch * width + lane) * DNODE_PORTS + port] = source;
        // The ports of (switch, lane) feed the Dnode at (layer = switch,
        // lane): a switch's downstream layer carries its own index.
        self.touch(ctx, Some(switch * width + lane), false);
        self.refresh_parity(ctx, switch * width + lane);
        Ok(())
    }

    /// Sets input `port` by flat port index (`(switch * width + lane) * 4 +
    /// port`), the controller's `wsw` addressing.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices or an unroutable
    /// source.
    pub fn set_port_flat(
        &mut self,
        ctx: usize,
        flat: usize,
        source: PortSource,
    ) -> Result<(), ConfigError> {
        let width = self.geometry.width();
        let port = flat % DNODE_PORTS;
        let lane = (flat / DNODE_PORTS) % width;
        let switch = flat / (DNODE_PORTS * width);
        self.set_port(ctx, switch, lane, port, source)
    }

    /// Sets the host-capture selector of out-port `port` of `switch` in
    /// context `ctx`. A switch has `width` host-output ports.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices or a captured lane
    /// outside the layer width.
    pub fn set_capture(
        &mut self,
        ctx: usize,
        switch: usize,
        port: usize,
        capture: HostCapture,
    ) -> Result<(), ConfigError> {
        let g = self.geometry;
        if switch >= g.switches() {
            return Err(ConfigError::SwitchOutOfRange {
                switch,
                switches: g.switches(),
            });
        }
        if port >= g.width() {
            return Err(ConfigError::HostPortOutOfRange {
                port,
                ports: g.width(),
            });
        }
        if let Some(lane) = capture.selected() {
            if lane as usize >= g.width() {
                return Err(ConfigError::LaneOutOfRange {
                    lane: lane as usize,
                    width: g.width(),
                });
            }
        }
        let width = g.width();
        self.context_mut(ctx)?.capture[switch * width + port] = capture;
        self.touch(ctx, None, true);
        Ok(())
    }

    /// Immediately selects the active context (programmatic setup).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ContextOutOfRange`] for a bad index.
    pub fn select(&mut self, ctx: usize) -> Result<(), ConfigError> {
        if ctx >= self.contexts.len() {
            return Err(ConfigError::ContextOutOfRange {
                ctx,
                contexts: self.contexts.len(),
            });
        }
        self.active = ctx;
        Ok(())
    }

    /// Stages a context switch that takes effect at the next commit (the
    /// controller's `ctx` instruction semantics).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::ContextOutOfRange`] for a bad index.
    pub fn stage_select(&mut self, ctx: usize) -> Result<(), ConfigError> {
        if ctx >= self.contexts.len() {
            return Err(ConfigError::ContextOutOfRange {
                ctx,
                contexts: self.contexts.len(),
            });
        }
        self.staged_active = Some(ctx);
        Ok(())
    }

    /// `true` while a context switch is staged but not yet committed; the
    /// fused engine refuses to enter a burst in that state (the decoded
    /// path commits the switch at the next cycle boundary).
    pub(crate) fn select_pending(&self) -> bool {
        self.staged_active.is_some()
    }

    /// Applies a staged context switch, if any. Returns `true` if the
    /// active context changed.
    pub fn commit(&mut self) -> bool {
        match self.staged_active.take() {
            Some(ctx) if ctx != self.active => {
                self.active = ctx;
                true
            }
            Some(_) => false,
            None => false,
        }
    }

    /// Recomputes the stored parity of one (context, Dnode) entry,
    /// accepting its current content as ground truth.
    pub(crate) fn refresh_parity(&mut self, ctx: usize, dnode: usize) {
        self.parity[ctx][dnode] = entry_parity(&self.contexts[ctx], dnode);
    }

    /// Recomputes every stored parity bit (used after a remap, and by
    /// [`crate::RingMachine::acknowledge_faults`] to accept a corrupted
    /// configuration as the new ground truth).
    pub(crate) fn refresh_all_parity(&mut self) {
        for ctx in 0..self.contexts.len() {
            for dnode in 0..self.geometry.dnodes() {
                self.refresh_parity(ctx, dnode);
            }
            self.suspect[ctx] = 0;
        }
    }

    /// Fault-injection entry point: overwrites a stored microinstruction
    /// *without* refreshing the entry's parity. Bumps the same write
    /// epochs as a legitimate write, so the predecoded plan cache
    /// re-decodes the corrupted entry — the plan epochs double as scrub
    /// points.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices.
    pub(crate) fn corrupt_dnode_instr(
        &mut self,
        ctx: usize,
        dnode: usize,
        instr: MicroInstr,
    ) -> Result<(), ConfigError> {
        let dnodes = self.geometry.dnodes();
        if dnode >= dnodes {
            return Err(ConfigError::DnodeOutOfRange { dnode, dnodes });
        }
        self.context_mut(ctx)?.dnode_instr[dnode] = instr;
        self.suspect[ctx] = self.suspect[ctx].saturating_add(1);
        self.touch(ctx, Some(dnode), false);
        Ok(())
    }

    /// Fault-injection entry point: overwrites a stored port source
    /// *without* refreshing the entry's parity (see
    /// [`ConfigLayer::corrupt_dnode_instr`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices or an unroutable
    /// source.
    pub(crate) fn corrupt_port(
        &mut self,
        ctx: usize,
        switch: usize,
        lane: usize,
        port: usize,
        source: PortSource,
    ) -> Result<(), ConfigError> {
        let g = self.geometry;
        if switch >= g.switches() {
            return Err(ConfigError::SwitchOutOfRange {
                switch,
                switches: g.switches(),
            });
        }
        if lane >= g.width() {
            return Err(ConfigError::LaneOutOfRange {
                lane,
                width: g.width(),
            });
        }
        if port >= DNODE_PORTS {
            return Err(ConfigError::PortOutOfRange { port });
        }
        self.validate_source(source)?;
        let width = g.width();
        self.context_mut(ctx)?.ports[(switch * width + lane) * DNODE_PORTS + port] = source;
        self.suspect[ctx] = self.suspect[ctx].saturating_add(1);
        self.touch(ctx, Some(switch * width + lane), false);
        Ok(())
    }

    /// Parity-checks every Dnode entry of context `ctx`, returning the
    /// first Dnode whose configuration no longer matches its stored
    /// parity, if any.
    ///
    /// Only `corrupt_*` writes can create a mismatch (legitimate writes
    /// refresh parity in the same call), so the scan short-circuits to
    /// O(1) while the context has no outstanding corruption; a scan that
    /// comes back clean re-arms the short-circuit.
    pub fn scrub(&mut self, ctx: usize) -> Option<usize> {
        if self.suspect[ctx] == 0 {
            return None;
        }
        let context = &self.contexts[ctx];
        let hit =
            (0..self.geometry.dnodes()).find(|&d| entry_parity(context, d) != self.parity[ctx][d]);
        if hit.is_none() {
            self.suspect[ctx] = 0;
        }
        hit
    }

    /// Swaps the configuration roles of two same-layer Dnodes across
    /// every context: their microinstructions and input-port blocks trade
    /// places, and every reference to their *outputs* (forward `PrevOut`
    /// routes, feedback `Pipe` routes and host-capture selectors of the
    /// layer's downstream switch) is rewritten to follow the swap. Used by
    /// [`crate::RingMachine::remap_dnode`] to retire a faulty Dnode onto a
    /// spare.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::DnodeOutOfRange`] for bad indices and
    /// [`ConfigError::RemapLayerMismatch`] if the Dnodes sit in different
    /// layers.
    pub(crate) fn remap_dnodes(&mut self, from: usize, to: usize) -> Result<(), ConfigError> {
        let g = self.geometry;
        let dnodes = g.dnodes();
        for d in [from, to] {
            if d >= dnodes {
                return Err(ConfigError::DnodeOutOfRange { dnode: d, dnodes });
            }
        }
        let (layer, lane_from) = g.dnode_position(from);
        let (layer_to, lane_to) = g.dnode_position(to);
        if layer != layer_to {
            return Err(ConfigError::RemapLayerMismatch { from, to });
        }
        if from == to {
            return Ok(());
        }
        let width = g.width();
        let swap_lane = |lane: usize| {
            if lane == lane_from {
                Some(lane_to)
            } else if lane == lane_to {
                Some(lane_from)
            } else {
                None
            }
        };
        // The switch whose pipeline and captures carry this layer's
        // outputs is the layer's downstream neighbour.
        let downstream = (layer + 1) % g.layers();
        for context in &mut self.contexts {
            context.dnode_instr.swap(from, to);
            for port in 0..DNODE_PORTS {
                context
                    .ports
                    .swap(from * DNODE_PORTS + port, to * DNODE_PORTS + port);
            }
            for (flat, source) in context.ports.iter_mut().enumerate() {
                let owner = flat / (DNODE_PORTS * width);
                match *source {
                    PortSource::PrevOut { lane } if g.upstream_layer(owner) == layer => {
                        if let Some(swapped) = swap_lane(lane as usize) {
                            *source = PortSource::PrevOut {
                                lane: swapped as u8,
                            };
                        }
                    }
                    PortSource::Pipe {
                        switch,
                        stage,
                        lane,
                    } if g.upstream_layer(switch as usize) == layer => {
                        if let Some(swapped) = swap_lane(lane as usize) {
                            *source = PortSource::Pipe {
                                switch,
                                stage,
                                lane: swapped as u8,
                            };
                        }
                    }
                    _ => {}
                }
            }
            for port in 0..width {
                let idx = downstream * width + port;
                if let Some(lane) = context.capture[idx].selected() {
                    if let Some(swapped) = swap_lane(lane as usize) {
                        context.capture[idx] = HostCapture::lane(swapped as u8);
                    }
                }
            }
        }
        // Every context's routing may have changed: bump every epoch and
        // re-baseline every parity bit.
        for ctx in 0..self.contexts.len() {
            for dnode in 0..dnodes {
                self.touch(ctx, Some(dnode), true);
            }
        }
        self.refresh_all_parity();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ring_isa::dnode::{AluOp, Operand};

    fn layer() -> ConfigLayer {
        ConfigLayer::new(RingGeometry::RING_8, 2, 8)
    }

    #[test]
    fn reset_state_is_all_nops() {
        let cfg = layer();
        assert_eq!(cfg.contexts(), 2);
        assert_eq!(cfg.active_index(), 0);
        assert_eq!(cfg.active().dnode_instr(0), MicroInstr::NOP);
        assert_eq!(cfg.active().port(2, 0, 0, 0), PortSource::Zero);
        assert_eq!(cfg.active().capture(2, 0, 0), HostCapture::DISABLED);
        assert_eq!(cfg.active().capture(2, 3, 1), HostCapture::DISABLED);
    }

    #[test]
    fn writes_land_in_the_right_context() {
        let mut cfg = layer();
        let instr = MicroInstr::op(AluOp::Add, Operand::In1, Operand::In2);
        cfg.set_dnode_instr(1, 3, instr).unwrap();
        assert_eq!(cfg.context(0).unwrap().dnode_instr(3), MicroInstr::NOP);
        assert_eq!(cfg.context(1).unwrap().dnode_instr(3), instr);
    }

    #[test]
    fn rejects_out_of_range_writes() {
        let mut cfg = layer();
        assert!(matches!(
            cfg.set_dnode_instr(2, 0, MicroInstr::NOP),
            Err(ConfigError::ContextOutOfRange { .. })
        ));
        assert!(matches!(
            cfg.set_dnode_instr(0, 8, MicroInstr::NOP),
            Err(ConfigError::DnodeOutOfRange { .. })
        ));
        assert!(matches!(
            cfg.set_port(0, 4, 0, 0, PortSource::Zero),
            Err(ConfigError::SwitchOutOfRange { .. })
        ));
        assert!(matches!(
            cfg.set_port(0, 0, 2, 0, PortSource::Zero),
            Err(ConfigError::LaneOutOfRange { .. })
        ));
        assert!(matches!(
            cfg.set_port(0, 0, 0, 4, PortSource::Zero),
            Err(ConfigError::PortOutOfRange { .. })
        ));
    }

    #[test]
    fn validates_sources() {
        let cfg = layer();
        assert!(cfg.validate_source(PortSource::PrevOut { lane: 1 }).is_ok());
        assert!(matches!(
            cfg.validate_source(PortSource::PrevOut { lane: 2 }),
            Err(ConfigError::LaneOutOfRange { .. })
        ));
        assert!(cfg
            .validate_source(PortSource::Pipe {
                switch: 3,
                stage: 7,
                lane: 1
            })
            .is_ok());
        assert!(matches!(
            cfg.validate_source(PortSource::Pipe {
                switch: 4,
                stage: 0,
                lane: 0
            }),
            Err(ConfigError::SwitchOutOfRange { .. })
        ));
        assert!(matches!(
            cfg.validate_source(PortSource::Pipe {
                switch: 0,
                stage: 8,
                lane: 0
            }),
            Err(ConfigError::StageOutOfRange { .. })
        ));
        assert!(cfg.validate_source(PortSource::HostIn { port: 3 }).is_ok());
        assert!(matches!(
            cfg.validate_source(PortSource::HostIn { port: 4 }),
            Err(ConfigError::HostPortOutOfRange { .. })
        ));
    }

    #[test]
    fn flat_port_addressing_matches_structured() {
        let mut cfg = layer();
        let src = PortSource::PrevOut { lane: 1 };
        // Ring-8: width 2. switch 1, lane 1, port 2 -> flat (1*2+1)*4+2 = 14.
        cfg.set_port_flat(0, 14, src).unwrap();
        assert_eq!(cfg.context(0).unwrap().port(2, 1, 1, 2), src);
    }

    #[test]
    fn capture_validation() {
        let mut cfg = layer();
        assert!(cfg.set_capture(0, 0, 0, HostCapture::lane(1)).is_ok());
        assert!(cfg.set_capture(0, 0, 1, HostCapture::lane(0)).is_ok());
        assert_eq!(cfg.active().capture(2, 0, 1), HostCapture::lane(0));
        assert!(matches!(
            cfg.set_capture(0, 0, 0, HostCapture::lane(2)),
            Err(ConfigError::LaneOutOfRange { .. })
        ));
        assert!(matches!(
            cfg.set_capture(0, 0, 2, HostCapture::DISABLED),
            Err(ConfigError::HostPortOutOfRange { .. })
        ));
        assert!(matches!(
            cfg.set_capture(0, 4, 0, HostCapture::DISABLED),
            Err(ConfigError::SwitchOutOfRange { .. })
        ));
    }

    #[test]
    fn staged_context_switch_applies_at_commit() {
        let mut cfg = layer();
        cfg.stage_select(1).unwrap();
        assert_eq!(cfg.active_index(), 0);
        assert!(cfg.commit());
        assert_eq!(cfg.active_index(), 1);
        // Re-selecting the same context is not a switch.
        cfg.stage_select(1).unwrap();
        assert!(!cfg.commit());
        assert!(cfg.stage_select(2).is_err());
    }

    #[test]
    fn immediate_select() {
        let mut cfg = layer();
        cfg.select(1).unwrap();
        assert_eq!(cfg.active_index(), 1);
        assert!(cfg.select(5).is_err());
    }
}
