//! The predecoded configuration cache behind [`crate::RingMachine`]'s fast
//! execution path.
//!
//! The configuration layer stores decoded microinstructions and port
//! sources, but the reference stepper still pays a per-cycle tax the
//! hardware never would: it allocates per-cycle scratch vectors, resolves
//! every operand through a two-level `Operand` → `PortSource` match, and
//! processes every Dnode — including the all-NOP idle ones — on every
//! cycle. This module decodes each distinct configuration *once* into
//! dense, fully pre-resolved [`DecodedOp`]s:
//!
//! * every operand collapses to a [`FastSrc`] — a constant, a register, a
//!   flat upstream-output index, a `(switch, stage, lane)` pipeline tap or
//!   a `(switch, port)` host FIFO — so execution is one match away from
//!   the value;
//! * the per-context work list holds only the Dnodes that can have an
//!   architectural effect (plus every local-mode Dnode, whose sequencer
//!   must advance), in ascending flat order so bus-arbitration priority is
//!   preserved;
//! * the host-capture crossbar is flattened to a `(switch, port,
//!   source-Dnode)` list in commit order;
//! * local-mode loops are unrolled: all eight sequencer slots of a
//!   local-mode Dnode are decoded against the active context's routing, so
//!   the counter indexes straight into a plan array.
//!
//! Plans are keyed per context and validated against the monotonic write
//! epochs kept by [`ConfigLayer`] (see its docs), plus machine-level
//! clocks for mode flips and local-sequencer writes; a controller write
//! invalidates exactly the touched entries. The reference path never
//! consults this module, which is what makes it a differential oracle for
//! the fast path.

use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg, LOCAL_SLOTS};
use systolic_ring_isa::switch::PortSource;
use systolic_ring_isa::{RingGeometry, Word16};

use crate::config::{ConfigLayer, Context};
use crate::dnode::DnodeState;

/// A fully pre-resolved operand source: one match from a value.
#[derive(Clone, Copy, Debug)]
pub(crate) enum FastSrc {
    /// A compile-time constant (`Zero`, `One`, the immediate, or a port
    /// routed from `PortSource::Zero`).
    Const(Word16),
    /// The executing Dnode's own register.
    Reg(Reg),
    /// The shared bus.
    Bus,
    /// The registered output of the Dnode at this flat index.
    Out(usize),
    /// A feedback-pipeline tap.
    Pipe {
        /// Switch owning the pipeline.
        switch: usize,
        /// Stage (0 = newest capture).
        stage: usize,
        /// Lane within the stage.
        lane: usize,
    },
    /// A host-input FIFO head (consuming: the head is popped at commit).
    HostIn {
        /// Switch owning the FIFO.
        switch: usize,
        /// Host-input port on that switch.
        port: usize,
    },
}

/// One Dnode's fully decoded work for one configuration word.
#[derive(Clone, Copy, Debug)]
pub(crate) struct DecodedOp {
    pub(crate) alu: AluOp,
    pub(crate) a: FastSrc,
    pub(crate) b: FastSrc,
    /// Accumulator register, pre-gated on `alu.uses_accumulator()`.
    pub(crate) acc: Option<Reg>,
    pub(crate) wr_reg: Option<Reg>,
    pub(crate) wr_out: bool,
    pub(crate) wr_bus: bool,
    /// `alu != Nop`: counts toward activity statistics.
    pub(crate) active: bool,
    pub(crate) mult: bool,
    /// No architectural effect at all: not active, writes nothing, and
    /// consumes no host FIFO word. Skippable without observable difference.
    pub(crate) skip: bool,
}

impl DecodedOp {
    /// Decodes `instr` as executed by the Dnode at (`layer`, `lane`) under
    /// context `ctx`'s routing.
    fn decode(
        instr: &MicroInstr,
        layer: usize,
        lane: usize,
        ctx: &Context,
        g: RingGeometry,
    ) -> DecodedOp {
        let a = fast_operand(instr.src_a, instr, layer, lane, ctx, g);
        let b = fast_operand(instr.src_b, instr, layer, lane, ctx, g);
        let active = instr.alu != AluOp::Nop;
        // A Dnode whose operands tap a host FIFO pops (and may underflow)
        // that FIFO even if the result goes nowhere — it cannot be skipped.
        let consumes = matches!(a, FastSrc::HostIn { .. }) || matches!(b, FastSrc::HostIn { .. });
        let work = active || instr.wr_reg.is_some() || instr.wr_out || instr.wr_bus;
        DecodedOp {
            alu: instr.alu,
            a,
            b,
            acc: instr.wr_reg.filter(|_| instr.alu.uses_accumulator()),
            wr_reg: instr.wr_reg,
            wr_out: instr.wr_out,
            wr_bus: instr.wr_bus,
            active,
            mult: instr.alu.uses_multiplier(),
            skip: !work && !consumes,
        }
    }
}

/// Resolves an operand of the Dnode at (`layer`, `lane`) to a [`FastSrc`].
fn fast_operand(
    operand: Operand,
    instr: &MicroInstr,
    layer: usize,
    lane: usize,
    ctx: &Context,
    g: RingGeometry,
) -> FastSrc {
    let port = |p: usize| fast_source(ctx.port(g.width(), layer, lane, p), layer, g);
    match operand {
        Operand::Reg(reg) => FastSrc::Reg(reg),
        Operand::In1 => port(0),
        Operand::In2 => port(1),
        Operand::Fifo1 => port(2),
        Operand::Fifo2 => port(3),
        Operand::Bus => FastSrc::Bus,
        Operand::Imm => FastSrc::Const(instr.imm),
        Operand::Zero => FastSrc::Const(Word16::ZERO),
        Operand::One => FastSrc::Const(Word16::ONE),
    }
}

/// Resolves a routed port source read through switch `switch` (the reading
/// Dnode's layer index) to a [`FastSrc`].
fn fast_source(source: PortSource, switch: usize, g: RingGeometry) -> FastSrc {
    match source {
        PortSource::Zero => FastSrc::Const(Word16::ZERO),
        PortSource::Bus => FastSrc::Bus,
        PortSource::PrevOut { lane } => {
            FastSrc::Out(g.dnode_index(g.upstream_layer(switch), lane as usize))
        }
        PortSource::Pipe {
            switch: pipe_switch,
            stage,
            lane,
        } => FastSrc::Pipe {
            switch: pipe_switch as usize,
            stage: stage as usize,
            lane: lane as usize,
        },
        PortSource::HostIn { port } => FastSrc::HostIn {
            switch,
            port: port as usize,
        },
    }
}

/// The unrolled local-mode loop of one Dnode: all eight sequencer slots
/// decoded against one context's routing.
#[derive(Clone, Debug)]
pub(crate) struct LocalPlan {
    pub(crate) ops: [DecodedOp; LOCAL_SLOTS],
    /// Value of the machine's per-Dnode sequencer-write epoch at build.
    seq_epoch: u64,
}

/// One host capture: out-port `port` of `switch` stores the output of the
/// Dnode at flat index `src`.
#[derive(Clone, Copy, Debug)]
pub(crate) struct CapturePlan {
    pub(crate) switch: usize,
    pub(crate) port: usize,
    pub(crate) src: usize,
}

/// The decoded plan for one configuration context.
#[derive(Clone, Debug)]
pub(crate) struct CtxPlan {
    /// `false` until the context is first executed (full build on demand).
    built: bool,
    /// Context write epoch at the last invalidation sweep.
    cfg_epoch: u64,
    /// Capture-table write epoch the capture plan was built at.
    capture_epoch: u64,
    /// Machine mode clock the work list was built at.
    modes_clock: u64,
    /// Per-Dnode decoded global-mode op.
    pub(crate) ops: Vec<DecodedOp>,
    /// Per-Dnode configuration epoch each op was decoded at.
    op_epochs: Vec<u64>,
    /// Per-Dnode unrolled local loops (built only for local-mode Dnodes).
    pub(crate) local: Vec<Option<LocalPlan>>,
    /// Flat indices of the Dnodes to process, ascending (bus priority).
    pub(crate) work: Vec<u32>,
    /// Enabled host captures in commit order.
    pub(crate) captures: Vec<CapturePlan>,
}

impl CtxPlan {
    fn new(dnodes: usize) -> Self {
        let nop = DecodedOp {
            alu: AluOp::Nop,
            a: FastSrc::Const(Word16::ZERO),
            b: FastSrc::Const(Word16::ZERO),
            acc: None,
            wr_reg: None,
            wr_out: false,
            wr_bus: false,
            active: false,
            mult: false,
            skip: true,
        };
        CtxPlan {
            built: false,
            cfg_epoch: 0,
            capture_epoch: 0,
            modes_clock: 0,
            ops: vec![nop; dnodes],
            op_epochs: vec![0; dnodes],
            local: vec![None; dnodes],
            work: Vec::new(),
            captures: Vec::new(),
        }
    }

    fn rebuild_captures(&mut self, ctx: &Context, g: RingGeometry) {
        self.captures.clear();
        let width = g.width();
        for s in 0..g.switches() {
            let layer = g.upstream_layer(s);
            for port in 0..width {
                if let Some(lane) = ctx.capture(width, s, port).selected() {
                    self.captures.push(CapturePlan {
                        switch: s,
                        port,
                        src: g.dnode_index(layer, lane as usize),
                    });
                }
            }
        }
    }
}

/// A staged Dnode result awaiting the commit phase.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StagedWrite {
    pub(crate) dnode: u32,
    pub(crate) result: Word16,
    pub(crate) wr_reg: Option<Reg>,
    pub(crate) wr_out: bool,
    pub(crate) active: bool,
    pub(crate) mult: bool,
}

/// Reusable per-cycle scratch buffers (the allocations the reference path
/// performs every cycle, hoisted out of the loop).
#[derive(Clone, Debug, Default)]
pub(crate) struct Scratch {
    /// Host-input FIFOs read this cycle, flat-indexed
    /// `switch * stride + port`.
    pub(crate) hostin_read: Vec<bool>,
    /// Flat indices set in `hostin_read` this cycle (for O(reads) clear
    /// and the commit-phase pops).
    pub(crate) hostin_touched: Vec<u32>,
    /// Host-input ports per switch (`2 * width`).
    pub(crate) hostin_stride: usize,
    /// Results staged during the compute phase, in work-list order.
    pub(crate) staged: Vec<StagedWrite>,
}

impl Scratch {
    /// Clears the per-cycle state (O(previous cycle's usage)).
    pub(crate) fn begin(&mut self) {
        for &flat in &self.hostin_touched {
            self.hostin_read[flat as usize] = false;
        }
        self.hostin_touched.clear();
        self.staged.clear();
    }

    /// Marks a host-input FIFO as read this cycle; returns `true` the first
    /// time `(switch, port)` is marked.
    pub(crate) fn mark_hostin(&mut self, switch: usize, port: usize) {
        let flat = switch * self.hostin_stride + port;
        if !self.hostin_read[flat] {
            self.hostin_read[flat] = true;
            self.hostin_touched.push(flat as u32);
        }
    }
}

/// The machine-wide predecoded configuration cache: one [`CtxPlan`] per
/// context plus the invalidation clocks and per-cycle scratch.
#[derive(Clone, Debug, Default)]
pub(crate) struct DecodedPlan {
    contexts: Vec<CtxPlan>,
    /// Bumped whenever any Dnode's execution mode changes (work lists
    /// depend on which Dnodes are in local mode).
    modes_clock: u64,
    /// Monotonic clock of local-sequencer slot writes.
    seq_clock: u64,
    /// Per-Dnode epoch of the last local-sequencer slot write.
    seq_epochs: Vec<u64>,
    pub(crate) scratch: Scratch,
}

impl DecodedPlan {
    /// An empty (everything-unbuilt) plan for `contexts` contexts.
    pub(crate) fn new(g: RingGeometry, contexts: usize) -> Self {
        let n = g.dnodes();
        DecodedPlan {
            contexts: (0..contexts).map(|_| CtxPlan::new(n)).collect(),
            modes_clock: 0,
            seq_clock: 0,
            seq_epochs: vec![0; n],
            scratch: Scratch {
                hostin_read: vec![false; g.switches() * 2 * g.width()],
                hostin_touched: Vec::new(),
                hostin_stride: 2 * g.width(),
                staged: Vec::with_capacity(n),
            },
        }
    }

    /// Notes that some Dnode's execution mode changed.
    pub(crate) fn note_mode_write(&mut self) {
        self.modes_clock += 1;
    }

    /// Notes a write into `dnode`'s local-sequencer slots.
    pub(crate) fn note_seq_write(&mut self, dnode: usize) {
        self.seq_clock += 1;
        if let Some(epoch) = self.seq_epochs.get_mut(dnode) {
            *epoch = self.seq_clock;
        }
    }

    /// Split-borrows the plan for context `ctx` and the scratch buffers.
    pub(crate) fn parts(&mut self, ctx: usize) -> (&CtxPlan, &mut Scratch) {
        (&self.contexts[ctx], &mut self.scratch)
    }

    /// The plan for context `ctx` (must be refreshed first).
    pub(crate) fn context_plan(&self, ctx: usize) -> &CtxPlan {
        &self.contexts[ctx]
    }

    /// The machine-level invalidation clocks `(modes, sequencer)` — part of
    /// the configuration-epoch fingerprint the fused engine stamps its
    /// compiled programs with.
    pub(crate) fn clocks(&self) -> (u64, u64) {
        (self.modes_clock, self.seq_clock)
    }

    /// Brings context `ctx`'s plan up to date against the configuration
    /// layer's write epochs and the machine's mode/sequencer clocks.
    /// Returns the number of entries (re)built — 0 on a clean cache hit.
    pub(crate) fn refresh(
        &mut self,
        ctx: usize,
        config: &ConfigLayer,
        dnodes: &[DnodeState],
        g: RingGeometry,
    ) -> u64 {
        let cp = &mut self.contexts[ctx];
        let cctx = config.context(ctx).expect("active context in range");
        let mut misses = 0u64;
        let mut work_dirty = false;

        if !cp.built {
            for layer in 0..g.layers() {
                for lane in 0..g.width() {
                    let d = g.dnode_index(layer, lane);
                    cp.ops[d] = DecodedOp::decode(&cctx.dnode_instr(d), layer, lane, cctx, g);
                    cp.op_epochs[d] = config.dnode_epoch(ctx, d);
                    misses += 1;
                }
            }
            cp.rebuild_captures(cctx, g);
            misses += 1;
            cp.capture_epoch = config.capture_epoch(ctx);
            cp.cfg_epoch = config.ctx_epoch(ctx);
            cp.built = true;
            work_dirty = true;
        } else if config.ctx_epoch(ctx) != cp.cfg_epoch {
            for layer in 0..g.layers() {
                for lane in 0..g.width() {
                    let d = g.dnode_index(layer, lane);
                    let epoch = config.dnode_epoch(ctx, d);
                    if epoch != cp.op_epochs[d] {
                        cp.ops[d] = DecodedOp::decode(&cctx.dnode_instr(d), layer, lane, cctx, g);
                        cp.op_epochs[d] = epoch;
                        // Port routing feeds the local unroll too.
                        cp.local[d] = None;
                        misses += 1;
                        work_dirty = true;
                    }
                }
            }
            if config.capture_epoch(ctx) != cp.capture_epoch {
                cp.rebuild_captures(cctx, g);
                cp.capture_epoch = config.capture_epoch(ctx);
                misses += 1;
            }
            cp.cfg_epoch = config.ctx_epoch(ctx);
        }

        if cp.modes_clock != self.modes_clock {
            cp.modes_clock = self.modes_clock;
            work_dirty = true;
        }

        if work_dirty {
            cp.work.clear();
            for layer in 0..g.layers() {
                for lane in 0..g.width() {
                    let d = g.dnode_index(layer, lane);
                    if dnodes[d].mode() == DnodeMode::Local || !cp.ops[d].skip {
                        cp.work.push(d as u32);
                    }
                }
            }
            misses += 1;
        }

        // Unrolled local loops for the local-mode Dnodes on the work list.
        for i in 0..cp.work.len() {
            let d = cp.work[i] as usize;
            if dnodes[d].mode() != DnodeMode::Local {
                continue;
            }
            let fresh = matches!(&cp.local[d], Some(lp) if lp.seq_epoch == self.seq_epochs[d]);
            if !fresh {
                let (layer, lane) = g.dnode_position(d);
                let seq = dnodes[d].sequencer();
                cp.local[d] = Some(LocalPlan {
                    ops: std::array::from_fn(|s| {
                        DecodedOp::decode(&seq.slot(s), layer, lane, cctx, g)
                    }),
                    seq_epoch: self.seq_epochs[d],
                });
                misses += 1;
            }
        }

        misses
    }
}
