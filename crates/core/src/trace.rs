//! Waveform tracing: the simulator's logic analyzer.
//!
//! The paper debugged the APEX prototype with a logic analyzer (Figure 6).
//! [`Tracer`] plays that role for the simulator: it samples selected
//! machine signals every cycle and renders them either as a text waveform
//! or as an industry-standard **VCD** (Value Change Dump) file loadable in
//! GTKWave & friends.
//!
//! # Examples
//!
//! ```
//! use systolic_ring_core::trace::{Signal, Tracer};
//! use systolic_ring_core::RingMachine;
//! use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand, Reg};
//! use systolic_ring_isa::RingGeometry;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
//! m.configure().set_dnode_instr(
//!     0,
//!     0,
//!     MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::One)
//!         .write_reg(Reg::R0)
//!         .write_out(),
//! )?;
//! let mut tracer = Tracer::new([Signal::DnodeOut { dnode: 0 }, Signal::Bus]);
//! for _ in 0..4 {
//!     tracer.sample(&m);
//!     m.step()?;
//! }
//! tracer.sample(&m);
//! let vcd = tracer.to_vcd();
//! assert!(vcd.contains("$enddefinitions"));
//! # Ok(())
//! # }
//! ```

use std::fmt::Write as _;

use systolic_ring_isa::dnode::Reg;

use crate::machine::RingMachine;

/// A traceable machine signal.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Signal {
    /// A Dnode's registered output.
    DnodeOut {
        /// Flat Dnode index.
        dnode: usize,
    },
    /// A Dnode register.
    DnodeReg {
        /// Flat Dnode index.
        dnode: usize,
        /// Which register.
        reg: Reg,
    },
    /// The shared bus.
    Bus,
    /// The controller's program counter.
    CtrlPc,
    /// The active configuration context.
    ActiveCtx,
}

impl Signal {
    /// The VCD/waveform display name.
    pub fn name(&self) -> String {
        match self {
            Signal::DnodeOut { dnode } => format!("d{dnode}_out"),
            Signal::DnodeReg { dnode, reg } => format!("d{dnode}_{reg}"),
            Signal::Bus => "bus".to_owned(),
            Signal::CtrlPc => "ctrl_pc".to_owned(),
            Signal::ActiveCtx => "active_ctx".to_owned(),
        }
    }

    fn read(&self, machine: &RingMachine) -> u32 {
        match self {
            Signal::DnodeOut { dnode } => machine.dnode(*dnode).out().bits() as u32,
            Signal::DnodeReg { dnode, reg } => machine.dnode(*dnode).reg(*reg).bits() as u32,
            Signal::Bus => machine.bus().bits() as u32,
            Signal::CtrlPc => machine.controller().pc(),
            Signal::ActiveCtx => machine.config().active_index() as u32,
        }
    }

    fn width(&self) -> usize {
        match self {
            Signal::CtrlPc => 32,
            _ => 16,
        }
    }
}

/// A cycle-sampling tracer over a fixed signal set.
#[derive(Clone, Debug)]
pub struct Tracer {
    signals: Vec<Signal>,
    /// One sample vector per call to [`Tracer::sample`].
    samples: Vec<Vec<u32>>,
    /// Cycle numbers of the samples.
    cycles: Vec<u64>,
}

impl Tracer {
    /// A tracer for the given signals.
    pub fn new(signals: impl IntoIterator<Item = Signal>) -> Self {
        Tracer {
            signals: signals.into_iter().collect(),
            samples: Vec::new(),
            cycles: Vec::new(),
        }
    }

    /// Number of samples captured.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// `true` before the first sample.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Samples all signals at the machine's current cycle.
    pub fn sample(&mut self, machine: &RingMachine) {
        self.cycles.push(machine.cycle());
        self.samples
            .push(self.signals.iter().map(|s| s.read(machine)).collect());
    }

    /// Steps the machine `cycles` times, sampling before every step and
    /// once at the end.
    ///
    /// # Errors
    ///
    /// Returns the machine's [`crate::SimError`] on a fault.
    pub fn run(&mut self, machine: &mut RingMachine, cycles: u64) -> Result<(), crate::SimError> {
        for _ in 0..cycles {
            self.sample(machine);
            machine.step()?;
        }
        self.sample(machine);
        Ok(())
    }

    /// The sampled values of one signal in cycle order.
    pub fn series(&self, signal: Signal) -> Option<Vec<u32>> {
        let idx = self.signals.iter().position(|s| *s == signal)?;
        Some(self.samples.iter().map(|row| row[idx]).collect())
    }

    /// Renders a compact text waveform (one line per signal, one column
    /// per sample, hexadecimal values).
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{:>10} |", "cycle");
        for cycle in &self.cycles {
            let _ = write!(out, " {cycle:>5}");
        }
        out.push('\n');
        for (i, signal) in self.signals.iter().enumerate() {
            let _ = write!(out, "{:>10} |", signal.name());
            for row in &self.samples {
                let _ = write!(out, " {:>5x}", row[i]);
            }
            out.push('\n');
        }
        out
    }

    /// Renders a VCD (Value Change Dump) document of all samples.
    ///
    /// One VCD time unit is one clock cycle.
    pub fn to_vcd(&self) -> String {
        let mut out = String::new();
        out.push_str("$date systolic-ring simulation $end\n");
        out.push_str("$version systolic-ring-core tracer $end\n");
        out.push_str("$timescale 1 ns $end\n");
        out.push_str("$scope module ring $end\n");
        let id = |i: usize| -> String {
            // Printable VCD identifiers: ! .. ~ in base-94.
            let mut n = i;
            let mut s = String::new();
            loop {
                s.push((33 + (n % 94)) as u8 as char);
                n /= 94;
                if n == 0 {
                    break;
                }
            }
            s
        };
        for (i, signal) in self.signals.iter().enumerate() {
            let _ = writeln!(
                out,
                "$var wire {} {} {} $end",
                signal.width(),
                id(i),
                signal.name()
            );
        }
        out.push_str("$upscope $end\n$enddefinitions $end\n");
        let mut last: Vec<Option<u32>> = vec![None; self.signals.len()];
        for (row, cycle) in self.samples.iter().zip(&self.cycles) {
            let mut emitted_time = false;
            for (i, value) in row.iter().enumerate() {
                if last[i] != Some(*value) {
                    if !emitted_time {
                        let _ = writeln!(out, "#{cycle}");
                        emitted_time = true;
                    }
                    let width = self.signals[i].width();
                    let _ = writeln!(out, "b{:0width$b} {}", value, id(i), width = width);
                    last[i] = Some(*value);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand};
    use systolic_ring_isa::RingGeometry;

    fn counting_machine() -> RingMachine {
        let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
        m.configure()
            .set_dnode_instr(
                0,
                0,
                MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::One)
                    .write_reg(Reg::R0)
                    .write_out(),
            )
            .expect("config");
        m
    }

    #[test]
    fn series_follows_machine_state() {
        let mut m = counting_machine();
        let mut tracer = Tracer::new([
            Signal::DnodeOut { dnode: 0 },
            Signal::DnodeReg {
                dnode: 0,
                reg: Reg::R0,
            },
        ]);
        tracer.run(&mut m, 4).expect("run");
        assert_eq!(tracer.len(), 5);
        let regs = tracer
            .series(Signal::DnodeReg {
                dnode: 0,
                reg: Reg::R0,
            })
            .expect("series");
        assert_eq!(regs, vec![0, 1, 2, 3, 4]);
        assert!(tracer.series(Signal::Bus).is_none());
    }

    #[test]
    fn text_waveform_lists_signals() {
        let mut m = counting_machine();
        let mut tracer = Tracer::new([Signal::DnodeOut { dnode: 0 }, Signal::ActiveCtx]);
        tracer.run(&mut m, 2).expect("run");
        let text = tracer.render_text();
        assert!(text.contains("d0_out"));
        assert!(text.contains("active_ctx"));
        assert!(text.lines().count() == 3);
    }

    #[test]
    fn vcd_structure_and_change_compression() {
        let mut m = counting_machine();
        let mut tracer = Tracer::new([
            Signal::DnodeReg {
                dnode: 0,
                reg: Reg::R0,
            },
            Signal::Bus, // never changes -> one initial emission only
            Signal::CtrlPc,
        ]);
        tracer.run(&mut m, 3).expect("run");
        let vcd = tracer.to_vcd();
        assert!(vcd.contains("$timescale"));
        assert!(vcd.contains("$var wire 16"));
        assert!(vcd.contains("$var wire 32"));
        assert!(vcd.contains("$enddefinitions $end"));
        // The bus is constant: exactly one emission for its id.
        let bus_id_line = vcd
            .lines()
            .find(|l| l.ends_with("bus $end"))
            .expect("bus var");
        let id = bus_id_line.split_whitespace().nth(3).expect("id");
        let emissions = vcd
            .lines()
            .filter(|l| l.starts_with('b') && l.ends_with(&format!(" {id}")))
            .count();
        assert_eq!(emissions, 1);
    }

    #[test]
    fn empty_tracer_renders() {
        let tracer = Tracer::new([Signal::Bus]);
        assert!(tracer.is_empty());
        assert!(tracer.to_vcd().contains("$enddefinitions"));
        assert!(tracer.render_text().contains("bus"));
    }

    #[test]
    fn vcd_ids_stay_printable_for_many_signals() {
        let signals: Vec<Signal> = (0..8)
            .flat_map(|d| {
                Reg::ALL
                    .into_iter()
                    .map(move |reg| Signal::DnodeReg { dnode: d, reg })
            })
            .collect();
        let mut m = counting_machine();
        let mut tracer = Tracer::new(signals);
        tracer.run(&mut m, 1).expect("run");
        let vcd = tracer.to_vcd();
        assert!(vcd.is_ascii());
        assert_eq!(vcd.matches("$var wire").count(), 32);
    }
}
