//! Host-side data movement: stream sources, sinks and the link model.
//!
//! The host CPU exchanges data with the ring through the switches' direct
//! dedicated ports (§4.2). We model the host side as *streams*: a source
//! queue per host-input port (filled by the application, drained into the
//! switch FIFO at up to one word per port per cycle) and a sink per switch
//! collecting captured outputs.
//!
//! All traffic is metered by a [`LinkModel`]: `Direct` reproduces the
//! APEX-prototype situation (on-chip memories feed the ring at full rate,
//! aggregate ≈3 GB/s for Ring-8 at 200 MHz), `Metered` reproduces the
//! implemented PCI-class 250 MB/s host link of §5.1.

use std::collections::VecDeque;

use systolic_ring_isa::Word16;

use crate::error::ConfigError;
use crate::params::LinkModel;
use crate::stats::Stats;
use crate::switch::SwitchState;

/// Live (switch, port) lists for burst-mode host stepping on a direct
/// link; built by [`HostInterface::burst_plan`] at burst entry and
/// consumed by [`HostInterface::step_planned`] each replayed cycle.
#[derive(Debug)]
pub(crate) struct HostBurstPlan {
    fill: Vec<(usize, usize)>,
    drain: Vec<(usize, usize)>,
}

/// Host-side stream endpoints for one machine.
#[derive(Clone, Debug)]
pub struct HostInterface {
    sources: Vec<Vec<VecDeque<Word16>>>,
    sinks: Vec<Vec<Vec<Word16>>>,
    sink_open: Vec<Vec<bool>>,
    link: LinkModel,
    credit: f64,
    rotate: usize,
}

impl HostInterface {
    /// A host interface for `switches` switches with `in_ports` input and
    /// `out_ports` output ports each.
    pub fn new(switches: usize, in_ports: usize, out_ports: usize, link: LinkModel) -> Self {
        HostInterface {
            sources: (0..switches)
                .map(|_| (0..in_ports).map(|_| VecDeque::new()).collect())
                .collect(),
            sinks: vec![vec![Vec::new(); out_ports]; switches],
            sink_open: vec![vec![false; out_ports]; switches],
            link,
            credit: 0.0,
            rotate: 0,
        }
    }

    fn check_out_port(&self, switch: usize, port: usize) -> Result<(), ConfigError> {
        if switch >= self.sinks.len() {
            return Err(ConfigError::SwitchOutOfRange {
                switch,
                switches: self.sinks.len(),
            });
        }
        let ports = self.sinks[switch].len();
        if port >= ports {
            return Err(ConfigError::HostPortOutOfRange { port, ports });
        }
        Ok(())
    }

    /// Opens the sink of (`switch`, `port`): the host will drain that
    /// host-output FIFO (one word per cycle) into the sink. Leave a sink
    /// closed when the configuration controller consumes the captures with
    /// `hpop` instead.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices.
    pub fn open_sink(&mut self, switch: usize, port: usize) -> Result<(), ConfigError> {
        self.check_out_port(switch, port)?;
        self.sink_open[switch][port] = true;
        Ok(())
    }

    fn check_port(&self, switch: usize, port: usize) -> Result<(), ConfigError> {
        if switch >= self.sources.len() {
            return Err(ConfigError::SwitchOutOfRange {
                switch,
                switches: self.sources.len(),
            });
        }
        let ports = self.sources[switch].len();
        if port >= ports {
            return Err(ConfigError::HostPortOutOfRange { port, ports });
        }
        Ok(())
    }

    /// Appends words to the source stream of (`switch`, `port`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices.
    pub fn attach_input<I>(
        &mut self,
        switch: usize,
        port: usize,
        words: I,
    ) -> Result<(), ConfigError>
    where
        I: IntoIterator<Item = Word16>,
    {
        self.check_port(switch, port)?;
        self.sources[switch][port].extend(words);
        Ok(())
    }

    /// Words still queued on the source stream of (`switch`, `port`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices.
    pub fn pending_input(&self, switch: usize, port: usize) -> Result<usize, ConfigError> {
        self.check_port(switch, port)?;
        Ok(self.sources[switch][port].len())
    }

    /// Words collected by the sink of (`switch`, `port`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices.
    pub fn sink(&self, switch: usize, port: usize) -> Result<&[Word16], ConfigError> {
        self.check_out_port(switch, port)?;
        Ok(&self.sinks[switch][port])
    }

    /// Removes and returns the sink contents of (`switch`, `port`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices.
    pub fn take_sink(&mut self, switch: usize, port: usize) -> Result<Vec<Word16>, ConfigError> {
        self.check_out_port(switch, port)?;
        Ok(std::mem::take(&mut self.sinks[switch][port]))
    }

    /// `true` if every source stream has been fully delivered.
    pub fn inputs_drained(&self) -> bool {
        self.sources
            .iter()
            .all(|ports| ports.iter().all(VecDeque::is_empty))
    }

    /// `true` if any sink is open (the host drains captures every cycle).
    pub(crate) fn any_sink_open(&self) -> bool {
        self.sink_open.iter().any(|ports| ports.contains(&true))
    }

    /// Fused-burst shortcut for *quiet* cycles — sources drained, no open
    /// sinks, direct link: [`HostInterface::step`] would only advance the
    /// round-robin rotation, so advance it `cycles` times in one go.
    pub(crate) fn skip_quiet_cycles(&mut self, cycles: u64) {
        debug_assert!(self.inputs_drained() && !self.any_sink_open());
        debug_assert_eq!(self.link, LinkModel::Direct);
        self.rotate = self.rotate.wrapping_add(cycles as usize);
    }

    /// Builds a burst-mode port plan, or `None` unless the link is
    /// [`LinkModel::Direct`]. A direct link has an unlimited per-cycle
    /// allowance, so the round-robin service order of [`HostInterface::step`]
    /// is immaterial and a cycle only has to visit the ports that can
    /// actually move a word: sources that still hold data (they only
    /// shrink inside a burst) and open sinks (a burst cannot open one).
    pub(crate) fn burst_plan(&self) -> Option<HostBurstPlan> {
        if self.link != LinkModel::Direct {
            return None;
        }
        let mut fill = Vec::new();
        for (s, ports) in self.sources.iter().enumerate() {
            for (port, source) in ports.iter().enumerate() {
                if !source.is_empty() {
                    fill.push((s, port));
                }
            }
        }
        let mut drain = Vec::new();
        for (s, ports) in self.sink_open.iter().enumerate() {
            for (port, open) in ports.iter().enumerate() {
                if *open {
                    drain.push((s, port));
                }
            }
        }
        Some(HostBurstPlan { fill, drain })
    }

    /// One cycle of host traffic along a prepared [`HostBurstPlan`].
    /// Behaves exactly like [`HostInterface::step`] on a direct link: the
    /// allowance is unlimited, so no transfer ever starves
    /// (`link_stall_cycles` stays put) and the credit meter stays at zero.
    pub(crate) fn step_planned(
        &mut self,
        plan: &mut HostBurstPlan,
        switches: &mut [SwitchState],
        stats: &mut Stats,
    ) {
        self.rotate = self.rotate.wrapping_add(1);
        let sources = &mut self.sources;
        plan.fill.retain(|&(s, port)| {
            let source = &mut sources[s][port];
            if !switches[s].host_in[port].is_full() {
                let word = source.pop_front().expect("planned source non-empty");
                switches[s].host_in[port].push(word);
                stats.host_words_in += 1;
            }
            !source.is_empty()
        });
        for &(s, port) in &plan.drain {
            if let Some(word) = switches[s].host_out[port].pop() {
                self.sinks[s][port].push(word);
                stats.host_words_out += 1;
            }
        }
    }

    /// Moves words between host streams and switch FIFOs for one cycle.
    pub(crate) fn step(&mut self, switches: &mut [SwitchState], stats: &mut Stats) {
        let (credit, mut allowance) = self.link.allowance(self.credit);
        self.credit = credit;

        let n = switches.len();
        if n == 0 {
            return;
        }
        let start = self.rotate % n;
        self.rotate = self.rotate.wrapping_add(1);
        let mut starved = false;

        // Fill switch host-input FIFOs: at most one word per port per cycle.
        for i in 0..n {
            let s = (start + i) % n;
            for (port, source) in self.sources[s].iter_mut().enumerate() {
                if source.is_empty() {
                    continue;
                }
                if switches[s].host_in[port].is_full() {
                    continue;
                }
                if allowance == 0 {
                    starved = true;
                    continue;
                }
                let word = source.pop_front().expect("checked non-empty");
                switches[s].host_in[port].push(word);
                stats.host_words_in += 1;
                if allowance != usize::MAX {
                    allowance -= 1;
                }
            }
        }

        // Drain host-output FIFOs into open sinks: one word per out-port
        // per cycle.
        for i in 0..n {
            let s = (start + i) % n;
            for port in 0..switches[s].host_out.len() {
                if !self.sink_open[s][port] || switches[s].host_out[port].is_empty() {
                    continue;
                }
                if allowance == 0 {
                    starved = true;
                    continue;
                }
                if let Some(word) = switches[s].host_out[port].pop() {
                    self.sinks[s][port].push(word);
                    stats.host_words_out += 1;
                    if allowance != usize::MAX {
                        allowance -= 1;
                    }
                }
            }
        }

        if starved {
            stats.link_stall_cycles += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w(v: i16) -> Word16 {
        Word16::from_i16(v)
    }

    fn switches(n: usize, width: usize) -> Vec<SwitchState> {
        (0..n).map(|_| SwitchState::new(4, width, 16)).collect()
    }

    #[test]
    fn direct_link_moves_one_word_per_port_per_cycle() {
        let mut host = HostInterface::new(2, 4, 2, LinkModel::Direct);
        let mut sw = switches(2, 2);
        let mut stats = Stats::new(4);
        host.attach_input(0, 0, [w(1), w(2), w(3)]).unwrap();
        host.attach_input(1, 3, [w(9)]).unwrap();
        host.step(&mut sw, &mut stats);
        assert_eq!(sw[0].host_in[0].len(), 1);
        assert_eq!(sw[1].host_in[3].len(), 1);
        assert_eq!(stats.host_words_in, 2);
        host.step(&mut sw, &mut stats);
        host.step(&mut sw, &mut stats);
        assert_eq!(sw[0].host_in[0].len(), 3);
        assert!(host.inputs_drained());
        assert_eq!(stats.link_stall_cycles, 0);
    }

    #[test]
    fn metered_link_throttles() {
        // 2 bytes/cycle = 1 word/cycle across all traffic.
        let mut host = HostInterface::new(
            2,
            2,
            1,
            LinkModel::Metered {
                bytes_per_cycle: 2.0,
            },
        );
        let mut sw = switches(2, 1);
        let mut stats = Stats::new(2);
        host.attach_input(0, 0, vec![w(1); 10]).unwrap();
        host.attach_input(1, 0, vec![w(2); 10]).unwrap();
        for _ in 0..10 {
            host.step(&mut sw, &mut stats);
        }
        assert_eq!(stats.host_words_in, 10);
        assert!(stats.link_stall_cycles > 0);
        // Round-robin start keeps both switches served.
        assert!(sw[0].host_in[0].len() >= 4);
        assert!(sw[1].host_in[0].len() >= 4);
    }

    #[test]
    fn closed_sinks_do_not_drain() {
        let mut host = HostInterface::new(1, 2, 1, LinkModel::Direct);
        let mut sw = switches(1, 1);
        let mut stats = Stats::new(1);
        sw[0].host_out[0].push(w(5));
        host.step(&mut sw, &mut stats);
        assert!(host.sink(0, 0).unwrap().is_empty());
        assert_eq!(sw[0].host_out[0].len(), 1);
        assert_eq!(stats.host_words_out, 0);
    }

    #[test]
    fn drains_captures_into_sinks() {
        let mut host = HostInterface::new(1, 2, 1, LinkModel::Direct);
        let mut sw = switches(1, 1);
        let mut stats = Stats::new(1);
        host.open_sink(0, 0).unwrap();
        assert!(host.open_sink(9, 0).is_err());
        assert!(host.open_sink(0, 5).is_err());
        sw[0].host_out[0].push(w(5));
        sw[0].host_out[0].push(w(6));
        host.step(&mut sw, &mut stats);
        // One word per out-port per cycle.
        assert_eq!(host.sink(0, 0).unwrap(), &[w(5)]);
        host.step(&mut sw, &mut stats);
        assert_eq!(host.take_sink(0, 0).unwrap(), vec![w(5), w(6)]);
        assert!(host.sink(0, 0).unwrap().is_empty());
        assert_eq!(stats.host_words_out, 2);
    }

    #[test]
    fn parallel_out_ports_drain_together() {
        let mut host = HostInterface::new(1, 2, 2, LinkModel::Direct);
        let mut sw = switches(1, 2);
        let mut stats = Stats::new(1);
        host.open_sink(0, 0).unwrap();
        host.open_sink(0, 1).unwrap();
        sw[0].host_out[0].push(w(1));
        sw[0].host_out[1].push(w(2));
        host.step(&mut sw, &mut stats);
        assert_eq!(host.sink(0, 0).unwrap(), &[w(1)]);
        assert_eq!(host.sink(0, 1).unwrap(), &[w(2)]);
        assert_eq!(stats.host_words_out, 2);
    }

    #[test]
    fn full_fifo_backpressures_source() {
        let mut host = HostInterface::new(1, 1, 1, LinkModel::Direct);
        let mut sw = vec![SwitchState::new(4, 1, 2)];
        // Switch has 2 host-in ports (2*width) but we built host with 1 port:
        // use port 0 only. FIFO capacity 2.
        let mut stats = Stats::new(1);
        host.attach_input(0, 0, vec![w(1); 5]).unwrap();
        for _ in 0..5 {
            host.step(&mut sw, &mut stats);
        }
        assert_eq!(sw[0].host_in[0].len(), 2);
        assert_eq!(host.pending_input(0, 0).unwrap(), 3);
    }

    #[test]
    fn bounds_are_checked() {
        let mut host = HostInterface::new(1, 2, 1, LinkModel::Direct);
        assert!(host.attach_input(1, 0, []).is_err());
        assert!(host.attach_input(0, 2, []).is_err());
        assert!(host.sink(3, 0).is_err());
        assert!(host.sink(0, 3).is_err());
        assert!(host.take_sink(3, 0).is_err());
        assert!(host.pending_input(0, 5).is_err());
    }
}
