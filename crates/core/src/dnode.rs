//! Dnode state: register file, registered output and the local sequencer.
//!
//! The Dnode datapath itself (operand selection and ALU evaluation) lives in
//! the machine stepper, because operand values come from the surrounding
//! switch fabric; this module holds the per-Dnode *state* and its two-phase
//! (master/slave) commit discipline.

use systolic_ring_isa::dnode::{DnodeMode, MicroInstr, Reg, LOCAL_SLOTS};
use systolic_ring_isa::Word16;

/// The local control unit of a Dnode (paper §4.1, local mode).
///
/// Eight instruction registers `S1..S8`, a `LIMIT` register and a counter
/// `CPT` stepping `0..LIMIT` each cycle through an 8:1 multiplexer. With
/// `LIMIT = 1` the Dnode replays a single microinstruction forever — the
/// degenerate case used for MAC macro-operators; larger limits express
/// short loops (serial filters, FIFO emulation).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalSequencer {
    slots: [MicroInstr; LOCAL_SLOTS],
    limit: u8,
    cpt: u8,
}

impl LocalSequencer {
    /// A sequencer holding NOPs with `LIMIT = 1`.
    pub fn new() -> Self {
        LocalSequencer {
            slots: [MicroInstr::NOP; LOCAL_SLOTS],
            limit: 1,
            cpt: 0,
        }
    }

    /// The microinstruction selected this cycle.
    #[inline]
    pub fn current(&self) -> MicroInstr {
        self.slots[self.cpt as usize]
    }

    /// Writes slot `slot` (0-based, i.e. `S(slot+1)`).
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`; callers validate against
    /// [`crate::ConfigError::SlotOutOfRange`] first.
    pub fn set_slot(&mut self, slot: usize, instr: MicroInstr) {
        self.slots[slot] = instr;
    }

    /// Reads slot `slot`.
    ///
    /// # Panics
    ///
    /// Panics if `slot >= 8`.
    pub fn slot(&self, slot: usize) -> MicroInstr {
        self.slots[slot]
    }

    /// Sets `LIMIT` (must be `1..=8`) and resets the counter.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range limit; callers validate against
    /// [`crate::ConfigError::BadLocalLimit`] first.
    pub fn set_limit(&mut self, limit: u8) {
        assert!((1..=LOCAL_SLOTS as u8).contains(&limit), "limit {limit}");
        self.limit = limit;
        self.cpt = 0;
    }

    /// The current `LIMIT` value.
    #[inline]
    pub fn limit(&self) -> u8 {
        self.limit
    }

    /// The current counter value.
    #[inline]
    pub fn counter(&self) -> u8 {
        self.cpt
    }

    /// Resets the counter to zero (performed on entry into local mode).
    pub fn reset_counter(&mut self) {
        self.cpt = 0;
    }

    /// Advances the counter by one state, wrapping at `LIMIT`.
    pub fn advance(&mut self) {
        self.cpt = (self.cpt + 1) % self.limit;
    }

    /// Fused-burst scatter: sets the counter directly (already reduced
    /// modulo `LIMIT` by the caller).
    pub(crate) fn set_counter_raw(&mut self, cpt: u8) {
        debug_assert!(cpt < self.limit);
        self.cpt = cpt;
    }
}

impl Default for LocalSequencer {
    fn default() -> Self {
        LocalSequencer::new()
    }
}

/// Architectural state of one Dnode.
///
/// All fields follow master/slave semantics: reads during a cycle observe
/// the *pre-cycle* values; writes are staged and committed together at the
/// end of the cycle by the machine commit phase.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DnodeState {
    regs: [Word16; 4],
    out: Word16,
    mode: DnodeMode,
    seq: LocalSequencer,
    staged_reg: Option<(Reg, Word16)>,
    staged_out: Option<Word16>,
    /// Cycle of the last *committed* output write, if any. Updated only
    /// when a staged output actually commits, so it evolves identically on
    /// the fast path (which skips commit entirely for idle Dnodes) and the
    /// reference path (which commits every Dnode every cycle). The fault
    /// injector's stuck-output model keys off it: a stuck write port only
    /// manifests on cycles the Dnode really drove its output register.
    out_stamp: Option<u64>,
}

impl DnodeState {
    /// A reset Dnode: zero registers, zero output, global mode.
    pub fn new() -> Self {
        DnodeState {
            regs: [Word16::ZERO; 4],
            out: Word16::ZERO,
            mode: DnodeMode::Global,
            seq: LocalSequencer::new(),
            staged_reg: None,
            staged_out: None,
            out_stamp: None,
        }
    }

    /// Pre-cycle value of register `reg`.
    #[inline]
    pub fn reg(&self, reg: Reg) -> Word16 {
        self.regs[reg.index()]
    }

    /// Pre-cycle registered output (what the downstream switch observes).
    #[inline]
    pub fn out(&self) -> Word16 {
        self.out
    }

    /// Current execution mode.
    #[inline]
    pub fn mode(&self) -> DnodeMode {
        self.mode
    }

    /// The local sequencer.
    #[inline]
    pub fn sequencer(&self) -> &LocalSequencer {
        &self.seq
    }

    /// Mutable access to the local sequencer (configuration writes).
    #[inline]
    pub fn sequencer_mut(&mut self) -> &mut LocalSequencer {
        &mut self.seq
    }

    /// Sets the execution mode. Entering local mode resets the sequencer
    /// counter so the loop starts at `S1`.
    pub fn set_mode(&mut self, mode: DnodeMode) {
        if mode == DnodeMode::Local && self.mode != DnodeMode::Local {
            self.seq.reset_counter();
        }
        self.mode = mode;
    }

    /// Directly sets a register value (testing / host-mediated setup).
    pub fn set_reg(&mut self, reg: Reg, value: Word16) {
        self.regs[reg.index()] = value;
    }

    /// Stages this cycle's writes per the executed microinstruction.
    pub(crate) fn stage(&mut self, instr: &MicroInstr, result: Word16) {
        self.stage_write(instr.wr_reg, instr.wr_out, result);
    }

    /// Stages this cycle's writes from predecoded destination flags (the
    /// fast path's equivalent of [`DnodeState::stage`]).
    pub(crate) fn stage_write(&mut self, wr_reg: Option<Reg>, wr_out: bool, result: Word16) {
        if let Some(reg) = wr_reg {
            self.staged_reg = Some((reg, result));
        }
        if wr_out {
            self.staged_out = Some(result);
        }
    }

    /// Commits staged writes and advances the sequencer if in local mode.
    /// `cycle` stamps a committed output write (see
    /// [`DnodeState::out_written_at`]).
    pub(crate) fn commit(&mut self, cycle: u64) {
        if let Some((reg, value)) = self.staged_reg.take() {
            self.regs[reg.index()] = value;
        }
        if let Some(value) = self.staged_out.take() {
            self.out = value;
            self.out_stamp = Some(cycle);
        }
        if self.mode == DnodeMode::Local {
            self.seq.advance();
        }
    }

    /// Cycle of the last committed output write, or `None` if the output
    /// register has never been written.
    #[inline]
    pub fn out_written_at(&self) -> Option<u64> {
        self.out_stamp
    }

    /// Fault-injection hook: overwrites the registered output in place
    /// (bypassing the master/slave discipline), as a stuck output-write
    /// port would.
    pub(crate) fn force_out(&mut self, value: Word16) {
        self.out = value;
    }

    /// Fused-burst gather: raw register-file snapshot. Only meaningful
    /// between cycles (no staged writes pending).
    #[inline]
    pub(crate) fn regs_raw(&self) -> [Word16; 4] {
        debug_assert!(self.staged_reg.is_none() && self.staged_out.is_none());
        self.regs
    }

    /// Fused-burst scatter: writes the whole register file, output register
    /// and output stamp in one committed update (the burst already applied
    /// the master/slave discipline cycle by cycle in its own arrays).
    pub(crate) fn scatter_raw(&mut self, regs: [Word16; 4], out: Word16, out_stamp: Option<u64>) {
        debug_assert!(self.staged_reg.is_none() && self.staged_out.is_none());
        self.regs = regs;
        self.out = out;
        self.out_stamp = out_stamp;
    }
}

impl Default for DnodeState {
    fn default() -> Self {
        DnodeState::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use systolic_ring_isa::dnode::{AluOp, Operand};

    #[test]
    fn master_slave_commit() {
        let mut d = DnodeState::new();
        let instr = MicroInstr::op(AluOp::PassA, Operand::Imm, Operand::Zero)
            .write_reg(Reg::R1)
            .write_out();
        d.stage(&instr, Word16::from_i16(7));
        // Pre-commit reads still see the old values.
        assert_eq!(d.reg(Reg::R1), Word16::ZERO);
        assert_eq!(d.out(), Word16::ZERO);
        d.commit(0);
        assert_eq!(d.reg(Reg::R1), Word16::from_i16(7));
        assert_eq!(d.out(), Word16::from_i16(7));
    }

    #[test]
    fn commit_without_writes_preserves_state() {
        let mut d = DnodeState::new();
        d.set_reg(Reg::R0, Word16::from_i16(3));
        let instr = MicroInstr::op(AluOp::Add, Operand::Zero, Operand::Zero);
        d.stage(&instr, Word16::from_i16(99));
        d.commit(0);
        assert_eq!(d.reg(Reg::R0), Word16::from_i16(3));
        assert_eq!(d.out(), Word16::ZERO);
    }

    #[test]
    fn sequencer_wraps_at_limit() {
        let mut s = LocalSequencer::new();
        let i1 = MicroInstr::op(AluOp::Add, Operand::In1, Operand::In2);
        let i2 = MicroInstr::op(AluOp::Sub, Operand::In1, Operand::In2);
        let i3 = MicroInstr::op(AluOp::Mul, Operand::In1, Operand::In2);
        s.set_slot(0, i1);
        s.set_slot(1, i2);
        s.set_slot(2, i3);
        s.set_limit(3);
        let mut seen = Vec::new();
        for _ in 0..7 {
            seen.push(s.current().alu);
            s.advance();
        }
        assert_eq!(
            seen,
            vec![
                AluOp::Add,
                AluOp::Sub,
                AluOp::Mul,
                AluOp::Add,
                AluOp::Sub,
                AluOp::Mul,
                AluOp::Add
            ]
        );
    }

    #[test]
    fn set_limit_resets_counter() {
        let mut s = LocalSequencer::new();
        s.set_limit(4);
        s.advance();
        s.advance();
        assert_eq!(s.counter(), 2);
        s.set_limit(2);
        assert_eq!(s.counter(), 0);
        assert_eq!(s.limit(), 2);
    }

    #[test]
    #[should_panic(expected = "limit")]
    fn set_limit_rejects_zero() {
        LocalSequencer::new().set_limit(0);
    }

    #[test]
    fn entering_local_mode_resets_counter() {
        let mut d = DnodeState::new();
        d.sequencer_mut().set_limit(4);
        d.set_mode(DnodeMode::Local);
        d.commit(0);
        d.commit(0);
        assert_eq!(d.sequencer().counter(), 2);
        // Staying in local mode does not reset.
        d.set_mode(DnodeMode::Local);
        assert_eq!(d.sequencer().counter(), 2);
        // Leaving and re-entering resets.
        d.set_mode(DnodeMode::Global);
        d.set_mode(DnodeMode::Local);
        assert_eq!(d.sequencer().counter(), 0);
    }

    #[test]
    fn global_mode_does_not_advance_sequencer() {
        let mut d = DnodeState::new();
        d.sequencer_mut().set_limit(4);
        d.commit(0);
        assert_eq!(d.sequencer().counter(), 0);
    }
}
