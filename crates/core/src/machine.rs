//! The whole-machine cycle-accurate stepper.
//!
//! A [`RingMachine`] wires together the operating layer (Dnodes and
//! switches), the configuration layer, the RISC configuration controller
//! and the host interface, and advances them under a single two-phase clock
//! discipline:
//!
//! 1. **Compute** — every Dnode selects its operands from *pre-cycle* state
//!    (registered upstream outputs, feedback-pipeline stages, host FIFO
//!    heads, the bus, its own registers) and evaluates its microinstruction;
//!    the controller executes one instruction; the host interface moves
//!    stream words.
//! 2. **Commit** — register files, Dnode outputs, pipelines, captures,
//!    configuration writes, the bus and the active context all update
//!    together.
//!
//! Consequently a value produced by layer *n* at cycle *t* is visible to
//! layer *n+1* at cycle *t+1*: the ring is a synchronous systolic pipeline,
//! exactly the paper's "each Dnode can be seen as an arithmetic operator of
//! a datapath which computes a data each clock cycle".

use systolic_ring_isa::dnode::{DnodeMode, MicroInstr, Operand};
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::proof::{object_hash, ProofManifest};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

use crate::config::ConfigLayer;
use crate::controller::{Controller, CtrlEffect, CtrlFault, CtrlPorts, CtrlStep};
use crate::dnode::DnodeState;
use crate::error::{ConfigError, SimError};
use crate::fault::{FaultConfig, FaultCtx, FaultInjector};
use crate::host::HostInterface;
use crate::params::MachineParams;
use crate::plan::{DecodedPlan, FastSrc, Scratch, StagedWrite};
use crate::stats::Stats;
use crate::switch::{PushOutcome, SwitchState};

/// A complete Systolic Ring instance.
///
/// # Examples
///
/// Run a single Dnode in local mode as a MAC macro-operator fed by two host
/// streams:
///
/// ```
/// use systolic_ring_core::{MachineParams, RingMachine};
/// use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
/// use systolic_ring_isa::switch::PortSource;
/// use systolic_ring_isa::{RingGeometry, Word16};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER);
/// // Route both forward ports of Dnode (layer 0, lane 0) from host streams.
/// m.configure().set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })?;
/// m.configure().set_port(0, 0, 0, 1, PortSource::HostIn { port: 1 })?;
/// // Program the Dnode as a stand-alone MAC.
/// let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2).write_reg(Reg::R0);
/// m.set_local_program(0, &[mac])?;
/// m.set_mode(0, DnodeMode::Local);
/// // Stream 1*2 + 3*4 + 5*6 through the ports.
/// m.attach_input(0, 0, [1, 3, 5].map(Word16::from_i16))?;
/// m.attach_input(0, 1, [2, 4, 6].map(Word16::from_i16))?;
/// m.run(8)?;
/// assert_eq!(m.dnode(0).reg(Reg::R0).as_i16(), 44);
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct RingMachine {
    pub(crate) geometry: RingGeometry,
    pub(crate) params: MachineParams,
    pub(crate) dnodes: Vec<DnodeState>,
    pub(crate) switches: Vec<SwitchState>,
    pub(crate) config: ConfigLayer,
    pub(crate) controller: Controller,
    pub(crate) host: HostInterface,
    pub(crate) bus: Word16,
    pub(crate) cycle: u64,
    pub(crate) stats: Stats,
    /// The predecoded configuration cache (consulted only when
    /// `params.decode_cache` is set; kept sized either way so invalidation
    /// notes never go out of bounds).
    pub(crate) plan: DecodedPlan,
    /// The fault injector, present iff `params.faults.is_active()`. Boxed
    /// so the fault-free machine pays one pointer of state; `None` means
    /// the stepper takes the exact pre-fault code path.
    pub(crate) fault: Option<Box<FaultInjector>>,
    /// The fused steady-state engine (consulted only when `params.fused`
    /// and `params.decode_cache` are both set). Boxed and lazily
    /// allocated: machines that never reach a steady state pay one pointer
    /// of state.
    pub(crate) fused: Option<Box<crate::fused::FusedEngine>>,
    /// The AOT multi-phase superblock cache (consulted only when
    /// `params.aot`, `params.fused` and `params.decode_cache` are all
    /// set). Boxed and lazily allocated like `fused`; prefilled at
    /// [`RingMachine::load`] time.
    pub(crate) aot: Option<Box<crate::aot::AotEngine>>,
    /// Watchdog progress snapshot: (ctrl instructions retired, config
    /// writes, context switches, host words in, host words out).
    wd_progress: (u64, u64, u64, u64, u64),
    /// Cycle at which `wd_progress` last changed (or the watchdog was
    /// petted).
    wd_since: u64,
    /// Content hash of the last loaded [`Object`]'s bytes; the credential
    /// [`RingMachine::attach_proof`] validates a manifest against.
    loaded_object_hash: Option<u64>,
    /// Cycle from which an attached, hash-validated proof manifest
    /// declares the fabric configuration permanently stable. While set
    /// and reached, the fused tier waives its stability-detection window
    /// and the AOT tier skips its content-hash guard probe (see
    /// `Stats::guards_elided`). Cleared by anything that could invalidate
    /// the static proof: a new [`RingMachine::load`], programmatic
    /// configuration access, or a Dnode remap.
    pub(crate) proof_stable_from: Option<u64>,
}

/// A machine snapshot taken by [`RingMachine::checkpoint`].
///
/// Checkpoints are plain owned data (a boxed machine image, including
/// pending fault state); [`RingMachine::restore`] rewinds a machine to one
/// any number of times. The retry policies in `systolic-ring-harness`
/// checkpoint before running and roll back on detected faults.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    image: Box<RingMachine>,
}

impl Checkpoint {
    /// The cycle at which this checkpoint was taken.
    pub fn cycle(&self) -> u64 {
        self.image.cycle
    }

    /// Rebuilds a machine from this snapshot — the resume half of
    /// checkpoint-based preemption, for callers that dropped the
    /// suspended machine (e.g. a server parking a preempted job). The
    /// rebuilt machine is bit-identical to the checkpointed one except
    /// for the monotonic recovery counters: it counts one restore, like
    /// [`RingMachine::restore`] onto a fresh machine would.
    pub fn hydrate(&self) -> RingMachine {
        let mut m = (*self.image).clone();
        m.stats.restores += 1;
        m
    }
}

struct PortsAdapter<'a> {
    bus: Word16,
    switches: &'a mut [SwitchState],
}

impl CtrlPorts for PortsAdapter<'_> {
    fn bus(&self) -> Word16 {
        self.bus
    }

    fn hpop(&mut self, switch: usize, port: usize) -> Result<Option<Word16>, ConfigError> {
        let switches = self.switches.len();
        let state = self
            .switches
            .get_mut(switch)
            .ok_or(ConfigError::SwitchOutOfRange { switch, switches })?;
        let ports = state.host_out.len();
        let fifo = state
            .host_out
            .get_mut(port)
            .ok_or(ConfigError::HostPortOutOfRange { port, ports })?;
        Ok(fifo.pop())
    }
}

/// One Dnode's resolved work for the current cycle.
struct DnodePlan {
    instr: MicroInstr,
    result: Word16,
}

/// A machine is plain owned data: batches of machines step on independent
/// threads with no shared state. This assertion keeps that guarantee from
/// regressing silently (e.g. by an `Rc` or raw pointer sneaking into the
/// state tree) — the batch engine in `systolic-ring-harness` depends on it.
#[allow(dead_code)]
fn _ring_machine_is_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<RingMachine>();
}

impl RingMachine {
    /// Creates a reset machine.
    ///
    /// If a [`crate::with_decode_cache`] scope is active on this thread,
    /// its setting overrides `params.decode_cache`.
    pub fn new(geometry: RingGeometry, params: MachineParams) -> Self {
        let mut params = params;
        if let Some(enabled) = crate::params::decode_cache_override() {
            params.decode_cache = enabled;
        }
        if let Some(enabled) = crate::params::fused_override() {
            params.fused = enabled;
        }
        if let Some(enabled) = crate::params::aot_override() {
            params.aot = enabled;
        }
        if let Some(faults) = crate::params::fault_override() {
            params.faults = faults;
        }
        let dnodes = (0..geometry.dnodes()).map(|_| DnodeState::new()).collect();
        let switches = (0..geometry.switches())
            .map(|_| {
                SwitchState::new(
                    params.pipe_depth,
                    geometry.width(),
                    params.host_fifo_capacity,
                )
            })
            .collect();
        RingMachine {
            geometry,
            params,
            dnodes,
            switches,
            config: ConfigLayer::new(geometry, params.contexts, params.pipe_depth),
            controller: Controller::new(params.prog_capacity, params.dmem_capacity),
            host: HostInterface::new(
                geometry.switches(),
                2 * geometry.width(),
                geometry.width(),
                params.link,
            ),
            bus: Word16::ZERO,
            cycle: 0,
            stats: Stats::new(geometry.dnodes()),
            plan: DecodedPlan::new(geometry, params.contexts),
            fault: params
                .faults
                .is_active()
                .then(|| Box::new(FaultInjector::new(params.faults, geometry.dnodes()))),
            fused: None,
            aot: None,
            wd_progress: (0, 0, 0, 0, 0),
            wd_since: 0,
            loaded_object_hash: None,
            proof_stable_from: None,
        }
    }

    /// Creates a machine with the paper's default parameters.
    pub fn with_defaults(geometry: RingGeometry) -> Self {
        RingMachine::new(geometry, MachineParams::PAPER)
    }

    /// The ring geometry.
    pub fn geometry(&self) -> RingGeometry {
        self.geometry
    }

    /// The sizing parameters.
    pub fn params(&self) -> &MachineParams {
        &self.params
    }

    /// Cycles simulated so far.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Execution statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Resets the statistics counters (state is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = Stats::new(self.geometry.dnodes());
    }

    /// The configuration layer, for programmatic setup.
    ///
    /// Handing out mutable configuration access invalidates any attached
    /// proof manifest: the static proofs describe the loaded object, not
    /// whatever the caller is about to write.
    pub fn configure(&mut self) -> &mut ConfigLayer {
        self.invalidate_proof();
        &mut self.config
    }

    /// Read-only view of the configuration layer.
    pub fn config(&self) -> &ConfigLayer {
        &self.config
    }

    /// A Dnode's architectural state.
    ///
    /// # Panics
    ///
    /// Panics if `dnode` is out of range.
    pub fn dnode(&self, dnode: usize) -> &DnodeState {
        &self.dnodes[dnode]
    }

    /// The configuration controller.
    pub fn controller(&self) -> &Controller {
        &self.controller
    }

    /// Mutable access to the controller (program loading, test setup).
    ///
    /// Invalidates any attached proof manifest — the static schedule walk
    /// covered the loaded program, not a hand-edited one.
    pub fn controller_mut(&mut self) -> &mut Controller {
        self.invalidate_proof();
        &mut self.controller
    }

    /// The host interface.
    pub fn host(&self) -> &HostInterface {
        &self.host
    }

    /// Current value of the shared bus.
    pub fn bus(&self) -> Word16 {
        self.bus
    }

    /// A switch's stateful parts (pipelines and FIFOs).
    ///
    /// # Panics
    ///
    /// Panics if `switch` is out of range.
    pub fn switch(&self, switch: usize) -> &SwitchState {
        &self.switches[switch]
    }

    /// Sets a Dnode's execution mode (programmatic setup).
    ///
    /// # Panics
    ///
    /// Panics if `dnode` is out of range.
    pub fn set_mode(&mut self, dnode: usize, mode: DnodeMode) {
        self.invalidate_proof();
        if self.dnodes[dnode].mode() != mode {
            self.plan.note_mode_write();
        }
        self.dnodes[dnode].set_mode(mode);
    }

    /// Loads `program` into a Dnode's local sequencer and sets its limit to
    /// the program length.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if `dnode` is out of range or the program is
    /// empty or longer than 8 microinstructions.
    pub fn set_local_program(
        &mut self,
        dnode: usize,
        program: &[MicroInstr],
    ) -> Result<(), ConfigError> {
        let dnodes = self.geometry.dnodes();
        if dnode >= dnodes {
            return Err(ConfigError::DnodeOutOfRange { dnode, dnodes });
        }
        if program.is_empty() || program.len() > 8 {
            return Err(ConfigError::BadLocalLimit {
                limit: program.len(),
            });
        }
        self.invalidate_proof();
        let seq = self.dnodes[dnode].sequencer_mut();
        for (slot, instr) in program.iter().enumerate() {
            seq.set_slot(slot, *instr);
        }
        seq.set_limit(program.len() as u8);
        self.plan.note_seq_write(dnode);
        Ok(())
    }

    /// Appends words to the host source stream of (`switch`, `port`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices.
    pub fn attach_input<I>(
        &mut self,
        switch: usize,
        port: usize,
        words: I,
    ) -> Result<(), ConfigError>
    where
        I: IntoIterator<Item = Word16>,
    {
        self.host.attach_input(switch, port, words)
    }

    /// Opens the host sink of (`switch`, `port`) so captured words are
    /// drained into it (see [`HostInterface::open_sink`]).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices.
    pub fn open_sink(&mut self, switch: usize, port: usize) -> Result<(), ConfigError> {
        self.host.open_sink(switch, port)
    }

    /// Removes and returns the host sink contents of (`switch`, `port`).
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for out-of-range indices.
    pub fn take_sink(&mut self, switch: usize, port: usize) -> Result<Vec<Word16>, ConfigError> {
        self.host.take_sink(switch, port)
    }

    /// Loads an assembled [`Object`]: controller program and data, then the
    /// fabric preload records in order.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the object declares a different geometry,
    /// needs more contexts than available, or contains out-of-range or
    /// malformed preload records.
    pub fn load(&mut self, object: &Object) -> Result<(), ConfigError> {
        if let Some(declared) = object.geometry {
            if declared != self.geometry {
                return Err(ConfigError::GeometryMismatch {
                    declared,
                    machine: self.geometry,
                });
            }
        }
        if object.contexts as usize > self.params.contexts {
            return Err(ConfigError::NotEnoughContexts {
                required: object.contexts as usize,
                available: self.params.contexts,
            });
        }
        self.controller.load_program(&object.code)?;
        self.controller.load_data(&object.data)?;
        for record in &object.preload {
            self.apply_preload(record)?;
        }
        // Any previously attached proof described the previous object;
        // remember the new object's hash so `attach_proof` can bind a
        // fresh manifest to exactly these bytes.
        self.invalidate_proof();
        self.loaded_object_hash = Some(object_hash(object));
        // With the AOT tier on, walk the loaded program and precompile its
        // provable steady windows (no-op otherwise; see `crate::aot`).
        self.aot_prefill();
        Ok(())
    }

    /// Attaches a statically verified [`ProofManifest`] (produced by
    /// `ringlint`'s verify passes) to the machine, enabling runtime guard
    /// elision. Returns `true` iff the manifest was accepted.
    ///
    /// Acceptance is deliberately strict — all of:
    ///
    /// * the manifest's `object_hash` matches the object most recently
    ///   [`load`](RingMachine::load)ed (a manifest for different bytes is
    ///   a stale or foreign proof and is rejected outright),
    /// * the walk proved termination (`halts`) and hazard freedom, and
    /// * it established a configuration-stability cycle.
    ///
    /// Once attached and past `config_stable_from`, the fused tier skips
    /// its `DETECTION_WINDOW` stability heuristic and the
    /// AOT tier pins its resolved cache entry instead of re-probing the
    /// content hash every burst; each skipped check counts one
    /// `Stats::guards_elided`. Elision never changes architectural state
    /// — the differential suites compare tiers with and without proofs
    /// attached — it only removes warm-up and guard overhead the proof
    /// made redundant. Any subsequent load, programmatic configuration
    /// access or Dnode remap detaches the proof.
    pub fn attach_proof(&mut self, proof: &ProofManifest) -> bool {
        self.invalidate_proof();
        let accepted = self.loaded_object_hash == Some(proof.object_hash)
            && proof.halts
            && proof.hazard_free
            && proof.config_stable_from.is_some();
        if accepted {
            self.proof_stable_from = proof.config_stable_from;
            // If the AOT prefill walk covered the whole controller
            // execution, its halt-state entry is exactly the configuration
            // every post-stability burst runs: pin it so even the first
            // burst skips the content-hash probe.
            if let Some(engine) = &mut self.aot {
                engine.proof_idx = engine.prefill_final;
            }
        }
        accepted
    }

    /// Detaches any attached proof manifest and the AOT tier's pinned
    /// entry derived from it.
    fn invalidate_proof(&mut self) {
        self.proof_stable_from = None;
        if let Some(engine) = &mut self.aot {
            engine.proof_idx = None;
        }
    }

    fn apply_preload(&mut self, record: &Preload) -> Result<(), ConfigError> {
        match *record {
            Preload::DnodeInstr { ctx, dnode, word } => {
                let instr = MicroInstr::decode(word)?;
                self.config
                    .set_dnode_instr(ctx as usize, dnode as usize, instr)
            }
            Preload::SwitchPort {
                ctx,
                switch,
                lane,
                input,
                word,
            } => {
                let source = PortSource::decode(word)?;
                self.config.set_port(
                    ctx as usize,
                    switch as usize,
                    lane as usize,
                    input as usize,
                    source,
                )
            }
            Preload::HostCapture {
                ctx,
                switch,
                port,
                word,
            } => {
                let capture = HostCapture::decode(word)?;
                self.config
                    .set_capture(ctx as usize, switch as usize, port as usize, capture)
            }
            Preload::Mode { dnode, local } => {
                let dnodes = self.geometry.dnodes();
                if dnode as usize >= dnodes {
                    return Err(ConfigError::DnodeOutOfRange {
                        dnode: dnode as usize,
                        dnodes,
                    });
                }
                let mode = if local {
                    DnodeMode::Local
                } else {
                    DnodeMode::Global
                };
                if self.dnodes[dnode as usize].mode() != mode {
                    self.plan.note_mode_write();
                }
                self.dnodes[dnode as usize].set_mode(mode);
                Ok(())
            }
            Preload::LocalSlot { dnode, slot, word } => {
                let dnodes = self.geometry.dnodes();
                if dnode as usize >= dnodes {
                    return Err(ConfigError::DnodeOutOfRange {
                        dnode: dnode as usize,
                        dnodes,
                    });
                }
                if slot as usize >= 8 {
                    return Err(ConfigError::SlotOutOfRange {
                        slot: slot as usize,
                    });
                }
                let instr = MicroInstr::decode(word)?;
                self.dnodes[dnode as usize]
                    .sequencer_mut()
                    .set_slot(slot as usize, instr);
                self.plan.note_seq_write(dnode as usize);
                Ok(())
            }
            Preload::LocalLimit { dnode, limit } => {
                let dnodes = self.geometry.dnodes();
                if dnode as usize >= dnodes {
                    return Err(ConfigError::DnodeOutOfRange {
                        dnode: dnode as usize,
                        dnodes,
                    });
                }
                if !(1..=8).contains(&limit) {
                    return Err(ConfigError::BadLocalLimit {
                        limit: limit as usize,
                    });
                }
                self.dnodes[dnode as usize].sequencer_mut().set_limit(limit);
                // `set_limit` resets the counter, which the fused engine's
                // phase anchoring depends on.
                self.plan.note_seq_write(dnode as usize);
                Ok(())
            }
        }
    }

    /// The microinstruction a Dnode will execute this cycle.
    fn current_instr(&self, dnode: usize) -> MicroInstr {
        match self.dnodes[dnode].mode() {
            DnodeMode::Global => self.config.active().dnode_instr(dnode),
            DnodeMode::Local => self.dnodes[dnode].sequencer().current(),
        }
    }

    /// Resolves one routed port source against pre-cycle state.
    ///
    /// `hostin_reads` records (switch, port) host FIFO consumption.
    fn resolve_source(
        &self,
        switch: usize,
        source: PortSource,
        hostin_reads: &mut [Vec<bool>],
        underflows: &mut u64,
    ) -> Word16 {
        match source {
            PortSource::Zero => Word16::ZERO,
            PortSource::Bus => self.bus,
            PortSource::PrevOut { lane } => {
                let layer = self.geometry.upstream_layer(switch);
                self.dnodes[self.geometry.dnode_index(layer, lane as usize)].out()
            }
            PortSource::Pipe {
                switch: pipe_switch,
                stage,
                lane,
            } => self.switches[pipe_switch as usize]
                .pipe
                .read(stage as usize, lane as usize),
            PortSource::HostIn { port } => {
                let fifo = &self.switches[switch].host_in[port as usize];
                hostin_reads[switch][port as usize] = true;
                match fifo.peek() {
                    Some(word) => word,
                    None => {
                        *underflows += 1;
                        Word16::ZERO
                    }
                }
            }
        }
    }

    /// Resolves a microinstruction operand for the Dnode at
    /// (`layer`, `lane`).
    #[allow(clippy::too_many_arguments)]
    fn resolve_operand(
        &self,
        dnode: usize,
        layer: usize,
        lane: usize,
        operand: Operand,
        hostin_reads: &mut [Vec<bool>],
        underflows: &mut u64,
    ) -> Word16 {
        let ctx = self.config.active();
        let width = self.geometry.width();
        let port = |p: usize| ctx.port(width, layer, lane, p);
        match operand {
            Operand::Reg(reg) => self.dnodes[dnode].reg(reg),
            Operand::In1 => self.resolve_source(layer, port(0), hostin_reads, underflows),
            Operand::In2 => self.resolve_source(layer, port(1), hostin_reads, underflows),
            Operand::Fifo1 => self.resolve_source(layer, port(2), hostin_reads, underflows),
            Operand::Fifo2 => self.resolve_source(layer, port(3), hostin_reads, underflows),
            Operand::Bus => self.bus,
            Operand::Imm => self.current_instr(dnode).imm,
            Operand::Zero => Word16::ZERO,
            Operand::One => Word16::ONE,
        }
    }

    /// Advances the machine by one clock cycle.
    ///
    /// Dispatches to the predecoded-cache fast path or the decode-per-cycle
    /// reference path per [`MachineParams::decode_cache`]; the two are
    /// architecturally indistinguishable (see the flag's documentation).
    ///
    /// With an active [`MachineParams::faults`] configuration, the cycle is
    /// bracketed by the fault hooks: injection and the detection sweep run
    /// *before* any compute (so a detected corruption has not propagated),
    /// and stuck-output forcing runs after commit. Because every fault
    /// decision is a pure function of `(seed, salt, cycle)`, both execution
    /// paths observe the same schedule and fail at the same cycles. A
    /// nonzero [`MachineParams::watchdog_interval`] additionally checks the
    /// progress heartbeat at the cycle boundary.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on controller faults, malformed configuration
    /// writes, detected faults ([`SimError::ConfigCorruption`],
    /// [`SimError::DatapathFault`]) or a watchdog trip
    /// ([`SimError::Watchdog`]); the machine state is left at the faulting
    /// cycle boundary.
    pub fn step(&mut self) -> Result<(), SimError> {
        if self.params.watchdog_interval > 0 {
            self.watchdog_check()?;
        }
        if let Some(mut injector) = self.fault.take() {
            let result = self.step_with_faults(&mut injector);
            self.fault = Some(injector);
            result
        } else {
            self.step_inner()
        }
    }

    /// One cycle of either execution path, fault machinery aside.
    fn step_inner(&mut self) -> Result<(), SimError> {
        // The plan is moved out for the duration of the cycle so the
        // stepper can borrow the rest of the machine mutably alongside it.
        let mut plan = std::mem::take(&mut self.plan);
        let result = if self.params.decode_cache {
            self.step_cached(&mut plan)
        } else {
            self.step_decoded(&mut plan)
        };
        self.plan = plan;
        result
    }

    /// One cycle bracketed by the fault-injection hooks.
    fn step_with_faults(&mut self, injector: &mut FaultInjector) -> Result<(), SimError> {
        let cycle = self.cycle;
        if injector.config().injects() {
            let mut plan = std::mem::take(&mut self.plan);
            let begun = injector.begin_cycle(
                cycle,
                FaultCtx {
                    geometry: self.geometry,
                    config: &mut self.config,
                    dnodes: &mut self.dnodes,
                    switches: &mut self.switches,
                    plan: &mut plan,
                    stats: &mut self.stats,
                },
            );
            self.plan = plan;
            begun?;
        } else {
            // Detection-only: no injection state can change, so skip the
            // plan hand-off and the full fault context.
            injector.detect(cycle, &mut self.config, &mut self.stats)?;
        }
        self.step_inner()?;
        injector.end_cycle(cycle, &mut self.dnodes);
        Ok(())
    }

    /// The watchdog's progress-update half: folds new progress into the
    /// heartbeat without checking for a trip. Shared between the boundary
    /// check and the AOT tier's pre-burst bound (which must account any
    /// outstanding progress before it computes how many quiet cycles can
    /// elapse before the earliest possible trip).
    pub(crate) fn watchdog_observe(&mut self) {
        let progress = (
            self.stats.ctrl_instrs,
            self.stats.config_writes,
            self.stats.ctx_switches,
            self.stats.host_words_in,
            self.stats.host_words_out,
        );
        if progress != self.wd_progress {
            self.wd_progress = progress;
            self.wd_since = self.cycle;
        }
    }

    /// Cycles that may still elapse without progress before the watchdog
    /// trips (0 = a trip is due at this boundary). Only meaningful right
    /// after [`RingMachine::watchdog_observe`].
    pub(crate) fn watchdog_margin(&self) -> u64 {
        (self.wd_since + self.params.watchdog_interval).saturating_sub(self.cycle)
    }

    /// Raises [`SimError::Watchdog`] if no controller or host progress has
    /// been observed for `watchdog_interval` cycles.
    fn watchdog_check(&mut self) -> Result<(), SimError> {
        self.watchdog_observe();
        if self.cycle - self.wd_since >= self.params.watchdog_interval {
            let idle_cycles = self.cycle - self.wd_since;
            self.stats.watchdog_trips += 1;
            // Re-arm so a caller that resumes anyway gets a full interval
            // before the next trip instead of tripping every cycle.
            self.wd_since = self.cycle;
            return Err(SimError::Watchdog {
                cycle: self.cycle,
                // The *architectural* context: if a context switch is
                // staged but uncommitted at this boundary (a deopt landing
                // the same cycle as the trip), the report names the
                // post-switch context the machine has architecturally
                // decided on, not the stale pre-deopt one.
                ctx: self.config.architectural_ctx(),
                pc: self.controller.pc(),
                idle_cycles,
            });
        }
        Ok(())
    }

    /// Resets the watchdog heartbeat, granting a fresh
    /// [`MachineParams::watchdog_interval`] before the next possible trip.
    /// Harness code calls this around phases that are legitimately quiet
    /// (e.g. a long drain with the controller halted).
    pub fn pet_watchdog(&mut self) {
        self.wd_since = self.cycle;
    }

    /// Takes a full machine snapshot (architecture, statistics and pending
    /// fault state). Counted in [`crate::Stats::checkpoints`].
    pub fn checkpoint(&mut self) -> Checkpoint {
        self.stats.checkpoints += 1;
        Checkpoint {
            image: Box::new(self.clone()),
        }
    }

    /// Rewinds the machine to `checkpoint`.
    ///
    /// Everything is restored to the snapshot except the monotonic
    /// recovery counters ([`crate::Stats::checkpoints`] and
    /// [`crate::Stats::restores`]), which survive so a post-run report can
    /// still see how much recovery work happened. Restoring does *not*
    /// re-arm the transient fault schedule — a plain replay hits the same
    /// faults; call [`RingMachine::rearm_faults`] to retry under a
    /// different schedule.
    pub fn restore(&mut self, checkpoint: &Checkpoint) {
        let checkpoints = self.stats.checkpoints;
        let restores = self.stats.restores + 1;
        *self = (*checkpoint.image).clone();
        self.stats.checkpoints = checkpoints;
        self.stats.restores = restores;
    }

    /// Re-arms the transient fault schedule with a retry salt so a replay
    /// after [`RingMachine::restore`] does not re-execute the same
    /// transient flips. Permanent (stuck) faults deliberately survive:
    /// broken silicon stays broken, which is what makes
    /// [`RingMachine::remap_dnode`] necessary. Pending fault tags are
    /// dropped. No-op on a machine without fault machinery.
    pub fn rearm_faults(&mut self, salt: u64) {
        if let Some(injector) = &mut self.fault {
            injector.rearm(salt);
            injector.clear_tags();
        }
    }

    /// Accepts the current state as fault-free: drops pending datapath
    /// fault tags and re-baselines every configuration parity bit. The
    /// resume-in-place alternative to rollback for callers that repaired
    /// (or choose to tolerate) the corruption.
    pub fn acknowledge_faults(&mut self) {
        if let Some(injector) = &mut self.fault {
            injector.clear_tags();
        }
        self.config.refresh_all_parity();
    }

    /// The fault injector, if fault machinery is active.
    pub fn faults(&self) -> Option<&FaultInjector> {
        self.fault.as_deref()
    }

    /// Testing/experimentation hook: forces a permanent stuck-at fault on
    /// `dnode`'s output write port. Attaches detection-only fault
    /// machinery ([`FaultConfig::detect_only`] with a 1-cycle sweep) if
    /// none is active.
    ///
    /// # Panics
    ///
    /// Panics if `dnode` is out of range.
    pub fn force_stuck(&mut self, dnode: usize, value: Word16) {
        assert!(dnode < self.geometry.dnodes(), "dnode {dnode} out of range");
        if self.fault.is_none() {
            self.params.faults = FaultConfig::detect_only(1);
            self.fault = Some(Box::new(FaultInjector::new(
                self.params.faults,
                self.geometry.dnodes(),
            )));
        }
        self.fault
            .as_mut()
            .expect("injector just ensured")
            .force_stuck(dnode, value);
    }

    /// Finds a spare Dnode in `layer`: one in global mode, configured as a
    /// NOP in every context, and not known to be stuck. Returns its flat
    /// index.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn find_spare(&self, layer: usize) -> Option<usize> {
        let g = self.geometry;
        (0..g.width())
            .map(|lane| g.dnode_index(layer, lane))
            .find(|&d| {
                self.dnodes[d].mode() == DnodeMode::Global
                    && (0..self.config.contexts()).all(|ctx| {
                        self.config
                            .context(ctx)
                            .map(|c| c.dnode_instr(d) == MicroInstr::NOP)
                            .unwrap_or(false)
                    })
                    && self
                        .fault
                        .as_ref()
                        .is_none_or(|f| f.stuck_value(d).is_none())
            })
    }

    /// Remaps the role of Dnode `from` onto the same-layer Dnode `to` (and
    /// vice versa): their architectural state (registers, output, mode,
    /// sequencer), configuration (microinstructions and input routing in
    /// every context), output references (forward routes, feedback routes,
    /// host captures) and in-flight pipeline history all trade places. The
    /// dataflow graph is unchanged — only which physical Dnode plays which
    /// role — so a computation continues bit-identically across the remap.
    /// Used with [`RingMachine::find_spare`] to retire a Dnode with a
    /// permanent fault onto an idle spare.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::DnodeOutOfRange`] for bad indices and
    /// [`ConfigError::RemapLayerMismatch`] for a cross-layer pair.
    pub fn remap_dnode(&mut self, from: usize, to: usize) -> Result<(), ConfigError> {
        self.config.remap_dnodes(from, to)?;
        // The static proofs were walked against the original Dnode
        // placement; a remap (even an identity one, for simplicity) ends
        // their authority.
        self.invalidate_proof();
        if from == to {
            return Ok(());
        }
        let (layer, lane_from) = self.geometry.dnode_position(from);
        let (_, lane_to) = self.geometry.dnode_position(to);
        self.dnodes.swap(from, to);
        // The downstream switch's pipeline carries this layer's output
        // history; swap the lanes so feedback reads stay continuous.
        let downstream = (layer + 1) % self.geometry.layers();
        self.switches[downstream]
            .pipe
            .swap_lanes(lane_from, lane_to);
        // Mode and sequencer state moved between Dnode slots: rebuild the
        // affected plan entries.
        self.plan.note_mode_write();
        self.plan.note_seq_write(from);
        self.plan.note_seq_write(to);
        Ok(())
    }

    /// One cycle of the decode-per-cycle reference path.
    fn step_decoded(&mut self, plan: &mut DecodedPlan) -> Result<(), SimError> {
        let cycle = self.cycle;
        let width = self.geometry.width();
        let layers = self.geometry.layers();

        // ---- Compute phase -------------------------------------------------
        // 1. Dnode datapaths: resolve operands against pre-cycle state.
        let mut hostin_reads: Vec<Vec<bool>> = (0..self.geometry.switches())
            .map(|s| vec![false; self.switches[s].host_in.len()])
            .collect();
        let mut underflows = 0u64;
        let mut plans = Vec::with_capacity(self.geometry.dnodes());
        let mut bus_drives: Vec<Word16> = Vec::new();

        for layer in 0..layers {
            for lane in 0..width {
                let d = self.geometry.dnode_index(layer, lane);
                let instr = self.current_instr(d);
                let a = self.resolve_operand(
                    d,
                    layer,
                    lane,
                    instr.src_a,
                    &mut hostin_reads,
                    &mut underflows,
                );
                let b = self.resolve_operand(
                    d,
                    layer,
                    lane,
                    instr.src_b,
                    &mut hostin_reads,
                    &mut underflows,
                );
                let acc = instr
                    .wr_reg
                    .filter(|_| instr.alu.uses_accumulator())
                    .map(|reg| self.dnodes[d].reg(reg))
                    .unwrap_or(Word16::ZERO);
                let result = instr.alu.eval(a, b, acc);
                if instr.wr_bus {
                    bus_drives.push(result);
                }
                plans.push(DnodePlan { instr, result });
            }
        }
        self.stats.fifo_underflows += underflows;

        // Consume host-input FIFO heads that were read this cycle.
        for (s, ports) in hostin_reads.iter().enumerate() {
            for (p, read) in ports.iter().enumerate() {
                if *read {
                    self.switches[s].host_in[p].pop();
                }
            }
        }

        // 2. Controller.
        let ctrl_step = self.controller_substep(cycle)?;

        // 3. Host stream movement (words pushed now are visible next cycle).
        self.host.step(&mut self.switches, &mut self.stats);

        // ---- Commit phase ---------------------------------------------------
        // Gather pre-commit layer-output vectors for pipelines and captures.
        let captures: Vec<Vec<Word16>> = (0..self.geometry.switches())
            .map(|s| {
                let layer = self.geometry.upstream_layer(s);
                (0..width)
                    .map(|lane| self.dnodes[self.geometry.dnode_index(layer, lane)].out())
                    .collect()
            })
            .collect();

        // Host captures (under the context active this cycle): each of the
        // switch's `width` out-ports captures its selected lane.
        for (s, vector) in captures.iter().enumerate() {
            for port in 0..width {
                if let Some(lane) = self.config.active().capture(width, s, port).selected() {
                    if self.switches[s].host_out[port].push(vector[lane as usize])
                        == PushOutcome::Dropped
                    {
                        self.stats.fifo_overflows += 1;
                    }
                }
            }
        }

        // Feedback pipelines.
        for (s, vector) in captures.into_iter().enumerate() {
            self.switches[s].pipe.push(vector);
        }

        // Dnode registers, outputs and sequencers; statistics.
        for (d, plan) in plans.iter().enumerate() {
            use systolic_ring_isa::dnode::AluOp;
            self.dnodes[d].stage(&plan.instr, plan.result);
            self.dnodes[d].commit(cycle);
            if self.dnodes[d].mode() == DnodeMode::Local {
                self.stats.dnodes[d].local_cycles += 1;
            }
            if plan.instr.alu != AluOp::Nop {
                self.stats.dnodes[d].active_cycles += 1;
                self.stats.dnodes[d].alu_ops += 1;
                if plan.instr.alu.uses_multiplier() {
                    self.stats.dnodes[d].mult_ops += 1;
                }
            }
        }

        // Controller effects (after Dnode commit so mode/sequencer writes
        // take effect cleanly at the next cycle boundary).
        for effect in &ctrl_step.effects {
            self.apply_effect(effect, plan)
                .map_err(|cause| SimError::BadConfigWrite { cycle, cause })?;
        }

        // Shared bus: controller drive wins, then the lowest-index Dnode.
        let ctrl_drive = ctrl_step.effects.iter().find_map(|e| match e {
            CtrlEffect::DriveBus(w) => Some(*w),
            _ => None,
        });
        let total_drivers = bus_drives.len() + usize::from(ctrl_drive.is_some());
        if total_drivers > 1 {
            self.stats.bus_conflicts += 1;
        }
        if let Some(word) = ctrl_drive.or_else(|| bus_drives.first().copied()) {
            self.bus = word;
        }

        // Active-context switch staged by the controller.
        if self.config.commit() {
            self.stats.ctx_switches += 1;
        }

        self.cycle += 1;
        self.stats.cycles += 1;
        Ok(())
    }

    /// One cycle of the predecoded-cache fast path.
    ///
    /// Structurally a mirror of [`RingMachine::step_decoded`] with the same
    /// phase ordering and the per-cycle decode, allocation and idle-Dnode
    /// work hoisted into [`DecodedPlan`]; every architectural effect and
    /// statistic is reproduced exactly.
    fn step_cached(&mut self, plan: &mut DecodedPlan) -> Result<(), SimError> {
        let cycle = self.cycle;

        // ---- Compute phase -------------------------------------------------
        // 0. Bring the active context's plan up to date.
        let active_ctx = self.config.active_index();
        let misses = plan.refresh(active_ctx, &self.config, &self.dnodes, self.geometry);
        if misses == 0 {
            self.stats.decode_cache_hits += 1;
        } else {
            self.stats.decode_cache_misses += misses;
        }

        // 1. Dnode datapaths, over the work list only.
        let (cp, scratch) = plan.parts(active_ctx);
        scratch.begin();
        let mut underflows = 0u64;
        let mut bus_first: Option<Word16> = None;
        let mut bus_count = 0usize;
        for &d32 in &cp.work {
            let d = d32 as usize;
            let op = match self.dnodes[d].mode() {
                DnodeMode::Global => &cp.ops[d],
                DnodeMode::Local => {
                    let lp = cp.local[d].as_ref().expect("local plan refreshed");
                    &lp.ops[self.dnodes[d].sequencer().counter() as usize]
                }
            };
            if op.skip {
                // An idle local-mode slot computes nothing, but the commit
                // phase must still advance the sequencer and count the
                // local cycle.
                scratch.staged.push(StagedWrite {
                    dnode: d32,
                    result: Word16::ZERO,
                    wr_reg: None,
                    wr_out: false,
                    active: false,
                    mult: false,
                });
                continue;
            }
            let a = self.read_fast(op.a, d, scratch, &mut underflows);
            let b = self.read_fast(op.b, d, scratch, &mut underflows);
            let acc = op
                .acc
                .map(|reg| self.dnodes[d].reg(reg))
                .unwrap_or(Word16::ZERO);
            let result = op.alu.eval(a, b, acc);
            if op.wr_bus {
                if bus_first.is_none() {
                    bus_first = Some(result);
                }
                bus_count += 1;
            }
            scratch.staged.push(StagedWrite {
                dnode: d32,
                result,
                wr_reg: op.wr_reg,
                wr_out: op.wr_out,
                active: op.active,
                mult: op.mult,
            });
        }
        self.stats.fifo_underflows += underflows;

        // Consume the host-input FIFO heads read this cycle.
        let stride = scratch.hostin_stride;
        for &flat in &scratch.hostin_touched {
            let flat = flat as usize;
            self.switches[flat / stride].host_in[flat % stride].pop();
        }

        // 2. Controller.
        let ctrl_step = self.controller_substep(cycle)?;

        // 3. Host stream movement (words pushed now are visible next cycle).
        self.host.step(&mut self.switches, &mut self.stats);

        // ---- Commit phase ---------------------------------------------------
        // Host captures from pre-commit outputs, in commit order.
        for cap in &cp.captures {
            let word = self.dnodes[cap.src].out();
            if self.switches[cap.switch].host_out[cap.port].push(word) == PushOutcome::Dropped {
                self.stats.fifo_overflows += 1;
            }
        }

        // Feedback pipelines, allocation-free.
        let geometry = self.geometry;
        let dnodes = &self.dnodes;
        for (s, switch) in self.switches.iter_mut().enumerate() {
            let layer = geometry.upstream_layer(s);
            switch
                .pipe
                .rotate_with(|lane| dnodes[geometry.dnode_index(layer, lane)].out());
        }

        // Dnode registers, outputs and sequencers; statistics.
        for st in &scratch.staged {
            let d = st.dnode as usize;
            self.dnodes[d].stage_write(st.wr_reg, st.wr_out, st.result);
            self.dnodes[d].commit(cycle);
            if self.dnodes[d].mode() == DnodeMode::Local {
                self.stats.dnodes[d].local_cycles += 1;
            }
            if st.active {
                self.stats.dnodes[d].active_cycles += 1;
                self.stats.dnodes[d].alu_ops += 1;
                if st.mult {
                    self.stats.dnodes[d].mult_ops += 1;
                }
            }
        }

        // Controller effects (after Dnode commit so mode/sequencer writes
        // take effect cleanly at the next cycle boundary).
        for effect in &ctrl_step.effects {
            self.apply_effect(effect, plan)
                .map_err(|cause| SimError::BadConfigWrite { cycle, cause })?;
        }

        // Shared bus: controller drive wins, then the lowest-index Dnode.
        let ctrl_drive = ctrl_step.effects.iter().find_map(|e| match e {
            CtrlEffect::DriveBus(w) => Some(*w),
            _ => None,
        });
        let total_drivers = bus_count + usize::from(ctrl_drive.is_some());
        if total_drivers > 1 {
            self.stats.bus_conflicts += 1;
        }
        if let Some(word) = ctrl_drive.or(bus_first) {
            self.bus = word;
        }

        // Active-context switch staged by the controller.
        if self.config.commit() {
            self.stats.ctx_switches += 1;
        }

        self.cycle += 1;
        self.stats.cycles += 1;
        Ok(())
    }

    /// The controller's share of the compute phase (both paths, and the
    /// AOT schedule burst's per-cycle controller replay).
    pub(crate) fn controller_substep(&mut self, cycle: u64) -> Result<CtrlStep, SimError> {
        let ctrl_step = {
            let mut ports = PortsAdapter {
                bus: self.bus,
                switches: &mut self.switches,
            };
            self.controller
                .step(&mut ports)
                .map_err(|fault| match fault {
                    CtrlFault::PcOutOfRange { pc } => SimError::PcOutOfRange { cycle, pc },
                    CtrlFault::BadInstruction { pc, cause } => {
                        SimError::BadInstruction { cycle, pc, cause }
                    }
                    CtrlFault::DmemOutOfRange { addr } => SimError::DmemOutOfRange { cycle, addr },
                    CtrlFault::BadPort(cause) => SimError::BadConfigWrite { cycle, cause },
                })?
        };
        if ctrl_step.retired {
            self.stats.ctrl_instrs += 1;
        } else {
            self.stats.ctrl_stall_cycles += 1;
        }
        Ok(ctrl_step)
    }

    /// Reads one pre-resolved operand source against pre-cycle state
    /// (the fast path's [`RingMachine::resolve_source`]).
    fn read_fast(
        &self,
        src: FastSrc,
        dnode: usize,
        scratch: &mut Scratch,
        underflows: &mut u64,
    ) -> Word16 {
        match src {
            FastSrc::Const(word) => word,
            FastSrc::Reg(reg) => self.dnodes[dnode].reg(reg),
            FastSrc::Bus => self.bus,
            FastSrc::Out(index) => self.dnodes[index].out(),
            FastSrc::Pipe {
                switch,
                stage,
                lane,
            } => self.switches[switch].pipe.read(stage, lane),
            FastSrc::HostIn { switch, port } => {
                scratch.mark_hostin(switch, port);
                match self.switches[switch].host_in[port].peek() {
                    Some(word) => word,
                    None => {
                        *underflows += 1;
                        Word16::ZERO
                    }
                }
            }
        }
    }

    fn apply_effect(
        &mut self,
        effect: &CtrlEffect,
        plan: &mut DecodedPlan,
    ) -> Result<(), ConfigError> {
        match *effect {
            CtrlEffect::WriteDnode { ctx, dnode, word } => {
                let instr = MicroInstr::decode(word)?;
                self.config.set_dnode_instr(ctx, dnode, instr)?;
                self.stats.config_writes += 1;
                Ok(())
            }
            CtrlEffect::WritePort { ctx, flat, word } => {
                let source = PortSource::decode(word)?;
                self.config.set_port_flat(ctx, flat, source)?;
                self.stats.config_writes += 1;
                Ok(())
            }
            CtrlEffect::WriteCapture {
                ctx,
                switch,
                port,
                word,
            } => {
                let capture = HostCapture::decode(word)?;
                self.config.set_capture(ctx, switch, port, capture)?;
                self.stats.config_writes += 1;
                Ok(())
            }
            CtrlEffect::WriteMode { dnode, local } => {
                let dnodes = self.geometry.dnodes();
                if dnode >= dnodes {
                    return Err(ConfigError::DnodeOutOfRange { dnode, dnodes });
                }
                let mode = if local {
                    DnodeMode::Local
                } else {
                    DnodeMode::Global
                };
                if self.dnodes[dnode].mode() != mode {
                    plan.note_mode_write();
                }
                self.dnodes[dnode].set_mode(mode);
                self.stats.config_writes += 1;
                Ok(())
            }
            CtrlEffect::WriteLocalSlot { dnode, slot, word } => {
                let dnodes = self.geometry.dnodes();
                if dnode >= dnodes {
                    return Err(ConfigError::DnodeOutOfRange { dnode, dnodes });
                }
                if slot >= 8 {
                    return Err(ConfigError::SlotOutOfRange { slot });
                }
                let instr = MicroInstr::decode(word)?;
                self.dnodes[dnode].sequencer_mut().set_slot(slot, instr);
                plan.note_seq_write(dnode);
                self.stats.config_writes += 1;
                Ok(())
            }
            CtrlEffect::WriteLocalLimit { dnode, limit } => {
                let dnodes = self.geometry.dnodes();
                if dnode >= dnodes {
                    return Err(ConfigError::DnodeOutOfRange { dnode, dnodes });
                }
                if !(1..=8).contains(&limit) {
                    return Err(ConfigError::BadLocalLimit {
                        limit: limit as usize,
                    });
                }
                self.dnodes[dnode].sequencer_mut().set_limit(limit as u8);
                // `set_limit` resets the counter, which the fused engine's
                // phase anchoring depends on.
                plan.note_seq_write(dnode);
                self.stats.config_writes += 1;
                Ok(())
            }
            CtrlEffect::SetActiveCtx(ctx) => self.config.stage_select(ctx),
            CtrlEffect::DriveBus(_) => Ok(()), // handled by the bus arbiter
            CtrlEffect::HostPush { switch, port, word } => {
                let switches = self.switches.len();
                let state = self
                    .switches
                    .get_mut(switch)
                    .ok_or(ConfigError::SwitchOutOfRange { switch, switches })?;
                let ports = state.host_in.len();
                let fifo = state
                    .host_in
                    .get_mut(port)
                    .ok_or(ConfigError::HostPortOutOfRange { port, ports })?;
                if fifo.push(word) == PushOutcome::Dropped {
                    self.stats.fifo_overflows += 1;
                }
                Ok(())
            }
        }
    }

    /// Runs `cycles` clock cycles.
    ///
    /// This is the entry point for fused steady-state bursts (see
    /// [`MachineParams::fused`]): when the machine is quiescent and the
    /// configuration has been stable long enough, a whole window of cycles
    /// executes as one compiled burst; otherwise (and always for the
    /// warmup prefix) the machine advances one [`RingMachine::step`] at a
    /// time. Either way, exactly `cycles` cycles are executed.
    ///
    /// # Errors
    ///
    /// Returns the first [`SimError`] encountered.
    pub fn run(&mut self, cycles: u64) -> Result<(), SimError> {
        let mut remaining = cycles;
        while remaining > 0 {
            // Tier dispatch: AOT superblocks first (content-keyed cache,
            // no detection warmup), then the fused engine, then stepping.
            let burst = match self.try_aot(remaining) {
                0 => self.try_fused(remaining),
                b => b,
            };
            if burst == 0 {
                self.step()?;
                remaining -= 1;
            } else {
                remaining -= burst;
            }
        }
        Ok(())
    }

    /// Runs until the controller halts, executing at most `max_cycles`
    /// further cycles. Returns the number of cycles executed.
    ///
    /// # Budget-boundary semantics
    ///
    /// The halt flag is sampled at cycle *boundaries*, before each step:
    /// an already-halted machine executes zero cycles, and a `halt`
    /// retiring on some cycle is itself the last cycle counted. The budget
    /// is exact — this method never "overshoots mid-step". In particular,
    /// on [`SimError::CycleLimit`] exactly `max_cycles` cycles have been
    /// executed and are reflected in [`RingMachine::cycle`] (and in the
    /// statistics), and the machine can simply be resumed with a fresh
    /// budget. The batch runner's `UntilHalt` accounting slices its total
    /// budget through this method and relies on that exactness.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimit`] if the controller has not halted
    /// within the budget, or any fault encountered earlier.
    ///
    /// # Examples
    ///
    /// ```
    /// use systolic_ring_core::{RingMachine, SimError};
    /// use systolic_ring_isa::ctrl::CtrlInstr;
    /// use systolic_ring_isa::RingGeometry;
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    /// m.controller_mut().load_program(&[
    ///     CtrlInstr::Wait { cycles: 3 }.encode(),
    ///     CtrlInstr::Halt.encode(),
    /// ])?;
    /// // Budget exhausted: exactly 2 cycles ran, not one more.
    /// assert!(matches!(
    ///     m.run_until_halt(2),
    ///     Err(SimError::CycleLimit { limit: 2 })
    /// ));
    /// assert_eq!(m.cycle(), 2);
    /// // Resuming finishes the wait; the halt occupies its own cycle.
    /// let executed = m.run_until_halt(64)?;
    /// assert_eq!(m.cycle(), 2 + executed);
    /// assert!(m.controller().is_halted());
    /// // A halted machine runs zero further cycles.
    /// assert_eq!(m.run_until_halt(64)?, 0);
    /// # Ok(())
    /// # }
    /// ```
    pub fn run_until_halt(&mut self, max_cycles: u64) -> Result<u64, SimError> {
        let start = self.cycle;
        while !self.controller.is_halted() {
            if self.cycle - start >= max_cycles {
                return Err(SimError::CycleLimit { limit: max_cycles });
            }
            // A compiled burst never runs with the controller halted here,
            // so it covers a pending `wait` or an admitted schedule region
            // — whose cycles all count against the budget exactly as
            // stepping them would.
            let budget = max_cycles - (self.cycle - start);
            let burst = match self.try_aot(budget) {
                0 => self.try_fused(budget),
                b => b,
            };
            if burst == 0 {
                self.step()?;
            }
        }
        Ok(self.cycle - start)
    }
}
