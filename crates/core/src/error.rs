//! Error types for configuration and simulation.

use std::fmt;

use systolic_ring_isa::ctrl::DecodeCtrlError;
use systolic_ring_isa::dnode::DecodeMicroError;
use systolic_ring_isa::switch::DecodeSwitchError;

use crate::fault::FaultSite;

/// Error raised when configuring the machine (programmatically or through a
/// loaded object) with out-of-range indices or malformed words.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ConfigError {
    /// Context index exceeds the machine's context count.
    ContextOutOfRange {
        /// Offending context index.
        ctx: usize,
        /// Number of contexts in this machine.
        contexts: usize,
    },
    /// Dnode index exceeds the geometry's Dnode count.
    DnodeOutOfRange {
        /// Offending Dnode index.
        dnode: usize,
        /// Number of Dnodes in this machine.
        dnodes: usize,
    },
    /// Switch index exceeds the geometry's switch count.
    SwitchOutOfRange {
        /// Offending switch index.
        switch: usize,
        /// Number of switches in this machine.
        switches: usize,
    },
    /// Lane index exceeds the geometry's width.
    LaneOutOfRange {
        /// Offending lane.
        lane: usize,
        /// Ring width.
        width: usize,
    },
    /// Input-port index exceeds the per-Dnode port count (4).
    PortOutOfRange {
        /// Offending port index.
        port: usize,
    },
    /// Host-input port index exceeds the switch's port count (`2 * width`).
    HostPortOutOfRange {
        /// Offending host-input port.
        port: usize,
        /// Host-input ports per switch.
        ports: usize,
    },
    /// Local-sequencer slot exceeds `S8`.
    SlotOutOfRange {
        /// Offending slot index.
        slot: usize,
    },
    /// Sequencer limit outside `1..=8`.
    BadLocalLimit {
        /// Offending limit.
        limit: usize,
    },
    /// A routed pipeline stage exceeds the configured pipeline depth.
    StageOutOfRange {
        /// Offending stage.
        stage: usize,
        /// Configured feedback-pipeline depth.
        depth: usize,
    },
    /// Microinstruction word failed to decode.
    BadMicroWord(DecodeMicroError),
    /// Switch configuration word failed to decode.
    BadSwitchWord(DecodeSwitchError),
    /// A program's declared geometry does not match the machine.
    GeometryMismatch {
        /// Geometry declared by the object.
        declared: systolic_ring_isa::RingGeometry,
        /// Geometry of the machine being loaded.
        machine: systolic_ring_isa::RingGeometry,
    },
    /// A program requires more contexts than the machine provides.
    NotEnoughContexts {
        /// Contexts required by the object.
        required: usize,
        /// Contexts available in the machine.
        available: usize,
    },
    /// Controller program does not fit in program memory.
    ProgramTooLarge {
        /// Words in the program.
        words: usize,
        /// Program memory capacity in words.
        capacity: usize,
    },
    /// Initial data does not fit in controller data memory.
    DataTooLarge {
        /// Words of initial data.
        words: usize,
        /// Data memory capacity in words.
        capacity: usize,
    },
    /// A Dnode remap pairs two Dnodes from different layers.
    ///
    /// Remapping swaps a faulty Dnode with a spare *within its layer*; a
    /// cross-layer swap would change the dataflow topology.
    RemapLayerMismatch {
        /// The Dnode being remapped away from.
        from: usize,
        /// The requested replacement.
        to: usize,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ContextOutOfRange { ctx, contexts } => {
                write!(f, "context {ctx} out of range (machine has {contexts})")
            }
            ConfigError::DnodeOutOfRange { dnode, dnodes } => {
                write!(f, "dnode {dnode} out of range (machine has {dnodes})")
            }
            ConfigError::SwitchOutOfRange { switch, switches } => {
                write!(f, "switch {switch} out of range (machine has {switches})")
            }
            ConfigError::LaneOutOfRange { lane, width } => {
                write!(f, "lane {lane} out of range (width {width})")
            }
            ConfigError::PortOutOfRange { port } => {
                write!(f, "input port {port} out of range (dnodes have 4 ports)")
            }
            ConfigError::HostPortOutOfRange { port, ports } => {
                write!(
                    f,
                    "host-input port {port} out of range (switch has {ports})"
                )
            }
            ConfigError::SlotOutOfRange { slot } => {
                write!(f, "sequencer slot {slot} out of range (S1..S8)")
            }
            ConfigError::BadLocalLimit { limit } => {
                write!(f, "sequencer limit {limit} outside 1..=8")
            }
            ConfigError::StageOutOfRange { stage, depth } => {
                write!(f, "pipeline stage {stage} out of range (depth {depth})")
            }
            ConfigError::BadMicroWord(e) => write!(f, "bad microinstruction word: {e}"),
            ConfigError::BadSwitchWord(e) => write!(f, "bad switch word: {e}"),
            ConfigError::GeometryMismatch { declared, machine } => write!(
                f,
                "object assembled for {declared} but machine is {machine}"
            ),
            ConfigError::NotEnoughContexts {
                required,
                available,
            } => write!(
                f,
                "object requires {required} configuration contexts, machine has {available}"
            ),
            ConfigError::ProgramTooLarge { words, capacity } => write!(
                f,
                "controller program of {words} words exceeds program memory ({capacity} words)"
            ),
            ConfigError::DataTooLarge { words, capacity } => write!(
                f,
                "initial data of {words} words exceeds data memory ({capacity} words)"
            ),
            ConfigError::RemapLayerMismatch { from, to } => write!(
                f,
                "cannot remap dnode {from} onto dnode {to}: different layers"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

impl From<DecodeMicroError> for ConfigError {
    fn from(err: DecodeMicroError) -> Self {
        ConfigError::BadMicroWord(err)
    }
}

impl From<DecodeSwitchError> for ConfigError {
    fn from(err: DecodeSwitchError) -> Self {
        ConfigError::BadSwitchWord(err)
    }
}

/// Error raised while the machine is running (a "machine check").
///
/// Simulation errors indicate a *program* bug — the controller wrote a
/// malformed configuration word or jumped outside program memory — and carry
/// the cycle at which they occurred.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The controller fetched from an address outside program memory.
    PcOutOfRange {
        /// Cycle of the fault.
        cycle: u64,
        /// Faulting program counter.
        pc: u32,
    },
    /// The controller fetched a word that is not a valid instruction.
    BadInstruction {
        /// Cycle of the fault.
        cycle: u64,
        /// Faulting program counter.
        pc: u32,
        /// Decode failure.
        cause: DecodeCtrlError,
    },
    /// The controller accessed data memory out of range.
    DmemOutOfRange {
        /// Cycle of the fault.
        cycle: u64,
        /// Faulting word address.
        addr: u32,
    },
    /// A configuration write raised a configuration error.
    BadConfigWrite {
        /// Cycle of the fault.
        cycle: u64,
        /// Underlying configuration error.
        cause: ConfigError,
    },
    /// `run_until_halt` exhausted its cycle budget.
    CycleLimit {
        /// The exhausted budget.
        limit: u64,
    },
    /// A configuration-parity scrub found a corrupted configuration entry.
    ///
    /// Raised at the start of the faulting cycle, before any compute, so
    /// with a scrub interval of 1 the corruption has not propagated into
    /// the datapath yet; the machine can be rolled back to a checkpoint
    /// (or the configuration rewritten) and resumed.
    ConfigCorruption {
        /// Cycle of the detection.
        cycle: u64,
        /// Context holding the corrupted entry.
        ctx: usize,
        /// Dnode whose configuration (microinstruction or input routing)
        /// failed its parity check.
        dnode: usize,
    },
    /// A datapath-fault sweep found a flipped or stuck datapath word.
    DatapathFault {
        /// Cycle of the detection.
        cycle: u64,
        /// Configuration context that was active at detection time.
        ctx: usize,
        /// Where the fault landed.
        site: FaultSite,
    },
    /// The watchdog expired: no controller or host progress for the
    /// configured interval (see
    /// [`MachineParams::watchdog_interval`](crate::MachineParams::watchdog_interval)).
    Watchdog {
        /// Cycle of the trip.
        cycle: u64,
        /// Configuration context that was active when the trip fired —
        /// the context the fabric sat idle in.
        ctx: usize,
        /// Controller program counter at the trip, locating the stall in
        /// the controller program.
        pc: u32,
        /// Cycles elapsed since the last observed progress.
        idle_cycles: u64,
    },
}

impl SimError {
    /// `true` for errors raised by the fault-detection machinery
    /// (parity scrubs, datapath sweeps, the watchdog) — the errors a
    /// retry policy treats as recoverable, as opposed to program bugs.
    pub fn is_detected_fault(&self) -> bool {
        matches!(
            self,
            SimError::ConfigCorruption { .. }
                | SimError::DatapathFault { .. }
                | SimError::Watchdog { .. }
        )
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PcOutOfRange { cycle, pc } => {
                write!(f, "cycle {cycle}: pc {pc:#x} outside program memory")
            }
            SimError::BadInstruction { cycle, pc, cause } => {
                write!(f, "cycle {cycle}: bad instruction at pc {pc:#x}: {cause}")
            }
            SimError::DmemOutOfRange { cycle, addr } => {
                write!(
                    f,
                    "cycle {cycle}: data access at {addr:#x} outside data memory"
                )
            }
            SimError::BadConfigWrite { cycle, cause } => {
                write!(f, "cycle {cycle}: bad configuration write: {cause}")
            }
            SimError::CycleLimit { limit } => {
                write!(f, "machine did not halt within {limit} cycles")
            }
            SimError::ConfigCorruption { cycle, ctx, dnode } => {
                write!(
                    f,
                    "cycle {cycle}: configuration parity mismatch in context {ctx} at dnode {dnode}"
                )
            }
            SimError::DatapathFault { cycle, ctx, site } => {
                write!(
                    f,
                    "cycle {cycle}: datapath fault in context {ctx} at {site}"
                )
            }
            SimError::Watchdog {
                cycle,
                ctx,
                pc,
                idle_cycles,
            } => {
                write!(
                    f,
                    "cycle {cycle}: watchdog expired after {idle_cycles} cycles without \
                     progress in context {ctx} at controller pc {pc:#x}"
                )
            }
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::BadInstruction { cause, .. } => Some(cause),
            SimError::BadConfigWrite { cause, .. } => Some(cause),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let err = ConfigError::DnodeOutOfRange {
            dnode: 9,
            dnodes: 8,
        };
        assert!(err.to_string().contains("dnode 9"));
        let err = SimError::CycleLimit { limit: 100 };
        assert!(err.to_string().contains("100"));
    }

    /// Every detected-fault variant locates itself: the active context is
    /// always named, and the Dnode (or controller pc, for the watchdog,
    /// which has no single faulting Dnode) pins the coordinate — so a
    /// server-side error report is actionable without machine access.
    #[test]
    fn detected_faults_carry_context_coordinates() {
        let corruption = SimError::ConfigCorruption {
            cycle: 7,
            ctx: 2,
            dnode: 5,
        };
        assert!(corruption.to_string().contains("context 2"));
        assert!(corruption.to_string().contains("dnode 5"));
        let datapath = SimError::DatapathFault {
            cycle: 9,
            ctx: 1,
            site: FaultSite::StuckOut { dnode: 3 },
        };
        assert!(datapath.to_string().contains("context 1"));
        assert!(datapath.to_string().contains("dnode 3"));
        let watchdog = SimError::Watchdog {
            cycle: 64,
            ctx: 4,
            pc: 0x1f,
            idle_cycles: 64,
        };
        assert!(watchdog.to_string().contains("context 4"));
        assert!(watchdog.to_string().contains("pc 0x1f"));
        for err in [corruption, datapath, watchdog] {
            assert!(err.is_detected_fault());
        }
    }

    #[test]
    fn sim_error_exposes_source() {
        use std::error::Error;
        let err = SimError::BadConfigWrite {
            cycle: 3,
            cause: ConfigError::PortOutOfRange { port: 7 },
        };
        assert!(err.source().is_some());
        assert!(SimError::CycleLimit { limit: 1 }.source().is_none());
    }
}
