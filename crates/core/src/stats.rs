//! Execution statistics gathered by the simulator.
//!
//! The evaluation leans on these counters: cycle counts drive every
//! performance table, operation counts give the MIPS figures of §5.1, and
//! per-Dnode activity gives the fabric-utilization claims ("25% of the Ring
//! structure remains free", Table 2 discussion).

/// Counters for one Dnode.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DnodeStats {
    /// Cycles in which the Dnode executed a non-NOP microinstruction.
    pub active_cycles: u64,
    /// ALU operations executed (every non-NOP counts one).
    pub alu_ops: u64,
    /// Operations that also engaged the hardwired multiplier; the MAC
    /// family counts here *and* in `alu_ops` (two arithmetic operations in
    /// one cycle, as the paper advertises).
    pub mult_ops: u64,
    /// Cycles spent in local (stand-alone) mode.
    pub local_cycles: u64,
}

/// Machine-wide execution statistics.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Stats {
    /// Clock cycles simulated.
    pub cycles: u64,
    /// Per-Dnode counters, indexed by flat Dnode index.
    pub dnodes: Vec<DnodeStats>,
    /// Controller instructions retired (excludes stall cycles).
    pub ctrl_instrs: u64,
    /// Controller cycles spent stalled (`wait`, blocked `hpop`, halted).
    pub ctrl_stall_cycles: u64,
    /// Configuration words written by the controller (`wdn`/`wsw`/`who`/
    /// `wloc`/`wlim`/`wmode`).
    pub config_writes: u64,
    /// Active-context switches performed (`ctx`).
    pub ctx_switches: u64,
    /// Words delivered from host streams into switch FIFOs.
    pub host_words_in: u64,
    /// Words drained from switch FIFOs into host sinks.
    pub host_words_out: u64,
    /// Cycles in which host traffic was deferred by the link model.
    pub link_stall_cycles: u64,
    /// Reads of an empty host-input FIFO (returned zero).
    pub fifo_underflows: u64,
    /// Captures dropped because a host-output FIFO was full.
    pub fifo_overflows: u64,
    /// Cycles in which more than one writer drove the shared bus.
    pub bus_conflicts: u64,
    /// Cycles the predecoded-configuration fast path ran without rebuilding
    /// any cache entry (always 0 when the cache is disabled).
    pub decode_cache_hits: u64,
    /// Predecoded-cache entries (re)built: one per Dnode plan, capture
    /// plan, work-list or local-loop unroll decoded (always 0 when the
    /// cache is disabled).
    pub decode_cache_misses: u64,
    /// Fused bursts entered: each counts one transition from the decoded
    /// path into replay of a compiled steady-state program (always 0 when
    /// [`crate::MachineParams::fused`] is off).
    pub fused_entries: u64,
    /// Compiled fused programs invalidated by a reconfiguration write,
    /// context switch, armed fault injector, watchdog arm or link change —
    /// each is a forced return to the decoded path. A high ratio of deopts
    /// to entries is a deopt storm: the workload reconfigures too often for
    /// fusion to pay off.
    pub fused_deopts: u64,
    /// Cycles executed inside fused bursts (subset of `cycles`; fused
    /// cycles do not count `decode_cache_hits`).
    pub fused_cycles: u64,
    /// Lane-cycles executed inside fused bursts: each burst adds
    /// `lanes x cycles`, so single-lane fusion adds exactly `fused_cycles`
    /// and multi-lane (lockstep batch) fusion adds more. The mean lane
    /// occupancy of the fused engine is `fused_lane_occupancy /
    /// fused_cycles`.
    pub fused_lane_occupancy: u64,
    /// AOT superblock bursts entered: each counts one guard-checked entry
    /// into a content-keyed compiled program (always 0 when
    /// [`crate::MachineParams::aot`] is off).
    pub aot_entries: u64,
    /// Cycles executed inside AOT bursts (subset of `cycles`, disjoint
    /// from `fused_cycles`: a cycle is accounted to whichever engine ran
    /// it).
    pub aot_cycles: u64,
    /// Programs compiled into the AOT phase cache, at load-time prefill or
    /// on a run-time guard miss.
    pub aot_compiles: u64,
    /// Guard checks whose content fingerprint matched no cached program —
    /// the AOT tier's deopt analogue, except the stitch compiles the new
    /// phase instead of abandoning compiled execution.
    pub aot_guard_misses: u64,
    /// Runtime phase guards skipped because a static proof manifest
    /// (see `RingMachine::attach_proof`) covered the check: fused-tier
    /// stability-detection windows waived and AOT guard-hash probes
    /// short-circuited once the linter proved the configuration stable.
    /// Zeroed by [`Stats::without_cache_counters`] — eliding a guard must
    /// never change architectural state.
    pub guards_elided: u64,
    /// Faults injected by the fault injector (all classes).
    pub faults_injected: u64,
    /// Detection sweeps executed (configuration parity plus pending
    /// datapath fault tags).
    pub parity_scrubs: u64,
    /// Configuration corruptions caught by a parity scrub.
    pub config_faults_detected: u64,
    /// Datapath faults (register/pipeline/sequencer flips, stuck outputs)
    /// caught by a detection sweep.
    pub datapath_faults_detected: u64,
    /// Watchdog expirations.
    pub watchdog_trips: u64,
    /// Checkpoints taken via [`crate::RingMachine::checkpoint`].
    pub checkpoints: u64,
    /// Restores performed via [`crate::RingMachine::restore`]; survives
    /// the rollback itself (it is not rewound to the checkpointed value).
    pub restores: u64,
}

impl Stats {
    /// Creates zeroed statistics for `dnodes` Dnodes.
    pub fn new(dnodes: usize) -> Self {
        Stats {
            dnodes: vec![DnodeStats::default(); dnodes],
            ..Stats::default()
        }
    }

    /// Total ALU operations across the fabric.
    pub fn total_ops(&self) -> u64 {
        self.dnodes.iter().map(|d| d.alu_ops + d.mult_ops).sum()
    }

    /// Fabric utilization: mean fraction of Dnodes active per cycle.
    ///
    /// Returns 0.0 before any cycle has run.
    pub fn utilization(&self) -> f64 {
        if self.cycles == 0 || self.dnodes.is_empty() {
            return 0.0;
        }
        let active: u64 = self.dnodes.iter().map(|d| d.active_cycles).sum();
        active as f64 / (self.cycles as f64 * self.dnodes.len() as f64)
    }

    /// Number of Dnodes that never executed an operation (free fabric).
    pub fn idle_dnodes(&self) -> usize {
        self.dnodes.iter().filter(|d| d.active_cycles == 0).count()
    }

    /// Operations per cycle achieved over the run.
    pub fn ops_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.total_ops() as f64 / self.cycles as f64
        }
    }

    /// Accumulates `other` into `self`, counter by counter.
    ///
    /// Per-Dnode counters are added index-wise; if `other` covers more
    /// Dnodes (a bigger geometry), `self` grows to match. The batch
    /// engine uses this to fold per-job statistics into one batch-level
    /// record, so derived figures (utilization, ops/cycle) read as
    /// aggregates over the summed cycle base.
    pub fn merge(&mut self, other: &Stats) {
        if self.dnodes.len() < other.dnodes.len() {
            self.dnodes
                .resize(other.dnodes.len(), DnodeStats::default());
        }
        for (mine, theirs) in self.dnodes.iter_mut().zip(&other.dnodes) {
            mine.active_cycles += theirs.active_cycles;
            mine.alu_ops += theirs.alu_ops;
            mine.mult_ops += theirs.mult_ops;
            mine.local_cycles += theirs.local_cycles;
        }
        self.cycles += other.cycles;
        self.ctrl_instrs += other.ctrl_instrs;
        self.ctrl_stall_cycles += other.ctrl_stall_cycles;
        self.config_writes += other.config_writes;
        self.ctx_switches += other.ctx_switches;
        self.host_words_in += other.host_words_in;
        self.host_words_out += other.host_words_out;
        self.link_stall_cycles += other.link_stall_cycles;
        self.fifo_underflows += other.fifo_underflows;
        self.fifo_overflows += other.fifo_overflows;
        self.bus_conflicts += other.bus_conflicts;
        self.decode_cache_hits += other.decode_cache_hits;
        self.decode_cache_misses += other.decode_cache_misses;
        self.fused_entries += other.fused_entries;
        self.fused_deopts += other.fused_deopts;
        self.fused_cycles += other.fused_cycles;
        self.fused_lane_occupancy += other.fused_lane_occupancy;
        self.aot_entries += other.aot_entries;
        self.aot_cycles += other.aot_cycles;
        self.aot_compiles += other.aot_compiles;
        self.aot_guard_misses += other.aot_guard_misses;
        self.guards_elided += other.guards_elided;
        self.faults_injected += other.faults_injected;
        self.parity_scrubs += other.parity_scrubs;
        self.config_faults_detected += other.config_faults_detected;
        self.datapath_faults_detected += other.datapath_faults_detected;
        self.watchdog_trips += other.watchdog_trips;
        self.checkpoints += other.checkpoints;
        self.restores += other.restores;
    }

    /// A copy with the decode-cache, fused-engine and AOT-engine counters
    /// zeroed.
    ///
    /// Those counters are the one intentional difference between the slow,
    /// decoded, fused and aot execution paths; differential oracles compare
    /// `a.without_cache_counters() == b.without_cache_counters()` to demand
    /// equality of every architectural counter.
    pub fn without_cache_counters(&self) -> Stats {
        Stats {
            decode_cache_hits: 0,
            decode_cache_misses: 0,
            fused_entries: 0,
            fused_deopts: 0,
            fused_cycles: 0,
            fused_lane_occupancy: 0,
            aot_entries: 0,
            aot_cycles: 0,
            aot_compiles: 0,
            aot_guard_misses: 0,
            guards_elided: 0,
            ..self.clone()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_construction() {
        let s = Stats::new(8);
        assert_eq!(s.dnodes.len(), 8);
        assert_eq!(s.total_ops(), 0);
        assert_eq!(s.utilization(), 0.0);
        assert_eq!(s.idle_dnodes(), 8);
        assert_eq!(s.ops_per_cycle(), 0.0);
    }

    #[test]
    fn derived_metrics() {
        let mut s = Stats::new(2);
        s.cycles = 10;
        s.dnodes[0].active_cycles = 10;
        s.dnodes[0].alu_ops = 10;
        s.dnodes[0].mult_ops = 5;
        assert_eq!(s.total_ops(), 15);
        assert_eq!(s.utilization(), 0.5);
        assert_eq!(s.idle_dnodes(), 1);
        assert_eq!(s.ops_per_cycle(), 1.5);
    }
}
