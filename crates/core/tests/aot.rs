//! Differential validation of the ahead-of-time superblock tier.
//!
//! Every test here runs the same scenario on four machines — the AOT
//! tier (`aot` + `fused` + `decode_cache`), the fused engine, the
//! decoded per-cycle fast path and the slow decode-per-cycle reference —
//! and demands **bit-identical** architectural behaviour: equal Dnode
//! registers, outputs and write stamps, equal bus values, sequencer
//! counters, controller state, sink streams and statistics modulo the
//! engines' own bookkeeping counters.
//!
//! The scenarios deliberately attack the guard-stitching surface: random
//! controller programs reconfigure the fabric mid-run (every compiled
//! superblock must be revalidated by configuration content at its next
//! entry), *external* configuration writes flip the epoch fingerprint at
//! arbitrary burst boundaries — both content-changing writes (a true
//! guard miss, answered by stitching a fresh compile) and same-word
//! rewrites (epoch moves, content does not: the content key must
//! revalidate the cached program instead of recompiling) — and an armed
//! fault injector must suppress AOT entry entirely.

use systolic_ring_core::fault::FaultConfig;
use systolic_ring_core::{MachineParams, RingMachine, SimError};
use systolic_ring_harness::for_random_cases;
use systolic_ring_harness::testkit::TestRng;
use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

fn any_operand(rng: &mut TestRng) -> Operand {
    *rng.choose(&[
        Operand::Reg(Reg::R0),
        Operand::Reg(Reg::R2),
        Operand::Reg(Reg::R3),
        Operand::In1,
        Operand::In2,
        Operand::Fifo1,
        Operand::Fifo2,
        Operand::Bus,
        Operand::Imm,
        Operand::Zero,
        Operand::One,
    ])
}

fn any_alu(rng: &mut TestRng) -> AluOp {
    *rng.choose(&[
        AluOp::Nop,
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Mac,
        AluOp::AbsDiff,
        AluOp::Shl,
        AluOp::Asr,
        AluOp::Min,
        AluOp::SltU,
    ])
}

fn any_micro(rng: &mut TestRng) -> MicroInstr {
    MicroInstr {
        alu: any_alu(rng),
        src_a: any_operand(rng),
        src_b: any_operand(rng),
        wr_reg: if rng.next_bool() { Some(Reg::R1) } else { None },
        wr_out: rng.next_bool(),
        wr_bus: rng.next_bool(),
        imm: Word16::from_i16(rng.any_i16()),
    }
}

fn any_source(rng: &mut TestRng) -> PortSource {
    match rng.index(5) {
        0 => PortSource::Zero,
        1 => PortSource::Bus,
        2 => PortSource::PrevOut {
            lane: rng.index(2) as u8,
        },
        3 => PortSource::HostIn {
            port: rng.index(4) as u8,
        },
        _ => PortSource::Pipe {
            switch: rng.index(4) as u8,
            stage: rng.index(8) as u8,
            lane: rng.index(2) as u8,
        },
    }
}

fn r(n: u8) -> CReg {
    CReg::new(n).expect("register index")
}

/// Emits `rd = value` (Lui + Ori pair).
fn load32(code: &mut Vec<u32>, rd: CReg, value: u32) {
    code.push(
        CtrlInstr::Lui {
            rd,
            imm: (value >> 16) as u16,
        }
        .encode(),
    );
    code.push(
        CtrlInstr::Ori {
            rd,
            ra: rd,
            imm: value as u16,
        }
        .encode(),
    );
}

/// A random controller program interleaving long waits with valid
/// configuration writes — the same multi-phase shape the AOT prefill
/// walks at load time, so runtime entries hit (or soundly miss) the
/// precompiled cache.
fn reconfig_program(rng: &mut TestRng) -> Vec<u32> {
    let mut code = Vec::new();
    let blocks = 2 + rng.index(3);
    for _ in 0..blocks {
        code.push(
            CtrlInstr::Wait {
                cycles: 60 + rng.index(120) as u16,
            }
            .encode(),
        );
        match rng.index(6) {
            0 => {
                let word = any_micro(rng).encode();
                code.push(
                    CtrlInstr::Cimm {
                        imm: (word >> 32) as u16,
                    }
                    .encode(),
                );
                load32(&mut code, r(1), word as u32);
                code.push(
                    CtrlInstr::Wdn {
                        rs: r(1),
                        dnode: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            1 => {
                load32(&mut code, r(2), any_source(rng).encode());
                code.push(
                    CtrlInstr::Wsw {
                        rs: r(2),
                        port: rng.index(32) as u16,
                    }
                    .encode(),
                );
            }
            2 => {
                load32(&mut code, r(4), rng.next_bool() as u32);
                code.push(
                    CtrlInstr::Wmode {
                        rs: r(4),
                        dnode: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            3 => {
                load32(&mut code, r(6), 1 + rng.index(8) as u32);
                code.push(
                    CtrlInstr::Wlim {
                        rs: r(6),
                        dnode: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            4 => {
                code.push(
                    CtrlInstr::Ctx {
                        ctx: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            _ => {
                code.push(
                    CtrlInstr::Wctx {
                        ctx: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
        }
    }
    code.push(CtrlInstr::Wait { cycles: 200 }.encode());
    code.push(CtrlInstr::Halt.encode());
    code
}

/// Everything needed to construct identical machines at different
/// simulation tiers.
struct Scenario {
    instrs: Vec<(usize, usize, MicroInstr)>,
    sources: Vec<(usize, usize, usize, usize, PortSource)>,
    locals: Vec<(usize, Vec<MicroInstr>)>,
    modes: Vec<usize>,
    program: Vec<u32>,
    inputs: Vec<Word16>,
}

impl Scenario {
    fn random(rng: &mut TestRng) -> Scenario {
        let mut instrs = Vec::new();
        let mut sources = Vec::new();
        let mut locals = Vec::new();
        let mut modes = Vec::new();
        for ctx in 0..2 {
            for d in 0..8 {
                instrs.push((ctx, d, any_micro(rng)));
            }
            for i in 0..16 {
                sources.push((ctx, i % 4, (i / 4) % 2, i % 4, any_source(rng)));
            }
        }
        for d in 0..8 {
            if rng.next_bool() {
                let len = 1 + rng.index(4);
                locals.push((d, (0..len).map(|_| any_micro(rng)).collect()));
                if rng.next_bool() {
                    modes.push(d);
                }
            }
        }
        let words = rng.index(96);
        Scenario {
            instrs,
            sources,
            locals,
            modes,
            program: reconfig_program(rng),
            inputs: rng
                .vec_i16(words, i16::MIN as i64..i16::MAX as i64 + 1)
                .into_iter()
                .map(Word16::from_i16)
                .collect(),
        }
    }

    fn build_with(&self, params: MachineParams) -> RingMachine {
        let mut m = RingMachine::new(RingGeometry::RING_8, params);
        for &(ctx, d, instr) in &self.instrs {
            m.configure().set_dnode_instr(ctx, d, instr).expect("instr");
        }
        for &(ctx, switch, lane, port, src) in &self.sources {
            m.configure()
                .set_port(ctx, switch, lane, port, src)
                .expect("port");
        }
        for (d, prog) in &self.locals {
            m.set_local_program(*d, prog).expect("local program");
        }
        for &d in &self.modes {
            m.set_mode(d, DnodeMode::Local);
        }
        for ctx in 0..2 {
            m.configure()
                .set_capture(ctx, 1, 0, HostCapture::lane(1))
                .expect("capture");
        }
        m.open_sink(1, 0).expect("sink");
        m.attach_input(0, 0, self.inputs.iter().copied())
            .expect("stream");
        if !self.program.is_empty() {
            m.controller_mut()
                .load_program(&self.program)
                .expect("program loads");
        }
        m
    }

    /// The four tiers under comparison: aot, fused, decoded-only, slow.
    fn build_tiers(&self) -> [RingMachine; 4] {
        [
            self.build_with(MachineParams::PAPER.with_aot(true)),
            self.build_with(MachineParams::PAPER), // fused + decode_cache
            self.build_with(MachineParams::PAPER.with_fused(false)),
            self.build_with(
                MachineParams::PAPER
                    .with_fused(false)
                    .with_decode_cache(false),
            ),
        ]
    }
}

/// Asserts every architecturally visible piece of state matches between
/// two machines: cycle, bus, controller, and per-Dnode registers,
/// outputs, output write stamps, modes and sequencer counters.
fn assert_same_state(a: &RingMachine, b: &RingMachine, what: &str) {
    assert_eq!(a.cycle(), b.cycle(), "{what}: cycle");
    assert_eq!(a.bus(), b.bus(), "{what}: bus");
    assert_eq!(
        a.controller().state(),
        b.controller().state(),
        "{what}: controller state"
    );
    assert_eq!(
        a.config().active_index(),
        b.config().active_index(),
        "{what}: active context"
    );
    for d in 0..a.geometry().dnodes() {
        let (x, y) = (a.dnode(d), b.dnode(d));
        assert_eq!(x.out(), y.out(), "{what}: dnode {d} out");
        assert_eq!(
            x.out_written_at(),
            y.out_written_at(),
            "{what}: dnode {d} out stamp"
        );
        assert_eq!(x.mode(), y.mode(), "{what}: dnode {d} mode");
        for reg in [Reg::R0, Reg::R1, Reg::R2, Reg::R3] {
            assert_eq!(x.reg(reg), y.reg(reg), "{what}: dnode {d} {reg:?}");
        }
        assert_eq!(
            x.sequencer().counter(),
            y.sequencer().counter(),
            "{what}: dnode {d} sequencer counter"
        );
    }
}

/// Random multi-phase fabrics under random mid-run controller
/// reconfiguration stay bit-identical across all four tiers, segment
/// boundary by segment boundary, while the AOT tier actually engages
/// somewhere in the sweep — and, unlike the fused tier, never pays a
/// deoptimization for a reconfiguration it has already seen.
#[test]
fn random_reconfiguration_four_way_differential() {
    let mut aot_entries = 0u64;
    let mut aot_cached = 0u64;
    for_random_cases!(32, 0xa07d1f, |rng| {
        let scenario = Scenario::random(rng);
        let [mut aot, mut fused, mut decoded, mut slow] = scenario.build_tiers();
        assert!(aot.params().aot && aot.params().fused);
        assert!(!fused.params().aot && fused.params().fused);

        // Random segment lengths force superblock bursts to stop at
        // arbitrary budget boundaries, not just at controller events.
        let mut remaining: u64 = 768;
        while remaining > 0 {
            let seg = (1 + rng.index(160) as u64).min(remaining);
            remaining -= seg;
            aot.run(seg).expect("aot run");
            fused.run(seg).expect("fused run");
            decoded.run(seg).expect("decoded run");
            slow.run(seg).expect("slow run");
            assert_same_state(&aot, &fused, "aot vs fused");
            assert_same_state(&aot, &decoded, "aot vs decoded");
            assert_same_state(&aot, &slow, "aot vs slow");
        }

        assert_eq!(
            aot.take_sink(1, 0).expect("aot sink"),
            slow.take_sink(1, 0).expect("slow sink"),
            "sink streams diverged"
        );
        assert_eq!(
            aot.stats().without_cache_counters(),
            slow.stats().without_cache_counters(),
            "architectural statistics diverged"
        );
        // The lower tiers never touch the AOT cache; the AOT tier never
        // books its bursts against the fused engine's counters.
        for m in [&fused, &decoded, &slow] {
            assert_eq!(m.stats().aot_entries, 0);
            assert_eq!(m.stats().aot_cycles, 0);
        }
        aot_entries += aot.stats().aot_entries;
        aot_cached += aot.aot_cached_programs() as u64;
    });
    assert!(aot_entries > 0, "the AOT tier never engaged");
    assert!(
        aot_cached > 0,
        "no superblock ever reached the content cache"
    );
}

/// Satellite: the randomized guard-check failure suite. At random burst
/// boundaries an *external* configuration write lands on every tier at
/// once — sometimes a content-changing rewrite of a live Dnode
/// instruction (the epoch fingerprint and the configuration content both
/// move: a true guard miss the AOT tier must answer by stitching a fresh
/// compile), sometimes a rewrite of the identical word (the epoch moves
/// but the content key must revalidate the cached superblock). Either
/// way the tiers stay bit-identical on machine state, sink streams, halt
/// cycles and architectural statistics — a guard failure degrades
/// throughput, never behaviour.
#[test]
fn randomized_guard_failures_fall_back_bit_identically() {
    let mut guard_misses = 0u64;
    let mut stitched_compiles = 0u64;
    let mut epoch_only_flips = 0u64;
    for_random_cases!(24, 0x6a2d5, |rng| {
        let scenario = Scenario::random(rng);
        let [mut aot, mut fused, mut decoded, mut slow] = scenario.build_tiers();

        let mut remaining: u64 = 768;
        while remaining > 0 {
            let seg = (1 + rng.index(96) as u64).min(remaining);
            remaining -= seg;
            aot.run(seg).expect("aot run");
            fused.run(seg).expect("fused run");
            decoded.run(seg).expect("decoded run");
            slow.run(seg).expect("slow run");

            // Flip a guard input on all four machines identically.
            let ctx = aot.config().active_index();
            let d = rng.index(8);
            let word = if rng.next_bool() {
                epoch_only_flips += 1;
                // Same content, new epoch: revalidation, not recompile.
                aot.config().active().dnode_instr(d)
            } else {
                any_micro(rng)
            };
            for m in [&mut aot, &mut fused, &mut decoded, &mut slow] {
                m.configure()
                    .set_dnode_instr(ctx, d, word)
                    .expect("guard flip");
            }

            assert_same_state(&aot, &fused, "aot vs fused");
            assert_same_state(&aot, &decoded, "aot vs decoded");
            assert_same_state(&aot, &slow, "aot vs slow");
        }

        assert_eq!(
            aot.take_sink(1, 0).expect("aot sink"),
            decoded.take_sink(1, 0).expect("decoded sink"),
            "sink streams diverged"
        );
        assert_eq!(
            aot.stats().without_cache_counters(),
            decoded.stats().without_cache_counters(),
            "architectural statistics diverged"
        );
        guard_misses += aot.stats().aot_guard_misses;
        stitched_compiles += aot.stats().aot_compiles;
    });
    assert!(guard_misses > 0, "no content flip ever missed a guard");
    assert!(stitched_compiles > 0, "no guard miss was stitched in place");
    assert!(epoch_only_flips > 0, "the sweep never flipped epoch-only");
}

/// An armed fault injector — even detection-only scrubbing — suppresses
/// the AOT tier exactly as it suppresses fusion: fault schedules are
/// cycle-by-cycle and the fail-stop detection contract must see every
/// cycle.
#[test]
fn armed_faults_suppress_aot() {
    for cfg in [
        FaultConfig::uniform(0xDEAD, 40),
        FaultConfig::detect_only(16),
    ] {
        let mut m = RingMachine::new(
            RingGeometry::RING_8,
            MachineParams::PAPER.with_aot(true).with_faults(cfg),
        );
        let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0);
        for d in 0..8 {
            m.set_local_program(d, &[mac]).expect("program");
            m.set_mode(d, DnodeMode::Local);
        }
        // Ignore injected datapath faults; we only care that no burst ran.
        let _ = m.run(500);
        assert_eq!(
            m.stats().aot_entries,
            0,
            "AOT tier must stay off while faults are armed ({cfg:?})"
        );
        assert_eq!(m.stats().fused_entries, 0);
        assert!(m.cycle() > 0);
    }
}

/// Satellite regression: a watchdog trip that lands after a context
/// switch reports the *post-switch* architectural context, identically
/// on every execution tier — trip cycle, context, pc and idle count all
/// equal, with the AOT tier having actually executed watchdog-bounded
/// superblock bursts on the way there.
#[test]
fn watchdog_trip_reports_post_reconfig_context_on_every_tier() {
    let code = vec![
        CtrlInstr::Ctx { ctx: 3 }.encode(),
        CtrlInstr::Wait { cycles: 4000 }.encode(),
        CtrlInstr::Halt.encode(),
    ];
    let tiers = [
        ("aot", MachineParams::PAPER.with_aot(true)),
        ("fused", MachineParams::PAPER),
        ("decoded", MachineParams::PAPER.with_fused(false)),
        (
            "slow",
            MachineParams::PAPER
                .with_fused(false)
                .with_decode_cache(false),
        ),
    ];
    let mut trips: Vec<(&str, String, u64)> = Vec::new();
    for (tier, params) in tiers {
        let mut m = RingMachine::new(RingGeometry::RING_8, params.with_watchdog(64));
        m.controller_mut().load_program(&code).expect("program");
        let err = m.run(10_000).expect_err("the long wait must trip");
        match &err {
            SimError::Watchdog { ctx, .. } => {
                assert_eq!(*ctx, 3, "{tier}: trip must name the post-switch context");
            }
            other => panic!("{tier}: expected a watchdog trip, got {other}"),
        }
        if tier == "aot" {
            assert!(
                m.stats().aot_cycles > 0,
                "aot tier never burst under the armed watchdog"
            );
        }
        trips.push((tier, err.to_string(), m.cycle()));
    }
    let (_, reference, ref_cycle) = &trips[0];
    for (tier, msg, cycle) in &trips[1..] {
        assert_eq!(msg, reference, "{tier}: trip report diverged");
        assert_eq!(cycle, ref_cycle, "{tier}: trip cycle diverged");
    }
}
