//! The documented fault contract: *on error, machine state is left at the
//! faulting cycle boundary*. Every [`SimError`] variant is driven here and
//! checked against the same three observables:
//!
//! 1. the error's `cycle` field equals [`RingMachine::cycle`] afterwards
//!    (the faulting cycle did not commit),
//! 2. [`Stats::cycles`] agrees with the cycle counter (no half-counted
//!    cycle),
//! 3. the machine is inspectable and — where the contract promises it —
//!    resumable after the error.

use systolic_ring_core::{FaultConfig, MachineParams, RingMachine, SimError};
use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::{RingGeometry, Word16};

fn r(i: u8) -> CReg {
    CReg::new(i).unwrap()
}

/// Drives `m` to its first error and asserts the cycle-boundary contract.
fn first_error(m: &mut RingMachine, budget: u64) -> SimError {
    for _ in 0..budget {
        if let Err(e) = m.step() {
            assert_boundary(m, &e);
            return e;
        }
    }
    panic!("no error within {budget} cycles");
}

/// The shared contract: the error names the cycle the machine stopped at,
/// and the stats cycle counter matches exactly.
fn assert_boundary(m: &RingMachine, e: &SimError) {
    let fault_cycle = match e {
        SimError::PcOutOfRange { cycle, .. }
        | SimError::BadInstruction { cycle, .. }
        | SimError::DmemOutOfRange { cycle, .. }
        | SimError::BadConfigWrite { cycle, .. }
        | SimError::ConfigCorruption { cycle, .. }
        | SimError::DatapathFault { cycle, .. }
        | SimError::Watchdog { cycle, .. } => *cycle,
        SimError::CycleLimit { limit } => *limit,
    };
    assert_eq!(
        m.cycle(),
        fault_cycle,
        "{e}: machine not at the faulting cycle boundary"
    );
    assert_eq!(
        m.stats().cycles,
        m.cycle(),
        "{e}: stats count a cycle that did not commit"
    );
}

#[test]
fn pc_out_of_range_stops_at_the_boundary() {
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    // One Nop and no Halt: the second fetch walks off the program.
    m.controller_mut()
        .load_program(&[CtrlInstr::Nop.encode()])
        .unwrap();
    let e = first_error(&mut m, 16);
    assert!(
        matches!(e, SimError::PcOutOfRange { cycle: 1, pc: 1 }),
        "{e}"
    );
    assert!(!e.is_detected_fault());
}

#[test]
fn bad_instruction_stops_at_the_boundary() {
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    m.controller_mut().load_program(&[0xffff_ffff]).unwrap();
    let e = first_error(&mut m, 16);
    assert!(
        matches!(
            e,
            SimError::BadInstruction {
                cycle: 0,
                pc: 0,
                ..
            }
        ),
        "{e}"
    );
}

#[test]
fn dmem_out_of_range_stops_at_the_boundary() {
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    // `0 + sext(-1)` wraps to the top of the address space: far outside
    // any data memory.
    m.controller_mut()
        .load_program(&[CtrlInstr::Lw {
            rd: r(1),
            ra: r(0),
            imm: -1,
        }
        .encode()])
        .unwrap();
    let e = first_error(&mut m, 16);
    assert!(
        matches!(
            e,
            SimError::DmemOutOfRange {
                cycle: 0,
                addr: u32::MAX
            }
        ),
        "{e}"
    );
}

#[test]
fn bad_config_write_stops_at_the_boundary() {
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    // Dnode 63 does not exist on an 8-Dnode ring.
    m.controller_mut()
        .load_program(&[CtrlInstr::Wdn {
            rs: r(0),
            dnode: 63,
        }
        .encode()])
        .unwrap();
    let e = first_error(&mut m, 16);
    assert!(
        matches!(e, SimError::BadConfigWrite { cycle: 0, .. }),
        "{e}"
    );
}

#[test]
fn cycle_limit_stops_exactly_at_the_budget_and_resumes() {
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    m.controller_mut()
        .load_program(&[
            CtrlInstr::Wait { cycles: 5 }.encode(),
            CtrlInstr::Halt.encode(),
        ])
        .unwrap();
    let e = m.run_until_halt(2).unwrap_err();
    assert_eq!(e, SimError::CycleLimit { limit: 2 });
    assert_boundary(&m, &e);
    // The budget error is not a machine fault: resuming just continues.
    m.run_until_halt(64).unwrap();
    assert!(m.controller().is_halted());
}

#[test]
fn config_corruption_stops_at_the_boundary_and_resumes_after_acknowledge() {
    let cfg = FaultConfig {
        seed: 9,
        config_ppm: 20_000,
        ..FaultConfig::detect_only(1)
    };
    let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER.with_faults(cfg));
    let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0);
    for d in 0..m.geometry().dnodes() {
        m.set_local_program(d, &[mac]).unwrap();
        m.set_mode(d, DnodeMode::Local);
    }
    let e = first_error(&mut m, 100_000);
    assert!(matches!(e, SimError::ConfigCorruption { .. }), "{e}");
    assert!(e.is_detected_fault());
    assert_eq!(m.stats().config_faults_detected, 1);
    // Injection is deterministic in (seed, cycle): merely retrying the
    // faulting cycle re-applies the same flip, so acknowledge alone
    // cannot make progress — recovery must also re-salt the transient
    // schedule, exactly as the harness retry policy does.
    let cycle = m.cycle();
    let mut advanced = false;
    for salt in 1..=32u64 {
        m.acknowledge_faults();
        m.rearm_faults(salt);
        match m.step() {
            Ok(()) => {
                advanced = true;
                break;
            }
            Err(e) => {
                assert!(e.is_detected_fault(), "{e}");
                assert_boundary(&m, &e);
            }
        }
    }
    assert!(advanced, "machine never resumed after acknowledge + rearm");
    assert_eq!(m.cycle(), cycle + 1);
}

#[test]
fn datapath_fault_stops_at_the_boundary_and_resumes_after_acknowledge() {
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    let inc = MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::One)
        .write_reg(Reg::R0)
        .write_out();
    m.set_local_program(0, &[inc]).unwrap();
    m.set_mode(0, DnodeMode::Local);
    m.run(4).unwrap();
    m.force_stuck(0, Word16::from_i16(99));
    let e = first_error(&mut m, 16);
    assert!(matches!(e, SimError::DatapathFault { .. }), "{e}");
    assert!(e.is_detected_fault());
    // Sticky until acknowledged; then the machine steps again (the output
    // keeps being forced, so it re-faults one cycle later — detected).
    let e2 = m.step().unwrap_err();
    assert_eq!(e, e2);
    assert_boundary(&m, &e2);
    m.acknowledge_faults();
    m.step().unwrap();
}

#[test]
fn watchdog_stops_at_the_boundary_and_rearms() {
    let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER.with_watchdog(16));
    let e = first_error(&mut m, 64);
    assert!(
        matches!(
            e,
            SimError::Watchdog {
                cycle: 16,
                idle_cycles: 16,
                ..
            }
        ),
        "{e}"
    );
    assert!(e.is_detected_fault());
    // The trip re-arms the watchdog: the very next step succeeds.
    m.step().unwrap();
    assert_eq!(m.cycle(), 17);
}

#[test]
fn identical_machines_fail_identically() {
    // The boundary contract implies determinism: two machines with the
    // same configuration stop at the same cycle in the same state.
    let cfg = FaultConfig::uniform(21, 10_000);
    let build = || {
        let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER.with_faults(cfg));
        let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One)
            .write_reg(Reg::R0)
            .write_out();
        for d in 0..m.geometry().dnodes() {
            m.set_local_program(d, &[mac]).unwrap();
            m.set_mode(d, DnodeMode::Local);
        }
        m
    };
    let mut a = build();
    let mut b = build();
    let ea = first_error(&mut a, 100_000);
    let eb = first_error(&mut b, 100_000);
    assert_eq!(ea, eb);
    assert_eq!(a.cycle(), b.cycle());
    for d in 0..a.geometry().dnodes() {
        assert_eq!(a.dnode(d), b.dnode(d), "dnode {d} diverged");
    }
    assert_eq!(a.stats(), b.stats());
}
