//! Coverage for the tracer's VCD emission and the statistics counters:
//! header structure, value-change ordering, global- vs local-mode
//! accounting, and `Stats::merge`.

use systolic_ring_core::trace::{Signal, Tracer};
use systolic_ring_core::{DnodeStats, RingMachine, Stats};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::RingGeometry;

fn counting_machine() -> RingMachine {
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::One)
                .write_reg(Reg::R0)
                .write_out(),
        )
        .expect("config");
    m
}

#[test]
fn vcd_header_precedes_enddefinitions_and_all_vars() {
    let mut m = counting_machine();
    let mut tracer = Tracer::new([Signal::DnodeOut { dnode: 0 }, Signal::Bus, Signal::CtrlPc]);
    tracer.run(&mut m, 3).expect("run");
    let vcd = tracer.to_vcd();

    let position = |needle: &str| {
        vcd.find(needle)
            .unwrap_or_else(|| panic!("missing {needle}"))
    };
    let end_defs = position("$enddefinitions $end");
    for header in [
        "$date",
        "$version",
        "$timescale",
        "$scope module ring",
        "$upscope",
    ] {
        assert!(
            position(header) < end_defs,
            "{header} after $enddefinitions"
        );
    }
    // Every declared signal appears as a $var before $enddefinitions.
    for name in ["d0_out", "bus", "ctrl_pc"] {
        let var_line = vcd
            .lines()
            .find(|l| l.starts_with("$var") && l.contains(name))
            .unwrap_or_else(|| panic!("no $var for {name}"));
        assert!(position(var_line) < end_defs);
    }
    // No value change is emitted before the definitions close.
    let first_change = position("#0");
    assert!(first_change > end_defs);
}

#[test]
fn vcd_value_changes_are_time_ordered_and_grouped() {
    let mut m = counting_machine();
    let mut tracer = Tracer::new([Signal::DnodeReg {
        dnode: 0,
        reg: Reg::R0,
    }]);
    tracer.run(&mut m, 5).expect("run");
    let vcd = tracer.to_vcd();

    let body = vcd.split("$enddefinitions $end").nth(1).expect("body");
    let mut timestamps: Vec<u64> = Vec::new();
    let mut changes_after_last_timestamp = 0usize;
    for line in body.lines() {
        if let Some(t) = line.strip_prefix('#') {
            // A timestamp is only emitted when at least one change follows
            // the previous one.
            if !timestamps.is_empty() {
                assert!(changes_after_last_timestamp > 0, "empty timestamp block");
            }
            timestamps.push(t.parse().expect("numeric timestamp"));
            changes_after_last_timestamp = 0;
        } else if line.starts_with('b') {
            assert!(!timestamps.is_empty(), "value change before any timestamp");
            changes_after_last_timestamp += 1;
        }
    }
    assert!(changes_after_last_timestamp > 0);
    // Strictly increasing cycle stamps: R0 counts 0,1,2,.. so it changes
    // at every sample.
    assert_eq!(timestamps, vec![0, 1, 2, 3, 4, 5]);
    // The 16-bit register emits 16-bit binary vectors.
    let first_change = body.lines().find(|l| l.starts_with('b')).expect("change");
    let bits = first_change[1..].split(' ').next().expect("bits");
    assert_eq!(bits.len(), 16);
}

#[test]
fn global_mode_accounting_counts_ops_not_local_cycles() {
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    // Dnode 0 MACs every cycle from the global context: one ALU op and one
    // multiplier op per cycle, zero local cycles.
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0),
        )
        .expect("config");
    m.run(25).expect("run");
    let stats = m.stats();
    assert_eq!(stats.cycles, 25);
    assert_eq!(stats.dnodes[0].active_cycles, 25);
    assert_eq!(stats.dnodes[0].alu_ops, 25);
    assert_eq!(stats.dnodes[0].mult_ops, 25);
    assert_eq!(stats.dnodes[0].local_cycles, 0);
    // The other seven Dnodes executed NOPs only.
    for d in 1..8 {
        assert_eq!(stats.dnodes[d], DnodeStats::default(), "dnode {d}");
    }
    assert_eq!(stats.total_ops(), 50);
    assert_eq!(stats.idle_dnodes(), 7);
}

#[test]
fn local_mode_accounting_counts_local_cycles() {
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    let add = MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::One).write_reg(Reg::R0);
    m.set_local_program(0, &[add]).expect("program");
    m.set_mode(0, DnodeMode::Local);
    m.run(30).expect("run");
    let stats = m.stats();
    assert_eq!(stats.dnodes[0].local_cycles, 30);
    assert_eq!(stats.dnodes[0].active_cycles, 30);
    assert_eq!(stats.dnodes[0].alu_ops, 30);
    // Plain ADD engages no multiplier.
    assert_eq!(stats.dnodes[0].mult_ops, 0);
    // Global-mode neighbours accumulate no local cycles.
    assert_eq!(stats.dnodes[1].local_cycles, 0);
}

#[test]
fn merge_adds_every_counter() {
    let mut a = Stats::new(2);
    a.cycles = 10;
    a.ctrl_instrs = 3;
    a.ctrl_stall_cycles = 1;
    a.config_writes = 4;
    a.ctx_switches = 2;
    a.host_words_in = 7;
    a.host_words_out = 6;
    a.link_stall_cycles = 5;
    a.fifo_underflows = 1;
    a.fifo_overflows = 2;
    a.bus_conflicts = 3;
    a.dnodes[0] = DnodeStats {
        active_cycles: 8,
        alu_ops: 8,
        mult_ops: 4,
        local_cycles: 2,
    };

    let mut b = Stats::new(2);
    b.cycles = 5;
    b.ctrl_instrs = 1;
    b.host_words_in = 3;
    b.dnodes[1] = DnodeStats {
        active_cycles: 5,
        alu_ops: 5,
        mult_ops: 0,
        local_cycles: 5,
    };

    a.merge(&b);
    assert_eq!(a.cycles, 15);
    assert_eq!(a.ctrl_instrs, 4);
    assert_eq!(a.ctrl_stall_cycles, 1);
    assert_eq!(a.config_writes, 4);
    assert_eq!(a.ctx_switches, 2);
    assert_eq!(a.host_words_in, 10);
    assert_eq!(a.host_words_out, 6);
    assert_eq!(a.link_stall_cycles, 5);
    assert_eq!(a.fifo_underflows, 1);
    assert_eq!(a.fifo_overflows, 2);
    assert_eq!(a.bus_conflicts, 3);
    assert_eq!(a.dnodes[0].active_cycles, 8);
    assert_eq!(a.dnodes[1].active_cycles, 5);
    assert_eq!(a.dnodes[1].local_cycles, 5);
    // alu_ops + mult_ops over both Dnodes: (8 + 4) + (5 + 0).
    assert_eq!(a.total_ops(), 17);
}

#[test]
fn merge_grows_to_the_larger_geometry() {
    let mut small = Stats::new(2);
    small.cycles = 4;
    small.dnodes[1].alu_ops = 4;

    let mut big = Stats::new(5);
    big.cycles = 6;
    big.dnodes[4].alu_ops = 6;

    small.merge(&big);
    assert_eq!(small.dnodes.len(), 5);
    assert_eq!(small.cycles, 10);
    assert_eq!(small.dnodes[1].alu_ops, 4);
    assert_eq!(small.dnodes[4].alu_ops, 6);

    // Merging a smaller record into a bigger one leaves the extra Dnodes
    // untouched.
    let mut tiny = Stats::new(1);
    tiny.dnodes[0].mult_ops = 9;
    big.merge(&tiny);
    assert_eq!(big.dnodes.len(), 5);
    assert_eq!(big.dnodes[0].mult_ops, 9);
    assert_eq!(big.dnodes[4].alu_ops, 6);
}

#[test]
fn merge_into_empty_is_identity() {
    let mut machine = RingMachine::with_defaults(RingGeometry::RING_8);
    machine
        .configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0),
        )
        .expect("config");
    machine.run(12).expect("run");

    let mut merged = Stats::new(0);
    merged.merge(machine.stats());
    assert_eq!(&merged, machine.stats());
}
