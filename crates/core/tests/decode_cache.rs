//! Differential validation of the predecoded configuration cache.
//!
//! Every test here runs the same scenario on two machines — one with
//! `decode_cache` enabled (the fast path) and one without (the reference
//! decode-per-cycle path) — and demands **bit-identical** behaviour:
//! equal VCD waveforms over the visible signals, equal sink streams, and
//! equal statistics modulo the cache's own hit/miss counters.
//!
//! The scenarios deliberately stress cache invalidation: controller
//! programs rewrite Dnode microinstructions, crossbar ports, host
//! captures, execution modes, local-sequencer slots and iteration limits
//! *mid-run*, and the host API mutates configurations between run
//! segments. A stale cache entry anywhere shows up as a waveform diff.

use systolic_ring_core::trace::{Signal, Tracer};
use systolic_ring_core::{MachineParams, RingMachine};
use systolic_ring_harness::for_random_cases;
use systolic_ring_harness::testkit::TestRng;
use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

fn any_operand(rng: &mut TestRng) -> Operand {
    *rng.choose(&[
        Operand::Reg(Reg::R0),
        Operand::Reg(Reg::R2),
        Operand::Reg(Reg::R3),
        Operand::In1,
        Operand::In2,
        Operand::Fifo1,
        Operand::Fifo2,
        Operand::Bus,
        Operand::Imm,
        Operand::Zero,
        Operand::One,
    ])
}

fn any_alu(rng: &mut TestRng) -> AluOp {
    *rng.choose(&[
        AluOp::Nop,
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Mac,
        AluOp::AbsDiff,
        AluOp::Shl,
        AluOp::Asr,
        AluOp::Min,
        AluOp::SltU,
    ])
}

fn any_micro(rng: &mut TestRng) -> MicroInstr {
    MicroInstr {
        alu: any_alu(rng),
        src_a: any_operand(rng),
        src_b: any_operand(rng),
        wr_reg: if rng.next_bool() { Some(Reg::R1) } else { None },
        wr_out: rng.next_bool(),
        wr_bus: rng.next_bool(),
        imm: Word16::from_i16(rng.any_i16()),
    }
}

/// A random but in-range port source for a Ring-8 with default params.
fn any_source(rng: &mut TestRng) -> PortSource {
    match rng.index(5) {
        0 => PortSource::Zero,
        1 => PortSource::Bus,
        2 => PortSource::PrevOut {
            lane: rng.index(2) as u8,
        },
        3 => PortSource::HostIn {
            port: rng.index(4) as u8,
        },
        _ => PortSource::Pipe {
            switch: rng.index(4) as u8,
            stage: rng.index(8) as u8,
            lane: rng.index(2) as u8,
        },
    }
}

fn r(n: u8) -> CReg {
    CReg::new(n).expect("register index")
}

/// Emits `rd = value` (Lui + Ori pair).
fn load32(code: &mut Vec<u32>, rd: CReg, value: u32) {
    code.push(
        CtrlInstr::Lui {
            rd,
            imm: (value >> 16) as u16,
        }
        .encode(),
    );
    code.push(
        CtrlInstr::Ori {
            rd,
            ra: rd,
            imm: value as u16,
        }
        .encode(),
    );
}

/// A random controller program that interleaves waits with *valid*
/// configuration writes of every kind, so both machines run fault-free
/// while the cache is invalidated from every controller-reachable angle.
fn reconfig_program(rng: &mut TestRng) -> Vec<u32> {
    let mut code = Vec::new();
    let blocks = 4 + rng.index(5);
    for _ in 0..blocks {
        code.push(
            CtrlInstr::Wait {
                cycles: 1 + rng.index(6) as u16,
            }
            .encode(),
        );
        match rng.index(9) {
            0 => {
                // Rewrite a Dnode microinstruction.
                let word = any_micro(rng).encode();
                code.push(
                    CtrlInstr::Cimm {
                        imm: (word >> 32) as u16,
                    }
                    .encode(),
                );
                load32(&mut code, r(1), word as u32);
                code.push(
                    CtrlInstr::Wdn {
                        rs: r(1),
                        dnode: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            1 => {
                // Reroute a crossbar port.
                load32(&mut code, r(2), any_source(rng).encode());
                code.push(
                    CtrlInstr::Wsw {
                        rs: r(2),
                        port: rng.index(32) as u16,
                    }
                    .encode(),
                );
            }
            2 => {
                // Redirect (or disable) a host capture.
                let capture = if rng.next_bool() {
                    HostCapture::lane(rng.index(2) as u8)
                } else {
                    HostCapture::DISABLED
                };
                load32(&mut code, r(3), capture.encode());
                let switch = rng.index(4) as u16;
                let port = rng.index(2) as u16;
                code.push(
                    CtrlInstr::Who {
                        rs: r(3),
                        switch: (switch << 8) | port,
                    }
                    .encode(),
                );
            }
            3 => {
                // Flip a Dnode between global and local mode.
                load32(&mut code, r(4), rng.next_bool() as u32);
                code.push(
                    CtrlInstr::Wmode {
                        rs: r(4),
                        dnode: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            4 => {
                // Rewrite a local-sequencer slot.
                let word = any_micro(rng).encode();
                code.push(
                    CtrlInstr::Cimm {
                        imm: (word >> 32) as u16,
                    }
                    .encode(),
                );
                load32(&mut code, r(5), word as u32);
                let packed = ((rng.index(8) << 3) | rng.index(8)) as u16;
                code.push(CtrlInstr::Wloc { rs: r(5), packed }.encode());
            }
            5 => {
                // Change a local-sequencer iteration limit.
                load32(&mut code, r(6), 1 + rng.index(8) as u32);
                code.push(
                    CtrlInstr::Wlim {
                        rs: r(6),
                        dnode: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            6 => {
                // Switch the active context.
                code.push(
                    CtrlInstr::Ctx {
                        ctx: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            7 => {
                // Retarget subsequent writes at another context.
                code.push(
                    CtrlInstr::Wctx {
                        ctx: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            _ => {
                // Drive the bus (contends with Dnode bus writers).
                load32(&mut code, r(7), rng.any_u16() as u32);
                code.push(CtrlInstr::Busw { rs: r(7) }.encode());
            }
        }
    }
    code.push(CtrlInstr::Halt.encode());
    code
}

/// Everything needed to construct two identical machines.
struct Scenario {
    instrs: Vec<(usize, usize, MicroInstr)>,
    sources: Vec<(usize, usize, usize, usize, PortSource)>,
    locals: Vec<(usize, Vec<MicroInstr>)>,
    modes: Vec<usize>,
    program: Vec<u32>,
    inputs: Vec<Word16>,
}

impl Scenario {
    fn random(rng: &mut TestRng) -> Scenario {
        let mut instrs = Vec::new();
        let mut sources = Vec::new();
        let mut locals = Vec::new();
        let mut modes = Vec::new();
        // Populate two contexts so `Ctx` switches land on real configs.
        for ctx in 0..2 {
            for d in 0..8 {
                instrs.push((ctx, d, any_micro(rng)));
            }
            for i in 0..16 {
                sources.push((ctx, i % 4, (i / 4) % 2, i % 4, any_source(rng)));
            }
        }
        for d in 0..8 {
            if rng.next_bool() {
                let len = 1 + rng.index(4);
                locals.push((d, (0..len).map(|_| any_micro(rng)).collect()));
                if rng.next_bool() {
                    modes.push(d);
                }
            }
        }
        let words = rng.index(48);
        Scenario {
            instrs,
            sources,
            locals,
            modes,
            program: reconfig_program(rng),
            inputs: rng
                .vec_i16(words, i16::MIN as i64..i16::MAX as i64 + 1)
                .into_iter()
                .map(Word16::from_i16)
                .collect(),
        }
    }

    fn build(&self, cache: bool) -> RingMachine {
        let mut m = RingMachine::new(
            RingGeometry::RING_8,
            MachineParams::PAPER.with_decode_cache(cache),
        );
        assert_eq!(m.params().decode_cache, cache);
        for &(ctx, d, instr) in &self.instrs {
            m.configure().set_dnode_instr(ctx, d, instr).expect("instr");
        }
        for &(ctx, switch, lane, port, src) in &self.sources {
            m.configure()
                .set_port(ctx, switch, lane, port, src)
                .expect("port");
        }
        for (d, prog) in &self.locals {
            m.set_local_program(*d, prog).expect("local program");
        }
        for &d in &self.modes {
            m.set_mode(d, DnodeMode::Local);
        }
        for ctx in 0..2 {
            m.configure()
                .set_capture(ctx, 1, 0, HostCapture::lane(1))
                .expect("capture");
        }
        m.open_sink(1, 0).expect("sink");
        m.attach_input(0, 0, self.inputs.iter().copied())
            .expect("stream");
        if !self.program.is_empty() {
            m.controller_mut()
                .load_program(&self.program)
                .expect("program loads");
        }
        m
    }
}

/// The signal set every differential below compares, covering all Dnode
/// outputs, the accumulator and write-back registers, the shared bus, the
/// controller and the context selector.
fn all_signals() -> Vec<Signal> {
    let mut signals = Vec::new();
    for d in 0..8 {
        signals.push(Signal::DnodeOut { dnode: d });
        signals.push(Signal::DnodeReg {
            dnode: d,
            reg: Reg::R0,
        });
        signals.push(Signal::DnodeReg {
            dnode: d,
            reg: Reg::R1,
        });
    }
    signals.push(Signal::Bus);
    signals.push(Signal::CtrlPc);
    signals.push(Signal::ActiveCtx);
    signals
}

/// Random fabrics under random mid-run controller reconfiguration produce
/// identical waveforms, sink streams and stats with the cache on and off.
#[test]
fn random_reconfiguration_fast_matches_slow_vcd() {
    for_random_cases!(48, 0xcac4e, |rng| {
        let scenario = Scenario::random(rng);
        let mut fast = scenario.build(true);
        let mut slow = scenario.build(false);

        let mut fast_trace = Tracer::new(all_signals());
        let mut slow_trace = Tracer::new(all_signals());
        fast_trace.run(&mut fast, 96).expect("fast run");
        slow_trace.run(&mut slow, 96).expect("slow run");

        assert_eq!(
            fast_trace.to_vcd(),
            slow_trace.to_vcd(),
            "cached fast path diverged from decode-per-cycle reference:\nfast:\n{}\nslow:\n{}",
            fast_trace.render_text(),
            slow_trace.render_text()
        );
        assert_eq!(
            fast.take_sink(1, 0).expect("fast sink"),
            slow.take_sink(1, 0).expect("slow sink"),
            "sink streams diverged"
        );
        assert_eq!(
            fast.stats().without_cache_counters(),
            slow.stats().without_cache_counters(),
            "architectural statistics diverged"
        );
        // The slow path never touches the cache.
        assert_eq!(slow.stats().decode_cache_hits, 0);
        assert_eq!(slow.stats().decode_cache_misses, 0);
    });
}

/// Host-API mutations between run segments (the other invalidation
/// surface: `configure()`, `set_mode`, `set_local_program`) are picked up
/// by the cache immediately.
#[test]
fn api_reconfiguration_between_segments_matches() {
    for_random_cases!(32, 0xed17, |rng| {
        let mut scenario = Scenario::random(rng);
        scenario.program.clear(); // API-only reconfiguration here.
        let mut fast = scenario.build(true);
        let mut slow = scenario.build(false);

        let mut fast_trace = Tracer::new(all_signals());
        let mut slow_trace = Tracer::new(all_signals());
        for _segment in 0..4 {
            // Mutate both machines identically, then run a burst.
            let edits = rng.index(3) + 1;
            for _ in 0..edits {
                match rng.index(4) {
                    0 => {
                        let (ctx, d, instr) = (rng.index(2), rng.index(8), any_micro(rng));
                        for m in [&mut fast, &mut slow] {
                            m.configure().set_dnode_instr(ctx, d, instr).expect("instr");
                        }
                    }
                    1 => {
                        let (ctx, switch, lane, port, src) = (
                            rng.index(2),
                            rng.index(4),
                            rng.index(2),
                            rng.index(4),
                            any_source(rng),
                        );
                        for m in [&mut fast, &mut slow] {
                            m.configure()
                                .set_port(ctx, switch, lane, port, src)
                                .expect("port");
                        }
                    }
                    2 => {
                        let d = rng.index(8);
                        let mode = if rng.next_bool() {
                            DnodeMode::Local
                        } else {
                            DnodeMode::Global
                        };
                        for m in [&mut fast, &mut slow] {
                            m.set_mode(d, mode);
                        }
                    }
                    _ => {
                        let d = rng.index(8);
                        let len = 1 + rng.index(4);
                        let prog: Vec<MicroInstr> = (0..len).map(|_| any_micro(rng)).collect();
                        for m in [&mut fast, &mut slow] {
                            m.set_local_program(d, &prog).expect("program");
                        }
                    }
                }
            }
            fast_trace.run(&mut fast, 24).expect("fast segment");
            slow_trace.run(&mut slow, 24).expect("slow segment");
        }

        assert_eq!(
            fast_trace.to_vcd(),
            slow_trace.to_vcd(),
            "cache missed an API-side invalidation"
        );
        assert_eq!(
            fast.stats().without_cache_counters(),
            slow.stats().without_cache_counters()
        );
    });
}

/// Steady-state execution hits the cache; configuration writes are the
/// only events that charge misses; the disabled path charges neither.
#[test]
fn cache_counters_track_invalidation() {
    let passthrough = MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::One)
        .write_reg(Reg::R0)
        .write_out();

    let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER);
    m.configure()
        .set_dnode_instr(0, 0, passthrough)
        .expect("instr");
    m.run(16).expect("warm-up");
    let warm = m.stats().clone();
    assert!(warm.decode_cache_misses > 0, "first cycle must decode");
    assert!(warm.decode_cache_hits >= 15, "steady state must hit");

    // Steady state: hits accrue, misses stay flat.
    m.run(16).expect("steady");
    assert_eq!(m.stats().decode_cache_misses, warm.decode_cache_misses);
    assert_eq!(m.stats().decode_cache_hits, warm.decode_cache_hits + 16);

    // A single Dnode rewrite re-decodes only what it touched.
    let before = m.stats().clone();
    m.configure()
        .set_dnode_instr(0, 0, passthrough.with_imm(Word16::from_i16(7)))
        .expect("rewrite");
    m.run(4).expect("after rewrite");
    assert!(
        m.stats().decode_cache_misses > before.decode_cache_misses,
        "config write must charge a miss"
    );

    // The decode-per-cycle path never touches either counter.
    let mut slow = RingMachine::new(
        RingGeometry::RING_8,
        MachineParams::PAPER.with_decode_cache(false),
    );
    slow.configure()
        .set_dnode_instr(0, 0, passthrough)
        .expect("instr");
    slow.run(32).expect("slow run");
    assert_eq!(slow.stats().decode_cache_hits, 0);
    assert_eq!(slow.stats().decode_cache_misses, 0);
}
