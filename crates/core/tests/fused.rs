//! Differential validation of the fused steady-state execution engine.
//!
//! Every test here runs the same scenario on three machines — the fused
//! engine (`fused` + `decode_cache`), the decoded per-cycle fast path
//! (`decode_cache` only) and the slow decode-per-cycle reference — and
//! demands **bit-identical** architectural behaviour: equal Dnode
//! registers, outputs and write stamps, equal bus values, sequencer
//! counters, controller state, sink streams and statistics modulo the
//! engines' own bookkeeping counters.
//!
//! The scenarios deliberately stress the deoptimization surface: random
//! controller programs reconfigure the fabric mid-run (every fused
//! program compiled before a write must be discarded at the exact cycle
//! the write lands), armed fault injectors must suppress fusion entirely,
//! and cycle budgets must be honoured to the exact cycle even when a
//! burst would overrun them.

use systolic_ring_core::controller::CtrlState;
use systolic_ring_core::fault::FaultConfig;
use systolic_ring_core::{lockstep_burst, MachineParams, RingMachine};
use systolic_ring_harness::for_random_cases;
use systolic_ring_harness::testkit::TestRng;
use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

fn any_operand(rng: &mut TestRng) -> Operand {
    *rng.choose(&[
        Operand::Reg(Reg::R0),
        Operand::Reg(Reg::R2),
        Operand::Reg(Reg::R3),
        Operand::In1,
        Operand::In2,
        Operand::Fifo1,
        Operand::Fifo2,
        Operand::Bus,
        Operand::Imm,
        Operand::Zero,
        Operand::One,
    ])
}

fn any_alu(rng: &mut TestRng) -> AluOp {
    *rng.choose(&[
        AluOp::Nop,
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Mac,
        AluOp::AbsDiff,
        AluOp::Shl,
        AluOp::Asr,
        AluOp::Min,
        AluOp::SltU,
    ])
}

fn any_micro(rng: &mut TestRng) -> MicroInstr {
    MicroInstr {
        alu: any_alu(rng),
        src_a: any_operand(rng),
        src_b: any_operand(rng),
        wr_reg: if rng.next_bool() { Some(Reg::R1) } else { None },
        wr_out: rng.next_bool(),
        wr_bus: rng.next_bool(),
        imm: Word16::from_i16(rng.any_i16()),
    }
}

/// A random but in-range port source for a Ring-8 with default params.
fn any_source(rng: &mut TestRng) -> PortSource {
    match rng.index(5) {
        0 => PortSource::Zero,
        1 => PortSource::Bus,
        2 => PortSource::PrevOut {
            lane: rng.index(2) as u8,
        },
        3 => PortSource::HostIn {
            port: rng.index(4) as u8,
        },
        _ => PortSource::Pipe {
            switch: rng.index(4) as u8,
            stage: rng.index(8) as u8,
            lane: rng.index(2) as u8,
        },
    }
}

fn r(n: u8) -> CReg {
    CReg::new(n).expect("register index")
}

/// Emits `rd = value` (Lui + Ori pair).
fn load32(code: &mut Vec<u32>, rd: CReg, value: u32) {
    code.push(
        CtrlInstr::Lui {
            rd,
            imm: (value >> 16) as u16,
        }
        .encode(),
    );
    code.push(
        CtrlInstr::Ori {
            rd,
            ra: rd,
            imm: value as u16,
        }
        .encode(),
    );
}

/// A random controller program interleaving *long* waits (so the fused
/// engine has room to enter between writes) with valid configuration
/// writes of every kind. Each write must deoptimize any compiled fused
/// program at the exact cycle it lands.
fn reconfig_program(rng: &mut TestRng) -> Vec<u32> {
    let mut code = Vec::new();
    let blocks = 2 + rng.index(3);
    for _ in 0..blocks {
        code.push(
            CtrlInstr::Wait {
                cycles: 60 + rng.index(120) as u16,
            }
            .encode(),
        );
        match rng.index(8) {
            0 => {
                let word = any_micro(rng).encode();
                code.push(
                    CtrlInstr::Cimm {
                        imm: (word >> 32) as u16,
                    }
                    .encode(),
                );
                load32(&mut code, r(1), word as u32);
                code.push(
                    CtrlInstr::Wdn {
                        rs: r(1),
                        dnode: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            1 => {
                load32(&mut code, r(2), any_source(rng).encode());
                code.push(
                    CtrlInstr::Wsw {
                        rs: r(2),
                        port: rng.index(32) as u16,
                    }
                    .encode(),
                );
            }
            2 => {
                let capture = if rng.next_bool() {
                    HostCapture::lane(rng.index(2) as u8)
                } else {
                    HostCapture::DISABLED
                };
                load32(&mut code, r(3), capture.encode());
                let switch = rng.index(4) as u16;
                let port = rng.index(2) as u16;
                code.push(
                    CtrlInstr::Who {
                        rs: r(3),
                        switch: (switch << 8) | port,
                    }
                    .encode(),
                );
            }
            3 => {
                load32(&mut code, r(4), rng.next_bool() as u32);
                code.push(
                    CtrlInstr::Wmode {
                        rs: r(4),
                        dnode: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            4 => {
                let word = any_micro(rng).encode();
                code.push(
                    CtrlInstr::Cimm {
                        imm: (word >> 32) as u16,
                    }
                    .encode(),
                );
                load32(&mut code, r(5), word as u32);
                let packed = ((rng.index(8) << 3) | rng.index(8)) as u16;
                code.push(CtrlInstr::Wloc { rs: r(5), packed }.encode());
            }
            5 => {
                load32(&mut code, r(6), 1 + rng.index(8) as u32);
                code.push(
                    CtrlInstr::Wlim {
                        rs: r(6),
                        dnode: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            6 => {
                code.push(
                    CtrlInstr::Ctx {
                        ctx: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
            _ => {
                code.push(
                    CtrlInstr::Wctx {
                        ctx: rng.index(8) as u16,
                    }
                    .encode(),
                );
            }
        }
    }
    code.push(CtrlInstr::Wait { cycles: 200 }.encode());
    code.push(CtrlInstr::Halt.encode());
    code
}

/// Everything needed to construct identical machines at different
/// simulation tiers.
struct Scenario {
    instrs: Vec<(usize, usize, MicroInstr)>,
    sources: Vec<(usize, usize, usize, usize, PortSource)>,
    locals: Vec<(usize, Vec<MicroInstr>)>,
    modes: Vec<usize>,
    program: Vec<u32>,
    inputs: Vec<Word16>,
}

impl Scenario {
    fn random(rng: &mut TestRng) -> Scenario {
        let mut instrs = Vec::new();
        let mut sources = Vec::new();
        let mut locals = Vec::new();
        let mut modes = Vec::new();
        for ctx in 0..2 {
            for d in 0..8 {
                instrs.push((ctx, d, any_micro(rng)));
            }
            for i in 0..16 {
                sources.push((ctx, i % 4, (i / 4) % 2, i % 4, any_source(rng)));
            }
        }
        for d in 0..8 {
            if rng.next_bool() {
                let len = 1 + rng.index(4);
                locals.push((d, (0..len).map(|_| any_micro(rng)).collect()));
                if rng.next_bool() {
                    modes.push(d);
                }
            }
        }
        let words = rng.index(96);
        Scenario {
            instrs,
            sources,
            locals,
            modes,
            program: reconfig_program(rng),
            inputs: rng
                .vec_i16(words, i16::MIN as i64..i16::MAX as i64 + 1)
                .into_iter()
                .map(Word16::from_i16)
                .collect(),
        }
    }

    fn build_with(&self, params: MachineParams) -> RingMachine {
        let mut m = RingMachine::new(RingGeometry::RING_8, params);
        for &(ctx, d, instr) in &self.instrs {
            m.configure().set_dnode_instr(ctx, d, instr).expect("instr");
        }
        for &(ctx, switch, lane, port, src) in &self.sources {
            m.configure()
                .set_port(ctx, switch, lane, port, src)
                .expect("port");
        }
        for (d, prog) in &self.locals {
            m.set_local_program(*d, prog).expect("local program");
        }
        for &d in &self.modes {
            m.set_mode(d, DnodeMode::Local);
        }
        for ctx in 0..2 {
            m.configure()
                .set_capture(ctx, 1, 0, HostCapture::lane(1))
                .expect("capture");
        }
        m.open_sink(1, 0).expect("sink");
        m.attach_input(0, 0, self.inputs.iter().copied())
            .expect("stream");
        if !self.program.is_empty() {
            m.controller_mut()
                .load_program(&self.program)
                .expect("program loads");
        }
        m
    }

    /// The three tiers under comparison: fused, decoded-only, slow.
    fn build_tiers(&self) -> [RingMachine; 3] {
        [
            self.build_with(MachineParams::PAPER), // fused + decode_cache
            self.build_with(MachineParams::PAPER.with_fused(false)),
            self.build_with(
                MachineParams::PAPER
                    .with_fused(false)
                    .with_decode_cache(false),
            ),
        ]
    }
}

/// Asserts every architecturally visible piece of state matches between
/// two machines: cycle, bus, controller, and per-Dnode registers,
/// outputs, output write stamps, modes and sequencer counters.
fn assert_same_state(a: &RingMachine, b: &RingMachine, what: &str) {
    assert_eq!(a.cycle(), b.cycle(), "{what}: cycle");
    assert_eq!(a.bus(), b.bus(), "{what}: bus");
    assert_eq!(
        a.controller().state(),
        b.controller().state(),
        "{what}: controller state"
    );
    assert_eq!(
        a.config().active_index(),
        b.config().active_index(),
        "{what}: active context"
    );
    for d in 0..a.geometry().dnodes() {
        let (x, y) = (a.dnode(d), b.dnode(d));
        assert_eq!(x.out(), y.out(), "{what}: dnode {d} out");
        assert_eq!(
            x.out_written_at(),
            y.out_written_at(),
            "{what}: dnode {d} out stamp"
        );
        assert_eq!(x.mode(), y.mode(), "{what}: dnode {d} mode");
        for reg in [Reg::R0, Reg::R1, Reg::R2, Reg::R3] {
            assert_eq!(x.reg(reg), y.reg(reg), "{what}: dnode {d} {reg:?}");
        }
        assert_eq!(
            x.sequencer().counter(),
            y.sequencer().counter(),
            "{what}: dnode {d} sequencer counter"
        );
    }
}

/// Random fabrics under random mid-run controller reconfiguration stay
/// bit-identical across all three tiers, segment boundary by segment
/// boundary, while the fused engine actually engages somewhere in the
/// sweep (the waits are long enough for the detection window).
#[test]
fn random_reconfiguration_three_way_differential() {
    let mut total_entries = 0u64;
    let mut total_deopts = 0u64;
    for_random_cases!(32, 0xf05ed, |rng| {
        let scenario = Scenario::random(rng);
        let [mut fused, mut decoded, mut slow] = scenario.build_tiers();
        assert!(fused.params().fused && fused.params().decode_cache);
        assert!(!decoded.params().fused && decoded.params().decode_cache);
        assert!(!slow.params().fused && !slow.params().decode_cache);

        // Random segment lengths force fused bursts to stop at arbitrary
        // budget boundaries, not just at controller events.
        let mut remaining: u64 = 768;
        while remaining > 0 {
            let seg = (1 + rng.index(160) as u64).min(remaining);
            remaining -= seg;
            fused.run(seg).expect("fused run");
            decoded.run(seg).expect("decoded run");
            slow.run(seg).expect("slow run");
            assert_same_state(&fused, &decoded, "fused vs decoded");
            assert_same_state(&fused, &slow, "fused vs slow");
        }

        assert_eq!(
            fused.take_sink(1, 0).expect("fused sink"),
            slow.take_sink(1, 0).expect("slow sink"),
            "sink streams diverged"
        );
        assert_eq!(
            fused.stats().without_cache_counters(),
            slow.stats().without_cache_counters(),
            "architectural statistics diverged"
        );
        // The non-fused tiers never touch the fused engine.
        assert_eq!(decoded.stats().fused_entries, 0);
        assert_eq!(slow.stats().fused_entries, 0);
        total_entries += fused.stats().fused_entries;
        total_deopts += fused.stats().fused_deopts;
    });
    // The sweep as a whole exercised both entry and deoptimization.
    assert!(total_entries > 0, "fused engine never engaged");
    assert!(total_deopts > 0, "fused engine never deoptimized");
}

/// A steady fabric whose controller reconfigures it exactly once: the
/// engine fuses, deoptimizes at the write, then re-fuses.
#[test]
fn reconfiguration_write_deoptimizes_and_refuses() {
    let add = MicroInstr::op(AluOp::Add, Operand::In1, Operand::One).write_out();
    let mut code = Vec::new();
    code.push(CtrlInstr::Wait { cycles: 400 }.encode());
    // Rewrite Dnode 0 to a MAC; the compiled program is now stale.
    let word = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::One)
        .write_out()
        .encode();
    code.push(
        CtrlInstr::Cimm {
            imm: (word >> 32) as u16,
        }
        .encode(),
    );
    load32(&mut code, r(1), word as u32);
    code.push(CtrlInstr::Wdn { rs: r(1), dnode: 0 }.encode());
    code.push(CtrlInstr::Wait { cycles: 400 }.encode());
    code.push(CtrlInstr::Halt.encode());

    let build = |params: MachineParams| {
        let mut m = RingMachine::new(RingGeometry::RING_8, params);
        m.configure()
            .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })
            .expect("port");
        m.configure().set_dnode_instr(0, 0, add).expect("instr");
        m.configure()
            .set_capture(0, 1, 0, HostCapture::lane(0))
            .expect("capture");
        m.open_sink(1, 0).expect("sink");
        m.attach_input(0, 0, (0..64).map(Word16::from_i16))
            .expect("stream");
        m.controller_mut().load_program(&code).expect("program");
        m
    };

    let mut fused = build(MachineParams::PAPER);
    let mut slow = build(
        MachineParams::PAPER
            .with_fused(false)
            .with_decode_cache(false),
    );
    fused.run(900).expect("fused run");
    slow.run(900).expect("slow run");

    assert_same_state(&fused, &slow, "post-reconfiguration");
    assert_eq!(
        fused.take_sink(1, 0).expect("fused sink"),
        slow.take_sink(1, 0).expect("slow sink")
    );
    let stats = fused.stats();
    assert!(
        stats.fused_entries >= 2,
        "expected re-entry after the write, got {} entries",
        stats.fused_entries
    );
    assert!(
        stats.fused_deopts >= 1,
        "the configuration write must deoptimize the compiled program"
    );
    // Single-lane fusion: occupancy equals fused cycles exactly.
    assert_eq!(stats.fused_lane_occupancy, stats.fused_cycles);
    assert!(stats.fused_cycles > 0);
}

/// An armed fault injector — even detection-only scrubbing — suppresses
/// fusion entirely: fault schedules are cycle-by-cycle and the fail-stop
/// detection contract must see every cycle.
#[test]
fn armed_faults_suppress_fusion() {
    for cfg in [
        FaultConfig::uniform(0xDEAD, 40),
        FaultConfig::detect_only(16),
    ] {
        let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER.with_faults(cfg));
        let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0);
        for d in 0..8 {
            m.set_local_program(d, &[mac]).expect("program");
            m.set_mode(d, DnodeMode::Local);
        }
        // Ignore injected datapath faults; we only care that no burst ran.
        let _ = m.run(500);
        assert_eq!(
            m.stats().fused_entries,
            0,
            "fused engine must stay off while faults are armed ({cfg:?})"
        );
        assert!(m.cycle() > 0);
    }
}

/// `run_until_halt` budget accounting is exact under fusion: a burst
/// never overruns the budget, and the halt lands on the same cycle as
/// the slow reference.
#[test]
fn run_until_halt_budget_is_exact_under_fusion() {
    let code = vec![
        CtrlInstr::Wait { cycles: 400 }.encode(),
        CtrlInstr::Halt.encode(),
    ];

    let build = |fused: bool| {
        let mut m = RingMachine::new(
            RingGeometry::RING_8,
            if fused {
                MachineParams::PAPER
            } else {
                MachineParams::PAPER
                    .with_fused(false)
                    .with_decode_cache(false)
            },
        );
        m.controller_mut().load_program(&code).expect("program");
        m
    };

    // Budget exhausted mid-wait: exactly 120 cycles, not a burst more.
    let mut fused = build(true);
    let mut slow = build(false);
    let fe = fused.run_until_halt(120).expect_err("budget hits first");
    let se = slow.run_until_halt(120).expect_err("budget hits first");
    assert_eq!(fused.cycle(), 120, "burst overran the cycle budget");
    assert_eq!(slow.cycle(), 120);
    assert_eq!(fe.to_string(), se.to_string());
    assert!(fused.stats().fused_entries >= 1, "wait window should fuse");

    // Budget generous: both halt on the same cycle.
    let mut fused = build(true);
    let mut slow = build(false);
    let fc = fused.run_until_halt(10_000).expect("halts");
    let sc = slow.run_until_halt(10_000).expect("halts");
    assert_eq!(fc, sc, "halt cycle diverged under fusion");
    assert_eq!(fused.controller().state(), CtrlState::Halted);
}

/// Single-stepping never enters the fused engine, whatever the params —
/// tracing and debugging see every cycle individually.
#[test]
fn step_never_fuses() {
    let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER);
    let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0);
    for d in 0..8 {
        m.set_local_program(d, &[mac]).expect("program");
        m.set_mode(d, DnodeMode::Local);
    }
    for _ in 0..300 {
        m.step().expect("step");
    }
    assert_eq!(m.stats().fused_entries, 0);
    // The same workload through run() does fuse.
    let mut m2 = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER);
    for d in 0..8 {
        m2.set_local_program(d, &[mac]).expect("program");
        m2.set_mode(d, DnodeMode::Local);
    }
    m2.run(300).expect("run");
    assert!(m2.stats().fused_entries >= 1);
    assert_same_state(&m, &m2, "step vs run");
}

/// Multi-lane lockstep bursts over machines sharing a configuration but
/// carrying different input streams match per-machine execution exactly.
#[test]
fn lockstep_burst_matches_individual_runs() {
    let configure = |m: &mut RingMachine, base: i16| {
        m.configure()
            .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })
            .expect("port");
        m.configure()
            .set_dnode_instr(
                0,
                0,
                MicroInstr::op(AluOp::Add, Operand::In1, Operand::One).write_out(),
            )
            .expect("instr");
        m.configure()
            .set_capture(0, 1, 0, HostCapture::lane(0))
            .expect("capture");
        m.open_sink(1, 0).expect("sink");
        m.attach_input(0, 0, (0..48).map(|i| Word16::from_i16(base + i)))
            .expect("stream");
    };

    const LANES: usize = 4;
    const TARGET: u64 = 2_000;
    let mut grouped: Vec<RingMachine> = Vec::new();
    let mut reference: Vec<RingMachine> = Vec::new();
    for lane in 0..LANES {
        for pool in [&mut grouped, &mut reference] {
            let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER);
            configure(&mut m, lane as i16 * 1000);
            pool.push(m);
        }
    }

    // Drive the group purely through lockstep bursts, falling back to a
    // one-cycle run (the warmup/detection path) when no burst enters.
    loop {
        let cycle = grouped[0].cycle();
        if cycle >= TARGET {
            break;
        }
        let burst = {
            let mut lanes: Vec<&mut RingMachine> = grouped.iter_mut().collect();
            lockstep_burst(&mut lanes, TARGET - cycle)
        };
        if burst == 0 {
            for m in &mut grouped {
                m.run(1).expect("warmup cycle");
            }
        }
    }
    for m in &mut reference {
        m.run(TARGET).expect("reference run");
    }

    let mut saw_multi_lane = false;
    for (i, (g, r)) in grouped.iter_mut().zip(&mut reference).enumerate() {
        assert_same_state(g, r, &format!("lane {i}"));
        assert_eq!(
            g.take_sink(1, 0).expect("group sink"),
            r.take_sink(1, 0).expect("reference sink"),
            "lane {i} sink diverged"
        );
        assert_eq!(
            g.stats().without_cache_counters(),
            r.stats().without_cache_counters(),
            "lane {i} stats diverged"
        );
        saw_multi_lane |= g.stats().fused_lane_occupancy > g.stats().fused_cycles;
    }
    assert!(
        saw_multi_lane,
        "the group never actually ran a multi-lane burst"
    );
}
