//! Property tests for the switch-state primitives: the feedback pipeline
//! behaves as a shift register of layer snapshots, and the bounded FIFO
//! behaves as a queue with drop-on-full semantics.

use proptest::prelude::*;
use std::collections::VecDeque;
use systolic_ring_core::switch::{FeedbackPipeline, PushOutcome, WordFifo};
use systolic_ring_isa::Word16;

proptest! {
    /// After any push sequence, stage `q` holds the vector pushed `q`
    /// pushes ago (zero-filled beyond history).
    #[test]
    fn pipeline_is_a_shift_register(
        depth in 1usize..12,
        width in 1usize..6,
        pushes in proptest::collection::vec(any::<i16>(), 0..40),
    ) {
        let mut pipe = FeedbackPipeline::new(depth, width);
        let mut history: Vec<Vec<Word16>> = Vec::new();
        for (i, &seed) in pushes.iter().enumerate() {
            let vector: Vec<Word16> = (0..width)
                .map(|lane| Word16::from_i16(seed.wrapping_add(lane as i16 + i as i16)))
                .collect();
            history.push(vector.clone());
            pipe.push(vector);
        }
        for q in 0..depth {
            for lane in 0..width {
                let expect = if q < history.len() {
                    history[history.len() - 1 - q][lane]
                } else {
                    Word16::ZERO
                };
                prop_assert_eq!(pipe.read(q, lane), expect, "stage {} lane {}", q, lane);
            }
        }
    }

    /// The bounded FIFO agrees with a reference deque that ignores pushes
    /// past capacity.
    #[test]
    fn fifo_matches_a_reference_queue(
        capacity in 1usize..8,
        ops in proptest::collection::vec(proptest::option::of(any::<i16>()), 0..64),
    ) {
        let mut fifo = WordFifo::new(capacity);
        let mut model: VecDeque<Word16> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let word = Word16::from_i16(v);
                    let outcome = fifo.push(word);
                    if model.len() < capacity {
                        prop_assert_eq!(outcome, PushOutcome::Stored);
                        model.push_back(word);
                    } else {
                        prop_assert_eq!(outcome, PushOutcome::Dropped);
                    }
                }
                None => {
                    prop_assert_eq!(fifo.pop(), model.pop_front());
                }
            }
            prop_assert_eq!(fifo.len(), model.len());
            prop_assert_eq!(fifo.peek(), model.front().copied());
            prop_assert_eq!(fifo.is_empty(), model.is_empty());
            prop_assert_eq!(fifo.is_full(), model.len() >= capacity);
        }
    }
}
