//! Property tests for the switch-state primitives: the feedback pipeline
//! behaves as a shift register of layer snapshots, and the bounded FIFO
//! behaves as a queue with drop-on-full semantics.

use std::collections::VecDeque;
use systolic_ring_core::switch::{FeedbackPipeline, PushOutcome, WordFifo};
use systolic_ring_harness::for_random_cases;
use systolic_ring_isa::Word16;

/// After any push sequence, stage `q` holds the vector pushed `q` pushes
/// ago (zero-filled beyond history).
#[test]
fn pipeline_is_a_shift_register() {
    for_random_cases!(256, 0x51f7, |rng| {
        let depth = rng.index(11) + 1;
        let width = rng.index(5) + 1;
        let push_count = rng.index(40);
        let pushes = rng.vec_i16(push_count, i16::MIN as i64..i16::MAX as i64 + 1);

        let mut pipe = FeedbackPipeline::new(depth, width);
        let mut history: Vec<Vec<Word16>> = Vec::new();
        for (i, &seed) in pushes.iter().enumerate() {
            let vector: Vec<Word16> = (0..width)
                .map(|lane| Word16::from_i16(seed.wrapping_add(lane as i16 + i as i16)))
                .collect();
            history.push(vector.clone());
            pipe.push(vector);
        }
        for q in 0..depth {
            for lane in 0..width {
                let expect = if q < history.len() {
                    history[history.len() - 1 - q][lane]
                } else {
                    Word16::ZERO
                };
                assert_eq!(pipe.read(q, lane), expect, "stage {q} lane {lane}");
            }
        }
    });
}

/// The bounded FIFO agrees with a reference deque that ignores pushes past
/// capacity.
#[test]
fn fifo_matches_a_reference_queue() {
    for_random_cases!(256, 0xf1f0, |rng| {
        let capacity = rng.index(7) + 1;
        let op_count = rng.index(64);
        let ops: Vec<Option<i16>> = (0..op_count)
            .map(|_| rng.next_bool().then(|| rng.any_i16()))
            .collect();

        let mut fifo = WordFifo::new(capacity);
        let mut model: VecDeque<Word16> = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    let word = Word16::from_i16(v);
                    let outcome = fifo.push(word);
                    if model.len() < capacity {
                        assert_eq!(outcome, PushOutcome::Stored);
                        model.push_back(word);
                    } else {
                        assert_eq!(outcome, PushOutcome::Dropped);
                    }
                }
                None => {
                    assert_eq!(fifo.pop(), model.pop_front());
                }
            }
            assert_eq!(fifo.len(), model.len());
            assert_eq!(fifo.peek(), model.front().copied());
            assert_eq!(fifo.is_empty(), model.is_empty());
            assert_eq!(fifo.is_full(), model.len() >= capacity);
        }
    });
}
