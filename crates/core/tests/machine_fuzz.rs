//! Machine robustness: arbitrary valid configurations and arbitrary
//! controller programs must never panic the simulator — faults surface as
//! clean `SimError`s only.

use proptest::prelude::*;
use systolic_ring_core::{MachineParams, RingMachine};
use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        Just(Operand::Reg(Reg::R0)),
        Just(Operand::Reg(Reg::R3)),
        Just(Operand::In1),
        Just(Operand::In2),
        Just(Operand::Fifo1),
        Just(Operand::Fifo2),
        Just(Operand::Bus),
        Just(Operand::Imm),
        Just(Operand::Zero),
        Just(Operand::One),
    ]
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Nop),
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Mac),
        Just(AluOp::AbsDiff),
        Just(AluOp::Shl),
        Just(AluOp::Asr),
        Just(AluOp::Min),
        Just(AluOp::SltU),
    ]
}

fn arb_micro() -> impl Strategy<Value = MicroInstr> {
    (
        arb_alu(),
        arb_operand(),
        arb_operand(),
        proptest::option::of(Just(Reg::R1)),
        any::<bool>(),
        any::<bool>(),
        any::<i16>(),
    )
        .prop_map(|(alu, a, b, wr, out, bus, imm)| MicroInstr {
            alu,
            src_a: a,
            src_b: b,
            wr_reg: wr,
            wr_out: out,
            wr_bus: bus,
            imm: Word16::from_i16(imm),
        })
}

/// A random but in-range port source for a Ring-8 with default params.
fn arb_source() -> impl Strategy<Value = PortSource> {
    prop_oneof![
        Just(PortSource::Zero),
        Just(PortSource::Bus),
        (0u8..2).prop_map(|lane| PortSource::PrevOut { lane }),
        (0u8..4).prop_map(|port| PortSource::HostIn { port }),
        (0u8..4, 0u8..8, 0u8..2)
            .prop_map(|(switch, stage, lane)| PortSource::Pipe { switch, stage, lane }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random valid fabric configurations with random streams run clean.
    #[test]
    fn random_fabrics_never_panic(
        instrs in proptest::collection::vec(arb_micro(), 8),
        sources in proptest::collection::vec(arb_source(), 16),
        modes in proptest::collection::vec(any::<bool>(), 8),
        words in proptest::collection::vec(any::<i16>(), 0..32),
    ) {
        let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER);
        for (d, instr) in instrs.iter().enumerate() {
            m.configure().set_dnode_instr(0, d, *instr).expect("in range");
            if modes[d] {
                m.set_local_program(d, &[*instr]).expect("program");
                m.set_mode(d, DnodeMode::Local);
            }
        }
        for (i, src) in sources.iter().enumerate() {
            let switch = i % 4;
            let lane = (i / 4) % 2;
            let port = i % 4;
            m.configure().set_port(0, switch, lane, port, *src).expect("validated");
        }
        m.configure().set_capture(0, 1, 0, HostCapture::lane(1)).expect("capture");
        m.open_sink(1, 0).expect("sink");
        m.attach_input(0, 0, words.iter().map(|&v| Word16::from_i16(v))).expect("stream");
        m.run(64).expect("no faults possible without a controller program");
        prop_assert_eq!(m.stats().cycles, 64);
    }

    /// Random controller programs over valid instruction words either halt,
    /// keep running, or fault with a clean machine check — never panic.
    #[test]
    fn random_controller_programs_never_panic(
        raw in proptest::collection::vec((0u8..42, any::<u8>(), any::<u8>(), any::<u16>()), 1..24),
    ) {
        // Build semi-structured instructions: random but decodable words.
        let mut code = Vec::new();
        for (op, r1, r2, imm) in raw {
            let rd = CReg::new(r1 % 16).expect("reg");
            let ra = CReg::new(r2 % 16).expect("reg");
            let instr = match op % 14 {
                0 => CtrlInstr::Addi { rd, ra, imm: imm as i16 },
                1 => CtrlInstr::Add { rd, ra, rb: rd },
                2 => CtrlInstr::Lui { rd, imm },
                3 => CtrlInstr::Lw { rd, ra, imm: (imm % 128) as i16 },
                4 => CtrlInstr::Sw { rs: rd, ra, imm: (imm % 128) as i16 },
                5 => CtrlInstr::Beq { ra, rb: rd, offset: (imm % 8) as i16 - 4 },
                6 => CtrlInstr::J { target: imm % 32 },
                7 => CtrlInstr::Cimm { imm },
                8 => CtrlInstr::Wctx { ctx: imm % 8 },
                9 => CtrlInstr::Wdn { rs: rd, dnode: imm % 8 },
                10 => CtrlInstr::Wsw { rs: rd, port: imm % 32 },
                11 => CtrlInstr::Ctx { ctx: imm % 8 },
                12 => CtrlInstr::Busw { rs: rd },
                _ => CtrlInstr::Wait { cycles: imm % 16 },
            };
            code.push(instr.encode());
        }
        code.push(CtrlInstr::Halt.encode());
        let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER);
        m.controller_mut().load_program(&code).expect("loads");
        // Run; faults (bad config words from register garbage) are fine,
        // panics are not.
        let _ = m.run(256);
    }
}
