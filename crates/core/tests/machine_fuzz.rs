//! Machine robustness: arbitrary valid configurations and arbitrary
//! controller programs must never panic the simulator — faults surface as
//! clean `SimError`s only.

use systolic_ring_core::{MachineParams, RingMachine};
use systolic_ring_harness::for_random_cases;
use systolic_ring_harness::testkit::TestRng;
use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

fn any_operand(rng: &mut TestRng) -> Operand {
    *rng.choose(&[
        Operand::Reg(Reg::R0),
        Operand::Reg(Reg::R3),
        Operand::In1,
        Operand::In2,
        Operand::Fifo1,
        Operand::Fifo2,
        Operand::Bus,
        Operand::Imm,
        Operand::Zero,
        Operand::One,
    ])
}

fn any_alu(rng: &mut TestRng) -> AluOp {
    *rng.choose(&[
        AluOp::Nop,
        AluOp::Add,
        AluOp::Sub,
        AluOp::Mul,
        AluOp::Mac,
        AluOp::AbsDiff,
        AluOp::Shl,
        AluOp::Asr,
        AluOp::Min,
        AluOp::SltU,
    ])
}

fn any_micro(rng: &mut TestRng) -> MicroInstr {
    MicroInstr {
        alu: any_alu(rng),
        src_a: any_operand(rng),
        src_b: any_operand(rng),
        wr_reg: if rng.next_bool() { Some(Reg::R1) } else { None },
        wr_out: rng.next_bool(),
        wr_bus: rng.next_bool(),
        imm: Word16::from_i16(rng.any_i16()),
    }
}

/// A random but in-range port source for a Ring-8 with default params.
fn any_source(rng: &mut TestRng) -> PortSource {
    match rng.index(5) {
        0 => PortSource::Zero,
        1 => PortSource::Bus,
        2 => PortSource::PrevOut {
            lane: rng.index(2) as u8,
        },
        3 => PortSource::HostIn {
            port: rng.index(4) as u8,
        },
        _ => PortSource::Pipe {
            switch: rng.index(4) as u8,
            stage: rng.index(8) as u8,
            lane: rng.index(2) as u8,
        },
    }
}

/// Random valid fabric configurations with random streams run clean.
#[test]
fn random_fabrics_never_panic() {
    for_random_cases!(64, 0xfab, |rng| {
        let instrs: Vec<MicroInstr> = (0..8).map(|_| any_micro(rng)).collect();
        let sources: Vec<PortSource> = (0..16).map(|_| any_source(rng)).collect();
        let modes: Vec<bool> = (0..8).map(|_| rng.next_bool()).collect();
        let word_count = rng.index(32);
        let words = rng.vec_i16(word_count, i16::MIN as i64..i16::MAX as i64 + 1);

        let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER);
        for (d, instr) in instrs.iter().enumerate() {
            m.configure()
                .set_dnode_instr(0, d, *instr)
                .expect("in range");
            if modes[d] {
                m.set_local_program(d, &[*instr]).expect("program");
                m.set_mode(d, DnodeMode::Local);
            }
        }
        for (i, src) in sources.iter().enumerate() {
            let switch = i % 4;
            let lane = (i / 4) % 2;
            let port = i % 4;
            m.configure()
                .set_port(0, switch, lane, port, *src)
                .expect("validated");
        }
        m.configure()
            .set_capture(0, 1, 0, HostCapture::lane(1))
            .expect("capture");
        m.open_sink(1, 0).expect("sink");
        m.attach_input(0, 0, words.iter().map(|&v| Word16::from_i16(v)))
            .expect("stream");
        m.run(64)
            .expect("no faults possible without a controller program");
        assert_eq!(m.stats().cycles, 64);
    });
}

/// Random controller programs over valid instruction words either halt,
/// keep running, or fault with a clean machine check — never panic.
#[test]
fn random_controller_programs_never_panic() {
    for_random_cases!(64, 0xc0de, |rng| {
        // Build semi-structured instructions: random but decodable words.
        let len = rng.index(23) + 1;
        let mut code = Vec::new();
        for _ in 0..len {
            let op = rng.index(42) as u8;
            let r1 = rng.next_u64() as u8;
            let r2 = rng.next_u64() as u8;
            let imm = rng.any_u16();
            let rd = CReg::new(r1 % 16).expect("reg");
            let ra = CReg::new(r2 % 16).expect("reg");
            let instr = match op % 14 {
                0 => CtrlInstr::Addi {
                    rd,
                    ra,
                    imm: imm as i16,
                },
                1 => CtrlInstr::Add { rd, ra, rb: rd },
                2 => CtrlInstr::Lui { rd, imm },
                3 => CtrlInstr::Lw {
                    rd,
                    ra,
                    imm: (imm % 128) as i16,
                },
                4 => CtrlInstr::Sw {
                    rs: rd,
                    ra,
                    imm: (imm % 128) as i16,
                },
                5 => CtrlInstr::Beq {
                    ra,
                    rb: rd,
                    offset: (imm % 8) as i16 - 4,
                },
                6 => CtrlInstr::J { target: imm % 32 },
                7 => CtrlInstr::Cimm { imm },
                8 => CtrlInstr::Wctx { ctx: imm % 8 },
                9 => CtrlInstr::Wdn {
                    rs: rd,
                    dnode: imm % 8,
                },
                10 => CtrlInstr::Wsw {
                    rs: rd,
                    port: imm % 32,
                },
                11 => CtrlInstr::Ctx { ctx: imm % 8 },
                12 => CtrlInstr::Busw { rs: rd },
                _ => CtrlInstr::Wait { cycles: imm % 16 },
            };
            code.push(instr.encode());
        }
        code.push(CtrlInstr::Halt.encode());
        let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER);
        m.controller_mut().load_program(&code).expect("loads");
        // Run; faults (bad config words from register garbage) are fine,
        // panics are not.
        let _ = m.run(256);
    });
}
