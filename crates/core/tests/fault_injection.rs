//! Black-box tests of the fault-injection and recovery subsystem:
//! fast/slow path agreement under injection, checkpoint/rollback
//! determinism, watchdog behaviour, parity scrubs and stuck-output
//! detection with spare-Dnode remapping.

use systolic_ring_core::{FaultConfig, FaultSite, MachineParams, RingMachine, SimError, Stats};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::PortSource;
use systolic_ring_isa::{RingGeometry, Word16};

fn w(v: i16) -> Word16 {
    Word16::from_i16(v)
}

/// A machine with every Dnode running a local MAC loop: plenty of live
/// registers, output writes and sequencer state for faults to land on.
fn busy_machine(params: MachineParams) -> RingMachine {
    let mut m = RingMachine::new(RingGeometry::RING_8, params);
    let mac = MicroInstr::op(AluOp::Mac, Operand::One, Operand::One)
        .write_reg(Reg::R0)
        .write_out();
    for d in 0..m.geometry().dnodes() {
        m.set_local_program(d, &[mac]).unwrap();
        m.set_mode(d, DnodeMode::Local);
    }
    m
}

/// Steps until the first error, returning (cycle, error, stats).
fn first_fault(params: MachineParams, budget: u64) -> (u64, Option<SimError>, Stats) {
    let mut m = busy_machine(params);
    for _ in 0..budget {
        if let Err(e) = m.step() {
            return (m.cycle(), Some(e), m.stats().clone());
        }
    }
    (m.cycle(), None, m.stats().clone())
}

#[test]
fn fast_and_slow_paths_fault_at_identical_cycles() {
    for seed in 0..8u64 {
        let faults = FaultConfig::uniform(seed, 3_000);
        let fast = MachineParams::PAPER
            .with_faults(faults)
            .with_decode_cache(true);
        let slow = MachineParams::PAPER
            .with_faults(faults)
            .with_decode_cache(false);
        let (fc, fe, fs) = first_fault(fast, 4096);
        let (sc, se, ss) = first_fault(slow, 4096);
        assert_eq!(fc, sc, "seed {seed}: fault cycle differs across paths");
        assert_eq!(fe, se, "seed {seed}: fault differs across paths");
        assert_eq!(
            fs.without_cache_counters(),
            ss.without_cache_counters(),
            "seed {seed}: stats differ across paths"
        );
        if let Some(e) = fe {
            assert!(e.is_detected_fault(), "seed {seed}: {e}");
        }
    }
}

#[test]
fn undetected_corruption_evolves_identically_on_both_paths() {
    // Scrub disabled: faults land and *propagate*, and the corrupted
    // machine must still evolve bit-identically on the cached and
    // decoded paths — corruption is part of the architectural state.
    for seed in [3u64, 11, 42] {
        let faults = FaultConfig {
            scrub_interval: 0,
            ..FaultConfig::uniform(seed, 2_000)
        };
        let mut fast = busy_machine(
            MachineParams::PAPER
                .with_faults(faults)
                .with_decode_cache(true),
        );
        let mut slow = busy_machine(
            MachineParams::PAPER
                .with_faults(faults)
                .with_decode_cache(false),
        );
        for chunk in 0..4 {
            fast.run(128).unwrap();
            slow.run(128).unwrap();
            for d in 0..fast.geometry().dnodes() {
                assert_eq!(
                    fast.dnode(d),
                    slow.dnode(d),
                    "seed {seed} chunk {chunk}: dnode {d} diverged"
                );
            }
        }
        let fs = fast.stats().without_cache_counters();
        let ss = slow.stats().without_cache_counters();
        assert_eq!(fs, ss, "seed {seed}: stats diverged");
        assert!(fs.faults_injected > 0, "seed {seed}: nothing was injected");
    }
}

#[test]
fn restore_replays_the_identical_fault_schedule() {
    let faults = FaultConfig::uniform(7, 20_000);
    let mut m = busy_machine(MachineParams::PAPER.with_faults(faults));
    let ckpt = m.checkpoint();
    let e1 = m.run(4096).unwrap_err();
    let c1 = m.cycle();
    assert!(e1.is_detected_fault(), "{e1}");

    // Rolling back and re-running replays the exact same fault universe.
    m.restore(&ckpt);
    assert_eq!(m.cycle(), 0);
    let e2 = m.run(4096).unwrap_err();
    assert_eq!(e1, e2);
    assert_eq!(m.cycle(), c1);

    // Checkpoint/restore counters are monotonic — they survive restore.
    assert_eq!(m.stats().checkpoints, 1);
    assert_eq!(m.stats().restores, 1);

    // Re-arming re-salts the transient schedule: the machine does not
    // deterministically re-execute into the same fault.
    m.restore(&ckpt);
    m.rearm_faults(1);
    assert_eq!(m.stats().restores, 2);
    match m.run(4096) {
        Ok(()) => {}
        Err(e) => {
            assert!(e.is_detected_fault(), "{e}");
            assert!(
                e != e1 || m.cycle() != c1,
                "re-armed schedule identical to the original"
            );
        }
    }
}

#[test]
fn watchdog_trips_on_an_idle_machine_and_rearms() {
    let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER.with_watchdog(64));
    let err = m.run(1_000).unwrap_err();
    match err {
        SimError::Watchdog {
            cycle,
            ctx,
            idle_cycles,
            ..
        } => {
            assert_eq!(cycle, 64);
            assert_eq!(ctx, 0, "idle machine sits in the reset context");
            assert_eq!(idle_cycles, 64);
        }
        other => panic!("expected watchdog, got {other}"),
    }
    // The trip leaves the machine at the cycle boundary and re-arms.
    assert_eq!(m.cycle(), 64);
    assert_eq!(m.stats().watchdog_trips, 1);
    let err = m.run(1_000).unwrap_err();
    match err {
        SimError::Watchdog {
            cycle, idle_cycles, ..
        } => {
            assert_eq!(cycle, 128);
            assert_eq!(idle_cycles, 64);
        }
        other => panic!("expected second watchdog, got {other}"),
    }
    assert_eq!(m.stats().watchdog_trips, 2);

    // Petting defers the next trip by a full interval.
    m.pet_watchdog();
    m.run(63).unwrap();
}

#[test]
fn watchdog_ignores_a_machine_making_host_progress() {
    let mut m = RingMachine::new(RingGeometry::RING_8, MachineParams::PAPER.with_watchdog(32));
    // Dnode 0 consumes a host stream every cycle: host words count as
    // progress, so the watchdog stays quiet while data flows.
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })
        .unwrap();
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_out(),
        )
        .unwrap();
    m.attach_input(0, 0, (0..500).map(|i| w(i as i16))).unwrap();
    m.run(400).unwrap();
    assert_eq!(m.stats().watchdog_trips, 0);
}

#[test]
fn config_corruption_is_caught_at_the_next_scrub() {
    let cfg = FaultConfig {
        seed: 5,
        config_ppm: 10_000,
        ..FaultConfig::detect_only(1)
    };
    let mut m = busy_machine(MachineParams::PAPER.with_faults(cfg));
    let err = m.run(100_000).unwrap_err();
    match err {
        SimError::ConfigCorruption { cycle, ctx, dnode } => {
            // Detection fires at the start of the faulting cycle, before
            // compute: the corrupt entry was never executed.
            assert_eq!(cycle, m.cycle());
            assert_eq!(ctx, 0, "only the active context was being scrubbed");
            assert!(dnode < m.geometry().dnodes());
        }
        other => panic!("expected config corruption, got {other}"),
    }
    assert_eq!(m.stats().config_faults_detected, 1);
    assert!(m.stats().faults_injected >= 1);
    assert!(m.stats().parity_scrubs >= m.cycle());

    // Accepting the corrupted entry as the new truth lets the machine
    // resume (until the next injection, which must again be detected).
    m.acknowledge_faults();
    for _ in 0..16 {
        if let Err(e) = m.step() {
            assert!(e.is_detected_fault(), "{e}");
            break;
        }
    }
}

#[test]
fn stuck_output_is_detected_and_a_spare_remap_recovers() {
    // Dnode 0 counts: out = R0 + 1 every cycle.
    let mut m = RingMachine::with_defaults(RingGeometry::RING_8);
    let inc = MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::One)
        .write_reg(Reg::R0)
        .write_out();
    m.set_local_program(0, &[inc]).unwrap();
    m.set_mode(0, DnodeMode::Local);
    m.run(10).unwrap();
    assert_eq!(m.dnode(0).out(), w(10));

    // Break the silicon: the output write port sticks at a fixed value.
    m.force_stuck(0, w(-77));
    let err = m.run(10).unwrap_err();
    match err {
        SimError::DatapathFault {
            site: FaultSite::StuckOut { dnode: 0 },
            ..
        } => {}
        other => panic!("expected stuck-output fault, got {other}"),
    }
    // Cycle 10 committed (with the stuck value forced), detection fired
    // before cycle 11 computed.
    assert_eq!(m.cycle(), 11);
    assert_eq!(m.dnode(0).out(), w(-77));
    assert_eq!(m.dnode(0).reg(Reg::R0), w(11));
    assert_eq!(m.stats().datapath_faults_detected, 1);

    // Repair: migrate the role onto the spare in the same layer.
    let spare = m.find_spare(0).expect("layer 0 has an idle spare");
    assert_eq!(spare, 1);
    m.remap_dnode(0, spare).unwrap();
    m.acknowledge_faults();

    // The counter's register state travelled with the remap; after five
    // more cycles the count reads exactly what an unbroken machine shows.
    m.run(5).unwrap();
    assert_eq!(m.cycle(), 16);
    assert_eq!(m.dnode(1).reg(Reg::R0), w(16));
    assert_eq!(m.dnode(1).out(), w(16));

    // The broken Dnode holds the spare's idle role and, being stuck, is
    // no longer offered as a spare.
    assert_eq!(m.dnode(0).mode(), DnodeMode::Global);
    assert_eq!(m.find_spare(0), None);
}

#[test]
fn detect_only_profile_never_fires_on_a_healthy_machine() {
    // Detection armed, injection off: the control configuration for
    // overhead measurements must be behaviourally invisible.
    let armed = busy_machine(MachineParams::PAPER.with_faults(FaultConfig::detect_only(1)));
    let bare = busy_machine(MachineParams::PAPER);
    let mut armed = armed;
    let mut bare = bare;
    armed.run(512).unwrap();
    bare.run(512).unwrap();
    for d in 0..armed.geometry().dnodes() {
        assert_eq!(armed.dnode(d), bare.dnode(d), "dnode {d} diverged");
    }
    assert_eq!(armed.stats().faults_injected, 0);
    assert!(armed.stats().parity_scrubs >= 512);
    assert_eq!(armed.stats().config_faults_detected, 0);
}
