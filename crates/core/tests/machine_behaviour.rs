//! Black-box behavioural tests of the whole machine: systolic pipelining,
//! feedback network, dynamic reconfiguration, bus traffic and object
//! loading.

use systolic_ring_core::{ConfigError, LinkModel, MachineParams, RingMachine, SimError};
use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::dnode::{AluOp, DnodeMode, MicroInstr, Operand, Reg};
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};

fn w(v: i16) -> Word16 {
    Word16::from_i16(v)
}

fn r(i: u8) -> CReg {
    CReg::new(i).unwrap()
}

fn ring8() -> RingMachine {
    RingMachine::with_defaults(RingGeometry::RING_8)
}

/// Values captured at a sink, with leading zeros (pipeline warm-up /
/// underflow reads) stripped.
fn nonzero(sink: Vec<Word16>) -> Vec<i16> {
    sink.iter()
        .map(|v| v.as_i16())
        .skip_while(|v| *v == 0)
        .collect()
}

#[test]
fn forward_pipeline_across_two_layers() {
    let mut m = ring8();
    // Layer 0 lane 0: out = in1 + 1 (from host port 0 of switch 0).
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })
        .unwrap();
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::Add, Operand::In1, Operand::One).write_out(),
        )
        .unwrap();
    // Layer 1 lane 0: out = in1 * 2; fed from layer 0 lane 0 through switch 1.
    m.configure()
        .set_port(0, 1, 0, 0, PortSource::PrevOut { lane: 0 })
        .unwrap();
    let d_layer1 = RingGeometry::RING_8.dnode_index(1, 0);
    m.configure()
        .set_dnode_instr(
            0,
            d_layer1,
            MicroInstr::op(AluOp::Shl, Operand::In1, Operand::One).write_out(),
        )
        .unwrap();
    // Capture layer 1's output at switch 2.
    m.configure()
        .set_capture(0, 2, 0, HostCapture::lane(0))
        .unwrap();
    m.open_sink(2, 0).unwrap();
    m.attach_input(0, 0, [5, 6, 7].map(Word16::from_i16))
        .unwrap();
    m.run(10).unwrap();
    let out: Vec<i16> = m
        .take_sink(2, 0)
        .unwrap()
        .iter()
        .map(|v| v.as_i16())
        .collect();
    // (x + 1) * 2 appears as a contiguous run once the pipeline is primed.
    assert!(
        out.windows(3).any(|w| w == [12, 14, 16]),
        "expected [12, 14, 16] in {out:?}"
    );
}

#[test]
fn each_layer_adds_one_cycle_of_latency() {
    let mut m = ring8();
    // Identity chain along lane 0 through all 4 layers.
    for layer in 0..4 {
        let d = RingGeometry::RING_8.dnode_index(layer, 0);
        let src = if layer == 0 {
            PortSource::HostIn { port: 0 }
        } else {
            PortSource::PrevOut { lane: 0 }
        };
        m.configure().set_port(0, layer, 0, 0, src).unwrap();
        m.configure()
            .set_dnode_instr(
                0,
                d,
                MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_out(),
            )
            .unwrap();
    }
    m.attach_input(0, 0, [42].map(Word16::from_i16)).unwrap();
    // Word enters the FIFO at the commit of cycle 0; layer 0 reads it at
    // cycle 1 (out visible at cycle 2); each later layer adds one cycle, so
    // layer 3's output holds the word after exactly 5 cycles (and is
    // overwritten by the trailing zeros one cycle later).
    for _ in 0..5 {
        m.step().unwrap();
    }
    let d3 = RingGeometry::RING_8.dnode_index(3, 0);
    assert_eq!(m.dnode(d3).out(), w(42));
}

#[test]
fn global_mode_mac_accumulates_streams() {
    let mut m = ring8();
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })
        .unwrap();
    m.configure()
        .set_port(0, 0, 0, 1, PortSource::HostIn { port: 1 })
        .unwrap();
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2).write_reg(Reg::R2),
        )
        .unwrap();
    m.attach_input(0, 0, [1, 2, 3, 4].map(Word16::from_i16))
        .unwrap();
    m.attach_input(0, 1, [10, 20, 30, 40].map(Word16::from_i16))
        .unwrap();
    m.run(10).unwrap();
    assert_eq!(m.dnode(0).reg(Reg::R2).as_i16(), 10 + 40 + 90 + 160);
}

#[test]
fn feedback_pipeline_implements_recursion() {
    // y[n] = x[n] + y[n-k]: the Dnode reads its own delayed output through
    // the feedback pipeline of its downstream switch — the paper's reverse
    // dataflow (Figure 5).
    let mut m = ring8();
    // Dnode (0,0) out -> captured by switch 1's pipeline each cycle.
    // Dnode (0,0) reads Fifo1 = pipe[1], stage 0, lane 0.
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })
        .unwrap();
    m.configure()
        .set_port(
            0,
            0,
            0,
            2,
            PortSource::Pipe {
                switch: 1,
                stage: 0,
                lane: 0,
            },
        )
        .unwrap();
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::Add, Operand::In1, Operand::Fifo1).write_out(),
        )
        .unwrap();
    m.attach_input(0, 0, vec![w(1); 12]).unwrap();
    m.run(14).unwrap();
    // Pipe stage 0 at cycle t holds out(t-1), so y(t) = x(t) + y(t-2):
    // the accumulator grows by 1 every other cycle along two interleaved
    // chains; after enough cycles the output is well above 1.
    assert!(m.dnode(0).out().as_i16() >= 5, "out = {}", m.dnode(0).out());
}

#[test]
fn deeper_pipeline_stages_give_longer_delays() {
    let mut m = ring8();
    // Dnode (0,0): pass host stream to out; its value is pushed into
    // switch 1's pipeline. Dnode (1,0) reads stage 3 of that pipeline.
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })
        .unwrap();
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_out(),
        )
        .unwrap();
    m.configure()
        .set_port(
            0,
            1,
            0,
            0,
            PortSource::Pipe {
                switch: 1,
                stage: 3,
                lane: 0,
            },
        )
        .unwrap();
    let d1 = RingGeometry::RING_8.dnode_index(1, 0);
    m.configure()
        .set_dnode_instr(
            0,
            d1,
            MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_out(),
        )
        .unwrap();
    m.configure()
        .set_capture(0, 2, 0, HostCapture::lane(0))
        .unwrap();
    m.open_sink(2, 0).unwrap();
    m.attach_input(0, 0, (1..=6).map(Word16::from_i16)).unwrap();
    m.run(16).unwrap();
    let out = nonzero(m.take_sink(2, 0).unwrap());
    // The sequence arrives intact, just delayed by the extra stages.
    assert!(out.starts_with(&[1, 2, 3, 4, 5, 6]), "out = {out:?}");
}

#[test]
fn ring_wraps_around_from_last_layer_to_first() {
    let g = RingGeometry::RING_8;
    let mut m = ring8();
    // Dnode (3,1) emits a constant; Dnode (0,1) reads it through switch 0.
    let d_last = g.dnode_index(3, 1);
    m.configure()
        .set_dnode_instr(
            0,
            d_last,
            MicroInstr::op(AluOp::PassA, Operand::Imm, Operand::Zero)
                .with_imm(w(99))
                .write_out(),
        )
        .unwrap();
    m.configure()
        .set_port(0, 0, 1, 0, PortSource::PrevOut { lane: 1 })
        .unwrap();
    let d_first = g.dnode_index(0, 1);
    m.configure()
        .set_dnode_instr(
            0,
            d_first,
            MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_reg(Reg::R0),
        )
        .unwrap();
    m.run(4).unwrap();
    assert_eq!(m.dnode(d_first).reg(Reg::R0), w(99));
}

#[test]
fn controller_reconfigures_the_fabric_dynamically() {
    // The controller rewrites Dnode 0's microinstruction every cycle:
    // alternate add-one / shift-left on a constant input (hardware
    // multiplexing in time, §3).
    let mut m = ring8();
    let add = MicroInstr::op(AluOp::Add, Operand::Imm, Operand::One)
        .with_imm(w(10))
        .write_reg(Reg::R1);
    let shl = MicroInstr::op(AluOp::Shl, Operand::Imm, Operand::One)
        .with_imm(w(10))
        .write_reg(Reg::R2);
    // Contexts: ctx 0 = add, ctx 1 = shl. Controller ping-pongs the active
    // context.
    m.configure().set_dnode_instr(0, 0, add).unwrap();
    m.configure().set_dnode_instr(1, 0, shl).unwrap();
    let program = [
        CtrlInstr::Ctx { ctx: 1 },
        CtrlInstr::Ctx { ctx: 0 },
        CtrlInstr::Ctx { ctx: 1 },
        CtrlInstr::Halt,
    ];
    let code: Vec<u32> = program.iter().map(CtrlInstr::encode).collect();
    m.controller_mut().load_program(&code).unwrap();
    m.run_until_halt(100).unwrap();
    m.run(2).unwrap(); // let the last context switch land and execute
    assert_eq!(m.dnode(0).reg(Reg::R1), w(11));
    assert_eq!(m.dnode(0).reg(Reg::R2), w(20));
    assert!(m.stats().ctx_switches >= 2);
}

#[test]
fn controller_builds_a_local_mac_at_runtime() {
    // The controller writes a local-sequencer program into Dnode 0 (wloc),
    // sets the limit (wlim) and flips it into local mode (wmode) — then the
    // Dnode runs as a stand-alone macro-operator with zero controller
    // overhead (§4.1).
    let mut m = ring8();
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })
        .unwrap();
    let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::One).write_reg(Reg::R3);
    let word = mac.encode();
    let lo = (word & 0xffff_ffff) as i32;
    let hi = (word >> 32) as u16;
    let program = [
        CtrlInstr::Lui {
            rd: r(1),
            imm: (lo as u32 >> 16) as u16,
        },
        CtrlInstr::Ori {
            rd: r(1),
            ra: r(1),
            imm: (lo as u32 & 0xffff) as u16,
        },
        CtrlInstr::Cimm { imm: hi },
        CtrlInstr::Wloc {
            rs: r(1),
            packed: 0,
        }, // dnode 0, slot 0
        CtrlInstr::Addi {
            rd: r(2),
            ra: r(0),
            imm: 1,
        },
        CtrlInstr::Wlim { rs: r(2), dnode: 0 },
        CtrlInstr::Wmode { rs: r(2), dnode: 0 },
        CtrlInstr::Halt,
    ];
    let code: Vec<u32> = program.iter().map(CtrlInstr::encode).collect();
    m.controller_mut().load_program(&code).unwrap();
    m.attach_input(0, 0, vec![w(7); 20]).unwrap();
    m.run(20).unwrap();
    assert!(m.controller().is_halted());
    assert_eq!(m.dnode(0).mode(), DnodeMode::Local);
    // Every cycle after entering local mode accumulates +7 (MAC a*1).
    let acc = m.dnode(0).reg(Reg::R3).as_i16();
    assert!(acc >= 7 * 8, "acc = {acc}");
    assert_eq!(acc % 7, 0);
}

#[test]
fn bus_connects_dnodes_and_controller() {
    let mut m = ring8();
    // Dnode 0 drives the bus with a constant; the controller reads it,
    // adds 5, drives it back; Dnode 1 (layer 0, lane 1) copies the bus.
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::PassA, Operand::Imm, Operand::Zero)
                .with_imm(w(100))
                .write_bus(),
        )
        .unwrap();
    let program = [
        CtrlInstr::Nop,               // cycle 0: dnode drives bus
        CtrlInstr::Busr { rd: r(1) }, // cycle 1: bus = 100 visible
        CtrlInstr::Addi {
            rd: r(1),
            ra: r(1),
            imm: 5,
        },
        CtrlInstr::Busw { rs: r(1) }, // controller wins arbitration
        CtrlInstr::Halt,
    ];
    let code: Vec<u32> = program.iter().map(CtrlInstr::encode).collect();
    m.controller_mut().load_program(&code).unwrap();
    // After 4 cycles the controller's busw has just committed and won
    // arbitration over the Dnode's concurrent drive.
    m.run(4).unwrap();
    assert_eq!(m.bus(), w(105));
    assert!(m.stats().bus_conflicts >= 1);
    // Once the controller halts, the Dnode's drive takes the bus back.
    m.run(2).unwrap();
    assert_eq!(m.bus(), w(100));
}

#[test]
fn host_capture_respects_fifo_capacity() {
    let params = MachineParams::PAPER.with_host_fifo_capacity(2);
    let mut m = RingMachine::new(RingGeometry::RING_8, params);
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::PassA, Operand::Imm, Operand::Zero)
                .with_imm(w(1))
                .write_out(),
        )
        .unwrap();
    m.configure()
        .set_capture(0, 1, 0, HostCapture::lane(0))
        .unwrap();
    m.open_sink(1, 0).unwrap();
    // The host drains one word per cycle but capture also produces one per
    // cycle; with capacity 2 nothing overflows in steady state.
    m.run(10).unwrap();
    assert_eq!(m.stats().fifo_overflows, 0);
    assert!(m.stats().host_words_out > 0);
}

#[test]
fn metered_link_slows_streaming() {
    // Same workload under Direct vs PCI-class link: the metered link
    // delivers words at 0.625 words/cycle, so the stream takes longer to
    // drain (the §5.1 bandwidth contrast).
    let run_with = |link: LinkModel| {
        let params = MachineParams::PAPER.with_link(link);
        let mut m = RingMachine::new(RingGeometry::RING_8, params);
        m.attach_input(0, 0, vec![w(1); 100]).unwrap();
        let mut cycles = 0u64;
        while !m.host().inputs_drained() && cycles < 1000 {
            m.step().unwrap();
            cycles += 1;
        }
        cycles
    };
    let direct = run_with(LinkModel::Direct);
    let pci = run_with(LinkModel::PCI_250MBPS_AT_200MHZ);
    assert!(direct <= 101, "direct took {direct}");
    assert!(pci >= 150, "pci took {pci}");
}

#[test]
fn object_load_applies_preloads() {
    let g = RingGeometry::RING_8;
    let instr = MicroInstr::op(AluOp::Add, Operand::In1, Operand::One).write_out();
    let object = Object {
        geometry: Some(g),
        contexts: 2,
        code: vec![CtrlInstr::Halt.encode()],
        data: vec![7, 8, 9],
        preload: vec![
            Preload::DnodeInstr {
                ctx: 0,
                dnode: 0,
                word: instr.encode(),
            },
            Preload::SwitchPort {
                ctx: 0,
                switch: 0,
                lane: 0,
                input: 0,
                word: PortSource::HostIn { port: 0 }.encode(),
            },
            Preload::HostCapture {
                ctx: 0,
                switch: 1,
                port: 0,
                word: HostCapture::lane(0).encode(),
            },
            Preload::Mode {
                dnode: 3,
                local: true,
            },
            Preload::LocalSlot {
                dnode: 3,
                slot: 0,
                word: MicroInstr::NOP.encode(),
            },
            Preload::LocalLimit { dnode: 3, limit: 1 },
        ],
    };
    let mut m = ring8();
    m.load(&object).unwrap();
    assert_eq!(m.controller().dmem(1), Some(8));
    assert_eq!(m.dnode(3).mode(), DnodeMode::Local);
    m.open_sink(1, 0).unwrap();
    m.attach_input(0, 0, [9].map(Word16::from_i16)).unwrap();
    m.run(6).unwrap();
    let out: Vec<i16> = m
        .take_sink(1, 0)
        .unwrap()
        .iter()
        .map(|v| v.as_i16())
        .collect();
    // Underflow cycles produce 1 (0 + 1); the streamed word produces 10.
    assert!(out.contains(&10), "out = {out:?}");
}

#[test]
fn object_load_rejects_mismatches() {
    let mut m = ring8();
    let wrong_geometry = Object {
        geometry: Some(RingGeometry::RING_16),
        ..Object::new()
    };
    assert!(matches!(
        m.load(&wrong_geometry),
        Err(ConfigError::GeometryMismatch { .. })
    ));
    let too_many_ctx = Object {
        geometry: Some(RingGeometry::RING_8),
        contexts: 100,
        ..Object::new()
    };
    assert!(matches!(
        m.load(&too_many_ctx),
        Err(ConfigError::NotEnoughContexts { .. })
    ));
    let bad_preload = Object {
        preload: vec![Preload::LocalLimit { dnode: 0, limit: 9 }],
        ..Object::new()
    };
    assert!(matches!(
        m.load(&bad_preload),
        Err(ConfigError::BadLocalLimit { .. })
    ));
}

#[test]
fn runtime_bad_config_write_is_a_machine_check() {
    let mut m = ring8();
    // wdn to dnode 200 (out of range on Ring-8).
    let program = [
        CtrlInstr::Wdn {
            rs: r(0),
            dnode: 200,
        },
        CtrlInstr::Halt,
    ];
    let code: Vec<u32> = program.iter().map(CtrlInstr::encode).collect();
    m.controller_mut().load_program(&code).unwrap();
    let err = m.run(3).unwrap_err();
    assert!(matches!(err, SimError::BadConfigWrite { cycle: 0, .. }));
}

#[test]
fn run_until_halt_reports_cycle_limit() {
    let mut m = ring8();
    // Infinite loop.
    let program = [CtrlInstr::J { target: 0 }];
    let code: Vec<u32> = program.iter().map(CtrlInstr::encode).collect();
    m.controller_mut().load_program(&code).unwrap();
    assert_eq!(
        m.run_until_halt(50),
        Err(SimError::CycleLimit { limit: 50 })
    );
}

#[test]
fn stats_track_utilization_and_ops() {
    let mut m = ring8();
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::Mac, Operand::One, Operand::One).write_reg(Reg::R0),
        )
        .unwrap();
    m.run(10).unwrap();
    let stats = m.stats();
    assert_eq!(stats.cycles, 10);
    assert_eq!(stats.dnodes[0].active_cycles, 10);
    assert_eq!(stats.dnodes[0].alu_ops, 10);
    assert_eq!(stats.dnodes[0].mult_ops, 10);
    assert_eq!(stats.idle_dnodes(), 7);
    // One of eight Dnodes active.
    assert!((stats.utilization() - 0.125).abs() < 1e-9);
    // MAC counts as two operations per cycle.
    assert_eq!(stats.total_ops(), 20);
}

#[test]
fn underflow_reads_return_zero_and_are_counted() {
    let mut m = ring8();
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })
        .unwrap();
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_out(),
        )
        .unwrap();
    m.run(5).unwrap();
    assert_eq!(m.dnode(0).out(), Word16::ZERO);
    assert_eq!(m.stats().fifo_underflows, 5);
}

#[test]
fn hybrid_mode_mixes_local_and_global_dnodes() {
    // One Dnode in local mode cycling two instructions, a second in global
    // mode under the active context — both run concurrently (§4.2 "hybrid
    // mode").
    let mut m = ring8();
    let inc = MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::One).write_reg(Reg::R0);
    let dec = MicroInstr::op(AluOp::Sub, Operand::Reg(Reg::R1), Operand::One).write_reg(Reg::R1);
    m.set_local_program(0, &[inc, dec]).unwrap();
    m.set_mode(0, DnodeMode::Local);
    let d1 = 1;
    m.configure()
        .set_dnode_instr(
            0,
            d1,
            MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R2), Operand::One).write_reg(Reg::R2),
        )
        .unwrap();
    m.run(10).unwrap();
    assert_eq!(m.dnode(0).reg(Reg::R0), w(5));
    assert_eq!(m.dnode(0).reg(Reg::R1), w(-5));
    assert_eq!(m.dnode(d1).reg(Reg::R2), w(10));
    assert_eq!(m.stats().dnodes[0].local_cycles, 10);
    assert_eq!(m.stats().dnodes[d1].local_cycles, 0);
}

#[test]
fn controller_hpush_and_hpop_move_words() {
    let mut m = ring8();
    // Controller pushes 3 into switch 0 port 0; Dnode (0,0) passes it
    // through; the capture at switch 1 sends it back; the controller pops
    // captures until it sees a nonzero word (zeros are warm-up underflow
    // reads) and stores it to dmem[0]. The sink of switch 1 stays closed so
    // the controller is the only consumer.
    m.configure()
        .set_port(0, 0, 0, 0, PortSource::HostIn { port: 0 })
        .unwrap();
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_out(),
        )
        .unwrap();
    m.configure()
        .set_capture(0, 1, 0, HostCapture::lane(0))
        .unwrap();
    let program = [
        CtrlInstr::Addi {
            rd: r(1),
            ra: r(0),
            imm: 3,
        },
        CtrlInstr::Hpush {
            rs: r(1),
            switch: 0,
        }, // switch 0, port 0
        CtrlInstr::Hpop {
            rd: r(5),
            switch: 1 << 8,
        }, // pc 2: pop sw1 port 0
        CtrlInstr::Beq {
            ra: r(5),
            rb: r(0),
            offset: -2,
        }, // retry on zero
        CtrlInstr::Sw {
            rs: r(5),
            ra: r(0),
            imm: 0,
        },
        CtrlInstr::Halt,
    ];
    let code: Vec<u32> = program.iter().map(CtrlInstr::encode).collect();
    m.controller_mut().load_program(&code).unwrap();
    m.run_until_halt(200).unwrap();
    assert_eq!(m.controller().dmem(0), Some(3));
}

#[test]
fn reset_stats_preserves_state() {
    let mut m = ring8();
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R0), Operand::One).write_reg(Reg::R0),
        )
        .unwrap();
    m.run(4).unwrap();
    m.reset_stats();
    assert_eq!(m.stats().cycles, 0);
    assert_eq!(m.dnode(0).reg(Reg::R0), w(4));
    m.run(2).unwrap();
    assert_eq!(m.stats().cycles, 2);
    assert_eq!(m.dnode(0).reg(Reg::R0), w(6));
}

#[test]
fn parallel_captures_extract_a_whole_layer_per_cycle() {
    // Each of switch 1's out-ports captures a different lane of layer 0 —
    // the per-port "direct dedicated ports" extracting a full layer at once.
    let mut m = ring8();
    for lane in 0..2usize {
        let d = RingGeometry::RING_8.dnode_index(0, lane);
        m.configure()
            .set_dnode_instr(
                0,
                d,
                MicroInstr::op(AluOp::PassA, Operand::Imm, Operand::Zero)
                    .with_imm(w(10 + lane as i16))
                    .write_out(),
            )
            .unwrap();
        m.configure()
            .set_capture(0, 1, lane, HostCapture::lane(lane as u8))
            .unwrap();
        m.open_sink(1, lane).unwrap();
    }
    m.run(5).unwrap();
    let p0 = m.take_sink(1, 0).unwrap();
    let p1 = m.take_sink(1, 1).unwrap();
    assert!(p0.contains(&w(10)));
    assert!(p1.contains(&w(11)));
    // Both ports collected one word per cycle.
    assert_eq!(p0.len(), p1.len());
}

#[test]
fn controller_who_configures_per_port_captures() {
    // The controller writes capture selectors through `who`, whose
    // immediate packs switch << 8 | out_port.
    let mut m = ring8();
    m.configure()
        .set_dnode_instr(
            0,
            0,
            MicroInstr::op(AluOp::PassA, Operand::Imm, Operand::Zero)
                .with_imm(w(55))
                .write_out(),
        )
        .unwrap();
    let d01 = RingGeometry::RING_8.dnode_index(0, 1);
    m.configure()
        .set_dnode_instr(
            0,
            d01,
            MicroInstr::op(AluOp::PassA, Operand::Imm, Operand::Zero)
                .with_imm(w(66))
                .write_out(),
        )
        .unwrap();
    // who r1, (1 << 8) | 1: switch 1, out-port 1, capture lane 1.
    let program = [
        CtrlInstr::Addi {
            rd: r(1),
            ra: r(0),
            imm: 2,
        }, // HostCapture::lane(1)
        CtrlInstr::Who {
            rs: r(1),
            switch: (1 << 8) | 1,
        },
        CtrlInstr::Halt,
    ];
    let code: Vec<u32> = program.iter().map(CtrlInstr::encode).collect();
    m.controller_mut().load_program(&code).unwrap();
    m.open_sink(1, 1).unwrap();
    m.run(8).unwrap();
    let sink = m.take_sink(1, 1).unwrap();
    assert!(sink.contains(&w(66)), "sink = {sink:?}");
    // Port 0 was never configured: empty.
    assert!(m.take_sink(1, 0).unwrap().is_empty());
}

#[test]
fn controller_hpop_addresses_ports() {
    // hpop's immediate packs switch << 8 | out_port.
    let mut m = ring8();
    let d01 = RingGeometry::RING_8.dnode_index(0, 1);
    m.configure()
        .set_dnode_instr(
            0,
            d01,
            MicroInstr::op(AluOp::PassA, Operand::Imm, Operand::Zero)
                .with_imm(w(99))
                .write_out(),
        )
        .unwrap();
    m.configure()
        .set_capture(0, 1, 1, HostCapture::lane(1))
        .unwrap();
    let program = [
        CtrlInstr::Hpop {
            rd: r(2),
            switch: (1 << 8) | 1,
        },
        CtrlInstr::Bne {
            ra: r(2),
            rb: r(0),
            offset: 1,
        },
        CtrlInstr::J { target: 0 },
        CtrlInstr::Sw {
            rs: r(2),
            ra: r(0),
            imm: 0,
        },
        CtrlInstr::Halt,
    ];
    let code: Vec<u32> = program.iter().map(CtrlInstr::encode).collect();
    m.controller_mut().load_program(&code).unwrap();
    m.run_until_halt(100).unwrap();
    assert_eq!(m.controller().dmem(0), Some(99));
}
