//! End-to-end tests for the multi-tenant service: the scripted scheduler
//! (fully deterministic), the threaded TCP front end, and the service's
//! headline promises — backpressure instead of collapse, bit-identical
//! preemption, honest drain, and per-tenant fault isolation.

use std::time::Duration;

use systolic_ring_core::{FaultConfig, MachineParams};
use systolic_ring_harness::admission::{AdmissionConfig, JobClass, RejectReason};
use systolic_ring_harness::job::{CycleBudget, Job, JobFault, JobOutcome};
use systolic_ring_harness::preempt::RunningJob;
use systolic_ring_isa::ctrl::CtrlInstr;
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand};
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};
use systolic_ring_server::{
    Client, JobStatus, Server, ServerConfig, Service, ServiceConfig, Submit, SubmitError,
    SubmitSpec,
};

/// The increment-stream object used across the harness tests: Dnode
/// (0,0) computes `in + 1` from host port (0,0), captured at switch 1
/// port 0.
fn increment_object() -> Object {
    let instr = MicroInstr::op(AluOp::Add, Operand::In1, Operand::One).write_out();
    Object {
        geometry: Some(RingGeometry::RING_8),
        contexts: 0,
        code: vec![CtrlInstr::Halt.encode()],
        data: vec![],
        preload: vec![
            Preload::SwitchPort {
                ctx: 0,
                switch: 0,
                lane: 0,
                input: 0,
                word: PortSource::HostIn { port: 0 }.encode(),
            },
            Preload::DnodeInstr {
                ctx: 0,
                dnode: 0,
                word: instr.encode(),
            },
            Preload::HostCapture {
                ctx: 0,
                switch: 1,
                port: 0,
                word: HostCapture::lane(0).encode(),
            },
        ],
    }
}

fn input_words(base: i16) -> Vec<i16> {
    (0..48).map(|i| base + i).collect()
}

fn stream_job(name: &str, base: i16, cycles: u64) -> Job {
    Job::from_object(
        name.to_owned(),
        RingGeometry::RING_8,
        MachineParams::PAPER,
        increment_object(),
        CycleBudget::Cycles(cycles),
    )
    .with_input(0, 0, input_words(base).into_iter().map(Word16::from_i16))
    .with_sink(1, 0)
}

/// The uncontended single-job result the service must reproduce.
fn solo_outcome(job: &Job) -> JobOutcome {
    let mut running = RunningJob::start(job).expect("starts");
    while !running.is_done() {
        running.advance(u64::MAX);
    }
    running.finish()
}

/// Outputs + cycles equality — the preemption-equivalence contract
/// (recovery and engine counters legitimately differ).
fn assert_same_result(got: &JobOutcome, want: &JobOutcome) {
    match (got, want) {
        (JobOutcome::Completed(a), JobOutcome::Completed(b)) => {
            assert_eq!(a.outputs, b.outputs, "sink streams diverged");
            assert_eq!(a.cycles, b.cycles, "cycle counts diverged");
        }
        _ => panic!("outcomes differ in kind: {got:?} vs {want:?}"),
    }
}

fn done_outcome(status: Option<JobStatus>) -> JobOutcome {
    match status {
        Some(JobStatus::Done(outcome)) => outcome,
        other => panic!("expected a settled job, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Scripted mode: deterministic scheduler behavior.
// ---------------------------------------------------------------------

#[test]
fn scripted_packing_runs_all_tenants_bit_identically() {
    let service = Service::new(ServiceConfig::default());
    let tenants = [
        "alice", "bob", "carol", "dave", "erin", "frank", "gus", "hana",
    ];
    let mut tickets = Vec::new();
    let mut baselines = Vec::new();
    for (i, tenant) in tenants.iter().enumerate() {
        let job = stream_job(tenant, 100 * (i as i16 + 1), 2048);
        baselines.push(solo_outcome(&job));
        let ok = service
            .submit(tenant, JobClass::Batch, job, None)
            .expect("admitted");
        tickets.push(ok.ticket);
    }
    service.run_idle();
    for (ticket, baseline) in tickets.iter().zip(&baselines) {
        assert_same_result(&done_outcome(service.status(*ticket)), baseline);
    }
    let stats = service.stats();
    assert_eq!(stats.admission.admitted, 8);
    assert_eq!(stats.completed, 8);
    assert_eq!(stats.faulted, 0);
    // All eight identical-object jobs were packed into one unit: every
    // advanced cycle carried eight live lanes.
    assert!(
        stats.lane_occupancy() > 7.9,
        "expected 8-lane packing, got occupancy {}",
        stats.lane_occupancy()
    );
}

#[test]
fn scripted_interactive_preempts_batch_and_resumes_bit_identically() {
    let service = Service::new(ServiceConfig {
        slice_cycles: 256,
        ..ServiceConfig::default()
    });
    let batch_job = stream_job("batch-tenant", 10, 4096);
    let batch_baseline = solo_outcome(&batch_job);
    let batch = service
        .submit("batch-tenant", JobClass::Batch, batch_job, None)
        .expect("admitted");
    // Claim + one slice of the batch unit.
    assert!(service.tick());
    assert_eq!(service.status(batch.ticket), Some(JobStatus::Running));

    let interactive_job = stream_job("itenant", 500, 256);
    let interactive_baseline = solo_outcome(&interactive_job);
    let interactive = service
        .submit("itenant", JobClass::Interactive, interactive_job, None)
        .expect("admitted");

    // The next slice boundary sees the waiting interactive job and parks
    // the batch unit as a checkpoint.
    assert!(service.tick());
    assert_eq!(
        service.status(batch.ticket),
        Some(JobStatus::Checkpointed { cycle: 512 })
    );
    assert_eq!(service.stats().preemptions, 1);

    // The interactive job runs next — one slice start to finish — while
    // the batch job is still parked.
    assert!(service.tick());
    assert_same_result(
        &done_outcome(service.status(interactive.ticket)),
        &interactive_baseline,
    );
    assert!(matches!(
        service.status(batch.ticket),
        Some(JobStatus::Checkpointed { .. })
    ));

    // The parked unit resumes and finishes with a bit-identical result.
    service.run_idle();
    assert_same_result(&done_outcome(service.status(batch.ticket)), &batch_baseline);
}

#[test]
fn scripted_per_tenant_accounting_tracks_cycles_jobs_and_preemptions() {
    let service = Service::new(ServiceConfig {
        slice_cycles: 256,
        ..ServiceConfig::default()
    });
    let batch = service
        .submit(
            "batch-tenant",
            JobClass::Batch,
            stream_job("batch-tenant", 10, 4096),
            None,
        )
        .expect("admitted");
    // One slice of the batch unit, then an interactive arrival forces a
    // checkpoint preemption at the next boundary.
    assert!(service.tick());
    service
        .submit(
            "itenant",
            JobClass::Interactive,
            stream_job("itenant", 500, 256),
            None,
        )
        .expect("admitted");
    service.run_idle();
    assert!(matches!(
        service.status(batch.ticket),
        Some(JobStatus::Done(_))
    ));

    // The snapshot carries one accounting row per tenant, sorted by
    // name, and every simulated cycle is billed to exactly one tenant.
    let stats = service.stats();
    let names: Vec<&str> = stats.tenants.iter().map(|t| t.tenant.as_str()).collect();
    assert_eq!(names, ["batch-tenant", "itenant"]);
    let batch_row = &stats.tenants[0];
    assert_eq!(batch_row.cycles_simulated, 4096);
    assert_eq!(batch_row.jobs_completed, 1);
    assert_eq!(batch_row.preemptions, 1);
    let inter_row = &stats.tenants[1];
    assert_eq!(inter_row.cycles_simulated, 256);
    assert_eq!(inter_row.jobs_completed, 1);
    assert_eq!(inter_row.preemptions, 0);
    assert_eq!(
        stats
            .tenants
            .iter()
            .map(|t| t.cycles_simulated)
            .sum::<u64>(),
        stats.advanced_cycles
    );

    // The rows survive the wire: rendered into the stats JSON and read
    // back through the protocol's own parser.
    let json = systolic_ring_server::protocol::stats_json(&stats);
    let parsed = systolic_ring_server::Json::parse(&json).expect("stats JSON parses");
    let tenants = parsed.get("tenants").expect("tenants object");
    let batch_obj = tenants.get("batch-tenant").expect("batch-tenant row");
    assert_eq!(
        batch_obj.get("cycles_simulated").and_then(|v| v.as_u64()),
        Some(4096)
    );
    assert_eq!(
        batch_obj.get("jobs_completed").and_then(|v| v.as_u64()),
        Some(1)
    );
    assert_eq!(
        batch_obj.get("preemptions").and_then(|v| v.as_u64()),
        Some(1)
    );
    let inter_obj = tenants.get("itenant").expect("itenant row");
    assert_eq!(
        inter_obj.get("cycles_simulated").and_then(|v| v.as_u64()),
        Some(256)
    );
    assert_eq!(
        inter_obj.get("preemptions").and_then(|v| v.as_u64()),
        Some(0)
    );
}

#[test]
fn scripted_admission_backpressure_is_deterministic() {
    let service = Service::new(ServiceConfig {
        admission: AdmissionConfig {
            queue_capacity: 2,
            tenant_quota: 1,
            est_job_ms: 10,
        },
        ..ServiceConfig::default()
    });
    let submit =
        |tenant: &str| service.submit(tenant, JobClass::Batch, stream_job(tenant, 1, 1024), None);
    submit("alice").expect("admitted");
    // Tenant quota: alice already has one outstanding job.
    match submit("alice") {
        Err(SubmitError::Rejected {
            reason: RejectReason::TenantQuota,
            retry_after_ms,
        }) => assert_eq!(retry_after_ms, 10),
        other => panic!("expected quota rejection, got {other:?}"),
    }
    submit("bob").expect("admitted");
    // Queue full: two queued jobs, capacity two. The hint scales with
    // the congestion ahead of the client.
    match submit("carol") {
        Err(SubmitError::Rejected {
            reason: RejectReason::QueueFull,
            retry_after_ms,
        }) => assert_eq!(retry_after_ms, 20),
        other => panic!("expected queue-full rejection, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.admission.admitted, 2);
    assert_eq!(stats.admission.rejected_quota, 1);
    assert_eq!(stats.admission.rejected_full, 1);
    // The rejected jobs consumed nothing: the queue drains to exactly
    // the two admitted jobs.
    service.run_idle();
    assert_eq!(service.stats().completed, 2);
}

#[test]
fn scripted_drain_loses_no_job_silently() {
    let service = Service::new(ServiceConfig::default());
    let running = service
        .submit(
            "alice",
            JobClass::Batch,
            stream_job("alice", 1, 1 << 20),
            None,
        )
        .expect("admitted");
    // Claim the long job so it is mid-flight when the drain arrives.
    assert!(service.tick());
    let queued: Vec<u64> = ["bob", "carol"]
        .iter()
        .map(|tenant| {
            service
                .submit(tenant, JobClass::Batch, stream_job(tenant, 2, 1024), None)
                .expect("admitted")
                .ticket
        })
        .collect();

    let evicted = service.drain();
    assert_eq!(evicted, 2);
    // Queued jobs got a client-visible eviction fault, not silence.
    for ticket in queued {
        match done_outcome(service.status(ticket)) {
            JobOutcome::Fault(JobFault::Workload(msg)) => {
                assert!(msg.contains("service draining"), "unhelpful fault: {msg}")
            }
            other => panic!("expected eviction fault, got {other:?}"),
        }
    }
    // The in-flight job parks as a checkpoint at its next slice boundary.
    service.run_idle();
    assert!(matches!(
        service.status(running.ticket),
        Some(JobStatus::Checkpointed { .. })
    ));
    // New offers are refused while draining.
    match service.submit("dave", JobClass::Batch, stream_job("dave", 3, 1024), None) {
        Err(SubmitError::Rejected {
            reason: RejectReason::Draining,
            ..
        }) => {}
        other => panic!("expected draining rejection, got {other:?}"),
    }
    let stats = service.stats();
    assert_eq!(stats.evicted, 2);
    assert_eq!(stats.parked_jobs, 1);
    assert_eq!(stats.running_units, 0);
}

#[test]
fn scripted_chaos_tenant_never_corrupts_lane_mates() {
    let mut detected_faults = 0;
    for seed in [3, 11, 29] {
        let service = Service::new(ServiceConfig::default());
        let clean_tenants = ["alice", "bob", "carol"];
        let mut clean = Vec::new();
        for (i, tenant) in clean_tenants.iter().enumerate() {
            let job = stream_job(tenant, 10 * (i as i16 + 1), 2048);
            let baseline = solo_outcome(&job);
            let ok = service
                .submit(tenant, JobClass::Batch, job, None)
                .expect("admitted");
            clean.push((ok.ticket, baseline));
        }
        let chaos_job =
            stream_job("mallory", 999, 2048).with_faults(FaultConfig::uniform(seed, 20_000));
        let chaos = service
            .submit("mallory", JobClass::Batch, chaos_job, None)
            .expect("chaos tenant admitted like any other");
        service.run_idle();

        // The chaos tenant's fate is its own: completed or a *detected*
        // fault — never an undetected wrong answer for its lane-mates.
        match done_outcome(service.status(chaos.ticket)) {
            JobOutcome::Fault(fault) => {
                assert!(fault.is_detected_fault(), "undetected fault: {fault}");
                detected_faults += 1;
            }
            JobOutcome::Completed(_) => {}
        }
        // Every clean tenant's result is bit-identical to its solo run.
        for (ticket, baseline) in &clean {
            assert_same_result(&done_outcome(service.status(*ticket)), baseline);
        }
    }
    assert!(
        detected_faults > 0,
        "chaos campaign never injected a detected fault; raise the rate"
    );
}

// ---------------------------------------------------------------------
// Threaded mode over TCP.
// ---------------------------------------------------------------------

fn spawn_server(config: ServerConfig) -> (Client, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", config).expect("bind ephemeral port");
    let addr = server.local_addr();
    let handle = std::thread::spawn(move || server.run());
    (
        Client::new(addr).with_timeout(Duration::from_secs(120)),
        handle,
    )
}

fn submit_spec(tenant: &str, base: i16, cycles: u64) -> SubmitSpec {
    SubmitSpec::new(tenant, &increment_object(), cycles)
        .input(0, 0, &input_words(base))
        .sink(1, 0)
}

#[test]
fn tcp_end_to_end_submit_wait_stats_drain() {
    let (client, handle) = spawn_server(ServerConfig::default());
    assert!(client.health().expect("health request"));

    // Blocking submit returns the settled result, bit-identical to the
    // uncontended baseline.
    let baseline_job = stream_job("alice", 7, 2048);
    let baseline = solo_outcome(&baseline_job);
    let done = match client
        .submit(submit_spec("alice", 7, 2048).wait())
        .expect("submit")
    {
        Submit::Done(status) => status,
        other => panic!("expected settled status, got {other:?}"),
    };
    assert_eq!(done.status, "completed");
    match &baseline {
        JobOutcome::Completed(out) => {
            assert_eq!(done.outputs, out.outputs);
            assert_eq!(done.cycles, Some(out.cycles));
        }
        other => panic!("baseline faulted: {other:?}"),
    }

    // Async submit + status polling.
    let ticket = match client.submit(submit_spec("bob", 9, 2048)).expect("submit") {
        Submit::Accepted { ticket, .. } => ticket,
        other => panic!("expected acceptance, got {other:?}"),
    };
    let settled = client
        .wait_settled(ticket, Duration::from_secs(30))
        .expect("job settles");
    assert_eq!(settled.status, "completed");
    assert!(client.status(999_999).expect("status request").is_none());

    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("admitted").and_then(|v| v.as_u64()), Some(2));
    assert_eq!(stats.get("completed").and_then(|v| v.as_u64()), Some(2));
    // Per-tenant accounting is on the wire: one row per tenant.
    for tenant in ["alice", "bob"] {
        let row = stats
            .get("tenants")
            .and_then(|t| t.get(tenant))
            .unwrap_or_else(|| panic!("no tenants row for {tenant}"));
        assert_eq!(
            row.get("jobs_completed").and_then(|v| v.as_u64()),
            Some(1),
            "{tenant}"
        );
        assert_eq!(
            row.get("cycles_simulated").and_then(|v| v.as_u64()),
            Some(2048),
            "{tenant}"
        );
    }

    // Graceful drain: 200 with the quiescent counters, then the accept
    // loop closes and run() returns cleanly — srserved's exit 0.
    let drained = client.drain().expect("drain");
    assert_eq!(
        drained.get("drained"),
        Some(&systolic_ring_server::Json::Bool(true))
    );
    assert_eq!(
        drained.get("running_units").and_then(|v| v.as_u64()),
        Some(0)
    );
    handle.join().expect("server thread").expect("clean exit");
    assert!(
        client.health().is_err(),
        "server still accepting after drain"
    );
}

#[test]
fn tcp_backpressure_and_drain_checkpoint_are_client_visible() {
    let (client, handle) = spawn_server(ServerConfig {
        workers: 1,
        service: ServiceConfig {
            admission: AdmissionConfig {
                queue_capacity: 8,
                tenant_quota: 1,
                est_job_ms: 10,
            },
            ..ServiceConfig::default()
        },
    });
    // A long batch job occupies alice's whole quota while it runs.
    let long = match client
        .submit(submit_spec("alice", 1, 1 << 24))
        .expect("submit")
    {
        Submit::Accepted { ticket, .. } => ticket,
        other => panic!("expected acceptance, got {other:?}"),
    };
    // Quota rejection surfaces as HTTP 429 with both hints.
    match client
        .submit(submit_spec("alice", 2, 1024))
        .expect("submit")
    {
        Submit::Rejected {
            status,
            reason,
            retry_after_ms,
        } => {
            assert_eq!(status, 429);
            assert_eq!(reason, "tenant quota exceeded");
            assert_eq!(retry_after_ms, 10);
        }
        other => panic!("expected 429, got {other:?}"),
    }
    // Drain parks the in-flight job as a checkpoint the client can see.
    let drained = client.drain().expect("drain");
    assert_eq!(drained.get("evicted_now").and_then(|v| v.as_u64()), Some(0));
    let parked = client
        .wait_settled(long, Duration::from_secs(10))
        .expect("status after drain");
    assert_eq!(parked.status, "checkpointed");
    assert!(parked.cycle.is_some(), "checkpoint cycle missing");
    handle.join().expect("server thread").expect("clean exit");
}

#[test]
fn tcp_invalid_jobs_and_wall_deadlines_are_refused_loudly() {
    let (client, handle) = spawn_server(ServerConfig::default());

    // Garbage object body: 400, not a queue slot.
    let mut garbage = submit_spec("alice", 1, 1024);
    garbage.object_bytes = vec![0xde, 0xad, 0xbe, 0xef];
    match client.submit(garbage).expect("submit") {
        Submit::Invalid(msg) => assert!(msg.contains("bad object body"), "msg: {msg}"),
        other => panic!("expected 400, got {other:?}"),
    }
    // Zero cycle budget: rejected at parse.
    match client.submit(submit_spec("alice", 1, 0)).expect("submit") {
        Submit::Invalid(msg) => assert!(msg.contains("x-cycles"), "msg: {msg}"),
        other => panic!("expected 400, got {other:?}"),
    }
    // A wall-clock deadline faults the job instead of letting it pin a
    // worker: client sees the WallLimit fault verbatim.
    let mut deadline = submit_spec("alice", 1, 1 << 26).wait();
    deadline.wall_ms = Some(1);
    match client.submit(deadline).expect("submit") {
        Submit::Done(status) => {
            assert_eq!(status.status, "faulted");
            let fault = status.fault.expect("fault message");
            assert!(fault.contains("wall-clock limit"), "fault: {fault}");
        }
        other => panic!("expected wall-limit fault, got {other:?}"),
    }
    let stats = client.stats().expect("stats");
    assert_eq!(stats.get("faulted").and_then(|v| v.as_u64()), Some(1));
    client.drain().expect("drain");
    handle.join().expect("server thread").expect("clean exit");
}
