//! Multi-tenant ring-simulation service.
//!
//! This crate turns the single-process batch tooling of
//! [`systolic_ring_harness`] into a long-running shared service: named
//! tenants submit lint-gated [`Job`](systolic_ring_harness::job::Job)s
//! over a minimal HTTP/1.1 line protocol, and a scheduler runs them on
//! a shared simulation pool with admission control, backpressure,
//! checkpoint-based preemption and graceful drain.
//!
//! # Layers
//!
//! * [`service`] — the scheduler. Admission via
//!   [`AdmissionQueue`](systolic_ring_harness::admission::AdmissionQueue)
//!   (bounded queue, per-tenant quotas, deterministic retry-after
//!   hints), execution through the checkpoint-preemptible
//!   [`LaneGroup`](systolic_ring_harness::preempt::LaneGroup) layer
//!   (batch units yield to interactive traffic at slice boundaries and
//!   resume bit-identically), identical-object packing across tenants
//!   into fused 16-lane groups, per-tenant fault isolation, and a
//!   drain path that never loses a job without telling its client.
//!   Runs threaded (wall-clock deadlines) or scripted (fully
//!   deterministic, for the benchmark trajectory).
//! * [`protocol`] — the wire format: a tiny HTTP/1.1 subset over
//!   `std::net`, the `x-` header job encoding with the assembled
//!   [`Object`](systolic_ring_isa::object::Object) binary as the body,
//!   and a hand-rolled JSON emitter/parser. No dependencies beyond the
//!   workspace, per the std-only rule.
//! * [`serve`] — the TCP front end: accept loop, connection handler,
//!   router, graceful shutdown sequencing. The `srserved` binary is a
//!   thin flag-parsing wrapper around [`Server`].
//! * [`client`] — a blocking client used by the `srload` load
//!   generator, the CI smoke gate and the integration tests.
//!
//! # Service promises
//!
//! 1. Overload is refused at admission (HTTP 429 + `Retry-After`),
//!    never absorbed as unbounded queueing.
//! 2. Interactive latency is bounded by one scheduling slice of
//!    simulation, because batch units checkpoint and yield.
//! 3. Preemption is invisible to results: a resumed job's outputs and
//!    cycle counts are bit-identical to an uninterrupted run.
//! 4. Drain is honest: queued jobs get a client-visible eviction
//!    fault, in-flight jobs park as checkpoints, then the process
//!    exits 0.
//! 5. Tenants are isolated: a fault-armed lane never enters the shared
//!    lockstep burst, and a faulting lane detaches without disturbing
//!    lane-mates from other tenants.

pub mod client;
pub mod protocol;
pub mod serve;
pub mod service;

pub use client::{Client, Submit, SubmitSpec, TicketStatus};
pub use protocol::{Json, Request, Response};
pub use serve::{Server, ServerConfig};
pub use service::{
    JobStatus, Service, ServiceConfig, ServiceStats, SubmitError, SubmitOk, TenantStats,
};
