//! A blocking client for the service wire protocol.
//!
//! The client opens one `TcpStream` per request — deliberately boring,
//! so the load generator, the CI smoke gate and the integration tests
//! all exercise the server's connection accept path rather than a
//! long-lived multiplexer. Responses are parsed with the same
//! [`Json`] mini-parser the protocol module ships.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use systolic_ring_harness::admission::JobClass;
use systolic_ring_isa::object::Object;

use crate::protocol::{Json, Request};

/// A job submission as the client sends it.
#[derive(Clone, Debug)]
pub struct SubmitSpec {
    /// Submitting tenant.
    pub tenant: String,
    /// Service class.
    pub class: JobClass,
    /// `Cycles(n)` budget.
    pub cycles: u64,
    /// Ring size (8/16/64).
    pub geometry: usize,
    /// Watchdog interval (0 = off).
    pub watchdog: u64,
    /// Wall-clock deadline in milliseconds.
    pub wall_ms: Option<u64>,
    /// Uniform chaos injection `(seed, ppm)`.
    pub chaos: Option<(u64, u32)>,
    /// Input streams `(switch, port, words)`.
    pub inputs: Vec<(usize, usize, Vec<i16>)>,
    /// Sinks to capture `(switch, port)`.
    pub sinks: Vec<(usize, usize)>,
    /// Block the request until the job settles.
    pub wait: bool,
    /// The assembled object, already serialized.
    pub object_bytes: Vec<u8>,
}

impl SubmitSpec {
    /// A batch-class submission of `object` with a cycle budget.
    pub fn new(tenant: impl Into<String>, object: &Object, cycles: u64) -> SubmitSpec {
        SubmitSpec {
            tenant: tenant.into(),
            class: JobClass::Batch,
            cycles,
            geometry: 8,
            watchdog: 0,
            wall_ms: None,
            chaos: None,
            inputs: Vec::new(),
            sinks: Vec::new(),
            wait: false,
            object_bytes: object.to_bytes(),
        }
    }

    /// Marks the job interactive.
    pub fn interactive(mut self) -> SubmitSpec {
        self.class = JobClass::Interactive;
        self
    }

    /// Blocks the submit call until the job settles.
    pub fn wait(mut self) -> SubmitSpec {
        self.wait = true;
        self
    }

    /// Adds an input stream.
    pub fn input(mut self, switch: usize, port: usize, words: &[i16]) -> SubmitSpec {
        self.inputs.push((switch, port, words.to_vec()));
        self
    }

    /// Adds a sink.
    pub fn sink(mut self, switch: usize, port: usize) -> SubmitSpec {
        self.sinks.push((switch, port));
        self
    }

    /// Arms uniform chaos injection.
    pub fn chaos(mut self, seed: u64, ppm: u32) -> SubmitSpec {
        self.chaos = Some((seed, ppm));
        self
    }

    fn into_request(self) -> Request {
        let mut headers = vec![
            ("x-tenant".to_owned(), self.tenant),
            ("x-class".to_owned(), self.class.to_string()),
            ("x-cycles".to_owned(), self.cycles.to_string()),
            ("x-geometry".to_owned(), self.geometry.to_string()),
        ];
        if self.watchdog > 0 {
            headers.push(("x-watchdog".to_owned(), self.watchdog.to_string()));
        }
        if let Some(ms) = self.wall_ms {
            headers.push(("x-wall-ms".to_owned(), ms.to_string()));
        }
        if let Some((seed, ppm)) = self.chaos {
            headers.push(("x-chaos-seed".to_owned(), seed.to_string()));
            headers.push(("x-chaos-ppm".to_owned(), ppm.to_string()));
        }
        for (switch, port, words) in &self.inputs {
            let list = words
                .iter()
                .map(|w| w.to_string())
                .collect::<Vec<_>>()
                .join(",");
            headers.push((format!("x-input-{switch}-{port}"), list));
        }
        if !self.sinks.is_empty() {
            let list = self
                .sinks
                .iter()
                .map(|(s, p)| format!("{s}.{p}"))
                .collect::<Vec<_>>()
                .join(",");
            headers.push(("x-sink".to_owned(), list));
        }
        let query = if self.wait {
            vec![("wait".to_owned(), "1".to_owned())]
        } else {
            Vec::new()
        };
        Request {
            method: "POST".to_owned(),
            path: "/v1/jobs".to_owned(),
            query,
            headers,
            body: self.object_bytes,
        }
    }
}

/// The settled (or in-flight) state of a ticket, decoded from JSON.
#[derive(Clone, Debug)]
pub struct TicketStatus {
    /// The ticket.
    pub ticket: u64,
    /// `queued`/`running`/`checkpointed`/`completed`/`faulted`.
    pub status: String,
    /// Checkpoint cycle, when checkpointed.
    pub cycle: Option<u64>,
    /// Cycles consumed, when completed.
    pub cycles: Option<u64>,
    /// Drained sink words, when completed.
    pub outputs: Vec<Vec<i16>>,
    /// The fault display, when faulted.
    pub fault: Option<String>,
    /// Whether a fault was flagged by the detection machinery.
    pub detected: bool,
}

impl TicketStatus {
    fn from_json(v: &Json) -> Result<TicketStatus, String> {
        let ticket = v
            .get("ticket")
            .and_then(Json::as_u64)
            .ok_or("status without ticket")?;
        let status = v
            .get("status")
            .and_then(Json::as_str)
            .ok_or("status without status")?
            .to_owned();
        let outputs = match v.get("outputs").and_then(Json::as_arr) {
            Some(sinks) => sinks
                .iter()
                .map(|sink| {
                    sink.as_arr()
                        .ok_or("outputs entry is not an array")?
                        .iter()
                        .map(|w| w.as_f64().map(|n| n as i16).ok_or("non-numeric word"))
                        .collect()
                })
                .collect::<Result<Vec<Vec<i16>>, &str>>()?,
            None => Vec::new(),
        };
        Ok(TicketStatus {
            ticket,
            status,
            cycle: v.get("cycle").and_then(Json::as_u64),
            cycles: v.get("cycles").and_then(Json::as_u64),
            outputs,
            fault: v.get("fault").and_then(Json::as_str).map(str::to_owned),
            detected: v.get("detected") == Some(&Json::Bool(true)),
        })
    }

    /// `true` once the job can make no further progress.
    pub fn is_settled(&self) -> bool {
        matches!(self.status.as_str(), "completed" | "faulted")
    }
}

/// The outcome of a submit call.
#[derive(Clone, Debug)]
pub enum Submit {
    /// Admitted; poll the ticket.
    Accepted {
        /// The assigned ticket.
        ticket: u64,
        /// Queue depth at admission.
        depth: usize,
    },
    /// Admitted with `wait`, and here is the settled status.
    Done(TicketStatus),
    /// Backpressure: try again after the hint.
    Rejected {
        /// HTTP status (429 for load, 503 for drain).
        status: u16,
        /// The admission controller's reason phrase.
        reason: String,
        /// Deterministic retry hint in milliseconds.
        retry_after_ms: u64,
    },
    /// The request itself was malformed (400); not retryable.
    Invalid(String),
}

/// One decoded HTTP response: status code, lowercased headers, body text.
type RawResponse = (u16, Vec<(String, String)>, String);

/// A blocking protocol client (one TCP connection per request).
#[derive(Clone, Debug)]
pub struct Client {
    addr: SocketAddr,
    timeout: Duration,
}

impl Client {
    /// A client for the server at `addr`.
    pub fn new(addr: SocketAddr) -> Client {
        Client {
            addr,
            timeout: Duration::from_secs(60),
        }
    }

    /// Overrides the per-request socket timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> Client {
        self.timeout = timeout;
        self
    }

    fn round_trip(&self, req: &Request) -> io::Result<RawResponse> {
        let stream = TcpStream::connect(self.addr)?;
        stream.set_read_timeout(Some(self.timeout))?;
        stream.set_write_timeout(Some(self.timeout))?;
        let mut writer = stream.try_clone()?;
        write_request(&mut writer, req)?;
        let mut reader = BufReader::new(stream);
        read_response(&mut reader)
    }

    /// `GET /healthz`; `Ok(true)` when the server answers 200.
    pub fn health(&self) -> io::Result<bool> {
        let (status, _, _) = self.round_trip(&get("/healthz"))?;
        Ok(status == 200)
    }

    /// Submits a job.
    pub fn submit(&self, spec: SubmitSpec) -> io::Result<Submit> {
        let (status, headers, body) = self.round_trip(&spec.into_request())?;
        match status {
            200 => {
                let v = parse_body(&body)?;
                Ok(Submit::Done(TicketStatus::from_json(&v).map_err(bad_data)?))
            }
            202 => {
                let v = parse_body(&body)?;
                Ok(Submit::Accepted {
                    ticket: v
                        .get("ticket")
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad_data("202 without ticket"))?,
                    depth: v.get("depth").and_then(Json::as_u64).unwrap_or(0) as usize,
                })
            }
            429 | 503 => {
                let v = parse_body(&body)?;
                let retry_after_ms = v
                    .get("retry_after_ms")
                    .and_then(Json::as_u64)
                    .or_else(|| {
                        headers
                            .iter()
                            .find(|(k, _)| k == "retry-after")
                            .and_then(|(_, secs)| secs.parse::<u64>().ok())
                            .map(|secs| secs * 1000)
                    })
                    .unwrap_or(0);
                Ok(Submit::Rejected {
                    status,
                    reason: v
                        .get("reason")
                        .and_then(Json::as_str)
                        .unwrap_or("rejected")
                        .to_owned(),
                    retry_after_ms,
                })
            }
            400 => Ok(Submit::Invalid(body)),
            other => Err(bad_data(format!("unexpected status {other}: {body}"))),
        }
    }

    /// `GET /v1/jobs/<ticket>`.
    pub fn status(&self, ticket: u64) -> io::Result<Option<TicketStatus>> {
        let (status, _, body) = self.round_trip(&get(&format!("/v1/jobs/{ticket}")))?;
        match status {
            200 => {
                let v = parse_body(&body)?;
                Ok(Some(TicketStatus::from_json(&v).map_err(bad_data)?))
            }
            404 => Ok(None),
            other => Err(bad_data(format!("unexpected status {other}: {body}"))),
        }
    }

    /// Polls a ticket until it settles (or checkpoints during drain).
    pub fn wait_settled(&self, ticket: u64, budget: Duration) -> io::Result<TicketStatus> {
        let start = std::time::Instant::now();
        loop {
            let status = self
                .status(ticket)?
                .ok_or_else(|| bad_data(format!("ticket {ticket} unknown to server")))?;
            if status.is_settled() || status.status == "checkpointed" {
                return Ok(status);
            }
            if start.elapsed() >= budget {
                return Err(io::Error::new(
                    io::ErrorKind::TimedOut,
                    format!("ticket {ticket} still {} after {budget:?}", status.status),
                ));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    /// `GET /v1/stats`, parsed.
    pub fn stats(&self) -> io::Result<Json> {
        let (status, _, body) = self.round_trip(&get("/v1/stats"))?;
        if status != 200 {
            return Err(bad_data(format!("stats returned {status}")));
        }
        parse_body(&body)
    }

    /// `POST /v1/drain`: graceful shutdown; returns the final stats JSON.
    pub fn drain(&self) -> io::Result<Json> {
        let req = Request {
            method: "POST".to_owned(),
            path: "/v1/drain".to_owned(),
            query: Vec::new(),
            headers: Vec::new(),
            body: Vec::new(),
        };
        let (status, _, body) = self.round_trip(&req)?;
        if status != 200 {
            return Err(bad_data(format!("drain returned {status}: {body}")));
        }
        parse_body(&body)
    }
}

fn get(path: &str) -> Request {
    Request {
        method: "GET".to_owned(),
        path: path.to_owned(),
        query: Vec::new(),
        headers: Vec::new(),
        body: Vec::new(),
    }
}

fn bad_data(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn parse_body(body: &str) -> io::Result<Json> {
    Json::parse(body).map_err(|e| bad_data(format!("bad response JSON: {e} in {body:?}")))
}

/// Serializes `req` in HTTP/1.1 framing.
fn write_request(stream: &mut impl io::Write, req: &Request) -> io::Result<()> {
    let mut target = req.path.clone();
    for (i, (k, v)) in req.query.iter().enumerate() {
        target.push(if i == 0 { '?' } else { '&' });
        target.push_str(k);
        target.push('=');
        target.push_str(v);
    }
    write!(stream, "{} {} HTTP/1.1\r\n", req.method, target)?;
    for (name, value) in &req.headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "content-length: {}\r\n\r\n", req.body.len())?;
    stream.write_all(&req.body)?;
    stream.flush()
}

/// Reads one HTTP response: status, lowercased headers, body as text.
fn read_response(stream: &mut impl io::BufRead) -> io::Result<RawResponse> {
    let mut line = String::new();
    if stream.read_line(&mut line)? == 0 {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "no status line",
        ));
    }
    let status = line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| bad_data(format!("bad status line {line:?}")))?;
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if stream.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "mid-headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_owned();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| bad_data("bad content-length"))?;
            }
            headers.push((name, value));
        }
    }
    let mut body = vec![0u8; content_length];
    io::Read::read_exact(stream, &mut body)?;
    let body = String::from_utf8(body).map_err(|_| bad_data("non-utf8 body"))?;
    Ok((status, headers, body))
}
