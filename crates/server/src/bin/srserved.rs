//! `srserved` — the multi-tenant ring-simulation service daemon.
//!
//! ```text
//! srserved [--addr HOST:PORT] [--workers N] [--port-file PATH]
//!          [--queue-cap N] [--tenant-quota N] [--slice CYCLES]
//! ```
//!
//! Binds the address (default `127.0.0.1:0` — an ephemeral port),
//! prints the bound address on stdout, optionally writes it to
//! `--port-file` (how the CI smoke gate finds the port), and serves
//! until a client POSTs `/v1/drain`. Drain is graceful: the queue is
//! evicted with client-visible errors, in-flight jobs are parked as
//! checkpoints, the drain response confirms quiescence, and the
//! process exits 0.

use std::process::ExitCode;

use systolic_ring_server::{Server, ServerConfig};

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:0".to_owned();
    let mut port_file: Option<String> = None;
    let mut config = ServerConfig::default();

    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--addr" => match args.next() {
                Some(v) => addr = v,
                None => return usage("--addr needs HOST:PORT"),
            },
            "--port-file" => match args.next() {
                Some(v) => port_file = Some(v),
                None => return usage("--port-file needs PATH"),
            },
            "--workers" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.workers = v,
                None => return usage("--workers needs a count"),
            },
            "--queue-cap" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.service.admission.queue_capacity = v,
                None => return usage("--queue-cap needs a count"),
            },
            "--tenant-quota" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) => config.service.admission.tenant_quota = v,
                None => return usage("--tenant-quota needs a count"),
            },
            "--slice" => match args.next().and_then(|v| v.parse().ok()) {
                Some(v) if v > 0 => config.service.slice_cycles = v,
                _ => return usage("--slice needs a positive cycle count"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: srserved [--addr HOST:PORT] [--workers N] [--port-file PATH]\n\
                     \u{20}               [--queue-cap N] [--tenant-quota N] [--slice CYCLES]"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown flag {other}")),
        }
    }

    let server = match Server::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("srserved: cannot bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = server.local_addr();
    println!("srserved listening on {bound}");
    if let Some(path) = port_file {
        if let Err(e) = std::fs::write(&path, bound.to_string()) {
            eprintln!("srserved: cannot write port file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    match server.run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("srserved: accept loop failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("srserved: {msg} (try --help)");
    ExitCode::FAILURE
}
