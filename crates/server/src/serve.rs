//! The TCP front end: an accept loop, a connection handler and the
//! request router that bind a [`Service`] to the wire protocol.
//!
//! [`Server::bind`] owns the listener and the worker pool;
//! [`Server::run`] serves until a `POST /v1/drain` arrives, then
//! performs the graceful-shutdown sequence:
//!
//! 1. [`Service::drain`] — the queue is evicted with client-visible
//!    faults and new offers are refused with `503`,
//! 2. [`Service::wait_drained`] — every in-flight unit parks at its
//!    next slice boundary as a checkpoint (no job is lost silently),
//! 3. the drain response is sent *after* the barrier, so the client's
//!    `200` is proof the service is quiescent,
//! 4. the accept loop and the worker pool wind down and
//!    [`Server::run`] returns `Ok(())` — `srserved` turns that into
//!    exit code 0.
//!
//! Tests call [`Server::bind`] on port 0 and drive the same code path
//! the production binary uses.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::protocol::{
    read_request, stats_json, status_json, write_response, JobSpec, Request, Response,
};
use crate::service::{JobStatus, Service, ServiceConfig, SubmitError};

/// How long a `?wait=1` submit may block before reporting the job's
/// in-flight status instead. Long enough for any test-sized job; finite
/// so a stuck client can't pin a connection handler forever.
const WAIT_BUDGET: Duration = Duration::from_secs(60);

/// Lame-duck window after a drain: connections that were already racing
/// the shutdown (a client asking for its parked job's status right after
/// the drain response) are still served for this long instead of having
/// their half-open sockets reset when the listener closes.
const DRAIN_GRACE: Duration = Duration::from_millis(300);

/// Front-end knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServerConfig {
    /// Scheduler worker threads.
    pub workers: usize,
    /// Scheduler knobs.
    pub service: ServiceConfig,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            service: ServiceConfig::default(),
        }
    }
}

/// A bound, not-yet-serving server: workers are running, the listener
/// is open, and [`Server::run`] serves until drained.
pub struct Server {
    service: Arc<Service>,
    listener: TcpListener,
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    workers: Vec<thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// worker pool.
    pub fn bind(addr: &str, config: ServerConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let service = Arc::new(Service::new(config.service));
        let workers = (0..config.workers.max(1))
            .map(|_| {
                let service = Arc::clone(&service);
                thread::spawn(move || service.run_worker())
            })
            .collect();
        Ok(Server {
            service,
            listener,
            local_addr,
            shutdown: Arc::new(AtomicBool::new(false)),
            workers,
        })
    }

    /// The bound address (the ephemeral port lives here).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The scheduler behind the front end.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Serves connections until a drain request completes, then joins
    /// the worker pool and returns.
    pub fn run(self) -> io::Result<()> {
        let Server {
            service,
            listener,
            local_addr,
            shutdown,
            workers,
        } = self;
        let mut handlers = Vec::new();
        let spawn_handler = |stream: TcpStream, handlers: &mut Vec<thread::JoinHandle<()>>| {
            let service = Arc::clone(&service);
            let shutdown = Arc::clone(&shutdown);
            handlers.push(thread::spawn(move || {
                handle_connection(&service, stream, &shutdown, local_addr);
            }));
        };
        for stream in listener.incoming() {
            let stopping = shutdown.load(Ordering::SeqCst);
            let stream = match stream {
                Ok(stream) => stream,
                Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                Err(e) => return Err(e),
            };
            // The stream that observed the shutdown flag is served too —
            // it is either the drain handler's throwaway wake-up (EOF,
            // handler returns at once) or a real client that lost the
            // race; dropping it here would reset a live request.
            spawn_handler(stream, &mut handlers);
            if stopping {
                break;
            }
        }
        // Lame duck: the drain response may still be in flight to a
        // client that immediately asks for its parked job's status.
        // Serve stragglers briefly before closing the listener for good.
        listener.set_nonblocking(true)?;
        let deadline = std::time::Instant::now() + DRAIN_GRACE;
        while std::time::Instant::now() < deadline {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    spawn_handler(stream, &mut handlers);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(10));
                }
                Err(_) => break,
            }
        }
        drop(listener);
        for handle in handlers {
            let _ = handle.join();
        }
        for handle in workers {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Serves one keep-alive connection until EOF or a fatal protocol error.
fn handle_connection(
    service: &Arc<Service>,
    stream: TcpStream,
    shutdown: &AtomicBool,
    local_addr: SocketAddr,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_secs(120)));
    let mut writer = match stream.try_clone() {
        Ok(writer) => writer,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    loop {
        let req = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return,
            Err(_) => {
                let _ = write_response(&mut writer, &Response::text(400, "bad request\n"));
                return;
            }
        };
        let drain = req.method == "POST" && req.path == "/v1/drain";
        let response = handle_request(service, &req);
        if write_response(&mut writer, &response).is_err() {
            return;
        }
        if drain {
            // The drain response is out; stop accepting. A throwaway
            // connection unblocks the accept loop so it can observe the
            // flag and wind down.
            shutdown.store(true, Ordering::SeqCst);
            let _ = TcpStream::connect(local_addr);
            return;
        }
    }
}

/// Routes one request. Pure apart from the service calls, so tests can
/// drive it without a socket.
pub fn handle_request(service: &Service, req: &Request) -> Response {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => Response::text(200, "ok\n"),
        ("GET", "/v1/stats") => Response::json(200, stats_json(&service.stats())),
        ("POST", "/v1/jobs") => submit(service, req),
        ("GET", path) if path.starts_with("/v1/jobs/") => {
            let ticket = match path["/v1/jobs/".len()..].parse::<u64>() {
                Ok(ticket) => ticket,
                Err(_) => return Response::text(400, "bad ticket\n"),
            };
            match service.status(ticket) {
                Some(status) => Response::json(200, status_json(ticket, &status)),
                None => Response::text(404, "unknown ticket\n"),
            }
        }
        ("POST", "/v1/drain") => {
            let evicted = service.drain();
            service.wait_drained();
            let mut body = stats_json(&service.stats());
            // Splice the eviction count into the stats object.
            body.truncate(body.len() - 1);
            body.push_str(&format!(",\"drained\":true,\"evicted_now\":{evicted}}}"));
            Response::json(200, body)
        }
        _ => Response::text(404, "not found\n"),
    }
}

/// Handles `POST /v1/jobs`.
fn submit(service: &Service, req: &Request) -> Response {
    let spec = match JobSpec::parse(req) {
        Ok(spec) => spec,
        Err(msg) => return Response::text(400, format!("{msg}\n")),
    };
    let wall = spec.wall_ms.map(Duration::from_millis);
    let job = spec.build();
    match service.submit(&spec.tenant, spec.class, job, wall) {
        Ok(ok) => {
            if req.flag("wait") {
                let status = service
                    .wait(ok.ticket, WAIT_BUDGET)
                    .unwrap_or(JobStatus::Queued);
                Response::json(200, status_json(ok.ticket, &status))
            } else {
                Response::json(
                    202,
                    format!(
                        "{{\"ticket\":{},\"status\":\"queued\",\"depth\":{}}}",
                        ok.ticket, ok.depth
                    ),
                )
            }
        }
        Err(SubmitError::Invalid(msg)) => Response::text(400, format!("{msg}\n")),
        Err(SubmitError::Rejected {
            reason,
            retry_after_ms,
        }) => {
            let status = if service.is_draining() { 503 } else { 429 };
            let body = format!("{{\"reason\":\"{reason}\",\"retry_after_ms\":{retry_after_ms}}}");
            Response::json(status, body).with_header(
                "retry-after",
                retry_after_ms.div_ceil(1000).max(1).to_string(),
            )
        }
    }
}
