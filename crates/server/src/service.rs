//! The scheduler at the heart of the service.
//!
//! [`Service`] runs lint-gated [`Job`]s from named tenants on a shared
//! pool with three hard promises:
//!
//! 1. **Admission, not collapse** — submissions pass through an
//!    [`AdmissionQueue`]: bounded depth, per-tenant outstanding quotas,
//!    and deterministic retry-after hints on rejection. Overload turns
//!    into honest 429s at the front door, never into unbounded latency.
//! 2. **Preemption, not starvation** — jobs execute through the
//!    checkpoint-preemptible layer ([`RunningJob`]/[`LaneGroup`]):
//!    between every [`slice`](ServiceConfig::slice_cycles) a running
//!    batch unit checks for waiting interactive jobs and, if any,
//!    suspends itself into checkpoints and goes to the back of the
//!    parked queue. Interactive latency is bounded by one slice of
//!    simulation, and the parked work resumes bit-identically.
//! 3. **Drain, not drop** — [`Service::drain`] rejects the queue with a
//!    client-visible error, parks every in-flight job at its next slice
//!    boundary as a checkpoint, and refuses new work. No job ever
//!    disappears without its client being told.
//!
//! Identical-object jobs from *different* tenants are packed into one
//! fused [`LaneGroup`] of up to [`ServiceConfig::max_lanes`] lanes
//! (the group key deliberately ignores per-job fault injection — see
//! [`groupable`]), so a saturated service spends most of its cycles in
//! shared lockstep bursts. Per-tenant fault isolation is inherited from
//! the group contract: a fault-armed lane never enters the shared burst
//! and a faulting lane detaches alone.
//!
//! The same scheduler runs in two modes:
//!
//! * **threaded** — `N` threads call [`Service::run_worker`]; wall-clock
//!   deadlines are enforced between slices. This is what `srserved`
//!   serves over TCP.
//! * **scripted** — a single thread interleaves [`Service::submit`] and
//!   [`Service::tick`] calls; no wall clock is consulted anywhere, so
//!   queue depths, preemption counts and lane occupancy are exactly
//!   reproducible. This is what the benchmark trajectory records.

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

use systolic_ring_harness::admission::{
    Admission, AdmissionConfig, AdmissionQueue, AdmissionStats, JobClass, QueuedJob, RejectReason,
};
use systolic_ring_harness::job::{Job, JobFault, JobOutcome, SLICE_CYCLES};
use systolic_ring_harness::preempt::{
    group_eligible, groupable, preemptible, LaneGroup, RunningJob, SuspendedJob,
};
use systolic_ring_harness::runner::MAX_LANES;

/// Scheduler tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Admission-queue knobs (depth, quotas, hint scale).
    pub admission: AdmissionConfig,
    /// Maximum lanes packed into one fused group.
    pub max_lanes: usize,
    /// Cycles between scheduling decisions (preemption granularity).
    pub slice_cycles: u64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            admission: AdmissionConfig::default(),
            max_lanes: MAX_LANES,
            slice_cycles: SLICE_CYCLES,
        }
    }
}

/// A client-visible job state.
///
/// `Done` carries the outcome inline for the same reason
/// [`JobOutcome`] does: a status is built per query and consumed
/// immediately, so boxing the large variant buys nothing.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// Executing on a worker right now.
    Running,
    /// Preempted (or drained) into a checkpoint at the given cycle.
    Checkpointed {
        /// Cycle the checkpoint was taken at.
        cycle: u64,
    },
    /// Terminal: completed or faulted.
    Done(JobOutcome),
}

impl JobStatus {
    /// The state name used on the wire.
    pub fn name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Checkpointed { .. } => "checkpointed",
            JobStatus::Done(JobOutcome::Completed(_)) => "completed",
            JobStatus::Done(JobOutcome::Fault(_)) => "faulted",
        }
    }
}

/// Why a submission was not admitted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SubmitError {
    /// The job itself is unacceptable (lint failure, unpreemptible
    /// shape); resubmitting the same job can never succeed.
    Invalid(String),
    /// Admission control refused; retry after the hint.
    Rejected {
        /// Why.
        reason: RejectReason,
        /// Deterministic backoff hint (milliseconds).
        retry_after_ms: u64,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(msg) => write!(f, "invalid job: {msg}"),
            SubmitError::Rejected {
                reason,
                retry_after_ms,
            } => write!(f, "rejected ({reason}); retry after {retry_after_ms}ms"),
        }
    }
}

/// A successful admission.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SubmitOk {
    /// Handle for status polling.
    pub ticket: u64,
    /// Queue depth after admission.
    pub depth: usize,
}

/// A point-in-time snapshot of the service counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Admission front-door counters.
    pub admission: AdmissionStats,
    /// Jobs currently queued.
    pub queue_depth: usize,
    /// Interactive jobs currently queued.
    pub interactive_waiting: usize,
    /// Units currently executing on workers.
    pub running_units: usize,
    /// Jobs currently parked as checkpoints.
    pub parked_jobs: usize,
    /// Preemption events (one per unit suspension).
    pub preemptions: u64,
    /// Jobs that ran to completion.
    pub completed: u64,
    /// Jobs that terminated with a fault.
    pub faulted: u64,
    /// Jobs evicted client-visibly from the queue at drain.
    pub evicted: u64,
    /// Simulated cycles advanced across all lanes' shared slices.
    pub advanced_cycles: u64,
    /// `Σ slice_cycles × live_lanes` — occupancy-weighted cycles.
    pub occupancy_cycles: u64,
    /// Per-tenant accounting rows, sorted by tenant name.
    pub tenants: Vec<TenantStats>,
}

impl ServiceStats {
    /// Mean live lanes per advanced cycle (1.0 = no packing at all).
    pub fn lane_occupancy(&self) -> f64 {
        if self.advanced_cycles == 0 {
            0.0
        } else {
            self.occupancy_cycles as f64 / self.advanced_cycles as f64
        }
    }
}

/// One tenant's accounting row: what the shared pool actually spent on
/// them, regardless of how their jobs were packed into units.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Tenant name.
    pub tenant: String,
    /// Simulated cycles advanced while this tenant's lanes were live.
    pub cycles_simulated: u64,
    /// This tenant's jobs that ran to completion.
    pub jobs_completed: u64,
    /// Checkpoint suspensions this tenant's lanes absorbed (one per
    /// parked lane, unlike the unit-granular global counter).
    pub preemptions: u64,
}

/// Per-ticket lifecycle.
enum Phase {
    Queued(Box<Job>, Option<Duration>),
    Running,
    Parked(SuspendedJob, Option<(Instant, Duration)>),
    Done(JobOutcome),
}

struct Slot {
    tenant: String,
    class: JobClass,
    phase: Phase,
}

/// One claimed execution unit: lanes, their tickets and wall deadlines
/// in matching order.
struct ActiveUnit {
    tickets: Vec<u64>,
    group: LaneGroup,
    /// `true` when every lane is batch-class (interactive units never
    /// yield to other interactive traffic).
    preemptible: bool,
    deadlines: Vec<Option<(Instant, Duration)>>,
}

/// A tenant's running totals (the name lives in the map key).
#[derive(Clone, Copy, Debug, Default)]
struct TenantTotals {
    cycles_simulated: u64,
    jobs_completed: u64,
    preemptions: u64,
}

#[derive(Default)]
struct Counters {
    preemptions: u64,
    completed: u64,
    faulted: u64,
    evicted: u64,
    advanced_cycles: u64,
    occupancy_cycles: u64,
    /// Keyed by tenant name; BTreeMap so snapshots render in a
    /// deterministic order.
    tenants: BTreeMap<String, TenantTotals>,
}

struct State {
    queue: AdmissionQueue,
    slots: HashMap<u64, Slot>,
    /// Parked units, oldest first; lanes live in their slots.
    parked: VecDeque<Vec<u64>>,
    running_units: usize,
    /// Scripted mode's single in-flight unit (never used by workers).
    current: Option<ActiveUnit>,
    counters: Counters,
}

/// The shared multi-tenant scheduler. See the module docs.
pub struct Service {
    config: ServiceConfig,
    state: Mutex<State>,
    signal: Condvar,
    draining: AtomicBool,
}

impl Service {
    /// An idle service with the given knobs.
    pub fn new(config: ServiceConfig) -> Service {
        Service {
            state: Mutex::new(State {
                queue: AdmissionQueue::new(config.admission),
                slots: HashMap::new(),
                parked: VecDeque::new(),
                running_units: 0,
                current: None,
                counters: Counters::default(),
            }),
            signal: Condvar::new(),
            draining: AtomicBool::new(false),
            config,
        }
    }

    /// `true` once [`Service::drain`] has been called.
    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Offers a job for admission on behalf of `tenant`.
    ///
    /// Jobs that can never run — a deferred builder/lint error, a custom
    /// job, an attached retry policy — are [`SubmitError::Invalid`]
    /// *before* touching the queue: they consume no quota and earn no
    /// retry hint, because retrying them is pointless. Everything else
    /// gets the admission queue's verdict. `wall` arms a wall-clock
    /// deadline enforced at slice granularity (threaded mode).
    pub fn submit(
        &self,
        tenant: &str,
        class: JobClass,
        job: Job,
        wall: Option<Duration>,
    ) -> Result<SubmitOk, SubmitError> {
        if let Some(msg) = job.builder_error() {
            return Err(SubmitError::Invalid(msg.to_owned()));
        }
        if !preemptible(&job) {
            return Err(SubmitError::Invalid(
                "job cannot run preemptibly (custom workload or retry policy attached); \
                 retry at the client instead"
                    .into(),
            ));
        }
        let mut st = self.state.lock().expect("service lock");
        match st.queue.offer(tenant, class) {
            Admission::Admitted { ticket, depth } => {
                st.slots.insert(
                    ticket,
                    Slot {
                        tenant: tenant.to_owned(),
                        class,
                        phase: Phase::Queued(Box::new(job), wall),
                    },
                );
                self.signal.notify_all();
                Ok(SubmitOk { ticket, depth })
            }
            Admission::Rejected {
                reason,
                retry_after_ms,
            } => Err(SubmitError::Rejected {
                reason,
                retry_after_ms,
            }),
        }
    }

    /// The current status of a ticket (`None` = never issued).
    pub fn status(&self, ticket: u64) -> Option<JobStatus> {
        let st = self.state.lock().expect("service lock");
        st.slots.get(&ticket).map(|slot| match &slot.phase {
            Phase::Queued(..) => JobStatus::Queued,
            Phase::Running => JobStatus::Running,
            Phase::Parked(suspended, _) => JobStatus::Checkpointed {
                cycle: suspended.cycle(),
            },
            Phase::Done(outcome) => JobStatus::Done(outcome.clone()),
        })
    }

    /// Blocks until the ticket reaches a settled state —
    /// [`JobStatus::Done`], or `Checkpointed` once the service is
    /// draining (the job will not run again in this process) — or the
    /// timeout elapses, returning the status either way. Threaded mode
    /// only; scripted drivers poll [`Service::status`] between ticks.
    pub fn wait(&self, ticket: u64, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().expect("service lock");
        loop {
            let status = st.slots.get(&ticket).map(|slot| match &slot.phase {
                Phase::Queued(..) => JobStatus::Queued,
                Phase::Running => JobStatus::Running,
                Phase::Parked(suspended, _) => JobStatus::Checkpointed {
                    cycle: suspended.cycle(),
                },
                Phase::Done(outcome) => JobStatus::Done(outcome.clone()),
            });
            let settled = match &status {
                None | Some(JobStatus::Done(_)) => true,
                Some(JobStatus::Checkpointed { .. }) => self.is_draining(),
                _ => false,
            };
            let now = Instant::now();
            if settled || now >= deadline {
                return status;
            }
            let (guard, _) = self
                .signal
                .wait_timeout(st, deadline - now)
                .expect("service lock");
            st = guard;
        }
    }

    /// The counter snapshot.
    pub fn stats(&self) -> ServiceStats {
        let st = self.state.lock().expect("service lock");
        ServiceStats {
            admission: *st.queue.stats(),
            queue_depth: st.queue.depth(),
            interactive_waiting: st.queue.interactive_waiting(),
            running_units: st.running_units,
            parked_jobs: st
                .slots
                .values()
                .filter(|s| matches!(s.phase, Phase::Parked(..)))
                .count(),
            preemptions: st.counters.preemptions,
            completed: st.counters.completed,
            faulted: st.counters.faulted,
            evicted: st.counters.evicted,
            advanced_cycles: st.counters.advanced_cycles,
            occupancy_cycles: st.counters.occupancy_cycles,
            tenants: st
                .counters
                .tenants
                .iter()
                .map(|(tenant, totals)| TenantStats {
                    tenant: tenant.clone(),
                    cycles_simulated: totals.cycles_simulated,
                    jobs_completed: totals.jobs_completed,
                    preemptions: totals.preemptions,
                })
                .collect(),
        }
    }

    /// Begins graceful shutdown: refuses new offers, evicts the queue
    /// with a client-visible fault per job, and tells running units to
    /// park at their next slice boundary. Returns the number of jobs
    /// evicted. Idempotent.
    pub fn drain(&self) -> usize {
        self.draining.store(true, Ordering::SeqCst);
        let mut st = self.state.lock().expect("service lock");
        let evicted = st.queue.drain();
        for entry in &evicted {
            if let Some(slot) = st.slots.get_mut(&entry.ticket) {
                slot.phase = Phase::Done(JobOutcome::Fault(JobFault::Workload(
                    "service draining: job evicted from queue before execution".into(),
                )));
            }
        }
        st.counters.evicted += evicted.len() as u64;
        self.signal.notify_all();
        evicted.len()
    }

    /// Blocks until every running unit has parked or finished after
    /// [`Service::drain`] (threaded mode's shutdown barrier).
    pub fn wait_drained(&self) {
        let mut st = self.state.lock().expect("service lock");
        while st.running_units > 0 {
            st = self.signal.wait(st).expect("service lock");
        }
    }

    /// A worker thread's main loop: claim a unit, advance it slice by
    /// slice (simulation runs outside the scheduler lock), finalize or
    /// park it, repeat. Returns when the service drains.
    pub fn run_worker(&self) {
        loop {
            let mut unit = {
                let mut st = self.state.lock().expect("service lock");
                loop {
                    if let Some(unit) = self.claim_unit(&mut st) {
                        st.running_units += 1;
                        break unit;
                    }
                    if self.is_draining() {
                        return;
                    }
                    st = self.signal.wait(st).expect("service lock");
                }
            };
            loop {
                let live_before = unit.group.live_mask();
                let advanced = unit.group.advance(self.config.slice_cycles);
                let mut st = self.state.lock().expect("service lock");
                match self.after_slice(&mut st, unit, &live_before, advanced) {
                    Some(live) => unit = live,
                    None => {
                        self.signal.notify_all();
                        break;
                    }
                }
            }
        }
    }

    /// Scripted single-threaded mode: performs one scheduling step (claim
    /// a unit if none is active, else advance the active unit one slice).
    /// Returns `false` when there is nothing to do. Never consults the
    /// wall clock, so interleavings of `submit`/`tick` are exactly
    /// reproducible.
    pub fn tick(&self) -> bool {
        let mut st = self.state.lock().expect("service lock");
        let mut unit = match st.current.take() {
            Some(unit) => unit,
            None => match self.claim_unit(&mut st) {
                Some(unit) => {
                    st.running_units += 1;
                    unit
                }
                None => return false,
            },
        };
        let live_before = unit.group.live_mask();
        let advanced = unit.group.advance(self.config.slice_cycles);
        st.current = self.after_slice(&mut st, unit, &live_before, advanced);
        true
    }

    /// Runs the scripted scheduler until idle.
    pub fn run_idle(&self) {
        while self.tick() {}
    }

    /// Books one advanced slice, then decides the unit's fate: `None`
    /// when it finished or parked (caller notifies), `Some` to keep
    /// advancing.
    fn after_slice(
        &self,
        st: &mut State,
        mut unit: ActiveUnit,
        live_before: &[bool],
        advanced: u64,
    ) -> Option<ActiveUnit> {
        let lanes_before = live_before.iter().filter(|&&live| live).count();
        st.counters.advanced_cycles += advanced;
        st.counters.occupancy_cycles += advanced * lanes_before as u64;
        if advanced > 0 {
            // Lanes advance in lockstep, so each live lane's tenant is
            // billed the full slice.
            for (ticket, _) in unit
                .tickets
                .iter()
                .zip(live_before)
                .filter(|(_, &live)| live)
            {
                let tenant = st.slots[ticket].tenant.clone();
                st.counters
                    .tenants
                    .entry(tenant)
                    .or_default()
                    .cycles_simulated += advanced;
            }
        }
        if unit.deadlines.iter().any(Option::is_some) {
            unit = self.fault_expired(st, unit);
        }
        if unit.group.is_done() {
            self.finalize_unit(st, unit);
            st.running_units -= 1;
            return None;
        }
        if self.is_draining() || (unit.preemptible && st.queue.interactive_waiting() > 0) {
            st.counters.preemptions += 1;
            self.park_unit(st, unit);
            st.running_units -= 1;
            return None;
        }
        Some(unit)
    }

    /// Claims the next execution unit under the scheduler lock:
    /// interactive queue first, then parked units (their latency debt is
    /// oldest), then the batch queue — packing compatible queued jobs
    /// from any tenant into one fused group.
    fn claim_unit(&self, st: &mut State) -> Option<ActiveUnit> {
        if self.is_draining() {
            return None;
        }
        if st.queue.interactive_waiting() == 0 {
            if let Some(tickets) = st.parked.pop_front() {
                return Some(resume_unit(st, tickets));
            }
        }
        let head = st.queue.take()?;
        let (job, wall) = take_queued(st, head.ticket);
        let mut members: Vec<(QueuedJob, Box<Job>, Option<Duration>)> = vec![(head, job, wall)];
        if group_eligible(&members[0].1) {
            while members.len() < self.config.max_lanes {
                let head_job = &members[0].1;
                let (queue, slots) = (&mut st.queue, &st.slots);
                let Some(next) = queue.take_where(|ticket| {
                    matches!(
                        &slots[&ticket].phase,
                        Phase::Queued(job, _) if group_eligible(job) && groupable(head_job, job)
                    )
                }) else {
                    break;
                };
                let (job, wall) = take_queued(st, next.ticket);
                members.push((next, job, wall));
            }
        }
        let mut tickets = Vec::with_capacity(members.len());
        let mut lanes = Vec::with_capacity(members.len());
        let mut deadlines = Vec::with_capacity(members.len());
        let mut preemptible = true;
        for (entry, job, wall) in members {
            match RunningJob::start(&job) {
                Ok(lane) => {
                    tickets.push(entry.ticket);
                    deadlines.push(wall.map(|limit| (Instant::now() + limit, limit)));
                    preemptible &= entry.class == JobClass::Batch;
                    lanes.push(lane);
                }
                Err(fault) => {
                    settle(st, entry.ticket, JobOutcome::Fault(fault));
                    // Settled without running: wake any client in `wait`.
                    self.signal.notify_all();
                }
            }
        }
        Some(ActiveUnit {
            tickets,
            group: LaneGroup::new(lanes),
            preemptible,
            deadlines,
        })
    }

    /// Faults any live lane whose wall-clock deadline has passed,
    /// rebuilding the group from the survivors.
    fn fault_expired(&self, st: &mut State, unit: ActiveUnit) -> ActiveUnit {
        let now = Instant::now();
        if !unit
            .deadlines
            .iter()
            .flatten()
            .any(|(deadline, _)| *deadline <= now)
        {
            return unit;
        }
        let ActiveUnit {
            tickets,
            group,
            preemptible,
            deadlines,
        } = unit;
        let mut kept = ActiveUnit {
            tickets: Vec::new(),
            group: LaneGroup::new(Vec::new()),
            preemptible,
            deadlines: Vec::new(),
        };
        let mut kept_lanes = Vec::new();
        for ((ticket, lane), deadline) in tickets.into_iter().zip(group.into_lanes()).zip(deadlines)
        {
            match deadline {
                Some((at, limit)) if at <= now && !lane.is_done() => {
                    settle(st, ticket, JobOutcome::Fault(JobFault::WallLimit { limit }));
                }
                _ => {
                    kept.tickets.push(ticket);
                    kept.deadlines.push(deadline);
                    kept_lanes.push(lane);
                }
            }
        }
        kept.group = LaneGroup::new(kept_lanes);
        kept
    }

    /// Settles every lane of a finished unit.
    fn finalize_unit(&self, st: &mut State, unit: ActiveUnit) {
        for (ticket, lane) in unit.tickets.into_iter().zip(unit.group.into_lanes()) {
            settle(st, ticket, lane.finish());
        }
    }

    /// Suspends a unit's live lanes into checkpoints (finishing any that
    /// are already done) and appends the parked unit for later resume.
    fn park_unit(&self, st: &mut State, unit: ActiveUnit) {
        let mut parked = Vec::new();
        for ((ticket, lane), deadline) in unit
            .tickets
            .into_iter()
            .zip(unit.group.into_lanes())
            .zip(unit.deadlines)
        {
            if lane.is_done() {
                settle(st, ticket, lane.finish());
            } else {
                let slot = st.slots.get_mut(&ticket).expect("running slot");
                let tenant = slot.tenant.clone();
                slot.phase = Phase::Parked(lane.suspend(), deadline);
                st.counters.tenants.entry(tenant).or_default().preemptions += 1;
                parked.push(ticket);
            }
        }
        if !parked.is_empty() {
            st.parked.push_back(parked);
        }
    }
}

/// Extracts a queued job's payload, leaving the slot `Running`.
fn take_queued(st: &mut State, ticket: u64) -> (Box<Job>, Option<Duration>) {
    let slot = st.slots.get_mut(&ticket).expect("queued slot");
    match std::mem::replace(&mut slot.phase, Phase::Running) {
        Phase::Queued(job, wall) => (job, wall),
        _ => unreachable!("dequeued ticket was not queued"),
    }
}

/// Rehydrates a parked unit's lanes, leaving the slots `Running`.
fn resume_unit(st: &mut State, tickets: Vec<u64>) -> ActiveUnit {
    let mut lanes = Vec::with_capacity(tickets.len());
    let mut deadlines = Vec::with_capacity(tickets.len());
    let mut preemptible = true;
    for &ticket in &tickets {
        let slot = st.slots.get_mut(&ticket).expect("parked slot");
        preemptible &= slot.class == JobClass::Batch;
        match std::mem::replace(&mut slot.phase, Phase::Running) {
            Phase::Parked(suspended, deadline) => {
                lanes.push(suspended.resume());
                deadlines.push(deadline);
            }
            _ => unreachable!("parked ticket was not parked"),
        }
    }
    ActiveUnit {
        tickets,
        group: LaneGroup::new(lanes),
        preemptible,
        deadlines,
    }
}

/// Records a terminal outcome: slot goes `Done`, the tenant's quota slot
/// is released, the counters move.
fn settle(st: &mut State, ticket: u64, outcome: JobOutcome) {
    let slot = st.slots.get_mut(&ticket).expect("settling slot");
    let tenant = slot.tenant.clone();
    match &outcome {
        JobOutcome::Completed(_) => {
            st.counters.completed += 1;
            st.counters
                .tenants
                .entry(tenant.clone())
                .or_default()
                .jobs_completed += 1;
        }
        JobOutcome::Fault(_) => st.counters.faulted += 1,
    }
    slot.phase = Phase::Done(outcome);
    st.queue.complete(&tenant);
}
