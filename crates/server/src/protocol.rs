//! The wire protocol: a minimal HTTP/1.1 subset over `std::net`, plus
//! the job wire format and the hand-rolled JSON the service speaks.
//!
//! The subset is deliberately tiny — request line, headers,
//! `Content-Length` bodies, keep-alive connections — because both ends
//! are in this workspace; there is no external dependency to satisfy.
//! Still, the shapes are honest HTTP: a load balancer's health checker
//! can GET `/healthz`, and a generic client that POSTs a job learns
//! about backpressure the standard way (status `429`/`503` with a
//! `Retry-After` header).
//!
//! # Endpoints
//!
//! | Method/path         | Meaning |
//! |---------------------|---------|
//! | `GET /healthz`      | liveness — `200 ok` |
//! | `GET /v1/stats`     | scheduler counters as JSON |
//! | `POST /v1/jobs`     | submit a job (see below); `?wait=1` blocks for the outcome |
//! | `GET /v1/jobs/<t>`  | status of ticket `<t>` |
//! | `POST /v1/drain`    | graceful shutdown: evict queue, checkpoint in-flight, stop |
//!
//! # Job submission
//!
//! The body is the assembled [`Object`] in its binary container format
//! ([`Object::to_bytes`]); everything else rides in `x-` headers:
//!
//! * `x-tenant` (required) — the submitting tenant's name,
//! * `x-class` — `interactive` or `batch` (default),
//! * `x-cycles` (required) — the `Cycles(n)` budget,
//! * `x-geometry` — ring size `8`/`16`/`64` (default 8),
//! * `x-input-<switch>-<port>` — comma-separated i16 input words,
//! * `x-sink` — comma-separated `<switch>.<port>` sinks to capture,
//! * `x-watchdog` — controller watchdog interval (simulated-cycle
//!   deadline; `0`/absent disarms),
//! * `x-wall-ms` — wall-clock deadline in milliseconds,
//! * `x-chaos-seed`, `x-chaos-ppm` — arm uniform fault injection (the
//!   chaos-campaign hook; detection machinery included).
//!
//! Submissions are lint-gated server-side: an object that fails
//! `ringlint` pre-flight for the requested geometry/sizing is refused
//! with `400` before it consumes any queue slot.

use std::io::{self, BufRead, Write};

use systolic_ring_core::{FaultConfig, MachineParams};
use systolic_ring_harness::admission::JobClass;
use systolic_ring_harness::job::{CycleBudget, Job, JobOutcome};
use systolic_ring_isa::object::Object;
use systolic_ring_isa::{RingGeometry, Word16};

use crate::service::{JobStatus, ServiceStats};

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// Uppercase method.
    pub method: String,
    /// Path without the query string.
    pub path: String,
    /// Decoded `key=value` query pairs.
    pub query: Vec<(String, String)>,
    /// Headers with lowercased names.
    pub headers: Vec<(String, String)>,
    /// The body (empty without `Content-Length`).
    pub body: Vec<u8>,
}

impl Request {
    /// First header value by lowercase name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// `true` when the query contains `key=1` or bare `key`.
    pub fn flag(&self, key: &str) -> bool {
        self.query
            .iter()
            .any(|(k, v)| k == key && (v == "1" || v.is_empty()))
    }
}

/// Reads one request from a keep-alive connection; `None` on clean EOF.
pub fn read_request(stream: &mut impl BufRead) -> io::Result<Option<Request>> {
    let mut line = String::new();
    if stream.read_line(&mut line)? == 0 {
        return Ok(None);
    }
    let mut parts = line.split_whitespace();
    let (Some(method), Some(target)) = (parts.next(), parts.next()) else {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "bad request line",
        ));
    };
    let (path, query_str) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_str
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_owned(), v.to_owned()),
            None => (pair.to_owned(), String::new()),
        })
        .collect();
    let mut headers = Vec::new();
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        if stream.read_line(&mut line)? == 0 {
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "mid-headers"));
        }
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad header"));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name == "content-length" {
            content_length = value
                .parse()
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "bad content-length"))?;
        }
        headers.push((name, value));
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body)?;
    Ok(Some(Request {
        method: method.to_ascii_uppercase(),
        path: path.to_owned(),
        query,
        headers,
        body,
    }))
}

/// One response to serialize.
#[derive(Clone, Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers (`Content-Length`/`Content-Type` are added).
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), "application/json".into())],
            body: body.into_bytes(),
        }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: impl Into<String>) -> Response {
        Response {
            status,
            headers: vec![("content-type".into(), "text/plain".into())],
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header.
    pub fn with_header(mut self, name: &str, value: String) -> Response {
        self.headers.push((name.into(), value));
        self
    }
}

/// The reason phrase for the handful of statuses the service uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Writes `response` in HTTP/1.1 framing (keep-alive).
pub fn write_response(stream: &mut impl Write, response: &Response) -> io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {} {}\r\n",
        response.status,
        reason(response.status)
    )?;
    for (name, value) in &response.headers {
        write!(stream, "{name}: {value}\r\n")?;
    }
    write!(stream, "content-length: {}\r\n\r\n", response.body.len())?;
    stream.write_all(&response.body)?;
    stream.flush()
}

/// A job submission decoded off the wire.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Submitting tenant.
    pub tenant: String,
    /// Service class.
    pub class: JobClass,
    /// `Cycles(n)` budget.
    pub cycles: u64,
    /// Ring geometry.
    pub geometry: RingGeometry,
    /// Watchdog interval (0 = off).
    pub watchdog: u64,
    /// Wall-clock deadline.
    pub wall_ms: Option<u64>,
    /// Uniform chaos injection `(seed, ppm)`.
    pub chaos: Option<(u64, u32)>,
    /// Input streams `(switch, port, words)`.
    pub inputs: Vec<(usize, usize, Vec<i16>)>,
    /// Sinks to capture `(switch, port)`.
    pub sinks: Vec<(usize, usize)>,
    /// The assembled object.
    pub object: Object,
}

impl JobSpec {
    /// Decodes a `POST /v1/jobs` request.
    pub fn parse(req: &Request) -> Result<JobSpec, String> {
        let tenant = req
            .header("x-tenant")
            .ok_or("missing x-tenant header")?
            .to_owned();
        if tenant.is_empty() {
            return Err("empty x-tenant header".into());
        }
        let class = match req.header("x-class") {
            None | Some("batch") => JobClass::Batch,
            Some("interactive") => JobClass::Interactive,
            Some(other) => return Err(format!("unknown x-class {other:?}")),
        };
        let cycles: u64 = req
            .header("x-cycles")
            .ok_or("missing x-cycles header")?
            .parse()
            .map_err(|_| "x-cycles is not a number")?;
        if cycles == 0 {
            return Err("x-cycles must be positive".into());
        }
        let geometry = match req.header("x-geometry") {
            None | Some("8") => RingGeometry::RING_8,
            Some("16") => RingGeometry::RING_16,
            Some("64") => RingGeometry::RING_64,
            Some(other) => return Err(format!("unsupported x-geometry {other:?}")),
        };
        let watchdog = match req.header("x-watchdog") {
            Some(v) => v.parse().map_err(|_| "x-watchdog is not a number")?,
            None => 0,
        };
        let wall_ms = match req.header("x-wall-ms") {
            Some(v) => Some(v.parse().map_err(|_| "x-wall-ms is not a number")?),
            None => None,
        };
        let chaos = match (req.header("x-chaos-seed"), req.header("x-chaos-ppm")) {
            (None, None) => None,
            (seed, ppm) => {
                let seed: u64 = seed
                    .ok_or("x-chaos-ppm without x-chaos-seed")?
                    .parse()
                    .map_err(|_| "x-chaos-seed is not a number")?;
                let ppm: u32 = ppm
                    .ok_or("x-chaos-seed without x-chaos-ppm")?
                    .parse()
                    .map_err(|_| "x-chaos-ppm is not a number")?;
                Some((seed, ppm))
            }
        };
        let mut inputs = Vec::new();
        for (name, value) in &req.headers {
            if let Some(rest) = name.strip_prefix("x-input-") {
                let (switch, port) = rest
                    .split_once('-')
                    .ok_or("x-input header needs x-input-<switch>-<port>")?;
                let switch: usize = switch.parse().map_err(|_| "bad x-input switch index")?;
                let port: usize = port.parse().map_err(|_| "bad x-input port index")?;
                let words = value
                    .split(',')
                    .filter(|s| !s.trim().is_empty())
                    .map(|s| s.trim().parse::<i16>())
                    .collect::<Result<Vec<i16>, _>>()
                    .map_err(|_| "x-input words must be i16")?;
                inputs.push((switch, port, words));
            }
        }
        let mut sinks = Vec::new();
        for (name, value) in &req.headers {
            if name == "x-sink" {
                for pair in value.split(',').filter(|s| !s.trim().is_empty()) {
                    let (switch, port) = pair
                        .trim()
                        .split_once('.')
                        .ok_or("x-sink entries are <switch>.<port>")?;
                    sinks.push((
                        switch.parse().map_err(|_| "bad x-sink switch index")?,
                        port.parse().map_err(|_| "bad x-sink port index")?,
                    ));
                }
            }
        }
        let object = Object::from_bytes(&req.body).map_err(|e| format!("bad object body: {e}"))?;
        Ok(JobSpec {
            tenant,
            class,
            cycles,
            geometry,
            watchdog,
            wall_ms,
            chaos,
            inputs,
            sinks,
            object,
        })
    }

    /// Builds the lint-gated harness [`Job`] this spec describes.
    pub fn build(&self) -> Job {
        let params = MachineParams::PAPER.with_watchdog(self.watchdog);
        let mut job = Job::from_object(
            self.tenant.clone(),
            self.geometry,
            params,
            self.object.clone(),
            CycleBudget::Cycles(self.cycles),
        );
        if let Some((seed, ppm)) = self.chaos {
            job = job.with_faults(FaultConfig::uniform(seed, ppm));
        }
        for (switch, port, words) in &self.inputs {
            job = job.with_input(*switch, *port, words.iter().map(|w| Word16::from_i16(*w)));
        }
        for (switch, port) in &self.sinks {
            job = job.with_sink(*switch, *port);
        }
        job
    }
}

/// Renders a ticket status as the wire JSON.
pub fn status_json(ticket: u64, status: &JobStatus) -> String {
    let mut out = format!("{{\"ticket\":{ticket},\"status\":\"{}\"", status.name());
    match status {
        JobStatus::Checkpointed { cycle } => {
            out.push_str(&format!(",\"cycle\":{cycle}"));
        }
        JobStatus::Done(JobOutcome::Completed(output)) => {
            out.push_str(&format!(",\"cycles\":{},\"outputs\":[", output.cycles));
            for (i, sink) in output.outputs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('[');
                for (j, word) in sink.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&word.to_string());
                }
                out.push(']');
            }
            out.push(']');
        }
        JobStatus::Done(JobOutcome::Fault(fault)) => {
            out.push_str(",\"fault\":");
            out.push_str(&json_string(&fault.to_string()));
            if fault.is_detected_fault() {
                out.push_str(",\"detected\":true");
            }
        }
        JobStatus::Queued | JobStatus::Running => {}
    }
    out.push('}');
    out
}

/// Renders the scheduler counters as the wire JSON. The `tenants`
/// object is keyed by tenant name in sorted order, one accounting row
/// per tenant the scheduler ever ran or completed work for.
pub fn stats_json(stats: &ServiceStats) -> String {
    let mut out = format!(
        "{{\"admitted\":{},\"rejected_full\":{},\"rejected_quota\":{},\"rejected_draining\":{},\
         \"max_queue_depth\":{},\"queue_depth\":{},\"interactive_waiting\":{},\
         \"running_units\":{},\"parked_jobs\":{},\"preemptions\":{},\"completed\":{},\
         \"faulted\":{},\"evicted\":{},\"advanced_cycles\":{},\"lane_occupancy\":{:.4},\
         \"tenants\":{{",
        stats.admission.admitted,
        stats.admission.rejected_full,
        stats.admission.rejected_quota,
        stats.admission.rejected_draining,
        stats.admission.max_depth,
        stats.queue_depth,
        stats.interactive_waiting,
        stats.running_units,
        stats.parked_jobs,
        stats.preemptions,
        stats.completed,
        stats.faulted,
        stats.evicted,
        stats.advanced_cycles,
        stats.lane_occupancy(),
    );
    for (i, row) in stats.tenants.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&json_string(&row.tenant));
        out.push_str(&format!(
            ":{{\"cycles_simulated\":{},\"jobs_completed\":{},\"preemptions\":{}}}",
            row.cycles_simulated, row.jobs_completed, row.preemptions,
        ));
    }
    out.push_str("}}");
    out
}

/// Escapes a string into a JSON literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// A minimal JSON value, enough to parse the service's own responses
/// (the [`client`](crate::client) and the load generator use it; the
/// server only ever *emits* JSON).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Any number (lossy for huge u64s, which the service never emits).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = JsonParser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as u64 (truncating).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as f64.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_whitespace())
        {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(_) => self.number(),
            None => Err("unexpected end of input".into()),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or("bad \\u escape")?;
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err("bad escape".into()),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid utf-8 in string")?;
                    let c = rest.chars().next().expect("nonempty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected , or ] at {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected , or }} at {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_the_shapes_the_service_emits() {
        let doc = r#"{"ticket":7,"status":"completed","cycles":2048,"outputs":[[1,-2,3],[]],"lane_occupancy":3.5000,"fault":"cycle 3: \"quoted\"","flag":true,"none":null}"#;
        let v = Json::parse(doc).expect("parses");
        assert_eq!(v.get("ticket").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("status").and_then(Json::as_str), Some("completed"));
        assert_eq!(v.get("lane_occupancy").and_then(Json::as_f64), Some(3.5));
        let outputs = v.get("outputs").and_then(Json::as_arr).expect("arr");
        assert_eq!(outputs[0].as_arr().unwrap().len(), 3);
        assert_eq!(outputs[1].as_arr().unwrap().len(), 0);
        assert_eq!(
            v.get("fault").and_then(Json::as_str),
            Some("cycle 3: \"quoted\"")
        );
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("{\"a\":1} trailing").is_err());
    }

    #[test]
    fn json_string_escapes_survive_the_parser() {
        let nasty = "line\nbreak \"quotes\" back\\slash \u{1}control";
        let doc = format!("{{\"msg\":{}}}", json_string(nasty));
        let v = Json::parse(&doc).expect("parses");
        assert_eq!(v.get("msg").and_then(Json::as_str), Some(nasty));
    }

    #[test]
    fn request_parsing_handles_query_and_headers() {
        let raw =
            "POST /v1/jobs?wait=1 HTTP/1.1\r\nX-Tenant: alice\r\nContent-Length: 3\r\n\r\nabc";
        let mut reader = std::io::BufReader::new(raw.as_bytes());
        let req = read_request(&mut reader).expect("io").expect("request");
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/jobs");
        assert!(req.flag("wait"));
        assert_eq!(req.header("x-tenant"), Some("alice"));
        assert_eq!(req.body, b"abc");
        // EOF after the request: keep-alive loop sees a clean close.
        assert!(read_request(&mut reader).expect("io").is_none());
    }
}
