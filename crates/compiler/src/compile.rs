//! The compiler: dataflow graphs to fabric configurations.
//!
//! The paper closes with "Our future work takes place in the realization of
//! an efficient compiling/profiling tool, the key to success of
//! reconfigurable computing architectures" (§6). This module is that tool
//! for feedforward graphs:
//!
//! 1. **Fold** — constant subtrees collapse into immediates; inputs and
//!    constants used as outputs get pass-through operators.
//! 2. **Place** — each operator's *depth* (longest operand chain) selects
//!    its layer (`(depth - 1) % layers`); lanes are allocated within each
//!    layer.
//! 3. **Route** — consecutive depths use the direct crossbar; longer
//!    value lifetimes read the producer back out of its downstream
//!    switch's **feedback pipeline** at stage `d - j - 2` — exactly the
//!    "required delays are automatically achieved in them" mechanism of
//!    §4.2, applied mechanically.
//! 4. **Align** — input streams are attached at every switch where they
//!    are read, with a zero prefix matching the reader's depth, so every
//!    operator sees the same sample slot at the same cycle.
//! 5. **Emit** — the result is a set of configuration writes that
//!    [`CompiledGraph::instantiate`] applies to a fresh machine;
//!    [`CompiledGraph::run`] streams data through it and
//!    [`CompiledGraph::report`] prints the mapping and utilization (the
//!    "profiling" half).

use std::collections::HashMap;
use std::fmt;

use systolic_ring_core::{ConfigError, MachineParams, RingMachine, SimError};
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand};
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};
use systolic_ring_lint::{lint_object_with, LintError, LintLimits};

use crate::graph::{Graph, GraphError, Node, NodeId};

/// Compilation failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The graph declares no outputs.
    NoOutputs,
    /// An operator belongs to the accumulator family (the graph IR is
    /// state-free).
    StatefulOp {
        /// Offending node.
        node: NodeId,
        /// The operator.
        op: AluOp,
    },
    /// More operators map to one layer than it has lanes.
    LayerFull {
        /// The saturated layer.
        layer: usize,
        /// Lanes available.
        capacity: usize,
        /// Operators needing the layer.
        demand: usize,
    },
    /// A value lifetime exceeds the feedback-pipeline depth.
    PipeTooShallow {
        /// Stage the route needs.
        needed: usize,
        /// Configured depth.
        depth: usize,
    },
    /// A switch ran out of host-input ports for stream attachments.
    HostPortsExhausted {
        /// The saturated switch.
        switch: usize,
        /// Ports available (`2 * width`).
        capacity: usize,
    },
    /// A switch ran out of host-output capture ports.
    CapturePortsExhausted {
        /// The saturated switch.
        switch: usize,
        /// Ports available (`width`).
        capacity: usize,
    },
    /// The emitted configuration failed the static lint (a compiler bug —
    /// the emitter produced a configuration `ringlint` can prove wrong).
    Lint(LintError),
}

impl CompileError {
    /// Stable, grep-able error code (`SR-Cxxx`).
    pub const fn code(&self) -> &'static str {
        match self {
            CompileError::NoOutputs => "SR-C001",
            CompileError::StatefulOp { .. } => "SR-C002",
            CompileError::LayerFull { .. } => "SR-C003",
            CompileError::PipeTooShallow { .. } => "SR-C004",
            CompileError::HostPortsExhausted { .. } => "SR-C005",
            CompileError::CapturePortsExhausted { .. } => "SR-C006",
            CompileError::Lint(_) => "SR-C007",
        }
    }
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: ", self.code())?;
        match self {
            CompileError::NoOutputs => f.write_str("graph has no outputs"),
            CompileError::StatefulOp { node, op } => {
                write!(f, "node {node} uses stateful operator `{op}`")
            }
            CompileError::LayerFull {
                layer,
                capacity,
                demand,
            } => write!(f, "layer {layer} needs {demand} lanes but has {capacity}"),
            CompileError::PipeTooShallow { needed, depth } => write!(
                f,
                "a value lifetime needs pipeline stage {needed}, depth is {depth}"
            ),
            CompileError::HostPortsExhausted { switch, capacity } => write!(
                f,
                "switch {switch} ran out of host-input ports ({capacity})"
            ),
            CompileError::CapturePortsExhausted { switch, capacity } => {
                write!(f, "switch {switch} ran out of capture ports ({capacity})")
            }
            CompileError::Lint(e) => write!(f, "emitted configuration fails lint: {e}"),
        }
    }
}

impl std::error::Error for CompileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CompileError::Lint(e) => Some(e),
            _ => None,
        }
    }
}

/// Failure while running a compiled graph.
#[derive(Clone, Debug, PartialEq)]
pub enum RunError {
    /// Stream validation failed.
    Graph(GraphError),
    /// The machine rejected a configuration write (a compiler bug).
    Config(ConfigError),
    /// The machine faulted.
    Sim(SimError),
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Graph(e) => write!(f, "stream error: {e}"),
            RunError::Config(e) => write!(f, "configuration rejected: {e}"),
            RunError::Sim(e) => write!(f, "machine fault: {e}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<GraphError> for RunError {
    fn from(e: GraphError) -> Self {
        RunError::Graph(e)
    }
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Config(e)
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// A stream attachment the host must make.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InputFeed {
    /// Which graph input.
    pub input: usize,
    /// Target switch.
    pub switch: usize,
    /// Host-input port on that switch.
    pub port: usize,
    /// Zero-prefix length aligning the stream to its readers' depth.
    pub prefix: usize,
}

/// A capture the host must drain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutputTap {
    /// Which graph output.
    pub output: usize,
    /// Capturing switch.
    pub switch: usize,
    /// Host-output port on that switch.
    pub port: usize,
    /// Sink entries to skip before the first valid sample.
    pub latency: usize,
}

/// A placed operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Placement {
    /// The operator node.
    pub node: NodeId,
    /// Its pipeline depth (1 = reads raw inputs).
    pub depth: usize,
    /// Assigned layer.
    pub layer: usize,
    /// Assigned lane.
    pub lane: usize,
}

/// The compiled artifact: everything needed to configure, run and inspect
/// the mapping.
#[derive(Clone, Debug)]
pub struct CompiledGraph {
    geometry: RingGeometry,
    params: MachineParams,
    graph: Graph,
    placements: Vec<Placement>,
    dnode_instrs: Vec<(usize, MicroInstr)>,
    routes: Vec<(usize, usize, usize, PortSource)>,
    captures: Vec<(usize, usize, u8)>,
    feeds: Vec<InputFeed>,
    taps: Vec<OutputTap>,
    max_depth: usize,
    /// Zero slots streamed before slot 0 so pipeline taps are saturated.
    warmup: usize,
}

/// Compiles `graph` for `geometry` with the given machine sizing (the
/// pipeline depth bounds value lifetimes), then proves the emitted
/// configuration clean under `ringlint`'s static checks.
///
/// Linting is deny-by-default: any warning or error in the emitted
/// configuration fails compilation with [`CompileError::Lint`] — an
/// emitter bug by definition, since the compiler controls every record it
/// writes. [`compile_unchecked`] is the escape hatch that skips the lint
/// (for experiments that deliberately emit out-of-contract
/// configurations).
///
/// # Errors
///
/// Returns [`CompileError`] when the graph does not fit (the message names
/// the exhausted resource) or when the emitted configuration fails lint.
pub fn compile(
    graph: &Graph,
    geometry: RingGeometry,
    params: MachineParams,
) -> Result<CompiledGraph, CompileError> {
    let compiled = compile_unchecked(graph, geometry, params)?;
    let limits = LintLimits {
        contexts: params.contexts,
        pipe_depth: params.pipe_depth,
        prog_capacity: params.prog_capacity,
        dmem_capacity: params.dmem_capacity,
        geometry: Some(geometry),
    };
    lint_object_with(&compiled.to_object(), &limits)
        .into_result(true)
        .map_err(CompileError::Lint)?;
    Ok(compiled)
}

/// [`compile`] without the post-emission lint gate.
///
/// # Errors
///
/// Returns [`CompileError`] when the graph does not fit; the message names
/// the exhausted resource.
pub fn compile_unchecked(
    graph: &Graph,
    geometry: RingGeometry,
    params: MachineParams,
) -> Result<CompiledGraph, CompileError> {
    if graph.output_count() == 0 {
        return Err(CompileError::NoOutputs);
    }
    let mut graph = graph.clone();

    // ---- Fold: constant subtrees + pass-through for raw outputs ---------
    let folded = fold_constants(&mut graph)?;
    wrap_raw_outputs(&mut graph);

    // ---- Depths -----------------------------------------------------------
    let nodes = graph.nodes().to_vec();
    let mut depth = vec![0usize; nodes.len()];
    for (i, node) in nodes.iter().enumerate() {
        depth[i] = match *node {
            Node::Input { .. } | Node::Const(_) => 0,
            // A delay is free: it compiles to a pipeline tap, not a Dnode.
            Node::Delay { src, .. } => depth[src.0],
            Node::Op { op, a, b } => {
                if op.uses_accumulator() {
                    return Err(CompileError::StatefulOp {
                        node: NodeId(i),
                        op,
                    });
                }
                // Operands precede the op in the arena, so their depths are
                // final.
                1 + depth[a.0].max(depth[b.0])
            }
        };
    }
    let _ = folded;

    // ---- Liveness: only outputs' transitive operands occupy Dnodes ------
    let mut live = vec![false; nodes.len()];
    let mut stack: Vec<NodeId> = graph.outputs().to_vec();
    while let Some(id) = stack.pop() {
        if live[id.0] {
            continue;
        }
        live[id.0] = true;
        match nodes[id.0] {
            Node::Op { a, b, .. } => {
                stack.push(a);
                stack.push(b);
            }
            Node::Delay { src, .. } => stack.push(src),
            _ => {}
        }
    }

    // ---- Place -------------------------------------------------------------
    let layers = geometry.layers();
    let width = geometry.width();
    let mut lane_next = vec![0usize; layers];
    let mut placements = Vec::new();
    let mut place_of: HashMap<NodeId, (usize, usize)> = HashMap::new();
    for (i, node) in nodes.iter().enumerate() {
        if let Node::Op { .. } = node {
            if !live[i] {
                continue;
            }
            let d = depth[i];
            let layer = (d - 1) % layers;
            let lane = lane_next[layer];
            if lane >= width {
                let demand = nodes
                    .iter()
                    .enumerate()
                    .filter(|(j, n)| {
                        matches!(n, Node::Op { .. })
                            && live[*j]
                            && (depth[*j] - 1) % layers == layer
                    })
                    .count();
                return Err(CompileError::LayerFull {
                    layer,
                    capacity: width,
                    demand,
                });
            }
            lane_next[layer] += 1;
            placements.push(Placement {
                node: NodeId(i),
                depth: d,
                layer,
                lane,
            });
            place_of.insert(NodeId(i), (layer, lane));
        }
    }
    let max_depth = depth.iter().copied().max().unwrap_or(0);

    // ---- Route --------------------------------------------------------------
    let mut dnode_instrs = Vec::new();
    let mut routes: Vec<(usize, usize, usize, PortSource)> = Vec::new();
    let mut feeds: Vec<InputFeed> = Vec::new();
    let mut settle = vec![0usize; nodes.len()];
    // (input index, switch, prefix) -> allocated port.
    let mut feed_ports: HashMap<(usize, usize, usize), usize> = HashMap::new();
    let mut hostin_next: HashMap<usize, usize> = HashMap::new();

    for p in &placements {
        let Node::Op { op, a, b } = nodes[p.node.0] else {
            unreachable!()
        };
        let mut imm = None;
        let route_operand = |which: usize,
                             operand: NodeId,
                             imm: &mut Option<Word16>,
                             routes: &mut Vec<(usize, usize, usize, PortSource)>,
                             feeds: &mut Vec<InputFeed>,
                             feed_ports: &mut HashMap<(usize, usize, usize), usize>,
                             hostin_next: &mut HashMap<usize, usize>|
         -> Result<(Operand, NodeId, usize), CompileError> {
            // Resolve delay chains to (base node, accumulated slots).
            let mut base = operand;
            let mut extra = 0usize;
            while let Node::Delay { src, cycles } = nodes[base.0] {
                base = src;
                extra += cycles;
            }
            match nodes[base.0] {
                Node::Delay { .. } => unreachable!("resolved above"),
                Node::Const(value) => {
                    // Constants are time-invariant: a delayed constant is
                    // the constant (matching the interpreter's
                    // zero-extended-past semantics). Two distinct constant
                    // operands cannot reach one op: folding would have
                    // collapsed the op.
                    debug_assert!(imm.is_none() || *imm == Some(value));
                    *imm = Some(value);
                    Ok((Operand::Imm, base, 0))
                }
                Node::Input { index } => {
                    let switch = p.layer;
                    let prefix = p.depth - 1 + extra;
                    let key = (index, switch, prefix);
                    let port = match feed_ports.get(&key) {
                        Some(&port) => port,
                        None => {
                            let next = hostin_next.entry(switch).or_insert(0);
                            if *next >= 2 * width {
                                return Err(CompileError::HostPortsExhausted {
                                    switch,
                                    capacity: 2 * width,
                                });
                            }
                            let port = *next;
                            *next += 1;
                            feed_ports.insert(key, port);
                            feeds.push(InputFeed {
                                input: index,
                                switch,
                                port,
                                prefix,
                            });
                            port
                        }
                    };
                    routes.push((
                        p.layer,
                        p.lane,
                        which,
                        PortSource::HostIn { port: port as u8 },
                    ));
                    Ok((
                        if which == 0 {
                            Operand::In1
                        } else {
                            Operand::In2
                        },
                        base,
                        0,
                    ))
                }
                Node::Op { .. } => {
                    let j = depth[base.0];
                    let (src_layer, src_lane) = place_of[&base];
                    // Total lookback in sample slots beyond the direct hop.
                    let total = (p.depth - 1 - j) + extra;
                    if total == 0 {
                        routes.push((
                            p.layer,
                            p.lane,
                            which,
                            PortSource::PrevOut {
                                lane: src_lane as u8,
                            },
                        ));
                    } else {
                        let stage = total - 1;
                        if stage >= params.pipe_depth {
                            return Err(CompileError::PipeTooShallow {
                                needed: stage,
                                depth: params.pipe_depth,
                            });
                        }
                        let pipe_switch = (src_layer + 1) % layers;
                        routes.push((
                            p.layer,
                            p.lane,
                            which,
                            PortSource::Pipe {
                                switch: pipe_switch as u8,
                                stage: stage as u8,
                                lane: src_lane as u8,
                            },
                        ));
                    }
                    Ok((
                        if which == 0 {
                            Operand::In1
                        } else {
                            Operand::In2
                        },
                        base,
                        total,
                    ))
                }
            }
        };
        let (src_a, base_a, total_a) = route_operand(
            0,
            a,
            &mut imm,
            &mut routes,
            &mut feeds,
            &mut feed_ports,
            &mut hostin_next,
        )?;
        let (src_b, base_b, total_b) = route_operand(
            1,
            b,
            &mut imm,
            &mut routes,
            &mut feeds,
            &mut feed_ports,
            &mut hostin_next,
        )?;
        // Settle time: warm slots needed before this node's value reflects
        // the zero-extended past rather than machine-reset zeros. A tap
        // with lookback `total` needs its producer settled `total` slots
        // earlier.
        settle[p.node.0] = (settle[base_a.0] + total_a).max(settle[base_b.0] + total_b);
        let mut instr = MicroInstr::op(op, src_a, src_b).write_out();
        if let Some(value) = imm {
            instr = instr.with_imm(value);
        }
        dnode_instrs.push((geometry.dnode_index(p.layer, p.lane), instr));
    }

    // ---- Outputs --------------------------------------------------------------
    let mut captures = Vec::new();
    let mut taps = Vec::new();
    let mut capture_next: HashMap<usize, usize> = HashMap::new();
    for (o, &out_node) in graph.outputs().iter().enumerate() {
        let (src_layer, src_lane) = place_of[&out_node];
        let switch = (src_layer + 1) % layers;
        let next = capture_next.entry(switch).or_insert(0);
        if *next >= width {
            return Err(CompileError::CapturePortsExhausted {
                switch,
                capacity: width,
            });
        }
        let port = *next;
        *next += 1;
        captures.push((switch, port, src_lane as u8));
        taps.push(OutputTap {
            output: o,
            switch,
            port,
            latency: depth[out_node.0] + 1,
        });
    }

    // Pipe warm-up: run enough zero slots first that every tapped stage —
    // including chains of taps — holds op-on-zero history rather than
    // machine-reset zeros.
    let warmup = settle.iter().copied().max().unwrap_or(0);

    Ok(CompiledGraph {
        geometry,
        params,
        graph,
        placements,
        dnode_instrs,
        routes,
        captures,
        feeds,
        taps,
        max_depth,
        warmup,
    })
}

/// Collapses constant subtrees: delays of constants become the constant
/// (constants are time-invariant), and ops whose operands both resolve to
/// constants evaluate at compile time. Returns the number of folded nodes.
fn fold_constants(graph: &mut Graph) -> Result<usize, CompileError> {
    let mut folded = 0;
    let nodes: Vec<Node> = graph.nodes().to_vec();
    let mut replacement: Vec<Node> = nodes.clone();
    for (i, node) in nodes.iter().enumerate() {
        match *node {
            Node::Delay { src, .. } => {
                if let Node::Const(v) = replacement[src.0] {
                    replacement[i] = Node::Const(v);
                    folded += 1;
                }
            }
            Node::Op { op, a, b } => {
                if op.uses_accumulator() {
                    return Err(CompileError::StatefulOp {
                        node: NodeId(i),
                        op,
                    });
                }
                if let (Node::Const(va), Node::Const(vb)) = (replacement[a.0], replacement[b.0]) {
                    replacement[i] = Node::Const(op.eval(va, vb, Word16::ZERO));
                    folded += 1;
                }
            }
            _ => {}
        }
    }
    graph.replace_nodes(replacement);
    Ok(folded)
}

/// Wraps outputs that are raw inputs or constants in a pass-through op so
/// they exist on the fabric.
fn wrap_raw_outputs(graph: &mut Graph) {
    for o in 0..graph.output_count() {
        let node = graph.outputs()[o];
        if !matches!(graph.node(node), Node::Op { .. }) {
            let pass = graph.op(AluOp::PassA, node, node);
            graph.replace_output(o, pass);
        }
    }
}

impl CompiledGraph {
    /// The geometry this mapping targets.
    pub fn geometry(&self) -> RingGeometry {
        self.geometry
    }

    /// Operators placed on the fabric.
    pub fn placements(&self) -> &[Placement] {
        &self.placements
    }

    /// Stream attachments the host must make.
    pub fn feeds(&self) -> &[InputFeed] {
        &self.feeds
    }

    /// Captures the host must drain.
    pub fn taps(&self) -> &[OutputTap] {
        &self.taps
    }

    /// Dnodes the mapping occupies.
    pub fn dnodes_used(&self) -> usize {
        self.placements.len()
    }

    /// Longest operand chain (pipeline fill latency in cycles).
    pub fn pipeline_depth(&self) -> usize {
        self.max_depth
    }

    /// Renders the mapping as a loadable [`Object`]: the same
    /// configuration writes [`CompiledGraph::instantiate`] applies, as
    /// context-0 preload records with no controller code. The object is
    /// what the static lint, the object file tools and the batch harness
    /// consume.
    pub fn to_object(&self) -> Object {
        let mut preload = Vec::new();
        for &(dnode, instr) in &self.dnode_instrs {
            preload.push(Preload::DnodeInstr {
                ctx: 0,
                dnode: dnode as u16,
                word: instr.encode(),
            });
        }
        for &(switch, lane, input, source) in &self.routes {
            preload.push(Preload::SwitchPort {
                ctx: 0,
                switch: switch as u16,
                lane: lane as u16,
                input: input as u8,
                word: source.encode(),
            });
        }
        for &(switch, port, lane) in &self.captures {
            preload.push(Preload::HostCapture {
                ctx: 0,
                switch: switch as u16,
                port: port as u16,
                word: HostCapture::lane(lane).encode(),
            });
        }
        Object {
            geometry: Some(self.geometry),
            contexts: 1,
            code: Vec::new(),
            data: Vec::new(),
            preload,
        }
    }

    /// Builds and configures a machine for this mapping.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] only on a compiler bug — all resources were
    /// validated during compilation.
    pub fn instantiate(&self) -> Result<RingMachine, ConfigError> {
        let mut m = RingMachine::new(self.geometry, self.params);
        for &(dnode, instr) in &self.dnode_instrs {
            m.configure().set_dnode_instr(0, dnode, instr)?;
        }
        for &(layer, lane, port, source) in &self.routes {
            m.configure().set_port(0, layer, lane, port, source)?;
        }
        for &(switch, port, lane) in &self.captures {
            m.configure()
                .set_capture(0, switch, port, HostCapture::lane(lane))?;
            m.open_sink(switch, port)?;
        }
        Ok(m)
    }

    /// Streams `streams` through the compiled fabric and returns the
    /// output streams (same order as the graph's outputs) plus the cycle
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`RunError`] on stream mismatches or machine faults.
    pub fn run(&self, streams: &[&[i16]]) -> Result<(Vec<Vec<i16>>, u64), RunError> {
        if streams.len() != self.graph.input_count() {
            return Err(GraphError::InputCountMismatch {
                expected: self.graph.input_count(),
                got: streams.len(),
            }
            .into());
        }
        let len = streams.first().map_or(0, |s| s.len());
        if streams.iter().any(|s| s.len() != len) {
            return Err(GraphError::RaggedStreams.into());
        }
        let mut m = self.instantiate()?;
        for feed in &self.feeds {
            let mut words = vec![Word16::ZERO; self.warmup + feed.prefix];
            words.extend(streams[feed.input].iter().map(|&v| Word16::from_i16(v)));
            m.attach_input(feed.switch, feed.port, words)?;
        }
        m.run((self.warmup + len + self.max_depth + 4) as u64)?;
        let mut outputs = vec![Vec::new(); self.taps.len()];
        for tap in &self.taps {
            let sink = m.take_sink(tap.switch, tap.port)?;
            outputs[tap.output] = sink
                .iter()
                .skip(self.warmup + tap.latency)
                .take(len)
                .map(|w| w.as_i16())
                .collect();
        }
        Ok((outputs, m.cycle()))
    }

    /// The profiling report: placements, routes, stream plumbing and
    /// fabric utilization.
    pub fn report(&self) -> String {
        let mut out = format!(
            "compiled for {}: {} operators on {} Dnodes ({:.0}% of the fabric), \
             pipeline depth {}\n",
            self.geometry,
            self.placements.len(),
            self.geometry.dnodes(),
            self.placements.len() as f64 / self.geometry.dnodes() as f64 * 100.0,
            self.max_depth
        );
        for p in &self.placements {
            let Node::Op { op, a, b } = self.graph.node(p.node) else {
                continue;
            };
            out.push_str(&format!(
                "  {} = {} {a}, {b}  @ layer {} lane {} (depth {})\n",
                p.node, op, p.layer, p.lane, p.depth
            ));
        }
        for f in &self.feeds {
            out.push_str(&format!(
                "  input {} -> switch {} port {} (prefix {})\n",
                f.input, f.switch, f.port, f.prefix
            ));
        }
        for t in &self.taps {
            out.push_str(&format!(
                "  output {} <- switch {} out-port {} (latency {})\n",
                t.output, t.switch, t.port, t.latency
            ));
        }
        out
    }
}
