//! Dataflow-graph compiler for the Systolic Ring — the paper's stated
//! future work ("an efficient compiling/profiling tool, the key to success
//! of reconfigurable computing architectures", §6), built on the
//! cycle-accurate simulator.
//!
//! * [`Graph`] — a streaming operator DAG over 16-bit samples, with a
//!   software interpreter as the golden model,
//! * [`compile`] — placement onto ring layers, operand routing through
//!   crossbars and feedback pipelines, stream-skew alignment, resource
//!   checking,
//! * [`CompiledGraph`] — instantiate a configured machine, stream data
//!   through it, or print the mapping/profiling report.
//!
//! # Examples
//!
//! Compile `y = (x0 + x1) * 3 - x0` and check it against the interpreter:
//!
//! ```
//! use systolic_ring_compiler::{compile, Graph};
//! use systolic_ring_core::MachineParams;
//! use systolic_ring_isa::dnode::AluOp;
//! use systolic_ring_isa::RingGeometry;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut g = Graph::new();
//! let x0 = g.input();
//! let x1 = g.input();
//! let three = g.constant(3);
//! let sum = g.op(AluOp::Add, x0, x1);
//! let scaled = g.op(AluOp::Mul, sum, three);
//! let y = g.op(AluOp::Sub, scaled, x0);
//! g.output(y);
//!
//! let compiled = compile(&g, RingGeometry::RING_16, MachineParams::PAPER)?;
//! let streams: [&[i16]; 2] = [&[1, 2, 3], &[10, 20, 30]];
//! let (hardware, _cycles) = compiled.run(&streams)?;
//! assert_eq!(hardware, g.interpret(&streams)?);
//! # Ok(())
//! # }
//! ```

mod compile;
mod graph;

pub use compile::{
    compile, compile_unchecked, CompileError, CompiledGraph, InputFeed, OutputTap, Placement,
    RunError,
};
pub use graph::{Graph, GraphError, Node, NodeId};
