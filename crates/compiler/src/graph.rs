//! The dataflow-graph IR: streaming operator graphs over 16-bit samples.
//!
//! A [`Graph`] is a DAG of binary Dnode operations over input streams and
//! constants. One *sample slot* flows through the whole graph per cycle
//! once compiled; the graph is pure feedforward (state-free), matching the
//! spatially-mapped datapaths of the paper's global mode.

use std::fmt;

use systolic_ring_isa::dnode::AluOp;
use systolic_ring_isa::Word16;

/// Handle to a graph node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One graph node.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Node {
    /// An input stream (one sample per slot).
    Input {
        /// Dense input index (order of creation).
        index: usize,
    },
    /// A compile-time constant (folded into consumer immediates).
    Const(Word16),
    /// A binary Dnode operation.
    Op {
        /// The operation (accumulator-family ops are rejected at compile
        /// time — the graph is state-free).
        op: AluOp,
        /// Left operand.
        a: NodeId,
        /// Right operand.
        b: NodeId,
    },
    /// The value of `src` from `cycles` sample slots ago. Streams are
    /// zero-extended into the past, so before the stream starts a node's
    /// value is what its operator produces on all-zero inputs (constants
    /// stay constant). Delays cost no Dnodes: they compile to feedback
    /// pipeline taps and stream-prefix adjustments.
    Delay {
        /// Delayed value.
        src: NodeId,
        /// Delay in sample slots.
        cycles: usize,
    },
}

/// A streaming dataflow graph.
///
/// # Examples
///
/// `y = (x0 + x1) * 3`:
///
/// ```
/// use systolic_ring_compiler::Graph;
/// use systolic_ring_isa::dnode::AluOp;
///
/// let mut g = Graph::new();
/// let x0 = g.input();
/// let x1 = g.input();
/// let c = g.constant(3);
/// let sum = g.op(AluOp::Add, x0, x1);
/// let y = g.op(AluOp::Mul, sum, c);
/// g.output(y);
/// assert_eq!(g.interpret(&[&[1, 2], &[10, 20]]).unwrap(), vec![vec![33, 66]]);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Graph {
    nodes: Vec<Node>,
    inputs: usize,
    outputs: Vec<NodeId>,
}

/// Error raised when evaluating or building a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GraphError {
    /// Stream count does not match the graph's inputs.
    InputCountMismatch {
        /// Inputs the graph declares.
        expected: usize,
        /// Streams provided.
        got: usize,
    },
    /// Input streams have different lengths.
    RaggedStreams,
    /// The graph declares no outputs.
    NoOutputs,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::InputCountMismatch { expected, got } => {
                write!(
                    f,
                    "graph has {expected} inputs but {got} streams were given"
                )
            }
            GraphError::RaggedStreams => f.write_str("input streams have different lengths"),
            GraphError::NoOutputs => f.write_str("graph has no outputs"),
        }
    }
}

impl std::error::Error for GraphError {}

impl Graph {
    /// An empty graph.
    pub fn new() -> Self {
        Graph::default()
    }

    /// Adds an input stream; returns its node.
    pub fn input(&mut self) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Input { index: self.inputs });
        self.inputs += 1;
        id
    }

    /// Adds a constant node.
    pub fn constant(&mut self, value: i16) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Const(Word16::from_i16(value)));
        id
    }

    /// Adds a binary operation node.
    ///
    /// # Panics
    ///
    /// Panics if an operand handle does not belong to this graph.
    pub fn op(&mut self, op: AluOp, a: NodeId, b: NodeId) -> NodeId {
        assert!(a.0 < self.nodes.len(), "operand {a} out of range");
        assert!(b.0 < self.nodes.len(), "operand {b} out of range");
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Op { op, a, b });
        id
    }

    /// Adds a delay node: the value of `src` from `cycles` slots ago.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this graph.
    pub fn delay(&mut self, src: NodeId, cycles: usize) -> NodeId {
        assert!(src.0 < self.nodes.len(), "node {src} out of range");
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node::Delay { src, cycles });
        id
    }

    /// Marks `node` as a graph output (in declaration order).
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this graph.
    pub fn output(&mut self, node: NodeId) {
        assert!(node.0 < self.nodes.len(), "node {node} out of range");
        self.outputs.push(node);
    }

    /// Number of input streams.
    pub fn input_count(&self) -> usize {
        self.inputs
    }

    /// Number of declared outputs.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// The declared outputs in order.
    pub fn outputs(&self) -> &[NodeId] {
        &self.outputs
    }

    /// All nodes (indexable by [`NodeId`]).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node behind a handle.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to this graph.
    pub fn node(&self, id: NodeId) -> Node {
        self.nodes[id.0]
    }

    /// Replaces the whole node arena (compiler passes only; the shape must
    /// be preserved).
    pub(crate) fn replace_nodes(&mut self, nodes: Vec<Node>) {
        debug_assert_eq!(nodes.len(), self.nodes.len());
        self.nodes = nodes;
    }

    /// Redirects output `index` to `node` (compiler passes only).
    pub(crate) fn replace_output(&mut self, index: usize, node: NodeId) {
        self.outputs[index] = node;
    }

    /// Evaluates the graph in software, sample slot by sample slot — the
    /// golden model every compiled configuration is checked against.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] for mismatched or ragged streams or a graph
    /// without outputs.
    pub fn interpret(&self, streams: &[&[i16]]) -> Result<Vec<Vec<i16>>, GraphError> {
        if streams.len() != self.inputs {
            return Err(GraphError::InputCountMismatch {
                expected: self.inputs,
                got: streams.len(),
            });
        }
        if self.outputs.is_empty() {
            return Err(GraphError::NoOutputs);
        }
        let len = streams.first().map_or(0, |s| s.len());
        if streams.iter().any(|s| s.len() != len) {
            return Err(GraphError::RaggedStreams);
        }
        let mut outputs = vec![Vec::with_capacity(len); self.outputs.len()];
        // A node's value at any negative slot: its operator applied to
        // all-zero inputs (time-invariant, computed once).
        let mut zero_value = vec![Word16::ZERO; self.nodes.len()];
        for i in 0..self.nodes.len() {
            zero_value[i] = match self.nodes[i] {
                Node::Input { .. } => Word16::ZERO,
                Node::Const(value) => value,
                Node::Op { op, a, b } => op.eval(zero_value[a.0], zero_value[b.0], Word16::ZERO),
                Node::Delay { src, .. } => zero_value[src.0],
            };
        }
        // Full per-node history so delay nodes can look back.
        let mut history: Vec<Vec<Word16>> = vec![Vec::with_capacity(len); self.nodes.len()];
        for slot in 0..len {
            for i in 0..self.nodes.len() {
                let value = match self.nodes[i] {
                    Node::Input { index } => Word16::from_i16(streams[index][slot]),
                    Node::Const(value) => value,
                    Node::Op { op, a, b } => {
                        op.eval(history[a.0][slot], history[b.0][slot], Word16::ZERO)
                    }
                    Node::Delay { src, cycles } => {
                        if slot >= cycles {
                            history[src.0][slot - cycles]
                        } else {
                            zero_value[src.0]
                        }
                    }
                };
                history[i].push(value);
            }
            for (o, &node) in self.outputs.iter().enumerate() {
                outputs[o].push(history[node.0][slot].as_i16());
            }
        }
        Ok(outputs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interpret_evaluates_in_topological_order() {
        let mut g = Graph::new();
        let x = g.input();
        let five = g.constant(5);
        let one = g.constant(1);
        let shifted = g.op(AluOp::Shl, x, one);
        let sum = g.op(AluOp::Add, shifted, five);
        g.output(sum);
        g.output(shifted);
        let out = g.interpret(&[&[1, 2, 3]]).unwrap();
        assert_eq!(out[0], vec![7, 9, 11]);
        assert_eq!(out[1], vec![2, 4, 6]);
    }

    #[test]
    fn delays_look_back_with_zero_fill() {
        let mut g = Graph::new();
        let x = g.input();
        let d1 = g.delay(x, 1);
        let d3 = g.delay(x, 3);
        let sum = g.op(AluOp::Add, d1, d3);
        g.output(sum);
        let out = g.interpret(&[&[10, 20, 30, 40, 50]]).unwrap();
        // d1: 0,10,20,30,40; d3: 0,0,0,10,20.
        assert_eq!(out[0], vec![0, 10, 20, 40, 60]);
    }

    #[test]
    fn interpret_validates_streams() {
        let mut g = Graph::new();
        let x = g.input();
        let _y = g.input();
        g.output(x);
        assert_eq!(
            g.interpret(&[&[1]]),
            Err(GraphError::InputCountMismatch {
                expected: 2,
                got: 1
            })
        );
        assert_eq!(
            g.interpret(&[&[1], &[1, 2]]),
            Err(GraphError::RaggedStreams)
        );
        let empty = Graph::new();
        assert_eq!(empty.interpret(&[]), Err(GraphError::NoOutputs));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn foreign_handles_are_rejected() {
        let mut g1 = Graph::new();
        let x = g1.input();
        let _ = g1.op(AluOp::Add, x, x);
        let mut g2 = Graph::new();
        g2.output(NodeId(5));
    }
}
