//! Compiler validation: hardware output equals the interpreter for hand
//! graphs and randomized DAGs, resource limits produce clean errors, and
//! the profiling report reflects the mapping.

use systolic_ring_compiler::{compile, CompileError, Graph, NodeId};
use systolic_ring_core::MachineParams;
use systolic_ring_harness::for_random_cases;
use systolic_ring_isa::dnode::AluOp;
use systolic_ring_isa::RingGeometry;

fn check(g: &Graph, streams: &[&[i16]]) {
    let compiled = compile(g, RingGeometry::RING_16, MachineParams::PAPER).expect("compiles");
    let (hw, _) = compiled.run(streams).expect("runs");
    let sw = g.interpret(streams).expect("interprets");
    assert_eq!(hw, sw);
}

#[test]
fn straight_line_expression() {
    // y = ((x0 + x1) * 3 - x0) >> 1
    let mut g = Graph::new();
    let x0 = g.input();
    let x1 = g.input();
    let three = g.constant(3);
    let one = g.constant(1);
    let sum = g.op(AluOp::Add, x0, x1);
    let scaled = g.op(AluOp::Mul, sum, three);
    let diff = g.op(AluOp::Sub, scaled, x0);
    let y = g.op(AluOp::Asr, diff, one);
    g.output(y);
    check(&g, &[&[1, 2, 3, -4, 100], &[10, 20, 30, 40, -100]]);
}

#[test]
fn diamond_with_long_lifetime() {
    // x feeds both a deep chain and the final op directly: the compiler
    // must route the early value through a feedback pipeline.
    let mut g = Graph::new();
    let x = g.input();
    let one = g.constant(1);
    let a = g.op(AluOp::Add, x, one);
    let b = g.op(AluOp::Shl, a, one);
    let c = g.op(AluOp::Sub, b, one);
    let d = g.op(AluOp::Xor, c, a); // a is 2 levels stale here
    g.output(d);
    check(&g, &[&[0, 1, 5, -9, 77, 1000]]);
}

#[test]
fn multiple_outputs_and_fanout() {
    let mut g = Graph::new();
    let x = g.input();
    let y = g.input();
    let min = g.op(AluOp::Min, x, y);
    let max = g.op(AluOp::Max, x, y);
    let spread = g.op(AluOp::Sub, max, min);
    g.output(min);
    g.output(max);
    g.output(spread);
    check(&g, &[&[5, -3, 100], &[7, -8, 50]]);
}

#[test]
fn raw_input_and_constant_outputs_get_pass_throughs() {
    let mut g = Graph::new();
    let x = g.input();
    let k = g.constant(42);
    g.output(x);
    g.output(k);
    let compiled = compile(&g, RingGeometry::RING_16, MachineParams::PAPER).unwrap();
    let (hw, _) = compiled.run(&[&[1, 2, 3]]).unwrap();
    assert_eq!(hw[0], vec![1, 2, 3]);
    assert_eq!(hw[1], vec![42, 42, 42]);
}

#[test]
fn constant_subtrees_fold_away() {
    // (2 + 3) * 4 collapses to the immediate 20: only one Dnode needed.
    let mut g = Graph::new();
    let x = g.input();
    let two = g.constant(2);
    let three = g.constant(3);
    let four = g.constant(4);
    let five = g.op(AluOp::Add, two, three);
    let twenty = g.op(AluOp::Mul, five, four);
    let y = g.op(AluOp::Add, x, twenty);
    g.output(y);
    let compiled = compile(&g, RingGeometry::RING_16, MachineParams::PAPER).unwrap();
    assert_eq!(compiled.dnodes_used(), 1);
    let (hw, _) = compiled.run(&[&[1, -1]]).unwrap();
    assert_eq!(hw[0], vec![21, 19]);
}

#[test]
fn dead_code_is_not_placed() {
    let mut g = Graph::new();
    let x = g.input();
    let one = g.constant(1);
    let used = g.op(AluOp::Add, x, one);
    let _dead = g.op(AluOp::Mul, x, x);
    g.output(used);
    let compiled = compile(&g, RingGeometry::RING_16, MachineParams::PAPER).unwrap();
    assert_eq!(compiled.dnodes_used(), 1);
}

#[test]
fn deep_chains_wrap_around_the_ring() {
    // A chain longer than the layer count exercises ring wrap-around.
    let mut g = Graph::new();
    let x = g.input();
    let one = g.constant(1);
    let mut node = x;
    for _ in 0..11 {
        node = g.op(AluOp::Add, node, one);
    }
    g.output(node);
    let compiled = compile(&g, RingGeometry::RING_16, MachineParams::PAPER).unwrap();
    assert_eq!(compiled.pipeline_depth(), 11);
    let (hw, _) = compiled.run(&[&[0, 100, -11]]).unwrap();
    assert_eq!(hw[0], vec![11, 111, 0]);
}

#[test]
fn resource_errors_are_reported() {
    // Stateful ops are rejected.
    let mut g = Graph::new();
    let x = g.input();
    let acc = g.op(AluOp::Mac, x, x);
    g.output(acc);
    assert!(matches!(
        compile(&g, RingGeometry::RING_16, MachineParams::PAPER),
        Err(CompileError::StatefulOp { .. })
    ));

    // A layer can hold at most `width` operators of the same depth.
    let mut g = Graph::new();
    let x = g.input();
    let mut outs: Vec<NodeId> = Vec::new();
    for i in 0..5 {
        let c = g.constant(i);
        outs.push(g.op(AluOp::Add, x, c));
    }
    // Feed them all into a reduction so they are live.
    let mut acc = outs[0];
    for &o in &outs[1..] {
        acc = g.op(AluOp::Add, acc, o);
    }
    g.output(acc);
    assert!(matches!(
        compile(&g, RingGeometry::RING_16, MachineParams::PAPER),
        Err(CompileError::LayerFull {
            layer: 0,
            capacity: 4,
            ..
        })
    ));

    // Value lifetimes beyond the pipeline depth are rejected.
    let mut g = Graph::new();
    let x = g.input();
    let one = g.constant(1);
    let early = g.op(AluOp::Add, x, one);
    let mut chain = early;
    for _ in 0..6 {
        chain = g.op(AluOp::Add, chain, one);
    }
    let y = g.op(AluOp::Xor, chain, early);
    g.output(y);
    let shallow = MachineParams::PAPER.with_pipe_depth(2);
    assert!(matches!(
        compile(&g, RingGeometry::RING_16, shallow),
        Err(CompileError::PipeTooShallow { .. })
    ));
    // The default depth of 8 accommodates it.
    assert!(compile(&g, RingGeometry::RING_16, MachineParams::PAPER).is_ok());

    // No outputs.
    let g = Graph::new();
    assert!(matches!(
        compile(&g, RingGeometry::RING_16, MachineParams::PAPER),
        Err(CompileError::NoOutputs)
    ));
}

#[test]
fn report_names_the_mapping() {
    let mut g = Graph::new();
    let x = g.input();
    let one = g.constant(1);
    let y = g.op(AluOp::Add, x, one);
    g.output(y);
    let compiled = compile(&g, RingGeometry::RING_16, MachineParams::PAPER).unwrap();
    let report = compiled.report();
    assert!(report.contains("1 operators"));
    assert!(report.contains("layer 0"));
    assert!(report.contains("input 0"));
    assert!(report.contains("output 0"));
}

/// Ops a random feedforward DAG may use (stateless, so the interpreter
/// and the hardware agree sample by sample).
const SAFE_OPS: [AluOp; 14] = [
    AluOp::Add,
    AluOp::AddSat,
    AluOp::Sub,
    AluOp::SubSat,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Min,
    AluOp::Max,
    AluOp::AbsDiff,
    AluOp::Mul,
    AluOp::MulHi,
    AluOp::Slt,
    AluOp::PassA,
];

/// Random feedforward DAGs: every compilable graph must match the
/// interpreter exactly.
#[test]
fn random_dags_match_the_interpreter() {
    for_random_cases!(48, 0xda6, |rng| {
        let const_count = rng.index(2) + 1;
        let consts = rng.vec_i16(const_count, -50..50);
        let a_len = rng.index(11) + 1;
        let stream_a = rng.vec_i16(a_len, -300..300);
        let b_len = rng.index(11) + 1;
        let stream_b = rng.vec_i16(b_len, -300..300);

        let mut g = Graph::new();
        let x0 = g.input();
        let x1 = g.input();
        let mut pool = vec![x0, x1];
        for &c in &consts {
            pool.push(g.constant(c));
        }
        let op_count = rng.index(9) + 1;
        for _ in 0..op_count {
            let op = *rng.choose(&SAFE_OPS);
            let a = pool[rng.index(pool.len())];
            let b = pool[rng.index(pool.len())];
            let node = g.op(op, a, b);
            pool.push(node);
            let delay = rng.index(4);
            if delay > 0 {
                pool.push(g.delay(node, delay));
            }
        }
        let last = *pool.last().unwrap();
        g.output(last);

        let len = stream_a.len().min(stream_b.len());
        let streams: [&[i16]; 2] = [&stream_a[..len], &stream_b[..len]];

        match compile(&g, RingGeometry::RING_16, MachineParams::PAPER) {
            Ok(compiled) => {
                let (hw, _) = compiled.run(&streams).expect("runs");
                let sw = g.interpret(&streams).expect("interprets");
                assert_eq!(hw, sw);
            }
            // Resource exhaustion is a legitimate outcome for random DAGs.
            Err(
                CompileError::LayerFull { .. }
                | CompileError::PipeTooShallow { .. }
                | CompileError::HostPortsExhausted { .. }
                | CompileError::CapturePortsExhausted { .. },
            ) => {}
            Err(other) => panic!("unexpected: {other}"),
        }
    });
}

#[test]
fn delays_compile_to_pipeline_taps() {
    let mut g = Graph::new();
    let x = g.input();
    let d1 = g.delay(x, 1);
    let d3 = g.delay(x, 3);
    let sum = g.op(AluOp::Add, d1, d3);
    g.output(sum);
    check(&g, &[&[10, 20, 30, 40, 50, 60]]);
}

#[test]
fn compiler_builds_a_fir_filter() {
    // y[n] = 3x[n] - 2x[n-1] + 5x[n-2]: the compiler produces the same
    // results as the hand-mapped kernel's golden model.
    let coeffs = [3i16, -2, 5];
    let mut g = Graph::new();
    let x = g.input();
    let c0 = g.constant(coeffs[0]);
    let c1 = g.constant(coeffs[1]);
    let c2 = g.constant(coeffs[2]);
    let x1 = g.delay(x, 1);
    let x2 = g.delay(x, 2);
    let t0 = g.op(AluOp::Mul, x, c0);
    let t1 = g.op(AluOp::Mul, x1, c1);
    let t2 = g.op(AluOp::Mul, x2, c2);
    let s01 = g.op(AluOp::Add, t0, t1);
    let y = g.op(AluOp::Add, s01, t2);
    g.output(y);

    let input: Vec<i16> = (0..40).map(|i| (i * 7 % 23) as i16 - 11).collect();
    let compiled = compile(&g, RingGeometry::RING_16, MachineParams::PAPER).unwrap();
    let (hw, cycles) = compiled.run(&[&input]).unwrap();
    // Bit-exact against the graph interpreter...
    assert_eq!(hw, g.interpret(&[&input]).unwrap());
    // ...and against the independent FIR golden model from the kernel crate
    // (same coefficients, same wrapping arithmetic).
    let golden: Vec<i16> = {
        let mut out = Vec::new();
        for n in 0..input.len() {
            let mut acc: i16 = 0;
            for (k, &c) in coeffs.iter().enumerate() {
                let v = if n >= k { input[n - k] } else { 0 };
                acc = acc.wrapping_add(c.wrapping_mul(v));
            }
            out.push(acc);
        }
        out
    };
    assert_eq!(hw[0], golden);
    // Still one sample per cycle.
    assert!(cycles < input.len() as u64 + 16);
}

#[test]
fn delayed_outputs_and_delayed_deep_values() {
    let mut g = Graph::new();
    let x = g.input();
    let one = g.constant(1);
    let a = g.op(AluOp::Add, x, one);
    let delayed_a = g.delay(a, 2);
    let b = g.op(AluOp::Sub, a, delayed_a); // a[n] - a[n-2]
    g.output(b);
    g.output(delayed_a); // a delay as a direct output
    check(&g, &[&[1, 4, 9, 16, 25, 36, 49]]);
}

#[test]
fn delayed_constants_are_constants() {
    // Constants are time-invariant under the zero-extended-past
    // semantics: delaying one changes nothing.
    let mut g = Graph::new();
    let x = g.input();
    let k = g.constant(7);
    let dk = g.delay(k, 3);
    let y = g.op(AluOp::Add, x, dk);
    g.output(y);
    check(&g, &[&[5, 6, 7]]);
}
