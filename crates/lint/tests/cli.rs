//! End-to-end tests of the `ringlint` binary: the deny-by-default
//! warning gate shared with `srasm --lint`, the `--allow-warnings`
//! escape hatch, and the stable `--json` machine-readable mode.
//!
//! Exit-code contract (identical to `srasm`): `0` pass, `1` findings at
//! or above the gate floor (or unreadable input), `2` usage error.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

use systolic_ring_isa::ctrl::CtrlInstr;
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand};
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::{RingGeometry, Word16};

fn ringlint(args: &[&str], dir: &Path) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ringlint"))
        .args(args)
        .current_dir(dir)
        .output()
        .expect("ringlint runs")
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ringlint-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

fn base() -> Object {
    Object {
        geometry: Some(RingGeometry::RING_8),
        contexts: 1,
        code: vec![
            CtrlInstr::Wait { cycles: 16 }.encode(),
            CtrlInstr::Halt.encode(),
        ],
        data: Vec::new(),
        preload: Vec::new(),
    }
}

/// A clean object: advisory findings only (`RL-T001`, `RL-H003`, ...).
fn write_clean(dir: &Path) -> PathBuf {
    let path = dir.join("clean.obj");
    std::fs::write(&path, base().to_bytes()).expect("write");
    path
}

/// An object with exactly one `warning`-severity finding (`RL-V003`:
/// `20000 + 20000` certainly wraps the 16-bit datapath).
fn write_warning(dir: &Path) -> PathBuf {
    let mut object = base();
    object.preload.push(Preload::DnodeInstr {
        ctx: 0,
        dnode: 0,
        word: MicroInstr::op(AluOp::Add, Operand::Imm, Operand::Imm)
            .with_imm(Word16::from_i16(20000))
            .write_out()
            .encode(),
    });
    let path = dir.join("wrapping.obj");
    std::fs::write(&path, object.to_bytes()).expect("write");
    path
}

#[test]
fn warnings_fail_by_default() {
    let dir = scratch("deny");
    write_warning(&dir);
    let out = ringlint(&["wrapping.obj"], &dir);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("RL-V003"), "{stdout}");
    assert!(stdout.contains("FAIL"), "{stdout}");
}

#[test]
fn allow_warnings_is_the_escape_hatch() {
    let dir = scratch("allow");
    write_warning(&dir);
    let out = ringlint(&["--allow-warnings", "wrapping.obj"], &dir);
    assert_eq!(out.status.code(), Some(0), "warnings allowed through");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The finding still prints; only the gate is demoted.
    assert!(stdout.contains("RL-V003"), "{stdout}");
    assert!(stdout.contains("ok"), "{stdout}");
}

#[test]
fn deny_warnings_is_accepted_as_a_no_op() {
    let dir = scratch("noop");
    write_warning(&dir);
    write_clean(&dir);
    // `--deny-warnings` spells out what is now the default: same exits.
    assert_eq!(
        ringlint(&["--deny-warnings", "wrapping.obj"], &dir)
            .status
            .code(),
        Some(1)
    );
    assert_eq!(
        ringlint(&["--deny-warnings", "clean.obj"], &dir)
            .status
            .code(),
        Some(0)
    );
}

#[test]
fn clean_objects_pass_and_advisories_never_gate() {
    let dir = scratch("clean");
    write_clean(&dir);
    let out = ringlint(&["clean.obj"], &dir);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The verify pass's positive proofs surface as info findings without
    // tripping the deny-by-default gate.
    assert!(stdout.contains("RL-T001"), "{stdout}");
    assert!(stdout.contains("RL-H003"), "{stdout}");
}

#[test]
fn usage_errors_exit_2() {
    let dir = scratch("usage");
    assert_eq!(ringlint(&[], &dir).status.code(), Some(2));
    assert_eq!(
        ringlint(&["--frobnicate", "x.obj"], &dir).status.code(),
        Some(2)
    );
}

#[test]
fn unreadable_input_fails() {
    let dir = scratch("garbage");
    std::fs::write(dir.join("junk.obj"), b"not an object").expect("write");
    assert_eq!(ringlint(&["junk.obj"], &dir).status.code(), Some(1));
    assert_eq!(ringlint(&["missing.obj"], &dir).status.code(), Some(1));
}

#[test]
fn json_mode_is_machine_readable_and_stable() {
    let dir = scratch("json");
    write_clean(&dir);
    write_warning(&dir);
    let out = ringlint(&["--json", "clean.obj", "wrapping.obj"], &dir);
    assert_eq!(out.status.code(), Some(1), "the gate still applies");
    let stdout = String::from_utf8_lossy(&out.stdout).into_owned();
    assert!(
        stdout.starts_with(r#"{"version":1,"objects":["#),
        "{stdout}"
    );
    assert!(
        stdout.contains(r#""path":"clean.obj","verdict":"ok""#),
        "{stdout}"
    );
    assert!(
        stdout.contains(r#""path":"wrapping.obj","verdict":"fail""#),
        "{stdout}"
    );
    assert!(stdout.contains(r#""code":"RL-V003""#), "{stdout}");
    assert!(stdout.contains(r#""halts":true"#), "{stdout}");
    // No human-format lines leak into the document.
    assert_eq!(stdout.lines().count(), 1, "{stdout}");
    // Stability: a second run renders byte-identically.
    let again = ringlint(&["--json", "clean.obj", "wrapping.obj"], &dir);
    assert_eq!(stdout, String::from_utf8_lossy(&again.stdout));
}

#[test]
fn json_mode_reports_unreadable_files_in_band() {
    let dir = scratch("jsonerr");
    std::fs::write(dir.join("junk.obj"), b"garbage").expect("write");
    let out = ringlint(&["--json", "junk.obj"], &dir);
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(r#""path":"junk.obj","verdict":"fail","error":""#),
        "{stdout}"
    );
    assert!(out.stderr.is_empty(), "errors stay in the JSON document");
}

#[test]
fn json_respects_allow_warnings() {
    let dir = scratch("jsonallow");
    write_warning(&dir);
    let out = ringlint(&["--json", "--allow-warnings", "wrapping.obj"], &dir);
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(r#""path":"wrapping.obj","verdict":"ok""#),
        "{stdout}"
    );
}
