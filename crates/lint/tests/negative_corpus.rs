//! Negative corpus: one deliberately broken object per diagnostic code.
//!
//! Every test hand-builds an [`Object`] that trips exactly one lint rule
//! and asserts the report carries that rule's stable code at the expected
//! severity. Together the corpus pins down the complete `RL-*` catalog:
//! structural (`RL-S001..S008`), dataflow (`RL-D001..D005`), sequencer
//! (`RL-Q001..Q008`), fusibility (`RL-F001..F002`) and the verify passes
//! (`RL-T001..T003` schedule bounds, `RL-H001..H003` reconfiguration
//! hazards, `RL-V001..V003` value ranges).

use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::dnode::{AluOp, MicroInstr, Operand, Reg};
use systolic_ring_isa::expect::{Expectations, InputVector};
use systolic_ring_isa::object::{Object, Preload};
use systolic_ring_isa::proof::OutRange;
use systolic_ring_isa::switch::{HostCapture, PortSource};
use systolic_ring_isa::{RingGeometry, Word16};
use systolic_ring_lint::{
    lint_object, lint_object_expecting, lint_object_with, Fusibility, LintLimits, Severity,
};

/// A well-formed skeleton: paper-sized ring, one context, `wait; halt`.
fn base() -> Object {
    Object {
        geometry: Some(RingGeometry::RING_8),
        contexts: 1,
        code: vec![
            CtrlInstr::Wait { cycles: 16 }.encode(),
            CtrlInstr::Halt.encode(),
        ],
        data: Vec::new(),
        preload: Vec::new(),
    }
}

fn route(ctx: u16, switch: u16, lane: u16, input: u8, source: PortSource) -> Preload {
    Preload::SwitchPort {
        ctx,
        switch,
        lane,
        input,
        word: source.encode(),
    }
}

fn node(ctx: u16, dnode: u16, instr: MicroInstr) -> Preload {
    Preload::DnodeInstr {
        ctx,
        dnode,
        word: instr.encode(),
    }
}

fn reg(index: u8) -> CReg {
    CReg::new(index).unwrap()
}

/// Asserts the object's report contains `code` at `severity`, and returns
/// how many findings carry that code.
fn expect(object: &Object, code: &str, severity: Severity) -> usize {
    let report = lint_object(object);
    let hits: Vec<_> = report
        .diagnostics
        .iter()
        .filter(|d| d.code == code)
        .collect();
    assert!(
        !hits.is_empty(),
        "expected {code}, got: {:?}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
    );
    for d in &hits {
        assert_eq!(d.severity, severity, "{code} severity: {d}");
    }
    hits.len()
}

// ---------------------------------------------------------------- structural

#[test]
fn s001_overdeclared_contexts() {
    let mut object = base();
    object.contexts = 9; // default limits provide 8
    expect(&object, "RL-S001", Severity::Error);
}

#[test]
fn s001_record_context_out_of_range() {
    let mut object = base();
    object.contexts = 2;
    object.preload.push(node(3, 0, MicroInstr::NOP));
    expect(&object, "RL-S001", Severity::Error);
}

#[test]
fn s002_dnode_out_of_range() {
    let mut object = base();
    object.preload.push(node(0, 99, MicroInstr::NOP)); // RING_8 has 8 dnodes
    expect(&object, "RL-S002", Severity::Error);
}

#[test]
fn s003_switch_out_of_range() {
    let mut object = base();
    object.preload.push(route(0, 9, 0, 0, PortSource::Zero)); // RING_8 has 4 switches
    expect(&object, "RL-S003", Severity::Error);
}

#[test]
fn s003_pipe_source_switch_out_of_range() {
    let mut object = base();
    object.preload.push(route(
        0,
        1,
        0,
        0,
        PortSource::Pipe {
            switch: 9,
            stage: 0,
            lane: 0,
        },
    ));
    expect(&object, "RL-S003", Severity::Error);
}

#[test]
fn s004_lane_port_and_selector_out_of_range() {
    let mut object = base();
    object.preload.push(route(0, 0, 5, 0, PortSource::Zero)); // lane ≥ width 2
    object.preload.push(route(0, 0, 0, 4, PortSource::Zero)); // input selector ≥ 4
    object
        .preload
        .push(route(0, 0, 0, 0, PortSource::HostIn { port: 7 })); // ≥ 2*width
    object.preload.push(Preload::HostCapture {
        ctx: 0,
        switch: 0,
        port: 0,
        word: HostCapture::lane(5).encode(), // captured lane ≥ width
    });
    assert_eq!(expect(&object, "RL-S004", Severity::Error), 4);
}

#[test]
fn s005_malformed_microinstruction_word() {
    let mut object = base();
    object.preload.push(Preload::DnodeInstr {
        ctx: 0,
        dnode: 0,
        word: u64::MAX, // reserved bits set
    });
    expect(&object, "RL-S005", Severity::Error);
}

#[test]
fn s006_conflicting_rewrite() {
    let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2).write_reg(Reg::R0);
    let mut object = base();
    object
        .preload
        .push(route(0, 0, 0, 0, PortSource::HostIn { port: 0 }));
    object
        .preload
        .push(route(0, 0, 0, 1, PortSource::HostIn { port: 1 }));
    object.preload.push(node(0, 0, MicroInstr::NOP));
    object.preload.push(node(0, 0, mac)); // different word, same key
    expect(&object, "RL-S006", Severity::Warning);
}

#[test]
fn s007_sections_exceed_capacity() {
    let object = Object {
        code: vec![
            CtrlInstr::Nop.encode(),
            CtrlInstr::Nop.encode(),
            CtrlInstr::Halt.encode(),
        ],
        data: vec![0; 5],
        ..base()
    };
    let limits = LintLimits {
        prog_capacity: 2,
        dmem_capacity: 4,
        ..LintLimits::default()
    };
    let report = lint_object_with(&object, &limits);
    let hits = report
        .diagnostics
        .iter()
        .filter(|d| d.code == "RL-S007")
        .count();
    assert_eq!(hits, 2, "one finding per oversized section");
    assert!(!report.is_clean());
}

#[test]
fn s008_no_geometry_with_preload() {
    let mut object = base();
    object.geometry = None;
    object.preload.push(Preload::Mode {
        dnode: 0,
        local: false,
    });
    expect(&object, "RL-S008", Severity::Warning);
}

// ------------------------------------------------------------------ dataflow

#[test]
fn d001_pipe_tap_too_deep() {
    let mut object = base();
    object.preload.push(route(
        0,
        1,
        0,
        0,
        PortSource::Pipe {
            switch: 1,
            stage: 8, // PAPER pipe_depth is 8; legal stages are 0..=7
            lane: 0,
        },
    ));
    expect(&object, "RL-D001", Severity::Error);
}

#[test]
fn d002_capture_of_undriven_lane() {
    let mut object = base();
    // Capture selects lane 0 of switch 1; the producer (dnode 0) carries
    // no microinstruction, so it never drives its layer output.
    object.preload.push(Preload::HostCapture {
        ctx: 0,
        switch: 1,
        port: 0,
        word: HostCapture::lane(0).encode(),
    });
    expect(&object, "RL-D002", Severity::Warning);
}

#[test]
fn d002_port_read_of_undriven_producer() {
    let silent =
        MicroInstr::op(AluOp::Mac, Operand::Reg(Reg::R0), Operand::Reg(Reg::R0)).write_reg(Reg::R0); // accumulates, never drives out
    let sum = MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_out();
    let mut object = base();
    object.preload.push(node(0, 0, silent));
    object
        .preload
        .push(route(0, 1, 0, 0, PortSource::PrevOut { lane: 0 }));
    object.preload.push(node(0, 2, sum)); // reads dnode 0's never-driven output
    expect(&object, "RL-D002", Severity::Warning);
}

#[test]
fn d003_read_of_never_written_register() {
    let read = MicroInstr::op(AluOp::Add, Operand::Reg(Reg::R1), Operand::Zero).write_out();
    let mut object = base();
    object.preload.push(node(0, 0, read));
    expect(&object, "RL-D003", Severity::Warning);
}

#[test]
fn d004_multiple_bus_drivers() {
    let drive = MicroInstr::op(AluOp::PassA, Operand::Zero, Operand::Zero).write_bus();
    let mut object = base();
    object.preload.push(node(0, 0, drive));
    object.preload.push(node(0, 1, drive));
    expect(&object, "RL-D004", Severity::Warning);
}

#[test]
fn d005_read_of_unrouted_port() {
    let read = MicroInstr::op(AluOp::PassA, Operand::In1, Operand::Zero).write_out();
    let mut object = base();
    object.preload.push(node(0, 0, read)); // in1 of switch 0 lane 0 never routed
    expect(&object, "RL-D005", Severity::Warning);
}

// ----------------------------------------------------------------- sequencer

#[test]
fn q001_local_slot_out_of_range() {
    let mut object = base();
    object.preload.push(Preload::LocalSlot {
        dnode: 0,
        slot: 8, // a dnode has slots 0..=7
        word: MicroInstr::NOP.encode(),
    });
    expect(&object, "RL-Q001", Severity::Error);
}

#[test]
fn q002_sequencer_limit_out_of_range() {
    let mut object = base();
    object
        .preload
        .push(Preload::LocalLimit { dnode: 0, limit: 0 });
    object
        .preload
        .push(Preload::LocalLimit { dnode: 1, limit: 9 });
    assert_eq!(expect(&object, "RL-Q002", Severity::Error), 2);
}

#[test]
fn q003_local_mode_without_program() {
    let mut object = base();
    object.preload.push(Preload::Mode {
        dnode: 0,
        local: true,
    });
    expect(&object, "RL-Q003", Severity::Warning);
}

#[test]
fn q003_limit_replays_unwritten_slots() {
    let mut object = base();
    object.preload.push(Preload::Mode {
        dnode: 0,
        local: true,
    });
    object.preload.push(Preload::LocalSlot {
        dnode: 0,
        slot: 0,
        word: MicroInstr::NOP.encode(),
    });
    object
        .preload
        .push(Preload::LocalLimit { dnode: 0, limit: 3 });
    expect(&object, "RL-Q003", Severity::Warning);
}

#[test]
fn q004_unreachable_context() {
    let mut object = base();
    object.contexts = 2;
    // Context 1 carries configuration, but no reachable `ctx 1` selects it.
    object.preload.push(node(
        1,
        0,
        MicroInstr::op(AluOp::PassA, Operand::Zero, Operand::Zero).write_out(),
    ));
    expect(&object, "RL-Q004", Severity::Warning);
}

#[test]
fn q005_dead_code() {
    let mut object = base();
    object.code = vec![CtrlInstr::Halt.encode(), CtrlInstr::Nop.encode()];
    expect(&object, "RL-Q005", Severity::Warning);
}

#[test]
fn q006_reachable_undecodable_word() {
    let mut object = base();
    object.code = vec![0xffff_ffff];
    expect(&object, "RL-Q006", Severity::Error);
}

#[test]
fn q007_jump_leaves_program() {
    let mut object = base();
    object.code = vec![CtrlInstr::J { target: 9 }.encode()];
    expect(&object, "RL-Q007", Severity::Error);
}

#[test]
fn q007_jump_register_without_link() {
    let mut object = base();
    object.code = vec![
        CtrlInstr::Jr { ra: reg(1) }.encode(),
        CtrlInstr::Halt.encode(),
    ];
    expect(&object, "RL-Q007", Severity::Warning);
}

#[test]
fn q008_statically_faulting_operands() {
    let mut object = base();
    object.code = vec![
        CtrlInstr::Wdn {
            rs: reg(1),
            dnode: 99,
        }
        .encode(), // dnode ≥ 8
        CtrlInstr::Wlim {
            rs: CReg::ZERO,
            dnode: 0,
        }
        .encode(), // limit from r0
        CtrlInstr::Ctx { ctx: 9 }.encode(), // object has 1 context
        CtrlInstr::Sw {
            rs: reg(1),
            ra: CReg::ZERO,
            imm: -1,
        }
        .encode(), // dmem wrap
        CtrlInstr::Halt.encode(),
    ];
    assert_eq!(expect(&object, "RL-Q008", Severity::Error), 4);
}

// ---------------------------------------------------------------- fusibility

#[test]
fn f001_data_dependent_branch_defeats_the_proof() {
    let mut object = base();
    object.code = vec![
        CtrlInstr::Busr { rd: reg(1) }.encode(),
        CtrlInstr::Beq {
            ra: reg(1),
            rb: CReg::ZERO,
            offset: 0,
        }
        .encode(),
        CtrlInstr::Halt.encode(),
    ];
    expect(&object, "RL-F001", Severity::Info);
    let report = lint_object(&object);
    assert!(matches!(report.fusibility, Fusibility::Unknown { .. }));
    // Info findings never fail a gate, even under --deny-warnings.
    assert!(report.is_clean());
    assert!(lint_object(&object).into_result(true).is_ok());
}

#[test]
fn f002_pop_from_port_no_capture_feeds() {
    let mut object = base();
    object.code = vec![
        CtrlInstr::Hpop {
            rd: reg(1),
            switch: 0, // switch 0, port 0 — in range, but nothing feeds it
        }
        .encode(),
        CtrlInstr::Halt.encode(),
    ];
    expect(&object, "RL-F002", Severity::Warning);
}

// ------------------------------------------------------- verify: schedule (T)

#[test]
fn t001_static_schedule_bound_proven() {
    // `wait 16; halt`: one straight-line path, 17 controller cycles, no
    // configuration events — the proof pins all three manifest facts.
    let object = base();
    expect(&object, "RL-T001", Severity::Info);
    let report = lint_object(&object);
    assert!(report.proof.halts);
    assert_eq!(report.proof.cycle_bound, Some(17));
    assert_eq!(report.proof.config_stable_from, Some(0));
}

#[test]
fn t002_data_dependent_loop_defeats_the_bound() {
    // A loop whose exit condition is a bus read forks the walk on every
    // iteration; the fork budget abandons it and nothing is claimed.
    let mut object = base();
    object.code = vec![
        CtrlInstr::Busr { rd: reg(1) }.encode(),
        CtrlInstr::Beq {
            ra: reg(1),
            rb: CReg::ZERO,
            offset: -2,
        }
        .encode(),
        CtrlInstr::Halt.encode(),
    ];
    expect(&object, "RL-T002", Severity::Info);
    let report = lint_object(&object);
    assert!(!report.proof.halts);
    assert_eq!(report.proof.cycle_bound, None);
    // An abandoned walk claims nothing — hazard freedom included.
    assert!(!report.proof.hazard_free);
}

#[test]
fn t003_concrete_infinite_loop_proves_divergence() {
    let mut object = base();
    object.code = vec![CtrlInstr::J { target: 0 }.encode()];
    expect(&object, "RL-T003", Severity::Info);
    let report = lint_object(&object);
    assert!(!report.proof.halts);
    // Divergence is advisory (streaming programs are intentional).
    assert!(report.is_clean());
}

// -------------------------------------------------------- verify: hazards (H)

/// A fabric with dnode 0 visibly executing in context 0.
fn busy_fabric() -> Vec<Preload> {
    let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2).write_reg(Reg::R0);
    vec![
        route(0, 0, 0, 0, PortSource::HostIn { port: 0 }),
        route(0, 0, 0, 1, PortSource::HostIn { port: 1 }),
        node(0, 0, mac),
    ]
}

#[test]
fn h001_active_context_rewrite_of_busy_dnode() {
    let mut object = base();
    object.preload = busy_fabric();
    object.code = vec![
        // `wctx` still selects context 0: the write races the running mac.
        CtrlInstr::Wdn {
            rs: CReg::ZERO,
            dnode: 0,
        }
        .encode(),
        CtrlInstr::Wait { cycles: 16 }.encode(),
        CtrlInstr::Halt.encode(),
    ];
    expect(&object, "RL-H001", Severity::Warning);
    let report = lint_object(&object);
    assert!(!report.proof.hazard_free);
    assert!(!report.diagnostics.iter().any(|d| d.code == "RL-H003"));
}

#[test]
fn h002_active_context_reroute_of_busy_consumer() {
    let mut object = base();
    object.preload = busy_fabric();
    object.code = vec![
        // Flat port 0 = switch 0, lane 0, in1 — the route feeding the
        // running mac on dnode 0.
        CtrlInstr::Wsw {
            rs: CReg::ZERO,
            port: 0,
        }
        .encode(),
        CtrlInstr::Wait { cycles: 16 }.encode(),
        CtrlInstr::Halt.encode(),
    ];
    expect(&object, "RL-H002", Severity::Warning);
    assert!(!lint_object(&object).proof.hazard_free);
}

#[test]
fn h003_shadow_context_reconfiguration_is_hazard_free() {
    // The paper's pattern: same busy dnode, same rewrite — but targeted
    // at shadow context 1, so no in-flight data can race it.
    let mut object = base();
    object.contexts = 2;
    object.preload = busy_fabric();
    object.code = vec![
        CtrlInstr::Wctx { ctx: 1 }.encode(),
        CtrlInstr::Wdn {
            rs: CReg::ZERO,
            dnode: 0,
        }
        .encode(),
        CtrlInstr::Wait { cycles: 16 }.encode(),
        CtrlInstr::Halt.encode(),
    ];
    expect(&object, "RL-H003", Severity::Info);
    let report = lint_object(&object);
    assert!(report.proof.hazard_free);
    assert!(!report
        .diagnostics
        .iter()
        .any(|d| d.code == "RL-H001" || d.code == "RL-H002"));
}

// --------------------------------------------------- verify: value ranges (V)

#[test]
fn v001_constant_datapath_proven_overflow_free() {
    let add = MicroInstr::op(AluOp::Add, Operand::Imm, Operand::One)
        .with_imm(Word16::from_i16(1000))
        .write_out();
    let mut object = base();
    object.preload = vec![node(0, 0, add)];
    expect(&object, "RL-V001", Severity::Info);
    let report = lint_object(&object);
    // The proven hull lands in the manifest: reset zero joined with 1001.
    assert_eq!(
        report.proof.out_ranges,
        vec![OutRange {
            dnode: 0,
            lo: 0,
            hi: 1001
        }]
    );
}

/// The known-overflowing `alpha_blend` variant: layer 0 of the Q8 blend
/// kernel (`mul in1, #ALPHA`) with the shipped pixel range. At the hot
/// coefficient 192 the pre-wrap product reaches `255 * 192 = 48960`, off
/// the 16-bit datapath — the kernel only works because the later logical
/// shift reinterprets the wrapped sum as unsigned, and the verifier
/// cannot bless that.
#[test]
fn v002_alpha_blend_hot_coefficient_may_wrap() {
    let blend_layer0 = |alpha: i16| {
        let mut object = base();
        object.preload = vec![
            route(0, 0, 0, 0, PortSource::HostIn { port: 0 }),
            route(0, 0, 1, 0, PortSource::HostIn { port: 1 }),
            node(
                0,
                0,
                MicroInstr::op(AluOp::Mul, Operand::In1, Operand::Imm)
                    .with_imm(Word16::from_i16(alpha))
                    .write_out(),
            ),
            node(
                0,
                1,
                MicroInstr::op(AluOp::Mul, Operand::In1, Operand::Imm)
                    .with_imm(Word16::from_i16(256 - alpha))
                    .write_out(),
            ),
        ];
        object
    };
    let pixels = Expectations {
        inputs: vec![
            InputVector {
                switch: 0,
                port: 0,
                words: vec![255],
            },
            InputVector {
                switch: 0,
                port: 1,
                words: vec![255],
            },
        ],
        ..Expectations::default()
    };
    let limits = LintLimits::default();

    // ALPHA = 192: `255 * 192` straddles the wrap threshold — flagged,
    // exactly once (the BETA lane's `255 * 64` is provably safe).
    let hot = lint_object_expecting(&blend_layer0(192), &limits, Some(&pixels));
    let flagged: Vec<_> = hot
        .diagnostics
        .iter()
        .filter(|d| d.code == "RL-V002")
        .collect();
    assert_eq!(flagged.len(), 1, "only the ALPHA lane may wrap");
    assert_eq!(flagged[0].severity, Severity::Info);
    assert!(!hot.diagnostics.iter().any(|d| d.code == "RL-V001"));

    // ALPHA = 128 is the one split where both lanes stay under
    // `i16::MAX` (`255 * 128 = 32640`) and the whole datapath is proven.
    let cool = lint_object_expecting(&blend_layer0(128), &limits, Some(&pixels));
    assert!(cool.diagnostics.iter().any(|d| d.code == "RL-V001"));
    assert!(!cool.diagnostics.iter().any(|d| d.code == "RL-V002"));
}

#[test]
fn v003_certain_wrap_is_a_warning() {
    // `imm + imm` with imm = 20000: every evaluation lands at 40000,
    // entirely outside the datapath — the wrap is certain, not possible.
    let add = MicroInstr::op(AluOp::Add, Operand::Imm, Operand::Imm)
        .with_imm(Word16::from_i16(20000))
        .write_out();
    let mut object = base();
    object.preload = vec![node(0, 0, add)];
    expect(&object, "RL-V003", Severity::Warning);
    assert!(lint_object(&object).into_result(true).is_err());
}

// --------------------------------------------------------------- the contract

/// A fully wired object produces a report whose only findings are
/// advisory (`Severity::Info`): the `RL-F003` AOT-compilability verdict
/// plus the verify pass's positive proofs — a schedule bound
/// (`RL-T001`) and hazard freedom (`RL-H003`). Nothing at `Warning` or
/// above may appear.
#[test]
fn clean_object_has_no_findings() {
    let mac = MicroInstr::op(AluOp::Mac, Operand::In1, Operand::In2).write_reg(Reg::R0);
    let mut object = base();
    object.preload = vec![
        route(0, 0, 0, 0, PortSource::HostIn { port: 0 }),
        route(0, 0, 0, 1, PortSource::HostIn { port: 1 }),
        node(0, 0, mac),
    ];
    let report = lint_object(&object);
    let unexpected: Vec<String> = report
        .diagnostics
        .iter()
        .filter(|d| d.severity > Severity::Info)
        .map(|d| d.to_string())
        .collect();
    assert!(unexpected.is_empty(), "unexpected findings: {unexpected:?}");
    assert!(matches!(report.fusibility, Fusibility::Fusible { .. }));
    assert!(
        report.aot_compilable,
        "fully wired object should prove AOT-compilable"
    );
    for advisory in ["RL-F003", "RL-T001", "RL-H003"] {
        assert!(
            report
                .diagnostics
                .iter()
                .any(|d| d.code == advisory && d.severity == Severity::Info),
            "expected the advisory {advisory} finding"
        );
    }
    // The positive proofs also land in the manifest the core consumes.
    assert!(report.proof.halts);
    assert!(report.proof.hazard_free);
}

/// The corpus covers the full 32-code catalog, across all seven
/// families, with every code distinct.
#[test]
fn corpus_spans_the_catalog() {
    let catalog = [
        "RL-S001", "RL-S002", "RL-S003", "RL-S004", "RL-S005", "RL-S006", "RL-S007", "RL-S008",
        "RL-D001", "RL-D002", "RL-D003", "RL-D004", "RL-D005", "RL-Q001", "RL-Q002", "RL-Q003",
        "RL-Q004", "RL-Q005", "RL-Q006", "RL-Q007", "RL-Q008", "RL-F001", "RL-F002", "RL-T001",
        "RL-T002", "RL-T003", "RL-H001", "RL-H002", "RL-H003", "RL-V001", "RL-V002", "RL-V003",
    ];
    // (`RL-F003`, the advisory AOT verdict, is pinned by
    // `clean_object_has_no_findings` rather than a negative test.)
    let unique: std::collections::BTreeSet<_> = catalog.iter().collect();
    assert_eq!(unique.len(), catalog.len());
    assert_eq!(catalog.len(), 32, "the catalog is pinned at 32 codes");
    for family in ["RL-S", "RL-D", "RL-Q", "RL-F", "RL-T", "RL-H", "RL-V"] {
        assert!(catalog.iter().any(|c| c.starts_with(family)));
    }
}
