//! `ringlint` — lint Systolic Ring object files from the command line.
//!
//! ```sh
//! ringlint [--allow-warnings] [--json] <program.obj>...
//! ```
//!
//! Prints every diagnostic (with its stable `RL-xxxx` code) and the
//! fusibility verdict for each object. Warnings are **denied by
//! default** — the exit code is nonzero if any object fails to parse or
//! carries findings at `warning` severity or above — matching `srasm
//! --lint`, so the two tools agree on what "passes". `--allow-warnings`
//! is the single escape hatch, demoting the gate to errors only.
//! (`--deny-warnings` is accepted as a no-op for older scripts.)
//!
//! With `--json`, human output is replaced by one machine-readable JSON
//! document on stdout: `{"version":1,"objects":[{"path":...,
//! "verdict":"ok"|"fail","report":{...}}]}` with the per-object report
//! shape pinned by `LintReport::to_json`. Unreadable files appear as
//! `{"path":...,"verdict":"fail","error":...}` entries.

use std::process::ExitCode;

use systolic_ring_isa::object::Object;
use systolic_ring_lint::{lint_object, Severity};

fn usage() -> ExitCode {
    eprintln!("usage: ringlint [--allow-warnings] [--json] <program.obj>...");
    ExitCode::from(2)
}

/// Escapes a path for embedding in the JSON envelope.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() -> ExitCode {
    let mut allow_warnings = false;
    let mut json = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--allow-warnings" => allow_warnings = true,
            // Historical spelling of what is now the default.
            "--deny-warnings" => {}
            "--json" => json = true,
            "-h" | "--help" => return usage(),
            _ if arg.starts_with('-') => return usage(),
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        return usage();
    }

    let floor = if allow_warnings {
        Severity::Error
    } else {
        Severity::Warning
    };
    let mut failed = false;
    let mut entries: Vec<String> = Vec::new();
    for path in &paths {
        let object = match std::fs::read(path)
            .map_err(|e| e.to_string())
            .and_then(|b| Object::from_bytes(&b).map_err(|e| e.to_string()))
        {
            Ok(object) => object,
            Err(e) => {
                failed = true;
                if json {
                    entries.push(format!(
                        r#"{{"path":"{}","verdict":"fail","error":"{}"}}"#,
                        escape(path),
                        escape(&e)
                    ));
                } else {
                    eprintln!("ringlint: {path}: {e}");
                }
                continue;
            }
        };
        let report = lint_object(&object);
        let fail = report.diagnostics.iter().any(|d| d.severity >= floor);
        failed |= fail;
        if json {
            entries.push(format!(
                r#"{{"path":"{}","verdict":"{}","report":{}}}"#,
                escape(path),
                if fail { "fail" } else { "ok" },
                report.to_json()
            ));
            continue;
        }
        for diag in &report.diagnostics {
            println!("{path}: {diag}");
            println!("{path}:   help: {}", diag.help);
        }
        println!(
            "ringlint: {path}: {} ({} finding(s); steady state: {}; aot: {})",
            if fail { "FAIL" } else { "ok" },
            report.diagnostics.len(),
            report.fusibility,
            if report.aot_compilable {
                "compilable at load"
            } else {
                "unproven"
            }
        );
    }
    if json {
        println!(r#"{{"version":1,"objects":[{}]}}"#, entries.join(","));
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
