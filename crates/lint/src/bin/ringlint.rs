//! `ringlint` — lint Systolic Ring object files from the command line.
//!
//! ```sh
//! ringlint [--deny-warnings] <program.obj>...
//! ```
//!
//! Prints every diagnostic (with its stable `RL-xxxx` code) and the
//! fusibility verdict for each object. Exits nonzero if any object fails
//! to parse, carries errors, or — under `--deny-warnings` — carries
//! warnings.

use std::process::ExitCode;

use systolic_ring_isa::object::Object;
use systolic_ring_lint::{lint_object, Severity};

fn usage() -> ExitCode {
    eprintln!("usage: ringlint [--deny-warnings] <program.obj>...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let mut deny_warnings = false;
    let mut paths = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-warnings" => deny_warnings = true,
            "-h" | "--help" => return usage(),
            _ if arg.starts_with('-') => return usage(),
            _ => paths.push(arg),
        }
    }
    if paths.is_empty() {
        return usage();
    }

    let floor = if deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    let mut failed = false;
    for path in &paths {
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => {
                eprintln!("ringlint: cannot read {path}: {e}");
                failed = true;
                continue;
            }
        };
        let object = match Object::from_bytes(&bytes) {
            Ok(object) => object,
            Err(e) => {
                eprintln!("ringlint: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let report = lint_object(&object);
        for diag in &report.diagnostics {
            println!("{path}: {diag}");
            println!("{path}:   help: {}", diag.help);
        }
        let verdict = if report.diagnostics.iter().any(|d| d.severity >= floor) {
            failed = true;
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "ringlint: {path}: {verdict} ({} finding(s); steady state: {}; aot: {})",
            report.diagnostics.len(),
            report.fusibility,
            if report.aot_compilable {
                "compilable at load"
            } else {
                "unproven"
            }
        );
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
