//! Dataflow pass (`RL-Dxxx`): feedback-pipeline depth, producer/consumer
//! consistency across the crossbar, register liveness and bus contention.
//!
//! All checks are conservative: a finding means "this read can observe a
//! value nothing ever produced", never "this program is wrong" — which is
//! why most of the family reports [`Severity::Warning`].

use std::collections::BTreeSet;

use systolic_ring_isa::dnode::{MicroInstr, Operand, Reg};
use systolic_ring_isa::switch::PortSource;
use systolic_ring_isa::RingGeometry;

use crate::diag::{Diagnostic, Severity, Site};
use crate::model::{emit, ConfigModel};
use crate::LintLimits;

/// Maps a port-reading operand to its crossbar input index.
fn input_index(op: Operand) -> Option<usize> {
    match op {
        Operand::In1 => Some(0),
        Operand::In2 => Some(1),
        Operand::Fifo1 => Some(2),
        Operand::Fifo2 => Some(3),
        _ => None,
    }
}

/// Registers an instruction reads (including the implicit accumulator of
/// the multiply-accumulate family).
fn reads(instr: &MicroInstr) -> impl Iterator<Item = Reg> + '_ {
    let acc = if instr.alu.uses_accumulator() {
        instr.wr_reg
    } else {
        None
    };
    [instr.src_a, instr.src_b]
        .into_iter()
        .filter_map(|op| match op {
            Operand::Reg(r) => Some(r),
            _ => None,
        })
        .chain(acc)
}

/// Whether `dnode` drives its layer output in `ctx` (local-mode Dnodes
/// replay their sequencer regardless of the active context).
fn drives_out(model: &ConfigModel, ctx: usize, dnode: usize) -> bool {
    if model.modes.get(&dnode).copied().unwrap_or(false) {
        model
            .local_slots
            .iter()
            .any(|(&(d, _), instr)| d == dnode && instr.wr_out)
    } else {
        model
            .dnode_instrs
            .get(&(ctx, dnode))
            .is_some_and(|instr| instr.wr_out)
    }
}

/// The Dnode whose layer output `source` observes, if any.
fn producer_of(g: RingGeometry, consumer_switch: usize, source: PortSource) -> Option<usize> {
    match source {
        PortSource::PrevOut { lane } => {
            Some(g.dnode_index(g.upstream_layer(consumer_switch), lane as usize))
        }
        PortSource::Pipe { switch, lane, .. } => {
            Some(g.dnode_index(g.upstream_layer(switch as usize), lane as usize))
        }
        _ => None,
    }
}

pub(crate) fn check(model: &ConfigModel, limits: &LintLimits, diags: &mut Vec<Diagnostic>) {
    // RL-D001: feedback-pipeline taps deeper than the pipeline.
    if model.geometry.is_some() {
        for (&(ctx, switch, lane, input), &source) in &model.routes {
            if let PortSource::Pipe { stage, .. } = source {
                if stage as usize >= limits.pipe_depth {
                    emit(
                        diags,
                        "RL-D001",
                        Severity::Error,
                        Site::Switch {
                            ctx: Some(ctx),
                            switch,
                        },
                        format!(
                            "lane {lane} input {input} taps pipeline stage {stage} but the \
                             feedback pipeline is only {} deep",
                            limits.pipe_depth
                        ),
                        "tap a stage below the machine's pipeline depth",
                    );
                }
            }
        }
    }

    // Per-Dnode register write sets, pooled across contexts and the local
    // sequencer: a read of a register nothing ever writes observes the
    // reset value forever.
    let mut written: std::collections::BTreeMap<usize, BTreeSet<Reg>> =
        std::collections::BTreeMap::new();
    for (&(_, dnode), instr) in &model.dnode_instrs {
        if let Some(r) = instr.wr_reg {
            written.entry(dnode).or_default().insert(r);
        }
    }
    for (&(dnode, _), instr) in &model.local_slots {
        if let Some(r) = instr.wr_reg {
            written.entry(dnode).or_default().insert(r);
        }
    }
    let reg_written =
        |dnode: usize, reg: Reg| written.get(&dnode).is_some_and(|set| set.contains(&reg));

    // RL-D003 / RL-D005 / RL-D002 over per-context instructions.
    for (&(ctx, dnode), instr) in &model.dnode_instrs {
        for reg in reads(instr) {
            if !reg_written(dnode, reg) {
                emit(
                    diags,
                    "RL-D003",
                    Severity::Warning,
                    Site::Dnode {
                        ctx: Some(ctx),
                        dnode,
                    },
                    format!("reads {reg} but no configuration ever writes it on this dnode"),
                    "the register reads as zero; drop the read or add the producing write",
                );
            }
        }
        check_port_reads(model, ctx, dnode, instr, false, diags);
    }

    // Same checks for local-sequencer slots. Port routing for a local
    // Dnode depends on whichever context is active, so a slot read only
    // warns when the port is routed in *no* context.
    for (&(dnode, slot), instr) in &model.local_slots {
        for reg in reads(instr) {
            if !reg_written(dnode, reg) {
                emit(
                    diags,
                    "RL-D003",
                    Severity::Warning,
                    Site::Dnode { ctx: None, dnode },
                    format!(
                        "local slot {slot} reads {reg} but no configuration ever writes it \
                         on this dnode"
                    ),
                    "the register reads as zero; drop the read or add the producing write",
                );
            }
        }
        check_port_reads(model, 0, dnode, instr, true, diags);
    }

    // RL-D002 for host captures: capturing a lane nothing drives streams
    // constant zeros to the host.
    if let Some(g) = model.geometry {
        for (&(ctx, switch, port), capture) in &model.captures {
            if let Some(lane) = capture.selected() {
                let producer = g.dnode_index(g.upstream_layer(switch), lane as usize);
                if !drives_out(model, ctx, producer) {
                    emit(
                        diags,
                        "RL-D002",
                        Severity::Warning,
                        Site::Switch {
                            ctx: Some(ctx),
                            switch,
                        },
                        format!(
                            "capture port {port} selects lane {lane}, but dnode {producer} \
                             never drives its output in this context"
                        ),
                        "add `> out` to the producing microinstruction or disable the capture",
                    );
                }
            }
        }
    }

    // RL-D004: more than one configured bus driver in a context (the
    // controller is the bus master; concurrent Dnode drivers race it and
    // each other).
    let local_bus_drivers: BTreeSet<usize> = model
        .local_slots
        .iter()
        .filter(|((dnode, _), instr)| {
            instr.wr_bus && model.modes.get(dnode).copied().unwrap_or(false)
        })
        .map(|((dnode, _), _)| *dnode)
        .collect();
    for ctx in 0..model.ctx_limit {
        let mut drivers: BTreeSet<usize> = local_bus_drivers.clone();
        for (&(c, dnode), instr) in &model.dnode_instrs {
            if c == ctx && instr.wr_bus && !model.modes.get(&dnode).copied().unwrap_or(false) {
                drivers.insert(dnode);
            }
        }
        if drivers.len() > 1 {
            emit(
                diags,
                "RL-D004",
                Severity::Warning,
                Site::Ctx { ctx },
                format!(
                    "{} dnodes ({:?}) drive the shared bus every cycle in this context",
                    drivers.len(),
                    drivers
                ),
                "keep at most one bus driver per context; later drivers win nondeterministically",
            );
        }
    }
}

/// `RL-D005` (reads an unrouted port) and `RL-D002` (reads a routed port
/// whose producer never drives) for one instruction.
fn check_port_reads(
    model: &ConfigModel,
    ctx: usize,
    dnode: usize,
    instr: &MicroInstr,
    any_ctx: bool,
    diags: &mut Vec<Diagnostic>,
) {
    let Some(g) = model.geometry else { return };
    let (layer, lane) = g.dnode_position(dnode);
    let switch = layer; // switch `s` feeds layer `s`
    for op in [instr.src_a, instr.src_b] {
        let Some(input) = input_index(op) else {
            continue;
        };
        let route = if any_ctx {
            (0..model.ctx_limit)
                .find_map(|c| model.routes.get(&(c, switch, lane, input)).map(|s| (c, *s)))
        } else {
            model
                .routes
                .get(&(ctx, switch, lane, input))
                .map(|s| (ctx, *s))
        };
        let site = Site::Dnode {
            ctx: if any_ctx { None } else { Some(ctx) },
            dnode,
        };
        match route {
            None => emit(
                diags,
                "RL-D005",
                Severity::Warning,
                site,
                format!("reads {op} but that port is never routed (it reads as zero)"),
                "add a `route` for the port or read a constant instead",
            ),
            Some((route_ctx, source)) => {
                if let Some(producer) = producer_of(g, switch, source) {
                    if !drives_out(model, route_ctx, producer) {
                        emit(
                            diags,
                            "RL-D002",
                            Severity::Warning,
                            site,
                            format!(
                                "reads {op} from {source}, but dnode {producer} never drives \
                                 its output{}",
                                if any_ctx { "" } else { " in this context" }
                            ),
                            "add `> out` to the producing microinstruction or reroute the port",
                        );
                    }
                }
            }
        }
    }
}
