//! Diagnostic types: what the linter reports and how it renders.
//!
//! Every finding is a [`Diagnostic`] with a stable grep-able code
//! (`RL-Sxxx` structural, `RL-Dxxx` dataflow, `RL-Qxxx` sequencer,
//! `RL-Fxxx` fusibility), a [`Severity`], a [`Site`] locating the fault in
//! the object, a human message and a fixed help string. A lint run returns
//! a [`LintReport`] bundling the diagnostics with the fusibility verdict.

use std::fmt;

/// How bad a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only; never fails a lint gate.
    Info,
    /// Suspicious but loadable; fails a `--deny-warnings` gate.
    Warning,
    /// Statically certain to be rejected at load time or to raise a
    /// preventable `SimError` at run time.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// Where in the object a diagnostic points.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Site {
    /// The object as a whole.
    Object,
    /// A preload record, by index into `Object::preload`.
    Preload {
        /// Index into the preload stream.
        index: usize,
    },
    /// A Dnode, optionally within one configuration context.
    Dnode {
        /// Configuration context, if the fault is context-specific.
        ctx: Option<usize>,
        /// Flat Dnode index.
        dnode: usize,
    },
    /// A switch, optionally within one configuration context.
    Switch {
        /// Configuration context, if the fault is context-specific.
        ctx: Option<usize>,
        /// Switch index.
        switch: usize,
    },
    /// A configuration context.
    Ctx {
        /// Context index.
        ctx: usize,
    },
    /// A controller-program address.
    Code {
        /// Word address into `Object::code`.
        addr: usize,
    },
}

impl fmt::Display for Site {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Site::Object => f.write_str("object"),
            Site::Preload { index } => write!(f, "preload #{index}"),
            Site::Dnode { ctx: None, dnode } => write!(f, "dnode {dnode}"),
            Site::Dnode {
                ctx: Some(ctx),
                dnode,
            } => write!(f, "ctx {ctx} dnode {dnode}"),
            Site::Switch { ctx: None, switch } => write!(f, "switch {switch}"),
            Site::Switch {
                ctx: Some(ctx),
                switch,
            } => write!(f, "ctx {ctx} switch {switch}"),
            Site::Ctx { ctx } => write!(f, "ctx {ctx}"),
            Site::Code { addr } => write!(f, "code+{addr}"),
        }
    }
}

/// One linter finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable grep-able code, e.g. `RL-S002`.
    pub code: &'static str,
    /// Finding severity.
    pub severity: Severity,
    /// Location in the object.
    pub site: Site,
    /// Human-readable description of this specific instance.
    pub message: String,
    /// Fixed hint on how to resolve findings of this code.
    pub help: &'static str,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}] {}: {}",
            self.severity, self.code, self.site, self.message
        )
    }
}

/// Static steady-state classification of an object program.
///
/// The prediction is deliberately one-sided: `Fusible` is a *guarantee*
/// (the dynamic fused engine must record `fused_entries > 0` once the
/// program is past `settle_cycles`), while `Unknown` claims nothing.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Fusibility {
    /// The controller provably halts; from `settle_cycles` on, the fabric
    /// configuration can never change again, so a sufficiently long run
    /// must enter the fused steady-state engine.
    Fusible {
        /// Cycle by which the controller has provably halted (including
        /// any in-flight context-select commit).
        settle_cycles: u64,
    },
    /// No provable steady-state window; the program may still fuse
    /// dynamically, the linter just cannot promise it.
    Unknown {
        /// Why the trace was abandoned.
        reason: String,
    },
}

impl fmt::Display for Fusibility {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fusibility::Fusible { settle_cycles } => {
                write!(
                    f,
                    "fusible (configuration settles by cycle {settle_cycles})"
                )
            }
            Fusibility::Unknown { reason } => write!(f, "unknown ({reason})"),
        }
    }
}

/// The result of linting one [`Object`](systolic_ring_isa::object::Object).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintReport {
    /// All findings, in pass order (structural, dataflow, sequencer,
    /// fusibility).
    pub diagnostics: Vec<Diagnostic>,
    /// Steady-state classification of the controller program.
    pub fusibility: Fusibility,
    /// One-sided AOT verdict (`RL-F003`): `true` *guarantees* the core's
    /// load-time prefill walk compiles at least one steady window, so a
    /// machine with the `aot` tier enabled holds cached superblocks the
    /// moment the object is loaded and records `aot_entries > 0` on a run
    /// past the settle point. `false` claims nothing — the tier may still
    /// stitch superblocks at run time.
    pub aot_compilable: bool,
    /// Proof manifest from the verify passes (`RL-Vxxx`/`RL-Hxxx`/
    /// `RL-Txxx`), bound to the object's byte hash. Attach it to a
    /// machine (`RingMachine::attach_proof`) to elide runtime phase
    /// guards on statically-proven-stable phases.
    pub proof: systolic_ring_isa::proof::ProofManifest,
}

impl LintReport {
    /// `true` when no [`Severity::Error`] diagnostics were found.
    ///
    /// A clean object is guaranteed to load and to never raise the
    /// statically-preventable `SimError` classes (`PcOutOfRange`,
    /// `BadInstruction`, `BadConfigWrite`).
    pub fn is_clean(&self) -> bool {
        !self
            .diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// `true` when any diagnostic is a warning or worse.
    pub fn has_warnings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity >= Severity::Warning)
    }

    /// All error-severity diagnostics.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
    }

    /// Converts the report into a `Result`, failing on errors — or on
    /// warnings too when `deny_warnings` is set.
    ///
    /// # Errors
    ///
    /// Returns a [`LintError`] carrying the offending diagnostics.
    pub fn into_result(self, deny_warnings: bool) -> Result<LintReport, LintError> {
        let floor = if deny_warnings {
            Severity::Warning
        } else {
            Severity::Error
        };
        if self.diagnostics.iter().any(|d| d.severity >= floor) {
            let diagnostics = self
                .diagnostics
                .into_iter()
                .filter(|d| d.severity >= floor)
                .collect();
            Err(LintError { diagnostics })
        } else {
            Ok(self)
        }
    }
}

/// A lint gate failure: the object carried deny-level diagnostics.
///
/// Grep-able code: `SR-L001`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LintError {
    /// The diagnostics at or above the configured deny level.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintError {
    /// Stable grep-able code for this error class.
    pub const fn code(&self) -> &'static str {
        "SR-L001"
    }
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SR-L001: object failed lint with {} finding(s)",
            self.diagnostics.len()
        )?;
        for d in &self.diagnostics {
            write!(f, "; {d}")?;
        }
        Ok(())
    }
}

impl std::error::Error for LintError {}
