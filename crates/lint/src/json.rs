//! Stable machine-readable rendering of a [`LintReport`].
//!
//! [`LintReport::to_json`] is the contract behind `ringlint --json`: a
//! single compact JSON object with a fixed key order, so CI pipelines can
//! parse findings without scraping the human output. Stability is pinned
//! by tests — byte-identical output for identical reports — and the
//! `object_hash` is rendered as a hex *string* because a 64-bit integer
//! does not survive JSON's double-precision number space.

use std::fmt::Write as _;

use crate::diag::{Fusibility, LintReport, Site};

/// Escapes `s` for embedding in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `Option<u64>` as a JSON number or `null`.
fn opt(n: Option<u64>) -> String {
    n.map_or_else(|| "null".to_owned(), |v| v.to_string())
}

/// The diagnostic site as a compact locator object.
fn site_json(site: Site) -> String {
    match site {
        Site::Object => r#"{"kind":"object"}"#.to_owned(),
        Site::Preload { index } => {
            format!(r#"{{"kind":"preload","index":{index}}}"#)
        }
        Site::Dnode { ctx, dnode } => format!(
            r#"{{"kind":"dnode","ctx":{},"dnode":{dnode}}}"#,
            ctx.map_or_else(|| "null".to_owned(), |c| c.to_string())
        ),
        Site::Switch { ctx, switch } => format!(
            r#"{{"kind":"switch","ctx":{},"switch":{switch}}}"#,
            ctx.map_or_else(|| "null".to_owned(), |c| c.to_string())
        ),
        Site::Ctx { ctx } => format!(r#"{{"kind":"ctx","ctx":{ctx}}}"#),
        Site::Code { addr } => format!(r#"{{"kind":"code","addr":{addr}}}"#),
    }
}

impl LintReport {
    /// Renders the report as one compact JSON object with a stable key
    /// order (`clean`, `fusibility`, `aot_compilable`, `proof`,
    /// `diagnostics`). Identical reports render byte-identically.
    pub fn to_json(&self) -> String {
        let fusibility = match &self.fusibility {
            Fusibility::Fusible { settle_cycles } => {
                format!(r#"{{"kind":"fusible","settle_cycles":{settle_cycles}}}"#)
            }
            Fusibility::Unknown { reason } => {
                format!(r#"{{"kind":"unknown","reason":"{}"}}"#, escape(reason))
            }
        };
        let out_ranges: Vec<String> = self
            .proof
            .out_ranges
            .iter()
            .map(|r| format!(r#"{{"dnode":{},"lo":{},"hi":{}}}"#, r.dnode, r.lo, r.hi))
            .collect();
        let proof = format!(
            r#"{{"object_hash":"{:016x}","halts":{},"cycle_bound":{},"config_stable_from":{},"hazard_free":{},"out_ranges":[{}]}}"#,
            self.proof.object_hash,
            self.proof.halts,
            opt(self.proof.cycle_bound),
            opt(self.proof.config_stable_from),
            self.proof.hazard_free,
            out_ranges.join(",")
        );
        let diagnostics: Vec<String> = self
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    r#"{{"code":"{}","severity":"{}","site":{},"message":"{}","help":"{}"}}"#,
                    d.code,
                    d.severity,
                    site_json(d.site),
                    escape(&d.message),
                    escape(d.help)
                )
            })
            .collect();
        format!(
            r#"{{"clean":{},"fusibility":{fusibility},"aot_compilable":{},"proof":{proof},"diagnostics":[{}]}}"#,
            self.is_clean(),
            self.aot_compilable,
            diagnostics.join(",")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lint_object;
    use systolic_ring_isa::object::Object;

    #[test]
    fn escape_covers_the_control_plane() {
        assert_eq!(escape(r#"a"b\c"#), r#"a\"b\\c"#);
        assert_eq!(escape("x\ny\t\u{1}"), "x\\ny\\t\\u0001");
    }

    #[test]
    fn empty_object_renders_stably() {
        let report = lint_object(&Object::new());
        let json = report.to_json();
        assert_eq!(json, lint_object(&Object::new()).to_json());
        assert!(json.starts_with(r#"{"clean":true,"#), "{json}");
        assert!(json.contains(r#""halts":true"#), "{json}");
        // The hash is a 16-digit hex string, not a JSON number.
        assert!(json.contains(r#""object_hash":""#), "{json}");
    }

    #[test]
    fn diagnostics_carry_code_severity_and_site() {
        let mut object = Object::new();
        object.contexts = 99;
        let json = lint_object(&object).to_json();
        assert!(json.contains(r#""clean":false"#), "{json}");
        assert!(
            json.contains(r#""code":"RL-S001","severity":"error","site":{"kind":"object"}"#),
            "{json}"
        );
    }
}
