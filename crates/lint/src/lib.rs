//! `ringlint` — static hazard verification for Systolic Ring object
//! programs.
//!
//! The simulator can tell you a program is broken by hitting a
//! [`SimError`] a few thousand cycles in; this crate tells you in
//! microseconds, without instantiating a machine. [`lint_object`] runs
//! four pass families over an [`Object`]:
//!
//! 1. **Structural** (`RL-Sxxx`) — malformed or out-of-range preload
//!    records: bad contexts, Dnodes, switches, lanes and ports versus the
//!    declared [`RingGeometry`]; undecodable configuration words;
//!    conflicting crossbar writes; oversized code and data sections.
//! 2. **Dataflow** (`RL-Dxxx`) — feedback-pipeline taps deeper than the
//!    machine's pipeline, reads of registers and ports nothing ever
//!    writes, and multiple same-cycle bus drivers.
//! 3. **Sequencer** (`RL-Qxxx`) — local-mode slot/LIMIT bounds (at most 8
//!    microinstructions per the paper), unreachable configuration
//!    contexts, dead controller code, and reachable controller
//!    instructions that are statically certain to fault.
//! 4. **Fusibility** (`RL-Fxxx`) — a conservative proof that the
//!    configuration settles, cross-checkable against the dynamic fused
//!    engine (see [`Fusibility`]), plus the one-sided `RL-F003` verdict
//!    that the AOT tier's load-time prefill walk provably compiles a
//!    steady window (see [`LintReport::aot_compilable`]).
//! 5. **Verify** (`RL-Vxxx`/`RL-Hxxx`/`RL-Txxx`) — abstract
//!    interpretation over the object: interval value-range analysis of
//!    the Q-format datapath, reconfiguration-hazard detection across
//!    context switches, and a forking symbolic walk proving termination
//!    and a static cycle bound. Proven facts land in a
//!    [`ProofManifest`](systolic_ring_isa::proof::ProofManifest) (see
//!    [`LintReport::proof`]) that the core consumes to elide runtime
//!    phase guards.
//!
//! The severity contract is the point of the tool: an object whose report
//! [`is_clean`](LintReport::is_clean) is *guaranteed* to load and to never
//! raise the statically-preventable `SimError` classes (`PcOutOfRange`,
//! `BadInstruction`, `BadConfigWrite`), and a [`Fusibility::Fusible`]
//! verdict *guarantees* the fused engine engages on a long enough run.
//! Neither claim holds in reverse — the linter stays silent rather than
//! guessing.
//!
//! ```
//! use systolic_ring_isa::object::Object;
//! use systolic_ring_lint::lint_object;
//!
//! let report = lint_object(&Object::new());
//! assert!(report.is_clean());
//! ```
//!
//! [`SimError`]: https://docs.rs/systolic-ring-core
//! [`Object`]: systolic_ring_isa::object::Object
//! [`RingGeometry`]: systolic_ring_isa::RingGeometry

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataflow;
mod diag;
mod fusibility;
mod json;
mod model;
mod sequencer;
mod verify;

pub use diag::{Diagnostic, Fusibility, LintError, LintReport, Severity, Site};

use systolic_ring_isa::expect::Expectations;
use systolic_ring_isa::object::Object;
use systolic_ring_isa::RingGeometry;

/// Machine envelope the linter checks an object against.
///
/// Mirrors the capacity fields of the core's `MachineParams` without
/// depending on the core crate; [`LintLimits::default`] matches the
/// paper-faithful configuration (`MachineParams::PAPER`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LintLimits {
    /// Configuration contexts the target machine provides.
    pub contexts: usize,
    /// Feedback-pipeline depth per switch.
    pub pipe_depth: usize,
    /// Controller program-memory capacity in words.
    pub prog_capacity: usize,
    /// Controller data-memory capacity in words.
    pub dmem_capacity: usize,
    /// Fallback geometry for objects that do not declare one.
    pub geometry: Option<RingGeometry>,
}

impl Default for LintLimits {
    fn default() -> Self {
        LintLimits {
            contexts: 8,
            pipe_depth: 8,
            prog_capacity: 65_536,
            dmem_capacity: 65_536,
            geometry: None,
        }
    }
}

/// Lints `object` against the default (paper-faithful) machine envelope.
pub fn lint_object(object: &Object) -> LintReport {
    lint_object_with(object, &LintLimits::default())
}

/// Lints `object` against an explicit machine envelope.
pub fn lint_object_with(object: &Object, limits: &LintLimits) -> LintReport {
    lint_object_expecting(object, limits, None)
}

/// Lints `object` with optional embedded expectations (`;!` directives).
///
/// Expectations sharpen the verify passes: declared input vectors bound
/// the host-input intervals of the value-range analysis. They are never
/// required — without them host inputs are assumed to span the full
/// 16-bit range.
pub fn lint_object_expecting(
    object: &Object,
    limits: &LintLimits,
    expectations: Option<&Expectations>,
) -> LintReport {
    let mut diagnostics = Vec::new();
    let model = model::ConfigModel::build(object, limits, &mut diagnostics);
    dataflow::check(&model, limits, &mut diagnostics);
    let facts = sequencer::check(object, &model, limits, &mut diagnostics);
    let (fusibility, aot_compilable) =
        fusibility::classify(object, limits, &facts, &model, &mut diagnostics);
    let proof = verify::check(
        object,
        limits,
        &facts,
        &model,
        expectations,
        &mut diagnostics,
    );
    LintReport {
        diagnostics,
        fusibility,
        aot_compilable,
        proof,
    }
}
