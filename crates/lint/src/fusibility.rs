//! Fusibility pass (`RL-Fxxx`): a concrete abstract interpretation of the
//! controller program that tries to *prove* the fabric configuration
//! settles.
//!
//! The claim is deliberately one-sided. If the tracer reaches `halt` with
//! every branch decided by known register values, the controller provably
//! retires its last instruction by a computable cycle; after that nothing
//! can touch the configuration layer, so the dynamic fused engine's
//! stability detector *must* eventually trip and record fused bursts
//! ([`Fusibility::Fusible`]). The moment anything data-dependent leaks
//! into control flow — a host pop, a bus read feeding a branch, an
//! unresolvable indirect jump — the tracer gives up and claims nothing
//! ([`Fusibility::Unknown`]). It never claims a program will *not* fuse.
//!
//! On top of the fusibility verdict the pass makes a second, equally
//! one-sided claim: **AOT compilability** (`RL-F003`). The core's AOT
//! tier walks the controller program at object-load time with *blind*
//! host ports (a `busr` reads an unknowable bus value, a `hpop` stalls on
//! run-time data; either aborts the walk). If the trace halted without
//! executing either instruction, and did so within the prefill walk's
//! retire budget, the load-time walk provably follows the same path and
//! compiles at least one steady window — so a machine with the `aot` tier
//! enabled holds compiled superblocks the moment the object is loaded,
//! and records `aot_entries > 0` once it runs past the settle point.
//! When the condition fails the pass claims nothing: the tier may still
//! stitch superblocks at run time.

use std::collections::HashMap;

use systolic_ring_isa::ctrl::{CReg, CtrlInstr};
use systolic_ring_isa::object::Object;

use crate::diag::{Diagnostic, Fusibility, Severity, Site};
use crate::model::{emit, ConfigModel};
use crate::sequencer::CodeFacts;
use crate::LintLimits;

/// Retired-instruction budget before the tracer gives up on a proof.
const STEP_BUDGET: u64 = 200_000;

/// Retired-instruction budget of the core's AOT prefill walk (mirrors
/// `PREFILL_RETIRE_BUDGET` in `systolic-ring-core`): past this many traced
/// instructions the load-time walk gives up, so the `RL-F003` claim must
/// not extend beyond it.
const AOT_PREFILL_BUDGET: u64 = 10_000;

/// Slack added to the proven halt cycle: a `ctx` select committed on the
/// final cycles becomes active one cycle later.
const SETTLE_SLACK: u64 = 2;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Val {
    Known(u32),
    Unknown,
}

impl Val {
    fn map2(self, other: Val, f: impl FnOnce(u32, u32) -> u32) -> Val {
        match (self, other) {
            (Val::Known(a), Val::Known(b)) => Val::Known(f(a, b)),
            _ => Val::Unknown,
        }
    }
}

struct Tracer<'a> {
    code: &'a [u32],
    regs: [Val; 16],
    dmem: HashMap<u32, Val>,
    data: &'a [u32],
    dmem_capacity: usize,
    pc: u32,
    cycles: u64,
    steps: u64,
    /// `true` once the trace executed a `busr` — tolerable for the
    /// fusibility proof (the value lands in a register the proof may
    /// never need), fatal for the AOT prefill walk (blind read).
    read_bus: bool,
}

enum Outcome {
    Halted { cycles: u64 },
    Abandoned { reason: String },
}

impl<'a> Tracer<'a> {
    fn read(&self, r: CReg) -> Val {
        if r == CReg::ZERO {
            Val::Known(0)
        } else {
            self.regs[r.index()]
        }
    }

    fn write(&mut self, r: CReg, v: Val) {
        if r != CReg::ZERO {
            self.regs[r.index()] = v;
        }
    }

    fn load(&self, addr: u32) -> Val {
        if let Some(v) = self.dmem.get(&addr) {
            return *v;
        }
        match self.data.get(addr as usize) {
            Some(&w) => Val::Known(w),
            None if (addr as usize) < self.dmem_capacity => Val::Known(0),
            None => Val::Unknown,
        }
    }

    fn run(&mut self) -> Outcome {
        loop {
            self.steps += 1;
            if self.steps > STEP_BUDGET {
                return Outcome::Abandoned {
                    reason: format!("no halt within {STEP_BUDGET} traced instructions"),
                };
            }
            let Some(&word) = self.code.get(self.pc as usize) else {
                return Outcome::Abandoned {
                    reason: format!("pc {} leaves the program", self.pc),
                };
            };
            let Ok(instr) = CtrlInstr::decode(word) else {
                return Outcome::Abandoned {
                    reason: format!("undecodable word at {}", self.pc),
                };
            };
            self.cycles += 1;
            let fall = self.pc.wrapping_add(1);
            self.pc = fall;
            match instr {
                CtrlInstr::Halt => {
                    return Outcome::Halted {
                        cycles: self.cycles,
                    }
                }
                CtrlInstr::Nop
                | CtrlInstr::Cimm { .. }
                | CtrlInstr::Wctx { .. }
                | CtrlInstr::Wdn { .. }
                | CtrlInstr::Wsw { .. }
                | CtrlInstr::Who { .. }
                | CtrlInstr::Wmode { .. }
                | CtrlInstr::Wloc { .. }
                | CtrlInstr::Wlim { .. }
                | CtrlInstr::Ctx { .. }
                | CtrlInstr::Busw { .. }
                | CtrlInstr::Hpush { .. } => {}
                CtrlInstr::Wait { cycles } => {
                    // A wait occupies `cycles` cycles in total (the retire
                    // cycle plus the stalled ones).
                    self.cycles += u64::from(cycles).saturating_sub(1);
                }
                CtrlInstr::Busr { rd } => {
                    self.read_bus = true;
                    self.write(rd, Val::Unknown);
                }
                CtrlInstr::Hpop { .. } => {
                    return Outcome::Abandoned {
                        reason: "pops host data (stall duration and value unknowable)".to_owned(),
                    }
                }
                CtrlInstr::Add { rd, ra, rb } => {
                    let v = self.read(ra).map2(self.read(rb), u32::wrapping_add);
                    self.write(rd, v);
                }
                CtrlInstr::Sub { rd, ra, rb } => {
                    let v = self.read(ra).map2(self.read(rb), u32::wrapping_sub);
                    self.write(rd, v);
                }
                CtrlInstr::And { rd, ra, rb } => {
                    let v = self.read(ra).map2(self.read(rb), |a, b| a & b);
                    self.write(rd, v);
                }
                CtrlInstr::Or { rd, ra, rb } => {
                    let v = self.read(ra).map2(self.read(rb), |a, b| a | b);
                    self.write(rd, v);
                }
                CtrlInstr::Xor { rd, ra, rb } => {
                    let v = self.read(ra).map2(self.read(rb), |a, b| a ^ b);
                    self.write(rd, v);
                }
                CtrlInstr::Sll { rd, ra, rb } => {
                    let v = self.read(ra).map2(self.read(rb), |a, b| a << (b & 31));
                    self.write(rd, v);
                }
                CtrlInstr::Srl { rd, ra, rb } => {
                    let v = self.read(ra).map2(self.read(rb), |a, b| a >> (b & 31));
                    self.write(rd, v);
                }
                CtrlInstr::Sra { rd, ra, rb } => {
                    let v = self
                        .read(ra)
                        .map2(self.read(rb), |a, b| ((a as i32) >> (b & 31)) as u32);
                    self.write(rd, v);
                }
                CtrlInstr::Slt { rd, ra, rb } => {
                    let v = self
                        .read(ra)
                        .map2(self.read(rb), |a, b| ((a as i32) < (b as i32)) as u32);
                    self.write(rd, v);
                }
                CtrlInstr::Sltu { rd, ra, rb } => {
                    let v = self.read(ra).map2(self.read(rb), |a, b| (a < b) as u32);
                    self.write(rd, v);
                }
                CtrlInstr::Mul { rd, ra, rb } => {
                    let v = self.read(ra).map2(self.read(rb), u32::wrapping_mul);
                    self.write(rd, v);
                }
                CtrlInstr::Addi { rd, ra, imm } => {
                    let v = self
                        .read(ra)
                        .map2(Val::Known(imm as i32 as u32), u32::wrapping_add);
                    self.write(rd, v);
                }
                CtrlInstr::Andi { rd, ra, imm } => {
                    let v = self.read(ra).map2(Val::Known(imm.into()), |a, b| a & b);
                    self.write(rd, v);
                }
                CtrlInstr::Ori { rd, ra, imm } => {
                    let v = self.read(ra).map2(Val::Known(imm.into()), |a, b| a | b);
                    self.write(rd, v);
                }
                CtrlInstr::Xori { rd, ra, imm } => {
                    let v = self.read(ra).map2(Val::Known(imm.into()), |a, b| a ^ b);
                    self.write(rd, v);
                }
                CtrlInstr::Slti { rd, ra, imm } => {
                    let v = self.read(ra).map2(Val::Known(imm as i32 as u32), |a, b| {
                        ((a as i32) < (b as i32)) as u32
                    });
                    self.write(rd, v);
                }
                CtrlInstr::Lui { rd, imm } => self.write(rd, Val::Known(u32::from(imm) << 16)),
                CtrlInstr::Lw { rd, ra, imm } => match self.read(ra) {
                    Val::Known(base) => {
                        let addr = base.wrapping_add(imm as i32 as u32);
                        if addr as usize >= self.dmem_capacity {
                            return Outcome::Abandoned {
                                reason: format!("load from out-of-range address {addr}"),
                            };
                        }
                        let v = self.load(addr);
                        self.write(rd, v);
                    }
                    Val::Unknown => self.write(rd, Val::Unknown),
                },
                CtrlInstr::Sw { rs, ra, imm } => match self.read(ra) {
                    Val::Known(base) => {
                        let addr = base.wrapping_add(imm as i32 as u32);
                        if addr as usize >= self.dmem_capacity {
                            return Outcome::Abandoned {
                                reason: format!("store to out-of-range address {addr}"),
                            };
                        }
                        let v = self.read(rs);
                        self.dmem.insert(addr, v);
                    }
                    Val::Unknown => {
                        return Outcome::Abandoned {
                            reason: "store to an unknown address (poisons data memory)".to_owned(),
                        }
                    }
                },
                CtrlInstr::Beq { ra, rb, offset } => match (self.read(ra), self.read(rb)) {
                    (Val::Known(a), Val::Known(b)) => {
                        if a == b {
                            self.pc = fall.wrapping_add(offset as i32 as u32);
                        }
                    }
                    _ => return branch_bail(self.pc.wrapping_sub(1)),
                },
                CtrlInstr::Bne { ra, rb, offset } => match (self.read(ra), self.read(rb)) {
                    (Val::Known(a), Val::Known(b)) => {
                        if a != b {
                            self.pc = fall.wrapping_add(offset as i32 as u32);
                        }
                    }
                    _ => return branch_bail(self.pc.wrapping_sub(1)),
                },
                CtrlInstr::Blt { ra, rb, offset } => match (self.read(ra), self.read(rb)) {
                    (Val::Known(a), Val::Known(b)) => {
                        if (a as i32) < (b as i32) {
                            self.pc = fall.wrapping_add(offset as i32 as u32);
                        }
                    }
                    _ => return branch_bail(self.pc.wrapping_sub(1)),
                },
                CtrlInstr::Bge { ra, rb, offset } => match (self.read(ra), self.read(rb)) {
                    (Val::Known(a), Val::Known(b)) => {
                        if (a as i32) >= (b as i32) {
                            self.pc = fall.wrapping_add(offset as i32 as u32);
                        }
                    }
                    _ => return branch_bail(self.pc.wrapping_sub(1)),
                },
                CtrlInstr::J { target } => self.pc = u32::from(target),
                CtrlInstr::Jal { target } => {
                    self.write(CReg::LINK, Val::Known(fall));
                    self.pc = u32::from(target);
                }
                CtrlInstr::Jr { ra } => match self.read(ra) {
                    Val::Known(target) => self.pc = target,
                    Val::Unknown => {
                        return Outcome::Abandoned {
                            reason: "indirect jump through an unknown register".to_owned(),
                        }
                    }
                },
            }
        }
    }
}

fn branch_bail(addr: u32) -> Outcome {
    Outcome::Abandoned {
        reason: format!("branch at {addr} depends on data the tracer cannot know"),
    }
}

/// Classifies `object` and returns `(fusibility, aot_compilable)`; see
/// the module docs for both one-sided claims.
pub(crate) fn classify(
    object: &Object,
    limits: &LintLimits,
    facts: &CodeFacts,
    model: &ConfigModel,
    diags: &mut Vec<Diagnostic>,
) -> (Fusibility, bool) {
    // RL-F002: a reachable host pop from a port no capture selector ever
    // feeds (and no reachable `who` could arm at run time) stalls forever.
    let runtime_captures = facts
        .instrs()
        .any(|(_, i)| matches!(i, CtrlInstr::Who { .. }));
    if !runtime_captures {
        for (addr, instr) in facts.instrs() {
            if let CtrlInstr::Hpop { switch, .. } = instr {
                let (s, p) = ((switch >> 8) as usize, (switch & 0xff) as usize);
                let fed = model
                    .captures
                    .iter()
                    .any(|(&(_, cs, cp), cap)| cs == s && cp == p && cap.selected().is_some());
                if !fed {
                    emit(
                        diags,
                        "RL-F002",
                        Severity::Warning,
                        Site::Code { addr },
                        format!(
                            "pops host-output port {p} of switch {s}, but no capture selector \
                             ever feeds it (the controller stalls forever)"
                        ),
                        "add a `capture` for the port or pop a captured one",
                    );
                }
            }
        }
    }

    let (fusibility, aot_compilable) = if object.code.is_empty() {
        // An empty program leaves the controller halted from reset; the
        // preloaded configuration is the steady state, and the prefill
        // walk compiles it at the halt.
        (Fusibility::Fusible { settle_cycles: 0 }, true)
    } else {
        let mut tracer = Tracer {
            code: &object.code,
            regs: [Val::Known(0); 16],
            dmem: HashMap::new(),
            data: &object.data,
            dmem_capacity: limits.dmem_capacity,
            pc: 0,
            cycles: 0,
            steps: 0,
            read_bus: false,
        };
        match tracer.run() {
            Outcome::Halted { cycles } => {
                // The AOT prefill walks the same path only if nothing the
                // walk must read blind was executed, and only within its
                // own retire budget.
                let aot = !tracer.read_bus && tracer.steps <= AOT_PREFILL_BUDGET;
                (
                    Fusibility::Fusible {
                        settle_cycles: cycles + SETTLE_SLACK,
                    },
                    aot,
                )
            }
            Outcome::Abandoned { reason } => (Fusibility::Unknown { reason }, false),
        }
    };
    if let Fusibility::Unknown { reason } = &fusibility {
        emit(
            diags,
            "RL-F001",
            Severity::Info,
            Site::Object,
            format!("no provable steady-state window: {reason}"),
            "the program may still fuse dynamically; the linter just cannot promise it",
        );
    }
    if aot_compilable {
        emit(
            diags,
            "RL-F003",
            Severity::Info,
            Site::Object,
            "ahead-of-time compilable: the load-time prefill walk provably reaches a \
             steady window"
                .to_owned(),
            "a machine with the aot tier enabled holds compiled superblocks from load",
        );
    }
    (fusibility, aot_compilable)
}
