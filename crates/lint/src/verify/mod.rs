//! `ringverify` — abstract interpretation over ring objects.
//!
//! Three cooperating passes built on one forking symbolic walk of the
//! controller program ([`schedule`]):
//!
//! * **`RL-Txxx` static schedule bounds** — if every path halts, the
//!   maximum path cycle count is a sound upper bound on the halt cycle
//!   of any real execution (`RL-T001`), the literate `;!` cycle budgets
//!   can be discharged without simulating, and the last configuration
//!   event bounds the cycle from which the fabric never changes again.
//!   An abandoned walk claims nothing (`RL-T002`); a fully concrete path
//!   that provably loops or stalls forever is called out (`RL-T003`).
//! * **`RL-Hxxx` reconfiguration hazards** ([`hazard`]) — replays the
//!   walk's configuration events against an evolving fabric view and
//!   flags writes that race in-flight pipeline data in the active
//!   context (`RL-H001` compute plane, `RL-H002` routing/capture plane);
//!   a complete, silent replay proves hazard freedom (`RL-H003`).
//! * **`RL-Vxxx` value ranges** ([`range`]) — a widening interval
//!   analysis over every configured microinstruction, proving
//!   wrap-capable Q-format arithmetic overflow-free (`RL-V001`) or
//!   flagging the exact site that may (`RL-V002`) or must (`RL-V003`)
//!   wrap.
//!
//! What survives all three passes is bound into a
//! [`ProofManifest`](systolic_ring_isa::proof::ProofManifest) keyed to
//! the exact object bytes; the core consumes it to elide runtime phase
//! guards (see `Stats::guards_elided`).

mod hazard;
mod range;
mod schedule;

use systolic_ring_isa::ctrl::CtrlInstr;
use systolic_ring_isa::expect::Expectations;
use systolic_ring_isa::object::Object;
use systolic_ring_isa::proof::ProofManifest;

use crate::diag::{Diagnostic, Severity, Site};
use crate::model::{emit, ConfigModel};
use crate::sequencer::CodeFacts;
use crate::LintLimits;

/// Runs the verify passes and returns the proof manifest (always bound
/// to the object's hash; unproven fields stay empty).
pub(crate) fn check(
    object: &Object,
    limits: &LintLimits,
    facts: &CodeFacts,
    model: &ConfigModel,
    expectations: Option<&Expectations>,
    diags: &mut Vec<Diagnostic>,
) -> ProofManifest {
    // `unproven` already binds the manifest to the object's byte hash.
    let mut manifest = ProofManifest::unproven(object);

    let outcome = schedule::walk(object, limits, model);
    let (paths, complete) = match &outcome {
        schedule::WalkOutcome::Complete {
            paths,
            max_cycles,
            stable_from,
        } => {
            manifest.halts = true;
            manifest.cycle_bound = Some(*max_cycles);
            manifest.config_stable_from = Some(*stable_from);
            emit(
                diags,
                "RL-T001",
                Severity::Info,
                Site::Object,
                format!(
                    "controller provably halts by cycle {max_cycles} on every path \
                     ({} path(s)); configuration stable from cycle {stable_from}",
                    paths.len()
                ),
                "the bound and stability cycle are recorded in the proof manifest",
            );
            (paths.as_slice(), true)
        }
        schedule::WalkOutcome::Abandoned { reason, paths } => {
            emit(
                diags,
                "RL-T002",
                Severity::Info,
                Site::Object,
                format!("no static schedule bound: {reason}"),
                "the program may still halt; the verifier just cannot bound it",
            );
            (paths.as_slice(), false)
        }
        schedule::WalkOutcome::Diverges { reason, addr } => {
            emit(
                diags,
                "RL-T003",
                Severity::Info,
                Site::Code { addr: *addr },
                format!("controller provably never halts: {reason}"),
                "intentional for streaming programs; add a halt path if termination \
                 was expected",
            );
            (&[][..], false)
        }
    };

    // Hazard replay over every halted path. `RL-H003` (and the manifest
    // claim) requires the walk to have covered *all* paths.
    let hazard_free = hazard::check(model, paths, complete, diags);
    if hazard_free {
        manifest.hazard_free = true;
        emit(
            diags,
            "RL-H003",
            Severity::Info,
            Site::Object,
            "no reconfiguration write can race in-flight pipeline data on any \
             execution path"
                .to_owned(),
            "the hazard-freedom claim is recorded in the proof manifest",
        );
    }

    // Value ranges are only sound when every runtime configuration write
    // was recovered: either the walk is complete, or the program has no
    // config-write instructions at all.
    let has_config_writes = facts.instrs().any(|(_, i)| {
        matches!(
            i,
            CtrlInstr::Wdn { .. }
                | CtrlInstr::Wsw { .. }
                | CtrlInstr::Who { .. }
                | CtrlInstr::Wmode { .. }
                | CtrlInstr::Wloc { .. }
                | CtrlInstr::Wlim { .. }
        )
    });
    if complete || !has_config_writes {
        let controller_drives_bus = facts
            .instrs()
            .any(|(_, i)| matches!(i, CtrlInstr::Busw { .. }));
        manifest.out_ranges =
            range::check(model, paths, expectations, controller_drives_bus, diags);
    }

    manifest
}
