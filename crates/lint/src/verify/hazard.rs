//! Reconfiguration-hazard pass (`RL-Hxxx`): replays the configuration
//! events of every walked path against an evolving view of the fabric and
//! flags writes that race in-flight pipeline data.
//!
//! The hazard model is the one the chaos campaign samples dynamically: a
//! configuration word rewritten **in the active context** while the
//! target Dnode (or the Dnode fed by the target route) is *busy* changes
//! the meaning of data already in flight — a RAW/WAR race between the
//! configuration plane and the datapath. Writes into inactive contexts
//! are the paper's whole point (reconfigure in the shadow, then switch)
//! and never flag; first-time configuration of an idle Dnode in the
//! active context is plain setup and never flags either.

use std::collections::{BTreeMap, BTreeSet};

use systolic_ring_isa::dnode::MicroInstr;

use crate::diag::{Diagnostic, Severity, Site};
use crate::model::{emit, ConfigModel};

use super::schedule::{ConfigEvent, HaltedPath, TimedEvent};

/// Whether a Dnode currently executes anything, under `view`.
///
/// `None` entries (runtime writes with unknown words) count as busy —
/// the conservative direction for a hazard check.
struct View {
    /// `(ctx, dnode) -> instr` (`None` = written with unknown word).
    dnode_instrs: BTreeMap<(usize, usize), Option<MicroInstr>>,
    /// `dnode -> local mode` (`None` = flipped with unknown direction).
    modes: BTreeMap<usize, Option<bool>>,
    /// `(dnode, slot) -> instr` (`None` = unknown word).
    local_slots: BTreeMap<(usize, usize), Option<MicroInstr>>,
    /// `dnode -> sequencer limit` (`None` = unknown).
    local_limits: BTreeMap<usize, Option<u32>>,
    active_ctx: usize,
}

impl View {
    fn from_model(model: &ConfigModel) -> View {
        View {
            dnode_instrs: model
                .dnode_instrs
                .iter()
                .map(|(&k, &v)| (k, Some(v)))
                .collect(),
            modes: model.modes.iter().map(|(&k, &v)| (k, Some(v))).collect(),
            local_slots: model
                .local_slots
                .iter()
                .map(|(&k, &v)| (k, Some(v)))
                .collect(),
            local_limits: model
                .local_limits
                .iter()
                .map(|(&k, &v)| (k, Some(u32::from(v))))
                .collect(),
            active_ctx: 0,
        }
    }

    /// A Dnode is busy when the configuration it currently executes is
    /// non-idle: its active-context microinstruction, or (in local mode)
    /// any sequenced slot below the limit.
    fn busy(&self, dnode: usize) -> bool {
        let local = match self.modes.get(&dnode) {
            Some(&Some(local)) => local,
            // Unknown mode: busy if either view would be.
            Some(&None) => return self.ctx_busy(dnode) || self.local_busy(dnode),
            None => false,
        };
        if local {
            self.local_busy(dnode)
        } else {
            self.ctx_busy(dnode)
        }
    }

    fn ctx_busy(&self, dnode: usize) -> bool {
        match self.dnode_instrs.get(&(self.active_ctx, dnode)) {
            Some(&Some(instr)) => instr != MicroInstr::NOP,
            Some(&None) => true,
            None => false,
        }
    }

    fn local_busy(&self, dnode: usize) -> bool {
        let limit = match self.local_limits.get(&dnode) {
            Some(&Some(limit)) => limit as usize,
            Some(&None) => usize::MAX,
            None => 1,
        };
        self.local_slots
            .iter()
            .filter(|(&(d, slot), _)| d == dnode && slot < limit)
            .any(|(_, instr)| !matches!(instr, Some(i) if *i == MicroInstr::NOP))
    }
}

/// One deduplicated finding, ordered for deterministic emission.
#[derive(PartialEq, Eq, PartialOrd, Ord)]
struct Finding {
    addr: usize,
    code: &'static str,
    message: String,
    help: &'static str,
}

/// Replays `paths` and emits `RL-H001`/`RL-H002` warnings; returns `true`
/// (hazard-free) when `complete` and nothing flagged. `RL-H003` is
/// emitted by the caller so the manifest and the diagnostic stay in step.
pub(crate) fn check(
    model: &ConfigModel,
    paths: &[HaltedPath],
    complete: bool,
    diags: &mut Vec<Diagnostic>,
) -> bool {
    let mut findings: BTreeSet<Finding> = BTreeSet::new();
    for path in paths {
        replay(model, &path.events, &mut findings);
    }
    let clean = findings.is_empty();
    for f in findings {
        emit(
            diags,
            f.code,
            Severity::Warning,
            Site::Code { addr: f.addr },
            f.message,
            f.help,
        );
    }
    complete && clean
}

fn replay(model: &ConfigModel, events: &[TimedEvent], findings: &mut BTreeSet<Finding>) {
    let mut view = View::from_model(model);
    for ev in events {
        view.active_ctx = ev.active_ctx;
        match ev.event {
            ConfigEvent::WriteDnode { ctx, dnode, word } => {
                if ctx == view.active_ctx && view.busy(dnode) {
                    findings.insert(Finding {
                        addr: ev.addr,
                        code: "RL-H001",
                        message: format!(
                            "rewrites the microinstruction of dnode {dnode} in the ACTIVE \
                             context {ctx} at cycle {} while the dnode is executing \
                             (in-flight data races the new configuration)",
                            ev.cycle
                        ),
                        help: "write into a shadow context and `ctx`-switch, or idle the \
                               dnode first",
                    });
                }
                let instr = word.and_then(|w| MicroInstr::decode(w).ok());
                view.dnode_instrs.insert((ctx, dnode), instr);
            }
            ConfigEvent::WritePort {
                ctx,
                switch,
                lane,
                input: _,
                word: _,
            } => {
                if ctx == view.active_ctx {
                    // The rewritten route feeds the downstream Dnode at
                    // (downstream layer of `switch`, `lane`).
                    let consumer = model
                        .geometry
                        .map(|g| g.dnode_index(g.downstream_layer(switch), lane));
                    if consumer.is_none_or(|d| view.busy(d)) {
                        findings.insert(Finding {
                            addr: ev.addr,
                            code: "RL-H002",
                            message: format!(
                                "rewrites a route of switch {switch} (lane {lane}) in the \
                                 ACTIVE context {ctx} at cycle {} while the fed dnode is \
                                 executing (pipeline words in flight take the new route)",
                                ev.cycle
                            ),
                            help: "reroute in a shadow context and `ctx`-switch, or idle \
                                   the downstream dnode first",
                        });
                    }
                }
            }
            ConfigEvent::WriteCapture {
                ctx, switch, port, ..
            } => {
                // Re-arming an active capture mid-stream tears the
                // host-visible output; flag only when the port is
                // already armed in the active context.
                if ctx == view.active_ctx {
                    let armed = model
                        .captures
                        .get(&(ctx, switch, port))
                        .is_some_and(|c| c.selected().is_some());
                    if armed {
                        findings.insert(Finding {
                            addr: ev.addr,
                            code: "RL-H002",
                            message: format!(
                                "rewrites the armed capture selector of switch {switch} \
                                 port {port} in the ACTIVE context {ctx} at cycle {} \
                                 (the host-visible stream tears mid-run)",
                                ev.cycle
                            ),
                            help: "retarget captures in a shadow context and `ctx`-switch",
                        });
                    }
                }
            }
            ConfigEvent::WriteMode { dnode, local } => {
                let flips = match (view.modes.get(&dnode).copied().flatten(), local) {
                    (prev, Some(new)) => prev.unwrap_or(false) != new,
                    (_, None) => true,
                };
                if flips && view.busy(dnode) {
                    findings.insert(Finding {
                        addr: ev.addr,
                        code: "RL-H001",
                        message: format!(
                            "flips the execution mode of dnode {dnode} at cycle {} while \
                             the dnode is executing (its register file and accumulator \
                             carry stale state across the switch)",
                            ev.cycle
                        ),
                        help: "idle the dnode (NOP its active configuration) before \
                               flipping modes",
                    });
                }
                view.modes.insert(dnode, local);
            }
            ConfigEvent::WriteLocalSlot { dnode, slot, word } => {
                let local_now = matches!(view.modes.get(&dnode), Some(&Some(true)) | Some(&None));
                if local_now && view.local_busy(dnode) {
                    findings.insert(Finding {
                        addr: ev.addr,
                        code: "RL-H001",
                        message: format!(
                            "rewrites local-sequencer slot {slot} of dnode {dnode} at \
                             cycle {} while the dnode is sequencing in local mode",
                            ev.cycle
                        ),
                        help: "switch the dnode out of local mode before rewriting its \
                               microprogram",
                    });
                }
                let instr = word.and_then(|w| MicroInstr::decode(w).ok());
                view.local_slots.insert((dnode, slot), instr);
            }
            ConfigEvent::WriteLocalLimit { dnode, limit } => {
                let local_now = matches!(view.modes.get(&dnode), Some(&Some(true)) | Some(&None));
                if local_now && view.local_busy(dnode) {
                    findings.insert(Finding {
                        addr: ev.addr,
                        code: "RL-H001",
                        message: format!(
                            "rewrites the sequencer limit of dnode {dnode} at cycle {} \
                             while the dnode is sequencing in local mode",
                            ev.cycle
                        ),
                        help: "switch the dnode out of local mode before resizing its \
                               microprogram",
                    });
                }
                view.local_limits.insert(dnode, limit);
            }
            ConfigEvent::SetCtx { ctx } => view.active_ctx = ctx,
        }
    }
}
